"""Tests for the properties matrix and qualitative properties."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.metrics import definitions as d
from repro.metrics.registry import MetricRegistry, default_registry
from repro.properties.base import AssessmentContext, PropertyAssessment
from repro.properties.matrix import build_properties_matrix, default_properties
from repro.properties.qualitative import (
    UNDERSTANDABILITY_SCORES,
    Acceptance,
    Understandability,
)


class TestQualitative:
    def test_understandability_covers_whole_catalog(self):
        for metric in default_registry():
            assert metric.symbol in UNDERSTANDABILITY_SCORES

    def test_understandability_returns_curated_value(self):
        context = AssessmentContext.default(seed=1, n_resamples=10)
        assessment = Understandability().assess(d.RECALL, context)
        assert assessment.score == 1.0

    def test_unknown_metric_gets_conservative_default(self):
        context = AssessmentContext.default(seed=1, n_resamples=10)
        exotic = d.ExpectedCost(3, 1, label="custom")
        # EC is in the table, so fabricate an uncatalogued symbol via NEC.
        assessment = Understandability().assess(d.NormalizedExpectedCost(3, 1), context)
        assert 0.0 < assessment.score < 1.0
        del exotic

    def test_acceptance_mirrors_popularity(self):
        context = AssessmentContext.default(seed=1, n_resamples=10)
        assert Acceptance().assess(d.RECALL, context).score == d.RECALL.info.popularity

    def test_precision_more_accepted_than_markedness(self):
        context = AssessmentContext.default(seed=1, n_resamples=10)
        assert (
            Acceptance().assess(d.PRECISION, context).score
            > Acceptance().assess(d.MARKEDNESS, context).score
        )


class TestAssessmentValidation:
    def test_score_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            PropertyAssessment(
                property_name="p", metric_symbol="m", score=1.5, rationale="r"
            )


class TestDefaultProperties:
    def test_ten_properties(self):
        assert len(default_properties()) == 10

    def test_names_unique(self):
        names = [p.name for p in default_properties()]
        assert len(set(names)) == len(names)

    def test_scenario_weights_reference_real_properties(self):
        from repro.scenarios.scenarios import canonical_scenarios

        names = {p.name for p in default_properties()}
        for scenario in canonical_scenarios():
            assert set(scenario.property_weights) <= names


class TestPropertiesMatrix:
    def test_shape(self, properties_matrix, core_registry):
        assert len(properties_matrix.metric_symbols) == len(core_registry)
        assert len(properties_matrix.property_names) == 10

    def test_all_cells_present_and_bounded(self, properties_matrix):
        for symbol in properties_matrix.metric_symbols:
            for name in properties_matrix.property_names:
                score = properties_matrix.score(symbol, name)
                assert 0.0 <= score <= 1.0

    def test_row_and_column_access(self, properties_matrix):
        row = properties_matrix.row("REC")
        assert set(row) == set(properties_matrix.property_names)
        column = properties_matrix.column("bounded")
        assert set(column) == set(properties_matrix.metric_symbols)

    def test_unknown_cell_raises(self, properties_matrix):
        with pytest.raises(ConfigurationError):
            properties_matrix.score("NOPE", "bounded")
        with pytest.raises(ConfigurationError):
            properties_matrix.score("REC", "nope")

    def test_weighted_scores(self, properties_matrix):
        scores = properties_matrix.weighted_scores({"rewards detection": 1.0})
        # Pure detection weighting makes recall the top metric.
        best = max(scores, key=scores.get)
        assert best == "REC"

    def test_weighted_scores_normalized(self, properties_matrix):
        a = properties_matrix.weighted_scores({"bounded": 2.0, "defined": 2.0})
        b = properties_matrix.weighted_scores({"bounded": 0.5, "defined": 0.5})
        for symbol in properties_matrix.metric_symbols:
            assert a[symbol] == pytest.approx(b[symbol])

    def test_weighted_scores_rejects_unknown_property(self, properties_matrix):
        with pytest.raises(ConfigurationError):
            properties_matrix.weighted_scores({"nope": 1.0})

    def test_weighted_scores_rejects_zero_weights(self, properties_matrix):
        with pytest.raises(ConfigurationError):
            properties_matrix.weighted_scores({"bounded": 0.0})

    def test_duplicate_property_names_rejected(self, core_registry):
        from repro.properties.checks import Boundedness

        context = AssessmentContext.default(seed=1, n_resamples=10)
        small = MetricRegistry([d.RECALL])
        with pytest.raises(ConfigurationError):
            build_properties_matrix(
                small, properties=[Boundedness(), Boundedness()], context=context
            )

    def test_assessments_carry_provenance(self, properties_matrix):
        assessment = properties_matrix.assessment("REC", "prevalence-invariant")
        assert assessment.metric_symbol == "REC"
        assert assessment.rationale

"""Tests for the executable good-metric property checks.

Each check is validated against metrics whose behaviour under the property
is known analytically: recall is prevalence-invariant, accuracy is not; DOR
is unbounded; MCC is chance-corrected; and so on.
"""

from __future__ import annotations

import pytest

from repro.metrics import definitions as d
from repro.properties.base import AssessmentContext, OperatingPoint
from repro.properties.checks import (
    Boundedness,
    ChanceCorrection,
    Definedness,
    Discriminance,
    PrevalenceInvariance,
    Repeatability,
    RewardsDetection,
    RewardsSilence,
)


@pytest.fixture(scope="module")
def context() -> AssessmentContext:
    return AssessmentContext.default(seed=5, n_resamples=40)


class TestOperatingPoint:
    def test_matrix_construction(self):
        cm = OperatingPoint(tpr=0.8, fpr=0.1).matrix(prevalence=0.2, total=1000)
        assert cm.tp == pytest.approx(160)
        assert cm.fp == pytest.approx(80)

    def test_context_grids_are_valid(self, context):
        assert len(context.matrices()) == len(context.operating_points) * len(
            context.prevalences
        )
        assert len(context.degenerate_matrices()) == 8


class TestBoundedness:
    def test_bounded_metric_scores_one(self, context):
        assert Boundedness().assess(d.RECALL, context).score == 1.0
        assert Boundedness().assess(d.MCC, context).score == 1.0

    def test_unbounded_metric_scores_zero(self, context):
        for metric in (d.DOR, d.LR_POSITIVE, d.LIFT):
            assert Boundedness().assess(metric, context).score == 0.0


class TestDefinedness:
    def test_accuracy_always_defined(self, context):
        assessment = Definedness().assess(d.ACCURACY, context)
        assert assessment.score == 1.0

    def test_dor_frequently_undefined(self, context):
        dor = Definedness().assess(d.DOR, context).score
        accuracy = Definedness().assess(d.ACCURACY, context).score
        assert dor < accuracy

    def test_f1_defined_on_degenerates(self, context):
        assert Definedness().assess(d.F1, context).score == 1.0

    def test_evidence_recorded(self, context):
        assessment = Definedness().assess(d.PRECISION, context)
        assert "regular_defined" in assessment.evidence
        assert "degenerate_defined" in assessment.evidence


class TestPrevalenceInvariance:
    def test_rate_metrics_are_invariant(self, context):
        for metric in (d.RECALL, d.SPECIFICITY, d.INFORMEDNESS, d.BALANCED_ACCURACY):
            assert PrevalenceInvariance().assess(metric, context).score == pytest.approx(
                1.0
            ), metric.symbol

    def test_precision_is_not_invariant(self, context):
        assert PrevalenceInvariance().assess(d.PRECISION, context).score < 0.7

    def test_informedness_beats_accuracy(self, context):
        informedness = PrevalenceInvariance().assess(d.INFORMEDNESS, context).score
        accuracy = PrevalenceInvariance().assess(d.ACCURACY, context).score
        assert informedness > accuracy


class TestResponsivenessShares:
    def test_recall_is_pure_detection(self, context):
        assert RewardsDetection().assess(d.RECALL, context).score == pytest.approx(1.0)
        assert RewardsSilence().assess(d.RECALL, context).score == pytest.approx(0.0)

    def test_specificity_is_pure_silence(self, context):
        assert RewardsDetection().assess(d.SPECIFICITY, context).score == pytest.approx(
            0.0
        )
        assert RewardsSilence().assess(d.SPECIFICITY, context).score == pytest.approx(
            1.0
        )

    def test_shares_sum_to_one_for_responsive_metrics(self, context):
        for metric in (d.F1, d.MCC, d.ACCURACY, d.PRECISION):
            detection = RewardsDetection().assess(metric, context).score
            silence = RewardsSilence().assess(metric, context).score
            assert detection + silence == pytest.approx(1.0), metric.symbol

    def test_fbeta_ordering(self, context):
        """Higher beta means more detection-leaning."""
        shares = {
            metric.symbol: RewardsDetection().assess(metric, context).score
            for metric in (d.F2, d.F1, d.F05)
        }
        assert shares["F2"] > shares["F1"] > shares["F0.5"]

    def test_accuracy_is_balanced(self, context):
        share = RewardsDetection().assess(d.ACCURACY, context).score
        assert share == pytest.approx(0.5, abs=0.05)


class TestChanceCorrection:
    def test_chance_corrected_composites_score_high(self, context):
        for metric in (d.MCC, d.INFORMEDNESS, d.KAPPA, d.MARKEDNESS):
            assert ChanceCorrection().assess(metric, context).score > 0.95, metric.symbol

    def test_accuracy_scores_low(self, context):
        assert ChanceCorrection().assess(d.ACCURACY, context).score < 0.5

    def test_recall_scores_low(self, context):
        # Recall of a random flagger equals its flag rate: maximally
        # chance-confusable.
        assert ChanceCorrection().assess(d.RECALL, context).score < 0.2


class TestDiscriminance:
    def test_scores_in_unit_interval(self, context):
        for metric in (d.RECALL, d.MCC, d.DOR):
            score = Discriminance().assess(metric, context).score
            assert 0.0 <= score <= 1.0

    def test_mcc_discriminates_better_than_recall(self, context):
        # The pairs improve both TPR and FPR; recall sees only half the
        # signal.
        mcc = Discriminance().assess(d.MCC, context).score
        recall = Discriminance().assess(d.RECALL, context).score
        assert mcc > recall


class TestRepeatability:
    def test_stable_ratio_metric_scores_high(self, context):
        assert Repeatability().assess(d.ACCURACY, context).score > 0.8

    def test_dor_unstable(self, context):
        dor = Repeatability().assess(d.DOR, context).score
        accuracy = Repeatability().assess(d.ACCURACY, context).score
        assert dor < accuracy

    def test_deterministic_in_context_seed(self):
        context_a = AssessmentContext.default(seed=9, n_resamples=30)
        context_b = AssessmentContext.default(seed=9, n_resamples=30)
        assert (
            Repeatability().assess(d.F1, context_a).score
            == Repeatability().assess(d.F1, context_b).score
        )

"""Tests for the sharded workload layer (plan math, determinism, isolation)."""

from __future__ import annotations

import pickle

import pytest

from repro._rng import derive_seed
from repro.errors import ConfigurationError
from repro.workload.generator import WorkloadConfig
from repro.workload.sharded import (
    DEFAULT_SHARD_SIZE,
    ShardPlan,
    plan_shards,
    shard_seed,
)


class TestPlanMath:
    def test_even_split(self):
        plan = plan_shards(scale=100, shard_size=25, seed=1)
        assert plan.n_shards == 4
        assert [spec.n_units for spec in plan] == [25, 25, 25, 25]

    def test_ragged_tail_takes_the_remainder(self):
        plan = plan_shards(scale=103, shard_size=25, seed=1)
        assert plan.n_shards == 5
        assert [spec.n_units for spec in plan] == [25, 25, 25, 25, 3]

    def test_unit_counts_always_sum_to_scale(self):
        for scale, shard_size in [(1, 1), (1, 10), (9, 4), (10, 10), (11, 10)]:
            plan = plan_shards(scale=scale, shard_size=shard_size, seed=0)
            assert sum(spec.n_units for spec in plan) == scale

    def test_shard_larger_than_scale_is_one_shard(self):
        plan = plan_shards(scale=7, shard_size=100, seed=0)
        assert plan.n_shards == 1
        assert plan.units_in(0) == 7

    def test_default_shard_size(self):
        assert plan_shards(scale=10**6).shard_size == DEFAULT_SHARD_SIZE

    def test_len_and_iter_agree(self):
        plan = plan_shards(scale=55, shard_size=10, seed=3)
        assert len(plan) == len(list(plan)) == 6

    def test_invalid_parameters_are_clean_errors(self):
        with pytest.raises(ConfigurationError, match="scale"):
            plan_shards(scale=0, shard_size=10)
        with pytest.raises(ConfigurationError, match="shard_size"):
            plan_shards(scale=10, shard_size=0)
        with pytest.raises(ConfigurationError, match="out of range"):
            plan_shards(scale=10, shard_size=10).spec(1)
        with pytest.raises(ConfigurationError, match="out of range"):
            plan_shards(scale=10, shard_size=10).spec(-1)


class TestDeterminismContract:
    def test_shard_seed_is_the_documented_derivation(self):
        assert shard_seed(2015, 3) == derive_seed(2015, "shard:3")

    def test_shard_seeds_differ_across_indices_and_corpus_seeds(self):
        seeds = {shard_seed(2015, index) for index in range(50)}
        assert len(seeds) == 50
        assert shard_seed(2015, 0) != shard_seed(2016, 0)

    def test_shard_names_are_unique_and_stable(self):
        plan = plan_shards(scale=30, shard_size=10, seed=2015)
        names = [spec.name for spec in plan]
        assert names == ["corpus-s000000", "corpus-s000001", "corpus-s000002"]

    def test_config_for_overrides_only_identity_fields(self):
        base = WorkloadConfig(prevalence=0.3, seed=7, name="special")
        plan = ShardPlan(scale=20, shard_size=10, seed=7, base=base)
        config = plan.config_for(1)
        assert config.prevalence == 0.3
        assert config.n_units == 10
        assert config.seed == shard_seed(7, 1)
        assert config.name == "special-s000001"

    def test_plan_pickles_and_rebuilds_identically(self):
        plan = plan_shards(scale=30, shard_size=10, seed=2015)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert [spec for spec in clone] == [spec for spec in plan]


class TestShardIsolation:
    def test_any_shard_regenerates_in_isolation(self):
        plan = plan_shards(scale=60, shard_size=20, seed=2015)
        # Generate shard 2 alone, then as part of a full sweep: identical.
        alone = plan.generate(2)
        swept = [plan.generate(index) for index in range(plan.n_shards)][2]
        assert alone.units == swept.units
        assert alone.truth.sites == swept.truth.sites
        assert alone.truth.vulnerable == swept.truth.vulnerable

    def test_shards_do_not_share_content(self):
        plan = plan_shards(scale=40, shard_size=20, seed=2015)
        first, second = plan.generate(0), plan.generate(1)
        assert first.name != second.name
        assert {u.unit_id for u in first.units}.isdisjoint(
            u.unit_id for u in second.units
        )
        assert first.units != second.units

    def test_same_identity_same_corpus_different_seed_different_corpus(self):
        plan_a = plan_shards(scale=20, shard_size=10, seed=2015)
        plan_b = plan_shards(scale=20, shard_size=10, seed=2015)
        plan_c = plan_shards(scale=20, shard_size=10, seed=2016)
        assert plan_a.generate(0).units == plan_b.generate(0).units
        assert plan_a.generate(0).units != plan_c.generate(0).units

    def test_generated_shard_matches_its_spec(self):
        plan = plan_shards(scale=25, shard_size=10, seed=2015)
        for spec in plan:
            workload = plan.generate(spec.index)
            assert len(workload.units) == spec.n_units
            assert workload.name == spec.name
            assert workload.config.seed == spec.seed

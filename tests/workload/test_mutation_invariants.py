"""Property-based invariants of the mutation operators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.code_model import SinkSite
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.mutations import break_site, extend_chain, fix_site
from repro.workload.oracle import vulnerable_sites

workload_seeds = st.integers(0, 2**31)


def make_workload(seed: int):
    return generate_workload(
        WorkloadConfig(
            n_units=40, prevalence=0.25, decoy_fraction=0.7, seed=seed, name="mut"
        )
    )


@settings(max_examples=15, deadline=None)
@given(seed=workload_seeds, pick=st.integers(0, 10**6))
def test_fix_any_vulnerable_site_reduces_count_by_exactly_one(seed, pick):
    workload = make_workload(seed)
    vulnerable = sorted(workload.truth.vulnerable)
    if not vulnerable:
        return
    site = vulnerable[pick % len(vulnerable)]
    fixed = fix_site(workload, site)
    assert fixed.truth.n_vulnerable == workload.truth.n_vulnerable - 1
    assert fixed.truth.n_sites == workload.truth.n_sites
    # The fixed workload remains fully oracle-consistent.
    unit = fixed.unit(site.unit_id)
    oracle = vulnerable_sites(unit)
    for unit_site in unit.sink_sites():
        assert (unit_site in oracle) == fixed.truth.is_vulnerable(unit_site)


@settings(max_examples=15, deadline=None)
@given(seed=workload_seeds, pick=st.integers(0, 10**6))
def test_break_any_decoy_makes_it_vulnerable(seed, pick):
    # break_site downgrades every same-class sanitizer above the sink, so
    # another same-class decoy in the same unit can regress alongside the
    # target: the count grows by at least one, not exactly one.
    workload = make_workload(seed)
    decoys = sorted(
        site
        for site in workload.truth.sites
        if not workload.profiles[site].vulnerable
        and workload.profiles[site].sanitizer_present
    )
    if not decoys:
        return
    site = decoys[pick % len(decoys)]
    broken = break_site(workload, site)
    assert broken.truth.is_vulnerable(site)
    assert broken.truth.n_vulnerable >= workload.truth.n_vulnerable + 1
    assert broken.truth.n_sites == workload.truth.n_sites


@settings(max_examples=15, deadline=None)
@given(seed=workload_seeds, pick=st.integers(0, 10**6), hops=st.integers(1, 6))
def test_extend_chain_preserves_every_verdict(seed, pick, hops):
    workload = make_workload(seed)
    sites = sorted(workload.truth.sites)
    site = sites[pick % len(sites)]
    extended = extend_chain(workload, site, hops=hops)
    assert extended.truth.n_vulnerable == workload.truth.n_vulnerable
    assert extended.truth.n_sites == workload.truth.n_sites
    moved = SinkSite(site.unit_id, site.statement_index + hops, site.vuln_type)
    assert extended.truth.is_vulnerable(moved) == workload.truth.is_vulnerable(site)


@settings(max_examples=10, deadline=None)
@given(seed=workload_seeds)
def test_fix_then_break_reopens_the_site(seed):
    """Fixing a vulnerability and then regressing the fixed site makes the
    site vulnerable again.  The vulnerable count is at least restored —
    break_site downgrades *every* same-class sanitizer above the sink, so
    a same-class decoy earlier in the unit may regress along with it."""
    workload = make_workload(seed)
    vulnerable = sorted(workload.truth.vulnerable)
    if not vulnerable:
        return
    site = vulnerable[0]
    fixed = fix_site(workload, site)
    moved = SinkSite(site.unit_id, site.statement_index + 1, site.vuln_type)
    regressed = break_site(fixed, moved)
    assert regressed.truth.is_vulnerable(moved)
    assert regressed.truth.n_vulnerable >= workload.truth.n_vulnerable
    assert regressed.truth.n_vulnerable > fixed.truth.n_vulnerable


def test_mutation_chain_remains_serializable():
    """Mutated workloads keep all invariants persistence relies on.

    Note the second mutation picks its site from the *fixed* workload —
    after an insertion, sites of the touched unit have new indices.
    """
    from repro.persist import workload_from_dict, workload_to_dict

    workload = make_workload(7)
    site = sorted(workload.truth.vulnerable)[0]
    fixed = fix_site(workload, site)
    mutated = extend_chain(fixed, sorted(fixed.truth.sites)[0], 2)
    rebuilt = workload_from_dict(workload_to_dict(mutated))
    assert rebuilt.truth == mutated.truth
    assert rebuilt.units == mutated.units


def test_fix_is_idempotent_protection():
    """A fixed site cannot be fixed twice (the second call must raise)."""
    workload = make_workload(11)
    site = sorted(workload.truth.vulnerable)[0]
    from repro.errors import WorkloadError

    fixed = fix_site(workload, site)
    moved = SinkSite(site.unit_id, site.statement_index + 1, site.vuln_type)
    with pytest.raises(WorkloadError, match="already safe"):
        fix_site(fixed, moved)
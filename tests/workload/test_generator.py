"""Tests for the synthetic workload generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.oracle import vulnerable_sites
from repro.workload.taxonomy import VulnerabilityType


class TestConfigValidation:
    def test_defaults_valid(self):
        WorkloadConfig()

    @pytest.mark.parametrize("n_units", [0, -5])
    def test_rejects_bad_unit_count(self, n_units):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(n_units=n_units)

    @pytest.mark.parametrize("prevalence", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_bad_prevalence(self, prevalence):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(prevalence=prevalence)

    @pytest.mark.parametrize("sites", [(0, 2), (3, 1)])
    def test_rejects_bad_sites_per_unit(self, sites):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(sites_per_unit=sites)

    @pytest.mark.parametrize("chain", [(0, 3), (5, 2)])
    def test_rejects_bad_chain_range(self, chain):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(chain_length_range=chain)

    def test_rejects_empty_type_mix(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(type_mix={})

    def test_rejects_negative_type_weights(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(type_mix={VulnerabilityType.XSS: -1.0})

    def test_rejects_zero_total_weight(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(type_mix={VulnerabilityType.XSS: 0.0})

    @pytest.mark.parametrize("fraction", [-0.1, 1.1])
    def test_rejects_bad_decoy_fraction(self, fraction):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(decoy_fraction=fraction)


class TestGeneration:
    def test_deterministic_in_seed(self):
        config = WorkloadConfig(n_units=50, seed=9)
        a = generate_workload(config)
        b = generate_workload(config)
        assert a.truth == b.truth
        assert [u.unit_id for u in a.units] == [u.unit_id for u in b.units]
        assert a.profiles == b.profiles

    def test_different_seeds_differ(self):
        a = generate_workload(WorkloadConfig(n_units=50, seed=1))
        b = generate_workload(WorkloadConfig(n_units=50, seed=2))
        assert a.truth.vulnerable != b.truth.vulnerable

    def test_unit_count(self):
        workload = generate_workload(WorkloadConfig(n_units=30, seed=3))
        assert len(workload.units) == 30

    def test_sites_within_configured_range(self):
        workload = generate_workload(
            WorkloadConfig(n_units=40, sites_per_unit=(2, 4), seed=3)
        )
        per_unit: dict[str, int] = {}
        for site in workload.truth.sites:
            per_unit[site.unit_id] = per_unit.get(site.unit_id, 0) + 1
        assert all(2 <= count <= 4 for count in per_unit.values())

    def test_realized_prevalence_near_configured(self):
        workload = generate_workload(
            WorkloadConfig(n_units=800, prevalence=0.2, seed=5)
        )
        assert workload.prevalence == pytest.approx(0.2, abs=0.03)

    def test_ground_truth_matches_oracle(self):
        """The generator's intent and the oracle must agree on every site."""
        workload = generate_workload(WorkloadConfig(n_units=60, seed=11))
        for unit in workload.units:
            oracle_verdicts = vulnerable_sites(unit)
            for site in unit.sink_sites():
                assert (site in oracle_verdicts) == (site in workload.truth.vulnerable)

    def test_profiles_cover_every_site(self):
        workload = generate_workload(WorkloadConfig(n_units=40, seed=7))
        assert set(workload.profiles) == set(workload.truth.sites)

    def test_profile_flags_consistent(self):
        workload = generate_workload(WorkloadConfig(n_units=60, seed=13))
        for site, profile in workload.profiles.items():
            assert profile.vulnerable == (site in workload.truth.vulnerable)
            assert 0.0 <= profile.difficulty <= 1.0
            low, high = workload.config.chain_length_range
            assert low <= profile.chain_length <= high

    def test_type_mix_respected(self):
        workload = generate_workload(
            WorkloadConfig(
                n_units=200,
                type_mix={VulnerabilityType.SQL_INJECTION: 1.0},
                seed=17,
            )
        )
        assert all(
            site.vuln_type is VulnerabilityType.SQL_INJECTION
            for site in workload.truth.sites
        )

    def test_unit_lookup(self):
        workload = generate_workload(WorkloadConfig(n_units=5, seed=1, name="lk"))
        unit = workload.units[2]
        assert workload.unit(unit.unit_id) is unit
        with pytest.raises(ConfigurationError):
            workload.unit("missing")

    def test_decoys_present_among_safe_sites(self):
        workload = generate_workload(
            WorkloadConfig(n_units=200, decoy_fraction=1.0, seed=19)
        )
        safe_profiles = [p for p in workload.profiles.values() if not p.vulnerable]
        assert safe_profiles
        assert all(p.sanitizer_present for p in safe_profiles)

    def test_no_decoys_when_disabled(self):
        workload = generate_workload(
            WorkloadConfig(n_units=100, decoy_fraction=0.0,
                           cross_class_sanitizer_rate=0.0, seed=19)
        )
        assert not any(
            p.sanitizer_present for p in workload.profiles.values()
        )


@settings(max_examples=20, deadline=None)
@given(
    n_units=st.integers(5, 60),
    prevalence=st.floats(0.05, 0.6),
    decoy=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**31),
)
def test_generated_workloads_are_internally_consistent(n_units, prevalence, decoy, seed):
    """Any valid config yields a workload whose truth matches the oracle."""
    workload = generate_workload(
        WorkloadConfig(
            n_units=n_units, prevalence=prevalence, decoy_fraction=decoy, seed=seed
        )
    )
    assert workload.n_sites >= n_units
    for unit in workload.units[:10]:
        oracle = vulnerable_sites(unit)
        for site in unit.sink_sites():
            assert (site in oracle) == (site in workload.truth.vulnerable)

"""Tests for workload mutations (fixes, regressions, chain extension)."""

from __future__ import annotations

import pytest

from repro.bench.campaign import score_report
from repro.errors import WorkloadError
from repro.metrics import definitions as d
from repro.tools.taint_analyzer import TaintAnalyzer
from repro.workload.code_model import SinkSite
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.mutations import break_site, extend_chain, fix_site
from repro.workload.oracle import vulnerable_sites


@pytest.fixture()
def workload():
    return generate_workload(
        WorkloadConfig(n_units=120, prevalence=0.2, decoy_fraction=0.6, seed=37)
    )


def first_vulnerable(workload) -> SinkSite:
    return sorted(workload.truth.vulnerable)[0]


def first_decoy(workload) -> SinkSite:
    for site in sorted(workload.truth.sites):
        profile = workload.profiles[site]
        if not profile.vulnerable and profile.sanitizer_present:
            return site
    raise AssertionError("no decoy in workload")


class TestFixSite:
    def test_fix_makes_site_safe(self, workload):
        site = first_vulnerable(workload)
        fixed = fix_site(workload, site)
        moved = SinkSite(site.unit_id, site.statement_index + 1, site.vuln_type)
        assert not fixed.truth.is_vulnerable(moved)

    def test_fix_reduces_vulnerable_count_by_one(self, workload):
        site = first_vulnerable(workload)
        fixed = fix_site(workload, site)
        assert fixed.truth.n_vulnerable == workload.truth.n_vulnerable - 1
        assert fixed.truth.n_sites == workload.truth.n_sites

    def test_fix_only_touches_target_unit(self, workload):
        site = first_vulnerable(workload)
        fixed = fix_site(workload, site)
        for unit in fixed.units:
            if unit.unit_id != site.unit_id:
                assert unit == workload.unit(unit.unit_id)

    def test_fixed_workload_is_oracle_consistent(self, workload):
        site = first_vulnerable(workload)
        fixed = fix_site(workload, site)
        unit = fixed.unit(site.unit_id)
        oracle = vulnerable_sites(unit)
        for unit_site in unit.sink_sites():
            assert (unit_site in oracle) == fixed.truth.is_vulnerable(unit_site)

    def test_fixing_safe_site_rejected(self, workload):
        safe = next(
            s for s in workload.truth.sites if not workload.truth.is_vulnerable(s)
        )
        with pytest.raises(WorkloadError, match="already safe"):
            fix_site(workload, safe)

    def test_tools_notice_the_fix(self, workload):
        site = first_vulnerable(workload)
        analyzer = TaintAnalyzer()
        before = score_report(analyzer.analyze(workload), workload.truth)
        fixed = fix_site(workload, site)
        after = score_report(analyzer.analyze(fixed), fixed.truth)
        # The exact analyzer stays exact: one fewer true positive to find.
        assert after.tp == before.tp - 1
        assert after.fp == 0 and after.fn == 0

    def test_metrics_respond_to_the_fix(self, workload):
        """End-to-end monotonicity: after fixing one vulnerability, a fixed
        flag-everything tool's precision drops and the workload gets safer."""
        from repro.tools.pattern_scanner import PatternScanner

        site = first_vulnerable(workload)
        scanner = PatternScanner()
        before = score_report(scanner.analyze(workload), workload.truth)
        fixed = fix_site(workload, site)
        after = score_report(scanner.analyze(fixed), fixed.truth)
        assert d.PRECISION.compute(after) < d.PRECISION.compute(before)

    def test_profiles_stay_complete(self, workload):
        fixed = fix_site(workload, first_vulnerable(workload))
        assert set(fixed.profiles) == set(fixed.truth.sites)


class TestBreakSite:
    def test_break_makes_decoy_vulnerable(self, workload):
        site = first_decoy(workload)
        broken = break_site(workload, site)
        assert broken.truth.is_vulnerable(site)
        assert broken.truth.n_vulnerable == workload.truth.n_vulnerable + 1

    def test_break_is_oracle_consistent(self, workload):
        site = first_decoy(workload)
        broken = break_site(workload, site)
        unit = broken.unit(site.unit_id)
        oracle = vulnerable_sites(unit)
        for unit_site in unit.sink_sites():
            assert (unit_site in oracle) == broken.truth.is_vulnerable(unit_site)

    def test_breaking_vulnerable_site_rejected(self, workload):
        with pytest.raises(WorkloadError, match="already vulnerable"):
            break_site(workload, first_vulnerable(workload))

    def test_breaking_clean_site_rejected(self, workload):
        clean = next(
            s
            for s in workload.truth.sites
            if not workload.profiles[s].vulnerable
            and not workload.profiles[s].sanitizer_present
        )
        with pytest.raises(WorkloadError, match="clean"):
            break_site(workload, clean)

    def test_sanitizer_aware_tool_catches_the_regression(self, workload):
        site = first_decoy(workload)
        analyzer = TaintAnalyzer()
        assert site not in analyzer.analyze(workload).flagged_sites
        broken = break_site(workload, site)
        assert site in analyzer.analyze(broken).flagged_sites


class TestExtendChain:
    def test_truth_unchanged(self, workload):
        site = first_vulnerable(workload)
        extended = extend_chain(workload, site, hops=3)
        moved = SinkSite(site.unit_id, site.statement_index + 3, site.vuln_type)
        assert extended.truth.is_vulnerable(moved)
        assert extended.truth.n_vulnerable == workload.truth.n_vulnerable

    def test_depth_budgeted_tool_loses_the_site(self, workload):
        site = first_vulnerable(workload)
        shallow = TaintAnalyzer(max_chain_depth=8)
        assert site in shallow.analyze(workload).flagged_sites
        extended = extend_chain(workload, site, hops=12)
        moved = SinkSite(site.unit_id, site.statement_index + 12, site.vuln_type)
        assert moved not in shallow.analyze(extended).flagged_sites

    def test_unbounded_tool_keeps_the_site(self, workload):
        site = first_vulnerable(workload)
        extended = extend_chain(workload, site, hops=12)
        moved = SinkSite(site.unit_id, site.statement_index + 12, site.vuln_type)
        assert moved in TaintAnalyzer().analyze(extended).flagged_sites

    def test_invalid_hops_rejected(self, workload):
        with pytest.raises(WorkloadError):
            extend_chain(workload, first_vulnerable(workload), hops=0)

    def test_non_sink_site_rejected(self, workload):
        site = first_vulnerable(workload)
        bogus = SinkSite(site.unit_id, 0, site.vuln_type)
        with pytest.raises(WorkloadError, match="sink"):
            extend_chain(workload, bogus)

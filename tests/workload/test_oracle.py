"""Tests for the exact taint oracle on hand-built units."""

from __future__ import annotations

import pytest

from repro.workload.code_model import CodeUnit, SinkSite, Statement, StatementKind
from repro.workload.oracle import is_site_vulnerable, taint_state_after, vulnerable_sites
from repro.workload.taxonomy import VulnerabilityType

SQLI = VulnerabilityType.SQL_INJECTION
XSS = VulnerabilityType.XSS

I = StatementKind.INPUT
C = StatementKind.CONST
A = StatementKind.ASSIGN
CC = StatementKind.CONCAT
SAN = StatementKind.SANITIZE
SK = StatementKind.SINK


def unit(*statements: Statement) -> CodeUnit:
    return CodeUnit(unit_id="u", statements=tuple(statements))


class TestDirectFlows:
    def test_input_to_sink_is_vulnerable(self):
        u = unit(
            Statement(I, target="a"),
            Statement(SK, sources=("a",), vuln_type=SQLI),
        )
        assert vulnerable_sites(u) == {SinkSite("u", 1, SQLI)}

    def test_const_to_sink_is_safe(self):
        u = unit(
            Statement(C, target="a"),
            Statement(SK, sources=("a",), vuln_type=SQLI),
        )
        assert vulnerable_sites(u) == set()

    def test_long_chain_stays_tainted(self):
        statements = [Statement(I, target="v0")]
        for i in range(20):
            statements.append(Statement(A, target=f"v{i+1}", sources=(f"v{i}",)))
        statements.append(Statement(SK, sources=("v20",), vuln_type=XSS))
        u = unit(*statements)
        assert is_site_vulnerable(u, SinkSite("u", 21, XSS))

    def test_overwrite_with_const_clears_taint(self):
        u = unit(
            Statement(I, target="a"),
            Statement(C, target="a"),  # a reassigned to a constant
            Statement(SK, sources=("a",), vuln_type=SQLI),
        )
        assert vulnerable_sites(u) == set()


class TestSanitizers:
    def test_matching_sanitizer_makes_safe(self):
        u = unit(
            Statement(I, target="a"),
            Statement(SAN, target="b", sources=("a",), vuln_type=SQLI),
            Statement(SK, sources=("b",), vuln_type=SQLI),
        )
        assert vulnerable_sites(u) == set()

    def test_cross_class_sanitizer_does_not_help(self):
        u = unit(
            Statement(I, target="a"),
            Statement(SAN, target="b", sources=("a",), vuln_type=XSS),
            Statement(SK, sources=("b",), vuln_type=SQLI),
        )
        assert vulnerable_sites(u) == {SinkSite("u", 2, SQLI)}

    def test_sanitizer_only_affects_its_output(self):
        # The original variable stays dangerous.
        u = unit(
            Statement(I, target="a"),
            Statement(SAN, target="b", sources=("a",), vuln_type=SQLI),
            Statement(SK, sources=("a",), vuln_type=SQLI),
        )
        assert vulnerable_sites(u) == {SinkSite("u", 2, SQLI)}

    def test_two_sanitizers_two_classes(self):
        u = unit(
            Statement(I, target="a"),
            Statement(SAN, target="b", sources=("a",), vuln_type=SQLI),
            Statement(SAN, target="c", sources=("b",), vuln_type=XSS),
            Statement(SK, sources=("c",), vuln_type=SQLI),
            Statement(SK, sources=("c",), vuln_type=XSS),
        )
        assert vulnerable_sites(u) == set()


class TestConcat:
    def test_concat_unions_taint(self):
        u = unit(
            Statement(I, target="a"),
            Statement(C, target="b"),
            Statement(CC, target="c", sources=("b", "a")),
            Statement(SK, sources=("c",), vuln_type=SQLI),
        )
        assert vulnerable_sites(u) == {SinkSite("u", 3, SQLI)}

    def test_concat_of_constants_is_clean(self):
        u = unit(
            Statement(C, target="a"),
            Statement(C, target="b"),
            Statement(CC, target="c", sources=("a", "b")),
            Statement(SK, sources=("c",), vuln_type=SQLI),
        )
        assert vulnerable_sites(u) == set()

    def test_concat_mixes_sanitized_and_raw(self):
        # Sanitized data concatenated with raw input is dangerous again.
        u = unit(
            Statement(I, target="a"),
            Statement(SAN, target="b", sources=("a",), vuln_type=SQLI),
            Statement(I, target="c"),
            Statement(CC, target="d", sources=("b", "c")),
            Statement(SK, sources=("d",), vuln_type=SQLI),
        )
        assert vulnerable_sites(u) == {SinkSite("u", 4, SQLI)}


class TestTaintStates:
    def test_states_one_per_statement(self):
        u = unit(
            Statement(I, target="a"),
            Statement(A, target="b", sources=("a",)),
            Statement(SK, sources=("b",), vuln_type=SQLI),
        )
        states = taint_state_after(u)
        assert len(states) == 3
        assert "a" in states[0]
        assert "b" in states[1]

    def test_input_taints_all_classes(self):
        u = unit(Statement(I, target="a"))
        states = taint_state_after(u)
        assert states[0]["a"] == frozenset(VulnerabilityType)

    def test_is_site_vulnerable_rejects_non_sink(self):
        u = unit(
            Statement(I, target="a"),
            Statement(SK, sources=("a",), vuln_type=SQLI),
        )
        with pytest.raises(ValueError, match="not a sink"):
            is_site_vulnerable(u, SinkSite("u", 0, SQLI))

    def test_multiple_sites_independent(self):
        u = unit(
            Statement(I, target="a"),
            Statement(SK, sources=("a",), vuln_type=SQLI),
            Statement(C, target="b"),
            Statement(SK, sources=("b",), vuln_type=XSS),
        )
        assert vulnerable_sites(u) == {SinkSite("u", 1, SQLI)}

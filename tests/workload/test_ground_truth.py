"""Tests for ground-truth bookkeeping."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workload.code_model import SinkSite
from repro.workload.ground_truth import GroundTruth
from repro.workload.taxonomy import VulnerabilityType

SQLI = VulnerabilityType.SQL_INJECTION
XSS = VulnerabilityType.XSS

S1 = SinkSite("u1", 1, SQLI)
S2 = SinkSite("u1", 3, XSS)
S3 = SinkSite("u2", 0, SQLI)


class TestConstruction:
    def test_from_sites(self):
        truth = GroundTruth.from_sites([S1, S2, S3], [S1])
        assert truth.n_sites == 3
        assert truth.n_vulnerable == 1

    def test_duplicate_sites_rejected(self):
        with pytest.raises(WorkloadError):
            GroundTruth.from_sites([S1, S1], [])

    def test_stray_vulnerable_rejected(self):
        with pytest.raises(WorkloadError):
            GroundTruth.from_sites([S1], [S2])

    def test_empty_truth_allowed(self):
        truth = GroundTruth.from_sites([], [])
        assert truth.n_sites == 0


class TestQueries:
    def test_is_vulnerable(self):
        truth = GroundTruth.from_sites([S1, S2], [S2])
        assert truth.is_vulnerable(S2)
        assert not truth.is_vulnerable(S1)

    def test_is_vulnerable_unknown_site(self):
        truth = GroundTruth.from_sites([S1], [])
        with pytest.raises(WorkloadError):
            truth.is_vulnerable(S3)

    def test_prevalence(self):
        truth = GroundTruth.from_sites([S1, S2, S3], [S1, S3])
        assert truth.prevalence == pytest.approx(2 / 3)

    def test_prevalence_of_empty_raises(self):
        with pytest.raises(WorkloadError):
            _ = GroundTruth.from_sites([], []).prevalence

    def test_by_type(self):
        truth = GroundTruth.from_sites([S1, S2, S3], [S1, S2])
        sqli_only = truth.by_type(SQLI)
        assert set(sqli_only.sites) == {S1, S3}
        assert sqli_only.vulnerable == {S1}

    def test_by_type_empty_class(self):
        truth = GroundTruth.from_sites([S1], [S1])
        none = truth.by_type(VulnerabilityType.LDAP_INJECTION)
        assert none.n_sites == 0

"""Tests for the mini-IR code model."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workload.code_model import CodeUnit, SinkSite, Statement, StatementKind
from repro.workload.taxonomy import VulnerabilityType

SQLI = VulnerabilityType.SQL_INJECTION
XSS = VulnerabilityType.XSS


def simple_unit() -> CodeUnit:
    return CodeUnit(
        unit_id="u1",
        statements=(
            Statement(StatementKind.INPUT, target="a"),
            Statement(StatementKind.ASSIGN, target="b", sources=("a",)),
            Statement(StatementKind.SINK, sources=("b",), vuln_type=SQLI),
        ),
    )


class TestStatementValidation:
    def test_input_defines_target(self):
        Statement(StatementKind.INPUT, target="x")

    def test_input_must_not_read(self):
        with pytest.raises(WorkloadError):
            Statement(StatementKind.INPUT, target="x", sources=("y",))

    def test_input_needs_target(self):
        with pytest.raises(WorkloadError):
            Statement(StatementKind.INPUT)

    def test_const_shape(self):
        Statement(StatementKind.CONST, target="x")
        with pytest.raises(WorkloadError):
            Statement(StatementKind.CONST, target="x", sources=("y",))

    def test_assign_needs_one_source(self):
        Statement(StatementKind.ASSIGN, target="x", sources=("y",))
        with pytest.raises(WorkloadError):
            Statement(StatementKind.ASSIGN, target="x", sources=())
        with pytest.raises(WorkloadError):
            Statement(StatementKind.ASSIGN, target="x", sources=("y", "z"))

    def test_concat_needs_sources(self):
        Statement(StatementKind.CONCAT, target="x", sources=("y", "z"))
        with pytest.raises(WorkloadError):
            Statement(StatementKind.CONCAT, target="x", sources=())

    def test_sanitize_needs_vuln_type(self):
        Statement(StatementKind.SANITIZE, target="x", sources=("y",), vuln_type=SQLI)
        with pytest.raises(WorkloadError):
            Statement(StatementKind.SANITIZE, target="x", sources=("y",))

    def test_sink_reads_exactly_one(self):
        Statement(StatementKind.SINK, sources=("y",), vuln_type=SQLI)
        with pytest.raises(WorkloadError):
            Statement(StatementKind.SINK, sources=("y", "z"), vuln_type=SQLI)

    def test_sink_defines_nothing(self):
        with pytest.raises(WorkloadError):
            Statement(StatementKind.SINK, target="x", sources=("y",), vuln_type=SQLI)

    def test_sink_needs_vuln_type(self):
        with pytest.raises(WorkloadError):
            Statement(StatementKind.SINK, sources=("y",))


class TestCodeUnit:
    def test_valid_unit(self):
        unit = simple_unit()
        assert len(unit) == 3

    def test_empty_unit_id_rejected(self):
        with pytest.raises(WorkloadError):
            CodeUnit(unit_id="", statements=())

    def test_use_before_definition_rejected(self):
        with pytest.raises(WorkloadError, match="used before definition"):
            CodeUnit(
                unit_id="u",
                statements=(
                    Statement(StatementKind.ASSIGN, target="b", sources=("a",)),
                ),
            )

    def test_sink_sites(self):
        unit = CodeUnit(
            unit_id="u2",
            statements=(
                Statement(StatementKind.INPUT, target="a"),
                Statement(StatementKind.SINK, sources=("a",), vuln_type=SQLI),
                Statement(StatementKind.SINK, sources=("a",), vuln_type=XSS),
            ),
        )
        sites = unit.sink_sites()
        assert sites == [SinkSite("u2", 1, SQLI), SinkSite("u2", 2, XSS)]
        assert sites[0].vuln_type is SQLI
        assert sites[1].vuln_type is XSS

    def test_no_sinks(self):
        unit = CodeUnit(
            unit_id="u3",
            statements=(Statement(StatementKind.INPUT, target="a"),),
        )
        assert unit.sink_sites() == []

    def test_statement_at_bounds(self):
        unit = simple_unit()
        assert unit.statement_at(0).kind is StatementKind.INPUT
        with pytest.raises(WorkloadError):
            unit.statement_at(3)
        with pytest.raises(WorkloadError):
            unit.statement_at(-1)


class TestSinkSite:
    def test_identity_ignores_vuln_type(self):
        # Sites are identified by (unit, statement); the type is metadata.
        assert SinkSite("u", 1, SQLI) == SinkSite("u", 1, XSS)

    def test_ordering(self):
        a = SinkSite("u1", 1, SQLI)
        b = SinkSite("u1", 2, SQLI)
        c = SinkSite("u2", 0, SQLI)
        assert sorted([c, b, a]) == [a, b, c]

    def test_hashable(self):
        assert len({SinkSite("u", 1, SQLI), SinkSite("u", 1, SQLI)}) == 1

"""Tests for the ecosystem registry and its bit-parity contract.

The load-bearing invariant: the ``web-services`` profile IS the historical
default.  Workloads, shard plans and shard seeds produced through the
registry must be indistinguishable from the pre-registry code paths, so
every previously committed number stays valid.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.workload.ecosystems import (
    DEFAULT_ECOSYSTEM,
    EcosystemProfile,
    all_ecosystems,
    ecosystem_names,
    get_ecosystem,
)
from repro.persist import payload_digest, workload_to_dict
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.sharded import plan_shards, shard_seed


def _digest(workload) -> str:
    return payload_digest(workload_to_dict(workload))


class TestRegistry:
    def test_at_least_four_ecosystems(self):
        assert len(ecosystem_names()) >= 4

    def test_default_is_registered_and_listed_first(self):
        names = ecosystem_names()
        assert DEFAULT_ECOSYSTEM == "web-services"
        assert names[0] == DEFAULT_ECOSYSTEM

    def test_expected_profiles_present(self):
        names = set(ecosystem_names())
        assert {"web-services", "android", "npm-deps", "iac"} <= names

    def test_get_roundtrip(self):
        for name in ecosystem_names():
            assert get_ecosystem(name).name == name

    def test_unknown_name_lists_known_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_ecosystem("cobol-mainframe")
        message = str(excinfo.value)
        assert "unknown ecosystem 'cobol-mainframe'" in message
        for name in ecosystem_names():
            assert name in message

    def test_all_ecosystems_matches_names(self):
        assert [p.name for p in all_ecosystems()] == ecosystem_names()


class TestProfileValidation:
    def _profile(self, **overrides):
        base = dataclasses.asdict(get_ecosystem(DEFAULT_ECOSYSTEM))
        base.update(overrides, name="candidate")
        return EcosystemProfile(**base)

    def test_valid_profile_constructs(self):
        assert self._profile().name == "candidate"

    def test_prevalence_bounds(self):
        with pytest.raises(ConfigurationError):
            self._profile(prevalence=0.0)
        with pytest.raises(ConfigurationError):
            self._profile(prevalence=1.5)

    def test_decoy_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            self._profile(decoy_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            self._profile(decoy_fraction=1.1)

    def test_dependency_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            self._profile(dependency_fraction=-0.01)
        with pytest.raises(ConfigurationError):
            self._profile(dependency_fraction=1.01)

    def test_site_and_chain_ranges(self):
        with pytest.raises(ConfigurationError):
            self._profile(sites_per_unit=(3, 1))
        with pytest.raises(ConfigurationError):
            self._profile(chain_length_range=(0, 4))

    def test_empty_name_rejected(self):
        base = dataclasses.asdict(get_ecosystem(DEFAULT_ECOSYSTEM))
        base["name"] = ""
        with pytest.raises(ConfigurationError):
            EcosystemProfile(**base)

    def test_empty_tool_families_rejected(self):
        with pytest.raises(ConfigurationError):
            self._profile(tool_families=())


class TestDefaultParity:
    """web-services through the registry == the historical hard-coded path."""

    def test_workload_config_matches_defaults_field_by_field(self):
        profile = get_ecosystem(DEFAULT_ECOSYSTEM)
        via_registry = profile.workload_config(n_units=500, seed=0, name="synthetic")
        legacy = WorkloadConfig()
        assert via_registry == legacy

    def test_generated_workload_is_bit_identical(self):
        profile = get_ecosystem(DEFAULT_ECOSYSTEM)
        config = profile.workload_config(n_units=60, seed=2015, name="parity")
        legacy = WorkloadConfig(n_units=60, seed=2015, name="parity")
        a = generate_workload(config)
        b = generate_workload(legacy)
        assert _digest(a) == _digest(b)

    def test_monolithic_reference_sites_are_identical(self):
        profile = get_ecosystem(DEFAULT_ECOSYSTEM)
        config = profile.workload_config(n_units=50, seed=2015, name="reference")

        def signature(workload):
            return [
                (
                    site.unit_id,
                    site.statement_index,
                    site.vuln_type.name,
                    workload.truth.is_vulnerable(site),
                )
                for unit in workload.units
                for site in unit.sink_sites()
            ]

        via_registry = generate_workload(config)
        legacy = generate_workload(
            WorkloadConfig(n_units=50, seed=2015, name="reference")
        )
        assert signature(via_registry) == signature(legacy)

    def test_sharded_plan_parity(self):
        default_plan = plan_shards(scale=40, shard_size=15, seed=2015)
        eco_plan = plan_shards(
            scale=40, shard_size=15, seed=2015, ecosystem=DEFAULT_ECOSYSTEM
        )
        assert [s.seed for s in default_plan] == [s.seed for s in eco_plan]
        assert [s.name for s in default_plan] == [s.name for s in eco_plan]
        assert default_plan.ecosystem == eco_plan.ecosystem == DEFAULT_ECOSYSTEM

    def test_shard_seed_legacy_derivation_unchanged(self):
        # The committed value from before the ecosystem refactor.
        assert shard_seed(0, 0) == 5105162613023424296
        assert shard_seed(0, 0, ecosystem=DEFAULT_ECOSYSTEM) == shard_seed(0, 0)

    def test_known_plan_seeds_unchanged(self):
        plan = plan_shards(scale=40, shard_size=15, seed=2015)
        assert [s.seed for s in plan] == [
            1618721210305684906,
            7157056137290320331,
            6473460885196618996,
        ]


class TestEcosystemIsolation:
    """Non-default ecosystems draw from namespaced, independent streams."""

    def test_shard_seeds_differ_by_ecosystem(self):
        default_seed = shard_seed(7, 0)
        npm_seed = shard_seed(7, 0, ecosystem="npm-deps")
        iac_seed = shard_seed(7, 0, ecosystem="iac")
        assert len({default_seed, npm_seed, iac_seed}) == 3

    def test_plan_names_carry_the_ecosystem(self):
        plan = plan_shards(scale=30, shard_size=15, seed=1, ecosystem="npm-deps")
        assert all(s.name.startswith("corpus-npm-deps") for s in plan)
        assert plan.ecosystem == "npm-deps"

    def test_plan_rejects_base_plus_ecosystem(self):
        base = WorkloadConfig(n_units=10, seed=1, name="x")
        with pytest.raises(ConfigurationError):
            plan_shards(scale=10, shard_size=5, base=base, ecosystem="npm-deps")

    def test_ecosystem_workloads_differ_from_default(self):
        default = generate_workload(
            get_ecosystem(DEFAULT_ECOSYSTEM).workload_config(n_units=40, seed=3)
        )
        android = generate_workload(
            get_ecosystem("android").workload_config(n_units=40, seed=3)
        )
        assert _digest(default) != _digest(android)

    def test_workload_records_its_ecosystem(self):
        workload = generate_workload(
            get_ecosystem("iac").workload_config(n_units=10, seed=5)
        )
        assert workload.ecosystem == "iac"
        assert workload.config.ecosystem == "iac"

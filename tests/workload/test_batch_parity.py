"""Scalar-vs-batch parity for the columnar workload generator.

The columnar batch path (``repro.workload.columnar``) promises to be
**byte-identical** to the scalar reference generator — same
``derive_seed`` streams, same draw-for-draw RNG consumption, same
statement objects, ground truth and profiles — for every config it
supports.  In the style of ``tests/metrics/test_batch_parity.py``, these
tests sweep every registered ecosystem, a hand-picked set of degenerate
configs (zero-span integer draws, collapsed type mixes, threshold
extremes), and a fixed-seed randomized config sweep, asserting exact
equality.  Shard-level tests cover non-dividing shard sizes and isolated
single-shard regeneration, and pin the historical seed derivations.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.persist import payload_digest, workload_to_dict
from repro.tools.sca_matcher import dependency_mask, is_dependency_unit
from repro.workload.code_model import StatementKind
from repro.workload.columnar import (
    MAX_CHAIN,
    decode_columns,
    generate_workload_batch,
    materialize_workload,
    supports_batch,
)
from repro.workload.ecosystems import ecosystem_names, get_ecosystem
from repro.workload.generator import (
    WorkloadConfig,
    generate_workload,
    generate_workload_scalar,
)
from repro.workload.oracle import vulnerable_sites
from repro.workload.sharded import plan_shards, shard_seed
from repro.workload.taxonomy import VulnerabilityType

ECOSYSTEMS = ecosystem_names()


def assert_workloads_identical(scalar, batch) -> None:
    """Element-by-element equality with readable failure locations."""
    assert scalar.name == batch.name
    assert scalar.config == batch.config
    assert len(scalar.units) == len(batch.units)
    for unit_s, unit_b in zip(scalar.units, batch.units):
        assert unit_s.unit_id == unit_b.unit_id
        assert unit_s.statements == unit_b.statements, unit_s.unit_id
    assert scalar.truth.sites == batch.truth.sites
    assert scalar.truth.vulnerable == batch.truth.vulnerable
    assert scalar.profiles == batch.profiles
    assert payload_digest(workload_to_dict(scalar)) == payload_digest(
        workload_to_dict(batch)
    )


class TestEcosystemParity:
    @pytest.mark.parametrize("name", ECOSYSTEMS)
    def test_batch_matches_scalar(self, name):
        config = get_ecosystem(name).workload_config(
            n_units=300, seed=20150615, name=f"parity-{name}"
        )
        assert supports_batch(config)
        assert_workloads_identical(
            generate_workload_scalar(config), generate_workload_batch(config)
        )

    @pytest.mark.parametrize("name", ECOSYSTEMS)
    def test_dispatch_routes_through_batch(self, name):
        """``generate_workload`` output equals both paths for every
        registered ecosystem — the dispatch is a pure wall-clock change."""
        config = get_ecosystem(name).workload_config(
            n_units=60, seed=7, name=f"dispatch-{name}"
        )
        digest = payload_digest(workload_to_dict(generate_workload(config)))
        assert digest == payload_digest(
            workload_to_dict(generate_workload_scalar(config))
        )

    @pytest.mark.parametrize("name", ECOSYSTEMS)
    def test_batch_agrees_with_real_oracle(self, name):
        """The vectorized labeling pass equals the exact taint oracle."""
        config = get_ecosystem(name).workload_config(
            n_units=40, seed=11, name=f"oracle-{name}"
        )
        workload = generate_workload_batch(config)
        for unit in workload.units:
            oracle = vulnerable_sites(unit)
            for site in unit.sink_sites():
                assert (site in oracle) == (site in workload.truth.vulnerable)


class TestDegenerateConfigs:
    """Configs that collapse one of the decoder's draw kinds."""

    CONFIGS = [
        # Zero-span integer draws consume nothing from the stream.
        WorkloadConfig(n_units=50, sites_per_unit=(2, 2), seed=3, name="deg-sites"),
        WorkloadConfig(n_units=50, chain_length_range=(3, 3), seed=4, name="deg-chain"),
        # Single-type and zero-weight mixes exercise the cdf plateaus.
        WorkloadConfig(
            n_units=50,
            type_mix={VulnerabilityType.XSS: 1.0},
            seed=5,
            name="deg-onetype",
        ),
        WorkloadConfig(
            n_units=50,
            type_mix={
                VulnerabilityType.SQL_INJECTION: 0.0,
                VulnerabilityType.XSS: 2.0,
                VulnerabilityType.COMMAND_INJECTION: 1.0,
            },
            seed=6,
            name="deg-zeroweight",
        ),
        # Threshold extremes: decoy/cross draws always or never fire.
        WorkloadConfig(
            n_units=50,
            prevalence=0.999,
            decoy_fraction=1.0,
            cross_class_sanitizer_rate=1.0,
            seed=7,
            name="deg-high",
        ),
        WorkloadConfig(
            n_units=50,
            prevalence=0.001,
            decoy_fraction=0.0,
            cross_class_sanitizer_rate=0.0,
            seed=8,
            name="deg-low",
        ),
        # The longest chain the mask columns can carry.
        WorkloadConfig(
            n_units=20,
            chain_length_range=(1, MAX_CHAIN),
            seed=9,
            name="deg-maxchain",
        ),
        WorkloadConfig(n_units=1, seed=10, name="deg-oneunit"),
    ]

    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
    def test_parity(self, config):
        assert supports_batch(config)
        assert_workloads_identical(
            generate_workload_scalar(config), generate_workload_batch(config)
        )

    def test_unsupported_config_falls_back_to_scalar(self):
        config = WorkloadConfig(
            n_units=4, chain_length_range=(1, MAX_CHAIN + 16), seed=2, name="deg-long"
        )
        assert not supports_batch(config)
        with pytest.raises(ValueError):
            decode_columns(config)
        assert_workloads_identical(
            generate_workload_scalar(config), generate_workload(config)
        )


class TestRandomizedParity:
    """A fixed-seed sweep over the config space (failures reproduce)."""

    def test_random_config_sweep(self):
        import numpy as np

        rng = np.random.default_rng(20150615)
        types = list(VulnerabilityType)
        for case in range(25):
            s_lo = int(rng.integers(1, 4))
            c_lo = int(rng.integers(1, 5))
            mix_size = int(rng.integers(1, len(types) + 1))
            chosen = [types[i] for i in rng.choice(len(types), mix_size, replace=False)]
            config = WorkloadConfig(
                n_units=int(rng.integers(1, 60)),
                sites_per_unit=(s_lo, s_lo + int(rng.integers(0, 4))),
                prevalence=float(rng.uniform(0.01, 0.99)),
                decoy_fraction=float(rng.uniform(0.0, 1.0)),
                chain_length_range=(c_lo, c_lo + int(rng.integers(0, 8))),
                cross_class_sanitizer_rate=float(rng.uniform(0.0, 1.0)),
                type_mix={t: float(rng.uniform(0.1, 5.0)) for t in chosen},
                seed=int(rng.integers(0, 2**31)),
                name=f"fuzz-{case}",
            )
            assert_workloads_identical(
                generate_workload_scalar(config), generate_workload_batch(config)
            )


class TestShardParity:
    def test_shard_seed_anchor_unchanged(self):
        """The historical shard-seed derivation is untouched."""
        assert shard_seed(0, 0) == 5105162613023424296

    def test_non_dividing_shard_size(self):
        """Ragged plans: every shard, including the short tail, is
        bit-identical between the batch path and the scalar reference."""
        plan = plan_shards(scale=25, shard_size=10, seed=0)
        assert plan.n_shards == 3
        assert plan.units_in(2) == 5
        for index in range(plan.n_shards):
            assert_workloads_identical(
                generate_workload_scalar(plan.config_for(index)),
                plan.generate(index),
            )

    @pytest.mark.parametrize("name", ECOSYSTEMS)
    def test_ecosystem_shards(self, name):
        plan = plan_shards(scale=22, shard_size=8, seed=1, ecosystem=name)
        for index in range(plan.n_shards):
            assert_workloads_identical(
                generate_workload_scalar(plan.config_for(index)),
                plan.generate(index),
            )

    def test_isolated_single_shard_regeneration(self):
        """A shard regenerated alone (fresh plan, fresh caches) equals the
        same shard generated in sweep order."""
        plan = plan_shards(scale=30, shard_size=10, seed=5)
        in_order = [plan.generate(index) for index in range(plan.n_shards)]
        alone = plan_shards(scale=30, shard_size=10, seed=5).generate(1)
        assert_workloads_identical(in_order[1], alone)

    def test_shard_digests_match_scalar(self):
        plan = plan_shards(scale=12, shard_size=5, seed=9)
        for index in range(plan.n_shards):
            assert payload_digest(
                workload_to_dict(plan.generate(index))
            ) == payload_digest(
                workload_to_dict(generate_workload_scalar(plan.config_for(index)))
            )


class TestColumns:
    """Structural invariants of the columnar record itself."""

    def test_layout_matches_materialized_units(self):
        config = WorkloadConfig(n_units=80, seed=13, name="cols")
        columns = decode_columns(config)
        workload = materialize_workload(columns)
        assert columns.n_units == len(workload.units)
        assert columns.n_sites == workload.n_sites
        offset = 0
        for unit_index, unit in enumerate(workload.units):
            n_sites = int(columns.unit_n_sites[unit_index])
            assert int(columns.unit_site_offset[unit_index]) == offset
            sinks = unit.sink_sites()
            assert len(sinks) == n_sites
            for local, site in enumerate(sinks):
                row = offset + local
                assert int(columns.site_unit[row]) == unit_index
                assert int(columns.site_in_unit[row]) == local
                assert int(columns.site_sink_index[row]) == site.statement_index
                assert columns.type_order[int(columns.site_type[row])] is site.vuln_type
            total = sum(int(columns.site_statements[offset + i]) for i in range(n_sites))
            assert total == len(unit.statements)
            offset += n_sites

    def test_vulnerable_column_equals_truth(self):
        config = WorkloadConfig(n_units=60, seed=14, name="cols-truth")
        columns = decode_columns(config)
        workload = materialize_workload(columns)
        flags = columns.site_vulnerable.tolist()
        for row, site in enumerate(workload.truth.sites):
            assert flags[row] == (site in workload.truth.vulnerable)

    def test_difficulty_column_equals_profiles(self):
        config = WorkloadConfig(n_units=60, seed=15, name="cols-diff")
        columns = decode_columns(config)
        workload = materialize_workload(columns)
        values = columns.site_difficulty.tolist()
        for row, site in enumerate(workload.truth.sites):
            assert values[row] == workload.profiles[site].difficulty

    def test_dependency_mask_matches_scalar_hash(self):
        config = WorkloadConfig(n_units=40, seed=16, name="cols-dep")
        columns = decode_columns(config)
        mask = columns.dependency_mask(0.25)
        ids = columns.unit_ids()
        assert mask.shape == (40,)
        for unit_id, flag in zip(ids, mask.tolist()):
            assert flag == is_dependency_unit(unit_id, 0.25)
        assert dependency_mask(ids, 0.25).tolist() == mask.tolist()

    def test_profiles_and_statements_are_value_equal_across_paths(self):
        """Interned objects compare equal to freshly validated ones (the
        trusted constructors change allocation, never value)."""
        config = WorkloadConfig(n_units=30, seed=17, name="cols-intern")
        batch = generate_workload_batch(config)
        scalar = generate_workload_scalar(config)
        for unit_b, unit_s in zip(batch.units, scalar.units):
            for stmt_b, stmt_s in zip(unit_b.statements, unit_s.statements):
                assert stmt_b == stmt_s
                assert hash(stmt_b) == hash(stmt_s)
                assert stmt_b.kind in StatementKind
        assert batch.profiles == scalar.profiles
        # A mutated copy of the config regenerates identically through
        # dataclasses.replace (no hidden state rides on the config).
        again = generate_workload_batch(dataclasses.replace(config))
        assert payload_digest(workload_to_dict(again)) == payload_digest(
            workload_to_dict(batch)
        )

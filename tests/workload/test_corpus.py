"""Tests for the hand-written workload corpus."""

from __future__ import annotations

import pytest

from repro.bench.campaign import run_campaign, score_report
from repro.tools.pattern_scanner import PatternScanner
from repro.tools.suite import reference_suite
from repro.tools.taint_analyzer import TaintAnalyzer
from repro.workload.code_model import SinkSite
from repro.workload.corpus import corpus_units, corpus_workload
from repro.workload.oracle import vulnerable_sites
from repro.workload.taxonomy import VulnerabilityType


@pytest.fixture(scope="module")
def corpus():
    return corpus_workload()


class TestCorpusContent:
    def test_twenty_units(self):
        assert len(corpus_units()) == 20

    def test_unique_unit_ids(self):
        ids = [u.unit_id for u in corpus_units()]
        assert len(set(ids)) == len(ids)

    def test_site_and_vulnerability_counts(self, corpus):
        assert corpus.n_sites == 23
        assert corpus.truth.n_vulnerable == 12

    def test_documented_vulnerable_units(self, corpus):
        vulnerable_units = {site.unit_id for site in corpus.truth.vulnerable}
        assert vulnerable_units == {
            "login-naive",
            "search-echo",
            "download-wrong-variable",
            "report-deep-pipeline",
            "backup-raw-command",
            "ldap-partial-fix",
            "xpath-wrong-sanitizer",
            "audit-logger",
            "profile-tooltip",
            "search-paginated",
            "webhook-healthcheck",
            "invoice-xpath",
        }

    def test_documented_safe_units(self, corpus):
        safe_units = {
            site.unit_id
            for site in corpus.truth.sites
            if site not in corpus.truth.vulnerable
        }
        assert {"login-parameterized", "download-checked", "ping-escaped",
                "status-static", "csv-export-static", "avatar-upload",
                "group-lookup", "health-endpoint"} <= safe_units

    def test_covers_all_vulnerability_classes(self, corpus):
        covered = {site.vuln_type for site in corpus.truth.sites}
        assert covered == set(VulnerabilityType)

    def test_truth_matches_oracle(self, corpus):
        for unit in corpus.units:
            oracle = vulnerable_sites(unit)
            for site in unit.sink_sites():
                assert (site in oracle) == (site in corpus.truth.vulnerable)

    def test_profiles_complete_and_consistent(self, corpus):
        assert set(corpus.profiles) == set(corpus.truth.sites)
        for site, profile in corpus.profiles.items():
            assert profile.vulnerable == (site in corpus.truth.vulnerable)
            assert 0.0 <= profile.difficulty <= 1.0
            assert profile.chain_length >= 1


class TestCorpusStories:
    """Each unit encodes a specific analysis trap; verify the traps spring."""

    def test_search_echo_is_the_cross_class_trap(self, corpus):
        sqli = SinkSite("search-echo", 4, VulnerabilityType.SQL_INJECTION)
        xss = SinkSite("search-echo", 7, VulnerabilityType.XSS)
        assert not corpus.truth.is_vulnerable(sqli)
        assert corpus.truth.is_vulnerable(xss)

    def test_wrong_variable_download_fools_no_flow_tools(self, corpus):
        # The sanitizer-respecting pattern scanner is fooled (sanitizer is
        # textually above the sink), the taint analyzer is not.
        site = SinkSite("download-wrong-variable", 2, VulnerabilityType.PATH_TRAVERSAL)
        scanner = PatternScanner(respect_sanitizers=True).analyze(corpus)
        assert site not in scanner.flagged_sites  # false negative!
        analyzer = TaintAnalyzer().analyze(corpus)
        assert site in analyzer.flagged_sites

    def test_deep_pipeline_defeats_shallow_analysis(self, corpus):
        site = SinkSite("report-deep-pipeline", 8, VulnerabilityType.XSS)
        shallow = TaintAnalyzer(max_chain_depth=3).analyze(corpus)
        assert site not in shallow.flagged_sites
        unlimited = TaintAnalyzer().analyze(corpus)
        assert site in unlimited.flagged_sites

    def test_audit_logger_defeats_first_operand_analysis(self, corpus):
        site = SinkSite("audit-logger", 4, VulnerabilityType.COMMAND_INJECTION)
        lossy = TaintAnalyzer(concat_taint_loss=True).analyze(corpus)
        assert site not in lossy.flagged_sites
        sound = TaintAnalyzer().analyze(corpus)
        assert site in sound.flagged_sites

    def test_profile_tooltip_unrefactoring_bug(self, corpus):
        # The escaped sink is safe, the raw-tooltip sink is not.
        escaped = SinkSite("profile-tooltip", 2, VulnerabilityType.XSS)
        tooltip = SinkSite("profile-tooltip", 4, VulnerabilityType.XSS)
        assert not corpus.truth.is_vulnerable(escaped)
        assert corpus.truth.is_vulnerable(tooltip)

    def test_paginated_search_partial_fix(self, corpus):
        # Sanitizing the page size does not save the raw sort column.
        site = SinkSite("search-paginated", 5, VulnerabilityType.SQL_INJECTION)
        assert corpus.truth.is_vulnerable(site)
        # ...and a sanitizer-respecting syntactic scanner is fooled into
        # silence by the visible same-class sanitizer above the sink.
        scanner = PatternScanner(respect_sanitizers=True).analyze(corpus)
        assert site not in scanner.flagged_sites

    def test_webhook_mixed_concat_defeats_first_operand_analysis(self, corpus):
        site = SinkSite("webhook-healthcheck", 5, VulnerabilityType.COMMAND_INJECTION)
        # Tainted path arrives through the third concat operand.
        lossy = TaintAnalyzer(concat_taint_loss=True).analyze(corpus)
        assert site not in lossy.flagged_sites
        sound = TaintAnalyzer().analyze(corpus)
        assert site in sound.flagged_sites

    def test_invoice_pipeline_is_the_second_depth_stressor(self, corpus):
        site = SinkSite("invoice-xpath", 8, VulnerabilityType.XPATH_INJECTION)
        shallow = TaintAnalyzer(max_chain_depth=4).analyze(corpus)
        assert site not in shallow.flagged_sites
        assert site in TaintAnalyzer().analyze(corpus).flagged_sites

    def test_avatar_upload_post_sanitizer_hops_stay_safe(self, corpus):
        site = SinkSite("avatar-upload", 6, VulnerabilityType.PATH_TRAVERSAL)
        assert not corpus.truth.is_vulnerable(site)
        # Even the sanitizer-ignoring analyzer flags it (it sees taint),
        # which is exactly the decoy behaviour the unit encodes.
        blind = TaintAnalyzer(trust_sanitizers=False).analyze(corpus)
        assert site in blind.flagged_sites

    def test_health_endpoint_never_flagged_by_anyone(self, corpus):
        site = SinkSite("health-endpoint", 1, VulnerabilityType.XSS)
        for tool in (
            PatternScanner(),
            TaintAnalyzer(trust_sanitizers=False),
        ):
            assert site not in tool.analyze(corpus).flagged_sites

    def test_unlimited_taint_analyzer_is_exact_on_corpus(self, corpus):
        cm = score_report(TaintAnalyzer().analyze(corpus), corpus.truth)
        assert cm.fp == 0
        assert cm.fn == 0

    def test_reference_suite_runs_on_corpus(self, corpus):
        campaign = run_campaign(reference_suite(seed=5), corpus)
        assert len(campaign.results) == 8
        for result in campaign.results:
            assert result.confusion.total == corpus.n_sites

"""Tests for JSON persistence of benchmark artifacts."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ArtifactCorruptError, ConfigurationError, PersistError
from repro.persist import (
    campaign_from_dict,
    campaign_to_dict,
    load_cache_entry,
    load_json,
    payload_digest,
    report_from_dict,
    report_to_dict,
    save_cache_entry,
    save_json,
    workload_from_dict,
    workload_to_dict,
)
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.corpus import corpus_workload


class TestWorkloadRoundTrip:
    def test_generated_workload(self, small_workload):
        rebuilt = workload_from_dict(workload_to_dict(small_workload))
        assert rebuilt.name == small_workload.name
        assert rebuilt.units == small_workload.units
        assert rebuilt.truth == small_workload.truth
        assert rebuilt.profiles == small_workload.profiles
        assert rebuilt.config == small_workload.config

    def test_corpus_workload(self):
        corpus = corpus_workload()
        rebuilt = workload_from_dict(workload_to_dict(corpus))
        assert rebuilt.truth == corpus.truth
        assert rebuilt.units == corpus.units

    def test_schema_mismatch_rejected(self, small_workload):
        payload = workload_to_dict(small_workload)
        payload["schema"] = "repro/workload@99"
        with pytest.raises(ConfigurationError, match="schema"):
            workload_from_dict(payload)

    def test_payload_is_json_safe(self, small_workload):
        import json

        json.dumps(workload_to_dict(small_workload))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31), n_units=st.integers(5, 40))
    def test_any_generated_workload_round_trips(self, seed, n_units):
        workload = generate_workload(WorkloadConfig(n_units=n_units, seed=seed))
        rebuilt = workload_from_dict(workload_to_dict(workload))
        assert rebuilt == workload


class TestReportAndCampaignRoundTrip:
    def test_report(self, reference_campaign):
        report = reference_campaign.results[0].report
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt == report

    def test_campaign(self, reference_campaign):
        rebuilt = campaign_from_dict(campaign_to_dict(reference_campaign))
        assert rebuilt == reference_campaign

    def test_campaign_reanalysis_after_round_trip(
        self, reference_campaign, small_workload
    ):
        """The archived campaign supports the same downstream analyses."""
        from repro.bench.pertype import campaign_breakdowns
        from repro.metrics import definitions as d

        rebuilt = campaign_from_dict(campaign_to_dict(reference_campaign))
        assert rebuilt.metric_values(d.MCC) == reference_campaign.metric_values(d.MCC)
        breakdowns = campaign_breakdowns(rebuilt, small_workload.truth)
        assert set(breakdowns) == set(rebuilt.tool_names)

    def test_report_schema_checked(self, reference_campaign):
        payload = report_to_dict(reference_campaign.results[0].report)
        payload["schema"] = "nope"
        with pytest.raises(ConfigurationError):
            report_from_dict(payload)

    def test_campaign_schema_checked(self, reference_campaign):
        payload = campaign_to_dict(reference_campaign)
        del payload["schema"]
        with pytest.raises(ConfigurationError):
            campaign_from_dict(payload)


class TestFiles:
    def test_save_and_load(self, tmp_path, reference_campaign):
        path = tmp_path / "campaign.json"
        save_json(campaign_to_dict(reference_campaign), path)
        rebuilt = campaign_from_dict(load_json(path))
        assert rebuilt == reference_campaign

    def test_save_is_stable(self, tmp_path, small_workload):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        save_json(workload_to_dict(small_workload), a)
        save_json(workload_to_dict(small_workload), b)
        assert a.read_text() == b.read_text()


class TestCorruptFiles:
    def test_truncated_json_raises_persist_error_with_path(self, tmp_path):
        path = tmp_path / "truncated.json"
        save_json({"a": list(range(100))}, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(PersistError, match="truncated.json") as exc_info:
            load_json(path)
        assert exc_info.value.path == str(path)

    def test_garbage_json_raises_persist_error(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_bytes(b"not json {{{ \x00\xff")
        with pytest.raises(PersistError, match="corrupt JSON"):
            load_json(path)

    def test_persist_error_is_catchable_as_repro_error(self, tmp_path):
        from repro.errors import ReproError

        path = tmp_path / "bad.json"
        path.write_text("{", encoding="utf-8")
        with pytest.raises(ReproError):
            load_json(path)


class TestAtomicSave:
    def test_failed_serialization_leaves_existing_file_intact(self, tmp_path):
        path = tmp_path / "keep.json"
        save_json({"version": 1}, path)
        with pytest.raises(TypeError):
            save_json({"bad": object()}, path)
        assert load_json(path) == {"version": 1}

    def test_no_tmp_residue_after_save(self, tmp_path):
        path = tmp_path / "clean.json"
        save_json({"ok": True}, path)
        assert [p.name for p in tmp_path.iterdir()] == ["clean.json"]

    def test_no_tmp_residue_after_failed_save(self, tmp_path):
        with pytest.raises(TypeError):
            save_json({"bad": object()}, tmp_path / "never.json")
        assert list(tmp_path.iterdir()) == []


class TestCacheEntryEnvelope:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "entry.json"
        payload = {"schema": "repro/workload@1", "name": "w", "n": [1, 2, 3]}
        save_cache_entry(payload, path)
        assert load_cache_entry(path) == payload

    def test_digest_is_deterministic(self):
        payload = {"b": 2, "a": 1}
        assert payload_digest(payload) == payload_digest({"a": 1, "b": 2})

    def test_tampered_payload_rejected(self, tmp_path):
        import json

        path = tmp_path / "entry.json"
        save_cache_entry({"value": 1}, path)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["payload"]["value"] = 2
        path.write_text(json.dumps(envelope), encoding="utf-8")
        with pytest.raises(ArtifactCorruptError, match="digest"):
            load_cache_entry(path)

    def test_raw_legacy_payload_rejected(self, tmp_path):
        import json

        path = tmp_path / "entry.json"
        path.write_text(
            json.dumps({"schema": "repro/workload@1"}), encoding="utf-8"
        )
        with pytest.raises(ArtifactCorruptError, match="envelope"):
            load_cache_entry(path)

    def test_truncated_envelope_raises_persist_error(self, tmp_path):
        path = tmp_path / "entry.json"
        save_cache_entry({"value": 1}, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(PersistError):
            load_cache_entry(path)


class TestExperimentResultRoundTrip:
    def make(self):
        from repro.bench.result import ExperimentResult

        return ExperimentResult(
            experiment_id="R5",
            title="Metric-induced tool rankings",
            sections={"rankings": "table text", "tau": "matrix text"},
            data={"taus": {"F1": 0.8}, "names": ["a", "b"], "n": 3},
        )

    def test_round_trip(self):
        from repro.persist import (
            experiment_result_from_dict,
            experiment_result_to_dict,
        )

        rebuilt = experiment_result_from_dict(
            experiment_result_to_dict(self.make())
        )
        original = self.make()
        assert rebuilt.experiment_id == original.experiment_id
        assert rebuilt.title == original.title
        assert rebuilt.sections == original.sections
        assert rebuilt.data == original.data
        assert rebuilt.render() == original.render()

    def test_payload_survives_json(self):
        import json

        from repro.persist import (
            experiment_result_from_dict,
            experiment_result_to_dict,
        )

        payload = json.loads(json.dumps(experiment_result_to_dict(self.make())))
        assert experiment_result_from_dict(payload).data == self.make().data

    def test_schema_tagged_and_checked(self):
        from repro.persist import (
            experiment_result_from_dict,
            experiment_result_to_dict,
        )

        payload = experiment_result_to_dict(self.make())
        assert payload["schema"] == "repro/experiment@1"
        payload["schema"] = "repro/experiment@99"
        with pytest.raises(ConfigurationError, match="schema"):
            experiment_result_from_dict(payload)

    def test_strict_rejects_non_json_data(self):
        from repro.bench.result import ExperimentResult
        from repro.persist import experiment_result_to_dict

        result = ExperimentResult(
            experiment_id="RX",
            title="x",
            data={"objects": object()},
        )
        with pytest.raises(ConfigurationError, match="JSON-safe"):
            experiment_result_to_dict(result)

    def test_lenient_omits_and_records_non_json_data(self):
        from repro.bench.result import ExperimentResult
        from repro.persist import (
            experiment_result_from_dict,
            experiment_result_to_dict,
        )

        result = ExperimentResult(
            experiment_id="RX",
            title="x",
            data={"ok": 1, "objects": object(), "tuple_keys": {(1, 2): "x"}},
        )
        payload = experiment_result_to_dict(result, strict=False)
        assert payload["data"] == {"ok": 1}
        assert sorted(payload["omitted_data_keys"]) == ["objects", "tuple_keys"]
        assert experiment_result_from_dict(payload).data == {"ok": 1}

    def test_real_experiment_result_persists_lenient(self, tmp_path):
        from repro.bench.experiments.r5_rankings import run as run_r5
        from repro.persist import (
            experiment_result_from_dict,
            experiment_result_to_dict,
            load_json,
            save_json,
        )

        result = run_r5(seed=2015)
        path = tmp_path / "r5.json"
        save_json(experiment_result_to_dict(result, strict=False), path)
        rebuilt = experiment_result_from_dict(load_json(path))
        assert rebuilt.render() == result.render()

"""Tests for JSON persistence of benchmark artifacts."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.persist import (
    campaign_from_dict,
    campaign_to_dict,
    load_json,
    report_from_dict,
    report_to_dict,
    save_json,
    workload_from_dict,
    workload_to_dict,
)
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.corpus import corpus_workload


class TestWorkloadRoundTrip:
    def test_generated_workload(self, small_workload):
        rebuilt = workload_from_dict(workload_to_dict(small_workload))
        assert rebuilt.name == small_workload.name
        assert rebuilt.units == small_workload.units
        assert rebuilt.truth == small_workload.truth
        assert rebuilt.profiles == small_workload.profiles
        assert rebuilt.config == small_workload.config

    def test_corpus_workload(self):
        corpus = corpus_workload()
        rebuilt = workload_from_dict(workload_to_dict(corpus))
        assert rebuilt.truth == corpus.truth
        assert rebuilt.units == corpus.units

    def test_schema_mismatch_rejected(self, small_workload):
        payload = workload_to_dict(small_workload)
        payload["schema"] = "repro/workload@99"
        with pytest.raises(ConfigurationError, match="schema"):
            workload_from_dict(payload)

    def test_payload_is_json_safe(self, small_workload):
        import json

        json.dumps(workload_to_dict(small_workload))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31), n_units=st.integers(5, 40))
    def test_any_generated_workload_round_trips(self, seed, n_units):
        workload = generate_workload(WorkloadConfig(n_units=n_units, seed=seed))
        rebuilt = workload_from_dict(workload_to_dict(workload))
        assert rebuilt == workload


class TestReportAndCampaignRoundTrip:
    def test_report(self, reference_campaign):
        report = reference_campaign.results[0].report
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt == report

    def test_campaign(self, reference_campaign):
        rebuilt = campaign_from_dict(campaign_to_dict(reference_campaign))
        assert rebuilt == reference_campaign

    def test_campaign_reanalysis_after_round_trip(
        self, reference_campaign, small_workload
    ):
        """The archived campaign supports the same downstream analyses."""
        from repro.bench.pertype import campaign_breakdowns
        from repro.metrics import definitions as d

        rebuilt = campaign_from_dict(campaign_to_dict(reference_campaign))
        assert rebuilt.metric_values(d.MCC) == reference_campaign.metric_values(d.MCC)
        breakdowns = campaign_breakdowns(rebuilt, small_workload.truth)
        assert set(breakdowns) == set(rebuilt.tool_names)

    def test_report_schema_checked(self, reference_campaign):
        payload = report_to_dict(reference_campaign.results[0].report)
        payload["schema"] = "nope"
        with pytest.raises(ConfigurationError):
            report_from_dict(payload)

    def test_campaign_schema_checked(self, reference_campaign):
        payload = campaign_to_dict(reference_campaign)
        del payload["schema"]
        with pytest.raises(ConfigurationError):
            campaign_from_dict(payload)


class TestFiles:
    def test_save_and_load(self, tmp_path, reference_campaign):
        path = tmp_path / "campaign.json"
        save_json(campaign_to_dict(reference_campaign), path)
        rebuilt = campaign_from_dict(load_json(path))
        assert rebuilt == reference_campaign

    def test_save_is_stable(self, tmp_path, small_workload):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        save_json(workload_to_dict(small_workload), a)
        save_json(workload_to_dict(small_workload), b)
        assert a.read_text() == b.read_text()

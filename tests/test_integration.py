"""End-to-end integration tests: the full paper pipeline on small sizes."""

from __future__ import annotations

import pytest

from repro import (
    AdequacyConfig,
    WorkloadConfig,
    canonical_scenarios,
    core_candidates,
    default_panel,
    generate_workload,
    rank_metrics_for_scenario,
    reference_suite,
    run_campaign,
    validate_scenario,
)
from repro.bench.experiments import r11_agreement
from repro.metrics import definitions as d
from repro.properties import AssessmentContext, build_properties_matrix


class TestFullPipeline:
    """Workload -> tools -> metrics -> properties -> scenarios -> MCDA."""

    def test_pipeline_reaches_a_recommendation(self):
        workload = generate_workload(
            WorkloadConfig(n_units=120, seed=55, name="pipeline")
        )
        campaign = run_campaign(reference_suite(seed=55), workload)
        assert len(campaign.results) == 8

        registry = core_candidates()
        context = AssessmentContext.default(seed=55, n_resamples=25)
        matrix = build_properties_matrix(registry, context=context)
        panel = default_panel(seed=55)

        recommendations = {}
        for scenario in canonical_scenarios():
            validation = validate_scenario(scenario, matrix, panel)
            assert validation.ahp.is_acceptably_consistent()
            recommendations[scenario.key] = validation.panel_best
        # Different scenarios recommend different metrics — the paper's thesis.
        assert len(set(recommendations.values())) >= 2

    def test_campaign_ranking_depends_on_metric_choice(self):
        workload = generate_workload(
            WorkloadConfig(n_units=200, seed=56, name="ranking")
        )
        campaign = run_campaign(reference_suite(seed=56), workload)
        by_recall = max(
            campaign.results, key=lambda r: d.RECALL.value_or_nan(r.confusion)
        ).tool_name
        by_precision = max(
            campaign.results, key=lambda r: d.PRECISION.value_or_nan(r.confusion)
        ).tool_name
        assert by_recall != by_precision

    def test_analytical_and_mcda_tell_the_same_story(self):
        result = r11_agreement.run(seed=77, n_pools=20, n_resamples=30)
        assert result.data["winner_in_top5"] >= 3

    def test_adequacy_study_runs_on_all_scenarios(self):
        registry = core_candidates()
        config = AdequacyConfig(n_pools=15, seed=60)
        for scenario in canonical_scenarios():
            ranked = rank_metrics_for_scenario(registry, scenario, config)
            assert len(ranked) == len(registry)


class TestDeterminism:
    """Same seeds, same results — end to end."""

    def test_r11_is_bit_reproducible(self):
        a = r11_agreement.run(seed=88, n_pools=10, n_resamples=20)
        b = r11_agreement.run(seed=88, n_pools=10, n_resamples=20)
        assert a.data["analytical"] == b.data["analytical"]
        assert a.data["mcda"] == b.data["mcda"]
        assert a.render() == b.render()

    def test_campaign_reports_are_reproducible(self):
        config = WorkloadConfig(n_units=80, seed=91, name="repro-check")
        workload_a = generate_workload(config)
        workload_b = generate_workload(config)
        campaign_a = run_campaign(reference_suite(seed=91), workload_a)
        campaign_b = run_campaign(reference_suite(seed=91), workload_b)
        for result_a, result_b in zip(campaign_a.results, campaign_b.results):
            assert result_a.report == result_b.report


class TestHeadlineConclusions:
    """The abstract's claims, as assertions."""

    @pytest.fixture(scope="class")
    def adequacy_rankings(self):
        registry = core_candidates()
        config = AdequacyConfig(n_pools=30, seed=70)
        return {
            scenario.key: [
                r.metric_symbol
                for r in rank_metrics_for_scenario(registry, scenario, config)
            ]
            for scenario in canonical_scenarios()
        }

    def test_precision_and_recall_are_adequate_in_some_scenarios(
        self, adequacy_rankings
    ):
        assert adequacy_rankings["critical"][0] == "REC"
        assert "PRE" in adequacy_rankings["triage"][:5] or adequacy_rankings[
            "triage"
        ][0] in {"F0.5", "MRK"}

    def test_other_scenarios_require_seldom_used_alternatives(self, adequacy_rankings):
        """The audit/balanced winners are metrics with low literature
        popularity — the paper's closing point."""
        from repro.metrics.registry import core_candidates as registry_factory

        registry = registry_factory()
        for key in ("balanced", "audit"):
            winner = registry.get(adequacy_rankings[key][0])
            assert winner.info.popularity < 0.5, (key, winner.symbol)

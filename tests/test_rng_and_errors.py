"""Tests for RNG helpers and the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro import errors
from repro._rng import derive_seed, rng_from_seed, spawn


class TestRng:
    def test_rng_from_int(self):
        a = rng_from_seed(5).random()
        b = rng_from_seed(5).random()
        assert a == b

    def test_rng_passthrough(self):
        rng = np.random.default_rng(1)
        assert rng_from_seed(rng) is rng

    def test_derive_seed_deterministic(self):
        assert derive_seed(5, "x") == derive_seed(5, "x")

    def test_derive_seed_key_sensitive(self):
        assert derive_seed(5, "x") != derive_seed(5, "y")

    def test_derive_seed_parent_sensitive(self):
        assert derive_seed(5, "x") != derive_seed(6, "x")

    def test_derive_seed_range(self):
        for key in ("a", "b", "c"):
            seed = derive_seed(123, key)
            assert 0 <= seed < 2**63 - 1

    def test_spawn_streams_independent(self):
        a = spawn(5, "x").random(10)
        b = spawn(5, "y").random(10)
        assert not np.array_equal(a, b)

    def test_spawn_reproducible(self):
        assert np.array_equal(spawn(5, "x").random(10), spawn(5, "x").random(10))


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            errors.ConfigurationError,
            errors.MetricError,
            errors.UndefinedMetricError,
            errors.WorkloadError,
            errors.ToolError,
            errors.McdaError,
            errors.InconsistentJudgmentError,
            errors.ElicitationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, errors.ReproError)

    def test_undefined_metric_is_metric_error(self):
        assert issubclass(errors.UndefinedMetricError, errors.MetricError)

    def test_inconsistent_judgment_is_mcda_error(self):
        assert issubclass(errors.InconsistentJudgmentError, errors.McdaError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(errors.ReproError):
            raise errors.WorkloadError("boom")


class TestPublicApi:
    def test_all_names_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

"""Tests for PROMETHEE II."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mcda.promethee import promethee_ii

ALTERNATIVES = ["x", "y", "z"]
SCORES = {
    "speed": {"x": 0.9, "y": 0.5, "z": 0.1},
    "cost": {"x": 0.1, "y": 0.5, "z": 0.9},
}


class TestPromethee:
    def test_weighted_winner(self):
        result = promethee_ii(ALTERNATIVES, SCORES, {"speed": 0.8, "cost": 0.2})
        assert result.best == "x"

    def test_flipped_weights(self):
        result = promethee_ii(ALTERNATIVES, SCORES, {"speed": 0.2, "cost": 0.8})
        assert result.best == "z"

    def test_net_flows_sum_to_zero(self):
        result = promethee_ii(ALTERNATIVES, SCORES, {"speed": 0.6, "cost": 0.4})
        assert sum(result.net_flow.values()) == pytest.approx(0.0, abs=1e-12)

    def test_flows_bounded(self):
        result = promethee_ii(ALTERNATIVES, SCORES, {"speed": 0.5, "cost": 0.5})
        for name in ALTERNATIVES:
            assert 0.0 <= result.positive_flow[name] <= 1.0
            assert 0.0 <= result.negative_flow[name] <= 1.0
            assert -1.0 <= result.net_flow[name] <= 1.0

    def test_dominating_alternative_wins(self):
        scores = {
            "a": {"x": 0.9, "y": 0.5, "z": 0.7},
            "b": {"x": 0.8, "y": 0.2, "z": 0.6},
        }
        result = promethee_ii(["x", "y", "z"], scores, {"a": 1, "b": 1})
        assert result.best == "x"
        assert result.negative_flow["x"] == 0.0

    def test_usual_preference_ignores_magnitude(self):
        """Under "usual", x's hair-thin advantage over y earns full
        preference; under "linear" it earns almost none.  The anchor
        alternative stretches the criterion range so the linear threshold
        dwarfs the x-y gap."""
        scores = {"c": {"x": 0.501, "y": 0.500, "anchor": 0.0}}
        usual = promethee_ii(
            ["x", "y", "anchor"], scores, {"c": 1.0}, preference="usual"
        )
        linear = promethee_ii(
            ["x", "y", "anchor"], scores, {"c": 1.0}, preference="linear"
        )
        usual_gap = usual.net_flow["x"] - usual.net_flow["y"]
        linear_gap = linear.net_flow["x"] - linear.net_flow["y"]
        assert usual_gap >= 0.5
        assert 0.0 < linear_gap < 0.1

    def test_linear_preference_grades_small_gaps(self):
        scores = {
            "a": {"x": 1.0, "y": 0.9, "z": 0.0},
        }
        result = promethee_ii(["x", "y", "z"], scores, {"a": 1.0},
                              full_preference_fraction=0.5)
        # x over y: gap 0.1 against threshold 0.5 -> partial preference;
        # x over z: gap 1.0 -> full preference.
        assert 0.0 < result.net_flow["y"] < result.net_flow["x"]
        assert result.ranking == ["x", "y", "z"]

    def test_constant_criterion_is_neutral(self):
        scores = {
            "speed": {"x": 0.9, "y": 0.1},
            "flat": {"x": 0.5, "y": 0.5},
        }
        result = promethee_ii(["x", "y"], scores, {"speed": 0.5, "flat": 0.5})
        assert result.best == "x"

    def test_single_alternative(self):
        result = promethee_ii(["only"], {"a": {"only": 0.5}}, {"a": 1.0})
        assert result.best == "only"
        assert result.net_flow["only"] == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"preference": "gaussian"},
            {"full_preference_fraction": 0.0},
            {"full_preference_fraction": 1.5},
        ],
    )
    def test_parameter_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            promethee_ii(ALTERNATIVES, SCORES, {"speed": 1, "cost": 1}, **kwargs)

    def test_structural_validation(self):
        with pytest.raises(ConfigurationError):
            promethee_ii([], SCORES, {"speed": 1, "cost": 1})
        with pytest.raises(ConfigurationError):
            promethee_ii(["x", "x"], SCORES, {"speed": 1, "cost": 1})
        with pytest.raises(ConfigurationError):
            promethee_ii(ALTERNATIVES, SCORES, {"speed": 1})

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(2, 6).flatmap(
            lambda n: st.tuples(
                st.lists(
                    st.lists(st.floats(0, 1), min_size=n, max_size=n),
                    min_size=1,
                    max_size=4,
                ),
                st.just(n),
            )
        )
    )
    def test_net_flows_always_sum_to_zero(self, table_and_n):
        table, n = table_and_n
        names = [f"a{i}" for i in range(n)]
        scores = {f"c{j}": dict(zip(names, col)) for j, col in enumerate(table)}
        weights = {c: 1.0 for c in scores}
        result = promethee_ii(names, scores, weights)
        assert sum(result.net_flow.values()) == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.integers(0, 1000).map(lambda v: v / 1000.0),
            min_size=2,
            max_size=8,
            unique=True,
        )
    )
    def test_single_criterion_ranking_matches_scores(self, values):
        """With one criterion and score gaps above float-dust scale, the
        PROMETHEE ranking is exactly the score ranking."""
        names = [f"a{i}" for i in range(len(values))]
        scores = {"c": dict(zip(names, values))}
        result = promethee_ii(names, scores, {"c": 1.0})
        by_score = sorted(names, key=lambda n: -scores["c"][n])
        assert result.ranking == by_score

"""Tests for pairwise comparison matrices and AHP consistency machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, InconsistentJudgmentError
from repro.mcda.pairwise import (
    SAATY_VALUES,
    PairwiseComparisonMatrix,
    random_index,
    snap_to_saaty,
)


class TestSnapToSaaty:
    def test_exact_values_unchanged(self):
        for value in (1.0, 3.0, 9.0, 1 / 7):
            assert snap_to_saaty(value) == value

    def test_snaps_to_nearest_in_log_space(self):
        assert snap_to_saaty(2.8) == 3.0
        assert snap_to_saaty(1.05) == 1.0
        assert snap_to_saaty(0.3) == pytest.approx(1 / 3)

    def test_clamps_extremes(self):
        assert snap_to_saaty(50.0) == 9.0
        assert snap_to_saaty(0.01) == pytest.approx(1 / 9)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ConfigurationError):
            snap_to_saaty(bad)

    @given(st.floats(0.05, 20.0))
    def test_result_always_saaty(self, ratio):
        assert snap_to_saaty(ratio) in SAATY_VALUES

    @given(st.floats(0.2, 5.0))
    def test_reciprocal_symmetry(self, ratio):
        assert snap_to_saaty(1.0 / ratio) == pytest.approx(1.0 / snap_to_saaty(ratio))


class TestRandomIndex:
    def test_standard_values(self):
        assert random_index(1) == 0.0
        assert random_index(2) == 0.0
        assert random_index(3) == 0.58
        assert random_index(9) == 1.45

    def test_large_orders_saturate(self):
        assert random_index(20) == 1.6

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            random_index(0)


class TestMatrixValidation:
    def test_valid_matrix(self):
        PairwiseComparisonMatrix(
            labels=("a", "b"), values=np.array([[1.0, 3.0], [1 / 3, 1.0]])
        )

    def test_rejects_duplicate_labels(self):
        with pytest.raises(ConfigurationError):
            PairwiseComparisonMatrix(labels=("a", "a"), values=np.eye(2))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            PairwiseComparisonMatrix(labels=("a", "b"), values=np.eye(3))

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            PairwiseComparisonMatrix(
                labels=("a", "b"), values=np.array([[1.0, -2.0], [-0.5, 1.0]])
            )

    def test_rejects_bad_diagonal(self):
        with pytest.raises(ConfigurationError):
            PairwiseComparisonMatrix(
                labels=("a", "b"), values=np.array([[2.0, 3.0], [1 / 3, 1.0]])
            )

    def test_rejects_non_reciprocal(self):
        with pytest.raises(ConfigurationError):
            PairwiseComparisonMatrix(
                labels=("a", "b"), values=np.array([[1.0, 3.0], [0.5, 1.0]])
            )


class TestFromWeights:
    def test_consistent_matrix(self):
        matrix = PairwiseComparisonMatrix.from_weights(["a", "b", "c"], [0.5, 0.3, 0.2])
        assert matrix.consistency_ratio == pytest.approx(0.0, abs=1e-9)

    def test_priorities_recover_weights(self):
        weights = [0.5, 0.3, 0.2]
        matrix = PairwiseComparisonMatrix.from_weights(["a", "b", "c"], weights)
        for method in ("eigenvector", "geometric"):
            priorities = matrix.priorities(method)
            assert priorities["a"] == pytest.approx(0.5, abs=1e-6)
            assert priorities["b"] == pytest.approx(0.3, abs=1e-6)
            assert priorities["c"] == pytest.approx(0.2, abs=1e-6)

    def test_rejects_zero_weight(self):
        with pytest.raises(ConfigurationError):
            PairwiseComparisonMatrix.from_weights(["a", "b"], [1.0, 0.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            PairwiseComparisonMatrix.from_weights(["a"], [1.0, 2.0])

    @given(
        st.lists(st.floats(0.05, 10.0), min_size=2, max_size=8)
    )
    def test_any_weight_vector_is_consistent(self, weights):
        labels = [f"w{i}" for i in range(len(weights))]
        matrix = PairwiseComparisonMatrix.from_weights(labels, weights)
        assert matrix.consistency_ratio <= 1e-6
        priorities = matrix.priorities()
        total = sum(weights)
        for label, weight in zip(labels, weights):
            assert priorities[label] == pytest.approx(weight / total, rel=1e-4)


class TestFromJudgments:
    def test_fills_reciprocals(self):
        matrix = PairwiseComparisonMatrix.from_judgments(
            ["a", "b", "c"],
            {("a", "b"): 3.0, ("a", "c"): 5.0, ("b", "c"): 2.0},
        )
        assert matrix.values[1, 0] == pytest.approx(1 / 3)
        assert matrix.values[2, 0] == pytest.approx(1 / 5)

    def test_incomplete_judgments_rejected(self):
        with pytest.raises(ConfigurationError, match="incomplete"):
            PairwiseComparisonMatrix.from_judgments(
                ["a", "b", "c"], {("a", "b"): 3.0}
            )

    def test_duplicate_pair_rejected(self):
        with pytest.raises(ConfigurationError, match="judged twice"):
            PairwiseComparisonMatrix.from_judgments(
                ["a", "b"], {("a", "b"): 3.0, ("b", "a"): 2.0}
            )

    def test_self_judgment_rejected(self):
        with pytest.raises(ConfigurationError):
            PairwiseComparisonMatrix.from_judgments(["a", "b"], {("a", "a"): 1.0})

    def test_unknown_label_rejected(self):
        with pytest.raises(ConfigurationError):
            PairwiseComparisonMatrix.from_judgments(["a", "b"], {("a", "x"): 2.0})


class TestConsistency:
    def test_saaty_example_is_inconsistent(self):
        # a > b (3x), b > c (3x), but c > a (3x): maximally circular.
        matrix = PairwiseComparisonMatrix.from_judgments(
            ["a", "b", "c"],
            {("a", "b"): 3.0, ("b", "c"): 3.0, ("a", "c"): 1 / 3},
        )
        assert matrix.consistency_ratio > 0.1
        with pytest.raises(InconsistentJudgmentError):
            matrix.require_consistency()

    def test_mildly_noisy_matrix_passes(self):
        matrix = PairwiseComparisonMatrix.from_judgments(
            ["a", "b", "c"],
            {("a", "b"): 2.0, ("b", "c"): 2.0, ("a", "c"): 3.0},
        )
        assert matrix.consistency_ratio < 0.1
        matrix.require_consistency()

    def test_two_by_two_always_consistent(self):
        matrix = PairwiseComparisonMatrix.from_judgments(["a", "b"], {("a", "b"): 9.0})
        assert matrix.consistency_ratio == 0.0

    def test_lambda_max_at_least_n(self):
        matrix = PairwiseComparisonMatrix.from_judgments(
            ["a", "b", "c"],
            {("a", "b"): 3.0, ("b", "c"): 3.0, ("a", "c"): 1 / 3},
        )
        assert matrix.lambda_max >= len(matrix) - 1e-9

    def test_unknown_method_rejected(self):
        matrix = PairwiseComparisonMatrix.from_weights(["a", "b"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            matrix.priorities("magic")


class TestPriorities:
    def test_priorities_sum_to_one(self):
        matrix = PairwiseComparisonMatrix.from_judgments(
            ["a", "b", "c"],
            {("a", "b"): 2.0, ("b", "c"): 4.0, ("a", "c"): 6.0},
        )
        for method in ("eigenvector", "geometric"):
            assert sum(matrix.priorities(method).values()) == pytest.approx(1.0)

    def test_dominant_item_ranks_first(self):
        matrix = PairwiseComparisonMatrix.from_judgments(
            ["a", "b", "c"],
            {("a", "b"): 5.0, ("a", "c"): 7.0, ("b", "c"): 2.0},
        )
        priorities = matrix.priorities()
        assert priorities["a"] > priorities["b"] > priorities["c"]

    def test_methods_agree_on_near_consistent_input(self):
        matrix = PairwiseComparisonMatrix.from_judgments(
            ["a", "b", "c"],
            {("a", "b"): 2.0, ("b", "c"): 2.0, ("a", "c"): 4.0},
        )
        eig = matrix.priorities("eigenvector")
        geo = matrix.priorities("geometric")
        for label in ("a", "b", "c"):
            assert eig[label] == pytest.approx(geo[label], abs=1e-6)

"""Tests for the AHP hierarchy and score-to-comparison bridging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mcda.ahp import AhpHierarchy, comparison_from_scores
from repro.mcda.pairwise import SAATY_VALUES, PairwiseComparisonMatrix


def simple_hierarchy() -> AhpHierarchy:
    """Two criteria (speed 0.75, cost 0.25), three alternatives."""
    criteria = PairwiseComparisonMatrix.from_weights(["speed", "cost"], [0.75, 0.25])
    return AhpHierarchy(
        criteria=criteria,
        alternatives={
            "speed": comparison_from_scores(["x", "y", "z"], [0.9, 0.5, 0.1]),
            "cost": comparison_from_scores(["x", "y", "z"], [0.1, 0.5, 0.9]),
        },
    )


class TestComparisonFromScores:
    def test_ratios_reflect_scores(self):
        matrix = comparison_from_scores(["a", "b"], [0.9, 0.4])
        assert matrix.values[0, 1] == pytest.approx(0.95 / 0.45)

    def test_clipped_to_saaty_band(self):
        matrix = comparison_from_scores(["a", "b"], [1.0, 0.0])
        assert matrix.values[0, 1] <= 9.0
        assert matrix.values[1, 0] >= 1 / 9

    def test_snap_produces_saaty_judgments(self):
        matrix = comparison_from_scores(["a", "b", "c"], [0.9, 0.5, 0.2], snap=True)
        n = len(matrix)
        for i in range(n):
            for j in range(i + 1, n):
                assert any(
                    matrix.values[i, j] == pytest.approx(v) for v in SAATY_VALUES
                )

    def test_reciprocity_enforced(self):
        matrix = comparison_from_scores(["a", "b", "c"], [0.8, 0.3, 0.01])
        assert np.allclose(matrix.values * matrix.values.T, 1.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            comparison_from_scores(["a"], [0.5, 0.5])

    def test_rejects_nan_scores(self):
        with pytest.raises(ConfigurationError):
            comparison_from_scores(["a", "b"], [float("nan"), 0.5])

    def test_equal_scores_mean_indifference(self):
        matrix = comparison_from_scores(["a", "b"], [0.5, 0.5])
        assert matrix.values[0, 1] == pytest.approx(1.0)


class TestHierarchyValidation:
    def test_valid(self):
        simple_hierarchy()

    def test_criteria_coverage_mismatch(self):
        criteria = PairwiseComparisonMatrix.from_weights(["speed", "cost"], [0.5, 0.5])
        with pytest.raises(ConfigurationError, match="missing"):
            AhpHierarchy(
                criteria=criteria,
                alternatives={
                    "speed": comparison_from_scores(["x", "y"], [0.5, 0.5])
                },
            )

    def test_alternative_label_mismatch(self):
        criteria = PairwiseComparisonMatrix.from_weights(["speed", "cost"], [0.5, 0.5])
        with pytest.raises(ConfigurationError, match="same alternatives"):
            AhpHierarchy(
                criteria=criteria,
                alternatives={
                    "speed": comparison_from_scores(["x", "y"], [0.5, 0.5]),
                    "cost": comparison_from_scores(["x", "z"], [0.5, 0.5]),
                },
            )


class TestCompose:
    def test_priorities_sum_to_one(self):
        result = simple_hierarchy().compose()
        assert sum(result.alternative_priorities.values()) == pytest.approx(1.0)

    def test_speed_weighted_winner(self):
        # Speed dominates (0.75), so the fast alternative wins overall.
        result = simple_hierarchy().compose()
        assert result.best == "x"

    def test_flipping_weights_flips_winner(self):
        criteria = PairwiseComparisonMatrix.from_weights(["speed", "cost"], [0.25, 0.75])
        hierarchy = AhpHierarchy(
            criteria=criteria,
            alternatives={
                "speed": comparison_from_scores(["x", "y", "z"], [0.9, 0.5, 0.1]),
                "cost": comparison_from_scores(["x", "y", "z"], [0.1, 0.5, 0.9]),
            },
        )
        assert hierarchy.compose().best == "z"

    def test_consistency_ratios_reported_for_all_matrices(self):
        result = simple_hierarchy().compose()
        assert set(result.consistency_ratios) == {"criteria", "speed", "cost"}
        assert result.max_consistency_ratio < 0.1
        assert result.is_acceptably_consistent()

    def test_ranking_sorted_by_priority(self):
        result = simple_hierarchy().compose()
        priorities = result.alternative_priorities
        ranked = result.ranking
        assert all(
            priorities[a] >= priorities[b] for a, b in zip(ranked, ranked[1:])
        )

    def test_geometric_method_agrees_on_winner(self):
        assert simple_hierarchy().compose("geometric").best == "x"

    def test_balanced_criteria_middle_alternative_compromise(self):
        # With exactly balanced criteria and mirrored scores, y (the
        # compromise) must not rank last.
        criteria = PairwiseComparisonMatrix.from_weights(["speed", "cost"], [0.5, 0.5])
        hierarchy = AhpHierarchy(
            criteria=criteria,
            alternatives={
                "speed": comparison_from_scores(["x", "y", "z"], [0.9, 0.5, 0.1]),
                "cost": comparison_from_scores(["x", "y", "z"], [0.1, 0.5, 0.9]),
            },
        )
        result = hierarchy.compose()
        assert result.ranking[-1] != "y"

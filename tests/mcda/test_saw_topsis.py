"""Tests for SAW and TOPSIS."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.mcda.saw import simple_additive_weighting
from repro.mcda.topsis import topsis

ALTERNATIVES = ["x", "y", "z"]
SCORES = {
    "speed": {"x": 0.9, "y": 0.5, "z": 0.1},
    "cost": {"x": 0.1, "y": 0.5, "z": 0.9},
}


class TestSaw:
    def test_weighted_winner(self):
        result = simple_additive_weighting(
            ALTERNATIVES, SCORES, {"speed": 0.8, "cost": 0.2}
        )
        assert result.best == "x"

    def test_flipped_weights(self):
        result = simple_additive_weighting(
            ALTERNATIVES, SCORES, {"speed": 0.2, "cost": 0.8}
        )
        assert result.best == "z"

    def test_scores_within_unit_interval(self):
        result = simple_additive_weighting(
            ALTERNATIVES, SCORES, {"speed": 1.0, "cost": 1.0}
        )
        assert all(0.0 <= s <= 1.0 for s in result.scores.values())

    def test_weights_normalized(self):
        a = simple_additive_weighting(ALTERNATIVES, SCORES, {"speed": 2, "cost": 2})
        b = simple_additive_weighting(ALTERNATIVES, SCORES, {"speed": 0.5, "cost": 0.5})
        for alternative in ALTERNATIVES:
            assert a.scores[alternative] == pytest.approx(b.scores[alternative])

    def test_constant_column_is_neutral(self):
        scores = {
            "speed": {"x": 0.9, "y": 0.1},
            "flat": {"x": 0.5, "y": 0.5},
        }
        result = simple_additive_weighting(["x", "y"], scores, {"speed": 1, "flat": 1})
        assert result.best == "x"

    def test_dominating_alternative_wins(self):
        scores = {
            "a": {"x": 0.9, "y": 0.5},
            "b": {"x": 0.8, "y": 0.2},
        }
        result = simple_additive_weighting(["x", "y"], scores, {"a": 1, "b": 1})
        assert result.best == "x"

    def test_empty_alternatives_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_additive_weighting([], SCORES, {"speed": 1, "cost": 1})

    def test_criteria_weight_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_additive_weighting(ALTERNATIVES, SCORES, {"speed": 1})

    def test_missing_alternative_score_rejected(self):
        broken = {"speed": {"x": 0.9}, "cost": {"x": 0.1}}
        with pytest.raises(ConfigurationError, match="lacks scores"):
            simple_additive_weighting(ALTERNATIVES, broken, {"speed": 1, "cost": 1})

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_additive_weighting(ALTERNATIVES, SCORES, {"speed": -1, "cost": 2})

    def test_zero_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_additive_weighting(ALTERNATIVES, SCORES, {"speed": 0, "cost": 0})

    def test_tie_broken_by_name(self):
        scores = {"only": {"b": 0.5, "a": 0.5}}
        result = simple_additive_weighting(["b", "a"], scores, {"only": 1.0})
        assert result.ranking == ["a", "b"]


class TestTopsis:
    def test_weighted_winner(self):
        result = topsis(ALTERNATIVES, SCORES, {"speed": 0.8, "cost": 0.2})
        assert result.best == "x"

    def test_flipped_weights(self):
        result = topsis(ALTERNATIVES, SCORES, {"speed": 0.2, "cost": 0.8})
        assert result.best == "z"

    def test_closeness_in_unit_interval(self):
        result = topsis(ALTERNATIVES, SCORES, {"speed": 1, "cost": 1})
        assert all(0.0 <= c <= 1.0 for c in result.closeness.values())

    def test_ideal_alternative_has_closeness_one(self):
        scores = {
            "a": {"best": 1.0, "worst": 0.0},
            "b": {"best": 1.0, "worst": 0.0},
        }
        result = topsis(["best", "worst"], scores, {"a": 1, "b": 1})
        assert result.closeness["best"] == pytest.approx(1.0)
        assert result.closeness["worst"] == pytest.approx(0.0)

    def test_dominating_alternative_wins(self):
        scores = {
            "a": {"x": 0.9, "y": 0.5, "z": 0.7},
            "b": {"x": 0.8, "y": 0.2, "z": 0.6},
        }
        result = topsis(["x", "y", "z"], scores, {"a": 1, "b": 1})
        assert result.best == "x"

    def test_all_columns_constant_gives_indifference(self):
        scores = {"a": {"x": 0.5, "y": 0.5}}
        result = topsis(["x", "y"], scores, {"a": 1.0})
        assert result.closeness["x"] == pytest.approx(0.5)
        assert result.closeness["y"] == pytest.approx(0.5)

    def test_validation_mirrors_saw(self):
        with pytest.raises(ConfigurationError):
            topsis([], SCORES, {"speed": 1, "cost": 1})
        with pytest.raises(ConfigurationError):
            topsis(ALTERNATIVES, SCORES, {"speed": 1})
        with pytest.raises(ConfigurationError):
            topsis(ALTERNATIVES, SCORES, {"speed": -1, "cost": 1})

    def test_agrees_with_saw_on_lopsided_problems(self):
        weights = {"speed": 0.95, "cost": 0.05}
        assert (
            topsis(ALTERNATIVES, SCORES, weights).best
            == simple_additive_weighting(ALTERNATIVES, SCORES, weights).best
        )

"""Tests for ELECTRE I and consistency repair."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mcda.electre import electre_i
from repro.mcda.pairwise import PairwiseComparisonMatrix
from repro.mcda.repair import blend_toward_consistency, repair_matrix

ALTERNATIVES = ["x", "y", "z"]
SCORES = {
    "speed": {"x": 0.9, "y": 0.5, "z": 0.1},
    "cost": {"x": 0.7, "y": 0.5, "z": 0.2},
}


class TestElectre:
    def test_dominating_alternative_outranks_everything(self):
        result = electre_i(ALTERNATIVES, SCORES, {"speed": 0.5, "cost": 0.5})
        assert result.outranked_by("x") == {"y", "z"}
        assert result.best == "x"

    def test_dominated_alternative_leaves_the_kernel(self):
        result = electre_i(ALTERNATIVES, SCORES, {"speed": 0.5, "cost": 0.5})
        assert "z" not in result.kernel
        assert "x" in result.kernel

    def test_discordance_veto(self):
        # y is slightly better on most weight but catastrophically worse on
        # one criterion: the veto blocks the outranking.
        scores = {
            "a": {"good": 0.6, "flawed": 0.65},
            "b": {"good": 0.6, "flawed": 0.62},
            "c": {"good": 0.9, "flawed": 0.0},  # the catastrophic axis
        }
        result = electre_i(
            ["good", "flawed"],
            scores,
            {"a": 0.4, "b": 0.4, "c": 0.2},
            concordance_threshold=0.6,
            discordance_threshold=0.3,
        )
        assert ("flawed", "good") not in result.outranks

    def test_net_flow_ranking_is_complete(self):
        result = electre_i(ALTERNATIVES, SCORES, {"speed": 0.7, "cost": 0.3})
        assert sorted(result.ranking) == sorted(ALTERNATIVES)

    def test_unknown_alternative_raises(self):
        result = electre_i(ALTERNATIVES, SCORES, {"speed": 0.5, "cost": 0.5})
        with pytest.raises(ConfigurationError):
            result.outranked_by("nope")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"concordance_threshold": 0.0},
            {"concordance_threshold": 1.5},
            {"discordance_threshold": -0.1},
        ],
    )
    def test_threshold_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            electre_i(ALTERNATIVES, SCORES, {"speed": 0.5, "cost": 0.5}, **kwargs)

    def test_validation_mirrors_other_methods(self):
        with pytest.raises(ConfigurationError):
            electre_i([], SCORES, {"speed": 1, "cost": 1})
        with pytest.raises(ConfigurationError):
            electre_i(ALTERNATIVES, SCORES, {"speed": 1})

    def test_constant_criterion_is_neutral(self):
        scores = {
            "speed": {"x": 0.9, "y": 0.1},
            "flat": {"x": 0.5, "y": 0.5},
        }
        result = electre_i(["x", "y"], scores, {"speed": 0.5, "flat": 0.5})
        assert result.best == "x"

    def test_agrees_with_additive_methods_on_lopsided_input(
        self, properties_matrix
    ):
        from repro.mcda.saw import simple_additive_weighting

        criteria = {
            name: properties_matrix.column(name)
            for name in ("rewards detection", "bounded")
        }
        weights = {"rewards detection": 0.9, "bounded": 0.1}
        alternatives = list(properties_matrix.metric_symbols)
        saw = simple_additive_weighting(alternatives, criteria, weights)
        electre = electre_i(alternatives, criteria, weights)
        assert saw.best in electre.ranking[:3]


def inconsistent_matrix() -> PairwiseComparisonMatrix:
    """Saaty's circular triad: CR far above 0.1."""
    return PairwiseComparisonMatrix.from_judgments(
        ["a", "b", "c"],
        {("a", "b"): 3.0, ("b", "c"): 3.0, ("a", "c"): 1 / 3},
    )


class TestRepair:
    def test_consistent_matrix_untouched(self):
        matrix = PairwiseComparisonMatrix.from_weights(["a", "b", "c"], [3, 2, 1])
        result = repair_matrix(matrix)
        assert not result.was_needed
        assert np.allclose(result.repaired.values, matrix.values)

    def test_repairs_circular_triad(self):
        result = repair_matrix(inconsistent_matrix())
        assert result.was_needed
        assert result.repaired.consistency_ratio <= 0.1
        assert 0.0 < result.alpha <= 1.0

    def test_alpha_is_minimal_on_the_grid(self):
        matrix = inconsistent_matrix()
        result = repair_matrix(matrix, step=0.05)
        if result.alpha > 0.05:
            weaker = blend_toward_consistency(matrix, result.alpha - 0.05)
            assert weaker.consistency_ratio > 0.1

    def test_full_blend_is_fully_consistent(self):
        blended = blend_toward_consistency(inconsistent_matrix(), 1.0)
        assert blended.consistency_ratio == pytest.approx(0.0, abs=1e-9)

    def test_blend_preserves_reciprocity(self):
        blended = blend_toward_consistency(inconsistent_matrix(), 0.4)
        assert np.allclose(blended.values * blended.values.T, 1.0)

    def test_blend_preserves_priorities(self):
        # Log-space blending toward the implied consistent form keeps the
        # geometric-mean priority vector fixed.
        matrix = inconsistent_matrix()
        before = matrix.priorities("geometric")
        after = blend_toward_consistency(matrix, 0.6).priorities("geometric")
        for label in before:
            assert after[label] == pytest.approx(before[label], abs=1e-9)

    def test_snap_keeps_saaty_values(self):
        from repro.mcda.pairwise import SAATY_VALUES

        result = repair_matrix(inconsistent_matrix(), snap=True)
        values = result.repaired.values
        n = values.shape[0]
        for i in range(n):
            for j in range(i + 1, n):
                assert any(
                    values[i, j] == pytest.approx(v) for v in SAATY_VALUES
                )

    def test_max_judgment_shift_reported(self):
        result = repair_matrix(inconsistent_matrix())
        assert result.max_judgment_shift > 1.0

    @pytest.mark.parametrize("kwargs", [{"threshold": 0.0}, {"step": 0.0}, {"step": 1.5}])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            repair_matrix(inconsistent_matrix(), **kwargs)

    def test_alpha_invalid(self):
        with pytest.raises(ConfigurationError):
            blend_toward_consistency(inconsistent_matrix(), 1.5)

    def test_repairs_noisy_expert_judgments(self):
        from repro.experts.expert import Expert

        noisy = Expert(name="n", persona="p", noise_sigma=0.9, seed=4)
        scores = {f"c{i}": w for i, w in enumerate([0.3, 0.25, 0.2, 0.15, 0.1])}
        matrix = noisy.judge(scores, context_key="t")
        repaired = repair_matrix(matrix, threshold=0.08)
        assert repaired.repaired.consistency_ratio <= 0.08

"""Property-based invariants over the MCDA methods."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcda.ahp import AhpHierarchy, comparison_from_scores
from repro.mcda.electre import electre_i
from repro.mcda.pairwise import PairwiseComparisonMatrix
from repro.mcda.saw import simple_additive_weighting
from repro.mcda.topsis import topsis

# Strategy: a small decision problem (alternatives x criteria score table
# plus positive weights).
problems = st.integers(2, 6).flatmap(
    lambda n_alternatives: st.integers(1, 4).flatmap(
        lambda n_criteria: st.tuples(
            st.just([f"alt{i}" for i in range(n_alternatives)]),
            st.lists(
                st.lists(
                    st.floats(0.0, 1.0), min_size=n_alternatives, max_size=n_alternatives
                ),
                min_size=n_criteria,
                max_size=n_criteria,
            ),
            st.lists(
                st.floats(0.05, 5.0), min_size=n_criteria, max_size=n_criteria
            ),
        )
    )
)


def unpack(problem):
    alternatives, table, weight_values = problem
    criteria_scores = {
        f"c{j}": dict(zip(alternatives, column)) for j, column in enumerate(table)
    }
    weights = {f"c{j}": w for j, w in enumerate(weight_values)}
    return alternatives, criteria_scores, weights


@settings(max_examples=60, deadline=None)
@given(problems)
def test_saw_scores_bounded(problem):
    alternatives, criteria_scores, weights = unpack(problem)
    result = simple_additive_weighting(alternatives, criteria_scores, weights)
    for score in result.scores.values():
        assert -1e-9 <= score <= 1.0 + 1e-9


@settings(max_examples=60, deadline=None)
@given(problems)
def test_topsis_closeness_bounded(problem):
    alternatives, criteria_scores, weights = unpack(problem)
    result = topsis(alternatives, criteria_scores, weights)
    for closeness in result.closeness.values():
        assert -1e-9 <= closeness <= 1.0 + 1e-9


@settings(max_examples=60, deadline=None)
@given(problems)
def test_dominant_alternative_wins_everywhere(problem):
    """An alternative strictly best on every criterion wins under SAW,
    TOPSIS and ELECTRE net flow alike."""
    alternatives, criteria_scores, weights = unpack(problem)
    champion = "champion"
    alternatives = list(alternatives) + [champion]
    for column in criteria_scores.values():
        column[champion] = max(column.values()) + 0.5
    assert simple_additive_weighting(alternatives, criteria_scores, weights).best == champion
    assert topsis(alternatives, criteria_scores, weights).best == champion
    assert electre_i(alternatives, criteria_scores, weights).best == champion


@settings(max_examples=60, deadline=None)
@given(problems, st.floats(0.1, 10.0))
def test_topsis_invariant_to_criterion_scaling(problem, factor):
    """Vector normalization makes TOPSIS invariant to positive rescaling of
    any single criterion's scores."""
    alternatives, criteria_scores, weights = unpack(problem)
    baseline = topsis(alternatives, criteria_scores, weights)
    scaled_scores = {
        criterion: dict(column) for criterion, column in criteria_scores.items()
    }
    first = next(iter(scaled_scores))
    scaled_scores[first] = {a: v * factor for a, v in scaled_scores[first].items()}
    scaled = topsis(alternatives, scaled_scores, weights)
    for alternative in alternatives:
        assert scaled.closeness[alternative] == pytest.approx(
            baseline.closeness[alternative], abs=1e-9
        )


@settings(max_examples=60, deadline=None)
@given(problems)
def test_electre_net_flows_sum_to_zero(problem):
    alternatives, criteria_scores, weights = unpack(problem)
    result = electre_i(alternatives, criteria_scores, weights)
    assert sum(result.net_flow.values()) == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(problems)
def test_electre_kernel_never_empty(problem):
    alternatives, criteria_scores, weights = unpack(problem)
    result = electre_i(alternatives, criteria_scores, weights)
    assert result.kernel


@settings(max_examples=60, deadline=None)
@given(problems)
def test_saw_iia_without_normalization(problem):
    """With normalize='none', adding a dominated alternative cannot change
    the existing alternatives' scores (independence of irrelevant
    alternatives for the raw additive model)."""
    alternatives, criteria_scores, weights = unpack(problem)
    baseline = simple_additive_weighting(
        alternatives, criteria_scores, weights, normalize="none"
    )
    extended_scores = {c: dict(col) for c, col in criteria_scores.items()}
    for column in extended_scores.values():
        column["straggler"] = 0.0
    extended = simple_additive_weighting(
        list(alternatives) + ["straggler"], extended_scores, weights, normalize="none"
    )
    for alternative in alternatives:
        assert extended.scores[alternative] == pytest.approx(
            baseline.scores[alternative], abs=1e-12
        )


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(0.05, 1.0), min_size=3, max_size=7),
    st.randoms(use_true_random=False),
)
def test_pairwise_priorities_are_permutation_equivariant(scores, rnd):
    """Relabeling the items permutes the priorities, nothing else."""
    labels = [f"m{i}" for i in range(len(scores))]
    matrix = comparison_from_scores(labels, scores)
    priorities = matrix.priorities()

    order = list(range(len(labels)))
    rnd.shuffle(order)
    shuffled_labels = [labels[i] for i in order]
    shuffled_scores = [scores[i] for i in order]
    shuffled = comparison_from_scores(shuffled_labels, shuffled_scores).priorities()
    for label in labels:
        assert shuffled[label] == pytest.approx(priorities[label], abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(0.1, 5.0), min_size=2, max_size=6),
    st.lists(st.floats(0.05, 1.0), min_size=3, max_size=5),
)
def test_ahp_composition_equals_manual_weighted_sum(criteria_weights, alt_scores):
    """For consistent inputs, compose() is exactly the weighted sum of the
    local priorities — AHP's distributive mode has no hidden magic."""
    criteria = [f"c{i}" for i in range(len(criteria_weights))]
    alternatives = [f"a{i}" for i in range(len(alt_scores))]
    criteria_matrix = PairwiseComparisonMatrix.from_weights(criteria, criteria_weights)
    alt_matrix = comparison_from_scores(alternatives, alt_scores)
    hierarchy = AhpHierarchy(
        criteria=criteria_matrix,
        alternatives={c: alt_matrix for c in criteria},
    )
    result = hierarchy.compose()
    local = alt_matrix.priorities()
    # Same alternatives matrix under every criterion: the composition must
    # equal the local priorities regardless of the criteria weights.
    for alternative in alternatives:
        assert result.alternative_priorities[alternative] == pytest.approx(
            local[alternative], abs=1e-6
        )
    assert np.isclose(sum(result.alternative_priorities.values()), 1.0)

"""Tests for MCDA weight-sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.mcda.sensitivity import weight_sensitivity

ALTERNATIVES = ["x", "y", "z"]
CONTESTED = {
    "speed": {"x": 0.9, "y": 0.5, "z": 0.1},
    "cost": {"x": 0.1, "y": 0.5, "z": 0.9},
}
DOMINATED = {
    "speed": {"x": 0.9, "y": 0.4, "z": 0.1},
    "cost": {"x": 0.9, "y": 0.5, "z": 0.2},
}


class TestStability:
    def test_dominating_winner_is_fully_stable(self):
        report = weight_sensitivity(
            ALTERNATIVES, DOMINATED, {"speed": 0.5, "cost": 0.5}
        )
        assert report.baseline_best == "x"
        assert report.overall_stability == 1.0
        for criterion in ("speed", "cost"):
            assert report.reversal_factor(criterion) is None

    def test_contested_decision_flips_under_perturbation(self):
        # Near-balanced weights with mirrored scores: pushing one criterion
        # hard enough must flip the winner.
        report = weight_sensitivity(
            ALTERNATIVES,
            CONTESTED,
            {"speed": 0.55, "cost": 0.45},
            factors=(0.2, 0.5, 2.0, 5.0),
        )
        assert report.baseline_best == "x"
        assert report.overall_stability < 1.0
        assert report.reversal_factor("cost") is not None

    def test_reversal_factor_is_closest_to_one(self):
        report = weight_sensitivity(
            ALTERNATIVES,
            CONTESTED,
            {"speed": 0.55, "cost": 0.45},
            factors=(0.2, 0.5, 2.0, 5.0),
        )
        factor = report.reversal_factor("cost")
        flips = [o.factor for o in report.outcomes_for("cost") if o.best_changed]
        assert factor in flips
        assert all(abs_log(factor) <= abs_log(f) for f in flips)

    def test_tau_close_to_one_for_small_perturbations(self):
        report = weight_sensitivity(
            ALTERNATIVES, CONTESTED, {"speed": 0.6, "cost": 0.4}, factors=(0.95, 1.05)
        )
        for outcome in report.outcomes:
            assert outcome.tau_vs_baseline == pytest.approx(1.0)

    def test_tau_nan_when_baseline_is_degenerate(self):
        # Perfectly balanced weights on mirrored scores tie every
        # alternative; tau against a constant baseline is undefined.
        import math

        report = weight_sensitivity(
            ALTERNATIVES, CONTESTED, {"speed": 0.5, "cost": 0.5}, factors=(1.05,)
        )
        assert all(math.isnan(o.tau_vs_baseline) for o in report.outcomes)


class TestReportAccessors:
    def test_outcomes_sorted_by_factor(self):
        report = weight_sensitivity(
            ALTERNATIVES, CONTESTED, {"speed": 0.5, "cost": 0.5}, factors=(2.0, 0.5)
        )
        factors = [o.factor for o in report.outcomes_for("speed")]
        assert factors == sorted(factors)

    def test_unknown_criterion_raises(self):
        report = weight_sensitivity(
            ALTERNATIVES, CONTESTED, {"speed": 0.5, "cost": 0.5}
        )
        with pytest.raises(ConfigurationError):
            report.outcomes_for("nope")

    def test_stability_in_unit_interval(self):
        report = weight_sensitivity(
            ALTERNATIVES, CONTESTED, {"speed": 0.55, "cost": 0.45}
        )
        for criterion in ("speed", "cost"):
            assert 0.0 <= report.stability(criterion) <= 1.0

    def test_non_positive_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            weight_sensitivity(
                ALTERNATIVES, CONTESTED, {"speed": 0.5, "cost": 0.5}, factors=(0.0,)
            )

    def test_outcome_count(self):
        factors = (0.5, 1.5, 2.0)
        report = weight_sensitivity(
            ALTERNATIVES, CONTESTED, {"speed": 0.5, "cost": 0.5}, factors=factors
        )
        assert len(report.outcomes) == 2 * len(factors)


def abs_log(value: float) -> float:
    import math

    return abs(math.log(value))

"""Tests for text tables and ASCII figures."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.reporting.figures import ascii_chart
from repro.reporting.tables import format_cell, format_table


class TestFormatCell:
    def test_float_formatting(self):
        assert format_cell(0.123456) == "0.123"
        assert format_cell(0.1, ".1f") == "0.1"

    def test_nan_renders_dash(self):
        assert format_cell(float("nan")) == "-"

    def test_infinities(self):
        assert format_cell(float("inf")) == "inf"
        assert format_cell(float("-inf")) == "-inf"

    def test_bool_renders_yes_no(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_strings_and_ints(self):
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"


class TestFormatTable:
    def test_basic_render(self):
        text = format_table(["name", "value"], [["x", 1.0], ["longer", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numeric_columns_right_aligned(self):
        text = format_table(["name", "v"], [["x", 1.0], ["y", 22.5]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith(" 1.000")
        assert rows[1].endswith("22.500")

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_raise(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_nan_cell(self):
        text = format_table(["x"], [[float("nan")]])
        assert "-" in text


class TestAsciiChart:
    def test_basic_chart(self):
        chart = ascii_chart({"s": [(0.0, 0.0), (1.0, 1.0)]})
        assert "legend" in chart
        assert "o=s" in chart
        assert "o" in chart.splitlines()[0] or any(
            "o" in line for line in chart.splitlines()
        )

    def test_multiple_series_get_distinct_markers(self):
        chart = ascii_chart(
            {"alpha": [(0, 1), (1, 2)], "beta": [(0, 2), (1, 1)]}
        )
        assert "o=alpha" in chart
        assert "x=beta" in chart

    def test_title_and_labels(self):
        chart = ascii_chart(
            {"s": [(0, 0), (1, 1)]},
            title="The Title",
            x_label="prevalence",
            y_label="value",
        )
        assert chart.splitlines()[0] == "The Title"
        assert "prevalence" in chart
        assert "value" in chart

    def test_no_series_raises(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({})

    def test_no_finite_points_raises(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"s": [(float("nan"), 1.0)]})

    def test_too_many_series_raises(self):
        series = {f"s{i}": [(0.0, float(i))] for i in range(9)}
        with pytest.raises(ConfigurationError):
            ascii_chart(series)

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"s": [(0, 0)]}, width=5, height=2)

    def test_constant_series_renders(self):
        chart = ascii_chart({"s": [(0, 1), (1, 1), (2, 1)]})
        assert "o" in chart

    def test_nonfinite_points_skipped(self):
        chart = ascii_chart({"s": [(0, 0), (float("inf"), 5), (1, 1)]})
        assert "o" in chart

"""Tests for markdown rendering and the CLI --format flag."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.reporting.markdown import experiment_to_markdown, format_markdown_table


class TestMarkdownTable:
    def test_basic_shape(self):
        text = format_markdown_table(["name", "value"], [["x", 1.5], ["y", 2.0]])
        lines = text.splitlines()
        assert lines[0] == "| name | value |"
        assert lines[1] == "|---|---:|"
        assert lines[2] == "| x | 1.500 |"

    def test_title_is_bold(self):
        text = format_markdown_table(["a"], [[1]], title="My table")
        assert text.splitlines()[0] == "**My table**"

    def test_pipes_escaped(self):
        text = format_markdown_table(["a"], [["x|y"]])
        assert "x\\|y" in text

    def test_nan_renders_dash(self):
        text = format_markdown_table(["a"], [[float("nan")]])
        assert "| - |" in text

    def test_numeric_columns_right_aligned(self):
        text = format_markdown_table(
            ["label", "n"], [["a", 1], ["b", 2]]
        )
        assert text.splitlines()[1] == "|---|---:|"

    def test_mixed_column_left_aligned(self):
        text = format_markdown_table(["x"], [["text"], [3.0]])
        assert text.splitlines()[1] == "|---|"

    def test_row_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_markdown_table(["a", "b"], [[1]])

    def test_empty_headers(self):
        with pytest.raises(ConfigurationError):
            format_markdown_table([], [])


class TestExperimentToMarkdown:
    def test_structure(self):
        doc = experiment_to_markdown(
            "RX", "Some experiment", {"first_table": "a  b\n1  2", "chart": "___"}
        )
        assert doc.startswith("# RX: Some experiment")
        assert "## first table" in doc
        assert "```text\na  b\n1  2\n```" in doc
        assert doc.endswith("\n")

    def test_section_order_preserved(self):
        doc = experiment_to_markdown("RX", "t", {"zz": "1", "aa": "2"})
        assert doc.index("## zz") < doc.index("## aa")


class TestCliFormat:
    def test_md_output(self, tmp_path, capsys):
        assert main(["run", "R1", "--quiet", "--out", str(tmp_path), "--format", "md"]) == 0
        md = (tmp_path / "r1.md").read_text()
        assert md.startswith("# R1: Metric catalog")
        assert not (tmp_path / "r1.txt").exists()

    def test_text_remains_default(self, tmp_path, capsys):
        assert main(["run", "R1", "--quiet", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "r1.txt").exists()

"""Tests for the CLI layered on the experiment engine (in-process)."""

from __future__ import annotations

import json

import pytest

from repro.bench.engine.manifest import MANIFEST_SCHEMA
from repro.bench.engine.spec import all_specs
from repro.cli import build_parser, main


class TestList:
    def test_lists_every_registered_experiment(self, capsys):
        assert main(["list"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 19
        assert lines[0].startswith("R1 ")
        assert "Metric catalog (table)" in lines[0]

    def test_lines_come_from_the_specs(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        for spec in all_specs():
            assert f"{spec.experiment_id:4s} {spec.list_line}" in out


class TestRun:
    def test_unknown_id_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="unknown experiment 'R99'"):
            main(["run", "R99"])

    def test_run_r1_prints_report_and_timing(self, capsys):
        assert main(["run", "R1"]) == 0
        captured = capsys.readouterr()
        assert "=== R1: Metric catalog ===" in captured.out
        assert "[R1 completed in" in captured.err

    def test_quiet_suppresses_stdout(self, capsys):
        main(["run", "R1", "--quiet"])
        captured = capsys.readouterr()
        assert "=== R1" not in captured.out
        assert "[R1 completed in" in captured.err

    def test_out_writes_text_reports(self, tmp_path, capsys):
        main(["run", "R5", "--quiet", "--out", str(tmp_path)])
        capsys.readouterr()
        written = (tmp_path / "r5.txt").read_text(encoding="utf-8")
        assert written.startswith("=== R5:")

    def test_out_format_md_writes_markdown(self, tmp_path, capsys):
        main(["run", "R5", "--quiet", "--out", str(tmp_path), "--format", "md"])
        capsys.readouterr()
        assert (tmp_path / "r5.md").exists()
        assert not (tmp_path / "r5.txt").exists()
        assert "R5" in (tmp_path / "r5.md").read_text(encoding="utf-8")

    def test_multiple_ids_print_in_requested_order(self, capsys):
        main(["run", "R4", "R3", "--quiet"])
        err = capsys.readouterr().err
        assert err.index("[R4 completed") < err.index("[R3 completed")


class TestEngineFlags:
    def test_jobs_matches_serial_output(self, capsys):
        main(["run", "R3", "R4", "R5", "--seed", "2015"])
        serial = capsys.readouterr().out
        main(["run", "R3", "R4", "R5", "--seed", "2015", "--jobs", "4"])
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_jobs_zero_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="--jobs must be >= 1"):
            main(["run", "R1", "--jobs", "0"])

    def test_manifest_written_with_schema(self, tmp_path, capsys):
        manifest_path = tmp_path / "run.json"
        main(["run", "R3", "R4", "--quiet", "--manifest", str(manifest_path)])
        capsys.readouterr()
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert payload["schema"] == MANIFEST_SCHEMA
        assert [e["experiment_id"] for e in payload["experiments"]] == ["R3", "R4"]
        campaign = [
            event
            for record in payload["experiments"]
            for event in record["artifacts"]
            if event["key"].startswith("campaign:reference")
        ]
        assert [event["status"] for event in campaign] == ["miss", "hit"]

    def test_cache_dir_persists_and_warm_run_disk_hits(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        cold_manifest = tmp_path / "cold.json"
        warm_manifest = tmp_path / "warm.json"
        main(
            ["run", "R3", "--quiet", "--cache-dir", str(cache),
             "--manifest", str(cold_manifest)]
        )
        cold_out = capsys.readouterr().out
        assert any(cache.iterdir()), "cold run must persist artifacts"
        main(
            ["run", "R3", "--cache-dir", str(cache),
             "--manifest", str(warm_manifest)]
        )
        capsys.readouterr()
        warm = json.loads(warm_manifest.read_text(encoding="utf-8"))
        assert warm["totals"]["disk-hit"] >= 1
        assert warm["totals"]["miss"] < json.loads(
            cold_manifest.read_text(encoding="utf-8")
        )["totals"]["miss"]
        del cold_out


class TestParser:
    def test_run_requires_at_least_one_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "R1"])
        assert args.seed == 2015
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.manifest is None

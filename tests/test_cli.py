"""Tests for the CLI layered on the experiment engine (in-process)."""

from __future__ import annotations

import json

import pytest

from repro.bench.engine.manifest import MANIFEST_SCHEMA
from repro.bench.engine.spec import all_specs
from repro.cli import build_parser, main


class TestList:
    def test_lists_every_registered_experiment(self, capsys):
        assert main(["list"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 20
        assert lines[0].startswith("R1 ")
        assert "Metric catalog (table)" in lines[0]

    def test_lines_come_from_the_specs(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        for spec in all_specs():
            assert f"{spec.experiment_id:4s} {spec.list_line}" in out


class TestRun:
    def test_unknown_id_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="unknown experiment 'R99'"):
            main(["run", "R99"])

    def test_run_r1_prints_report_and_timing(self, capsys):
        assert main(["run", "R1"]) == 0
        captured = capsys.readouterr()
        assert "=== R1: Metric catalog ===" in captured.out
        assert "[R1 completed in" in captured.err

    def test_quiet_suppresses_stdout(self, capsys):
        main(["run", "R1", "--quiet"])
        captured = capsys.readouterr()
        assert "=== R1" not in captured.out
        assert "[R1 completed in" in captured.err

    def test_out_writes_text_reports(self, tmp_path, capsys):
        main(["run", "R5", "--quiet", "--out", str(tmp_path)])
        capsys.readouterr()
        written = (tmp_path / "r5.txt").read_text(encoding="utf-8")
        assert written.startswith("=== R5:")

    def test_out_format_md_writes_markdown(self, tmp_path, capsys):
        main(["run", "R5", "--quiet", "--out", str(tmp_path), "--format", "md"])
        capsys.readouterr()
        assert (tmp_path / "r5.md").exists()
        assert not (tmp_path / "r5.txt").exists()
        assert "R5" in (tmp_path / "r5.md").read_text(encoding="utf-8")

    def test_multiple_ids_print_in_requested_order(self, capsys):
        main(["run", "R4", "R3", "--quiet"])
        err = capsys.readouterr().err
        assert err.index("[R4 completed") < err.index("[R3 completed")


class TestEngineFlags:
    def test_jobs_matches_serial_output(self, capsys):
        main(["run", "R3", "R4", "R5", "--seed", "2015"])
        serial = capsys.readouterr().out
        main(["run", "R3", "R4", "R5", "--seed", "2015", "--jobs", "4"])
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_jobs_zero_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="--jobs must be >= 1"):
            main(["run", "R1", "--jobs", "0"])

    def test_process_executor_matches_thread_output(self, capsys):
        main(["run", "R1", "R4", "--seed", "2015", "--jobs", "2"])
        threaded = capsys.readouterr().out
        main(
            ["run", "R1", "R4", "--seed", "2015", "--jobs", "2",
             "--executor", "process"]
        )
        processed = capsys.readouterr().out
        assert processed == threaded

    def test_profile_with_process_executor_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="--executor thread"):
            main(["run", "R1", "--profile", "--executor", "process"])

    def test_manifest_written_with_schema(self, tmp_path, capsys):
        manifest_path = tmp_path / "run.json"
        main(["run", "R3", "R4", "--quiet", "--manifest", str(manifest_path)])
        capsys.readouterr()
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert payload["schema"] == MANIFEST_SCHEMA
        assert [e["experiment_id"] for e in payload["experiments"]] == ["R3", "R4"]
        campaign = [
            event
            for record in payload["experiments"]
            for event in record["artifacts"]
            if event["key"].startswith("campaign:reference")
        ]
        assert [event["status"] for event in campaign] == ["miss", "hit"]

    def test_cache_dir_persists_and_warm_run_disk_hits(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        cold_manifest = tmp_path / "cold.json"
        warm_manifest = tmp_path / "warm.json"
        main(
            ["run", "R3", "--quiet", "--cache-dir", str(cache),
             "--manifest", str(cold_manifest)]
        )
        cold_out = capsys.readouterr().out
        assert any(cache.iterdir()), "cold run must persist artifacts"
        main(
            ["run", "R3", "--cache-dir", str(cache),
             "--manifest", str(warm_manifest)]
        )
        capsys.readouterr()
        warm = json.loads(warm_manifest.read_text(encoding="utf-8"))
        assert warm["totals"]["disk-hit"] >= 1
        assert warm["totals"]["miss"] < json.loads(
            cold_manifest.read_text(encoding="utf-8")
        )["totals"]["miss"]
        del cold_out


class TestObservabilityFlags:
    def test_trace_writes_perfetto_loadable_json(self, tmp_path, capsys):
        from repro.obs import TRACE_SCHEMA, spans_from_chrome_trace

        trace_path = tmp_path / "t.json"
        main(["run", "R1", "--quiet", "--trace", str(trace_path)])
        err = capsys.readouterr().err
        payload = json.loads(trace_path.read_text(encoding="utf-8"))
        assert payload["otherData"]["schema"] == TRACE_SCHEMA
        assert payload["traceEvents"], "a run must record spans"
        assert all(e["ph"] == "X" for e in payload["traceEvents"])
        spans = spans_from_chrome_trace(payload)
        assert {"engine.run", "experiment.R1"} <= {s.name for s in spans}
        assert f"[trace: {len(spans)} spans -> {trace_path}]" in err

    def test_metrics_out_counters_match_manifest(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        manifest_path = tmp_path / "run.json"
        main(
            ["run", "R3", "R4", "--quiet", "--jobs", "2",
             "--metrics-out", str(metrics_path),
             "--manifest", str(manifest_path)]
        )
        capsys.readouterr()
        counters = json.loads(metrics_path.read_text(encoding="utf-8"))["counters"]
        totals = json.loads(manifest_path.read_text(encoding="utf-8"))["totals"]
        for status, total in totals.items():
            assert counters.get(
                f"engine.cache.{status.replace('-', '_')}", 0
            ) == total, status
        assert counters["engine.experiments.completed"] == 2

    def test_profile_writes_pstats_and_hotspots(self, tmp_path, capsys):
        main(["run", "R1", "--quiet", "--profile", str(tmp_path)])
        err = capsys.readouterr().err
        assert (tmp_path / "r1.pstats").exists()
        hotspots = (tmp_path / "hotspots.txt").read_text(encoding="utf-8")
        assert "Hotspots — R1" in hotspots
        assert "[profiles: 1 .pstats" in err

    def test_stats_renders_a_dump(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        main(["run", "R1", "--quiet", "--metrics-out", str(metrics_path)])
        capsys.readouterr()
        assert main(["stats", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "Counters" in out
        assert "engine.experiments.completed" in out

    def test_stats_prefix_filters(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        main(["run", "R1", "--quiet", "--metrics-out", str(metrics_path)])
        capsys.readouterr()
        main(["stats", str(metrics_path), "--prefix", "engine.cache."])
        out = capsys.readouterr().out
        assert "engine.cache.miss" in out
        assert "engine.experiments.completed" not in out

    def test_stats_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no such metrics dump"):
            main(["stats", str(tmp_path / "nope.json")])

    def test_stats_cache_dir_summarizes_quarantine(self, tmp_path, capsys):
        (tmp_path / "a.json.corrupt").write_bytes(b"x" * 10)
        (tmp_path / "b.json.corrupt").write_bytes(b"y" * 6)
        (tmp_path / "healthy.json").write_text("{}")
        assert main(["stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "quarantined cache files: 2 (16 bytes" in out
        assert "a.json.corrupt" in out
        assert "healthy.json" not in out

    def test_stats_requires_some_input(self):
        with pytest.raises(SystemExit, match="metrics FILE and/or --cache-dir"):
            main(["stats"])

    def test_stats_missing_cache_dir_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no such cache dir"):
            main(["stats", "--cache-dir", str(tmp_path / "nope")])


class TestParser:
    def test_run_requires_at_least_one_id(self):
        # ids are optional at parse time (--resume supplies them), so the
        # check happens in main().
        with pytest.raises(SystemExit, match="experiment ids required"):
            main(["run"])

    def test_run_rejects_ids_alongside_resume(self, tmp_path):
        with pytest.raises(SystemExit, match="--resume"):
            main(["run", "R1", "--resume", str(tmp_path / "m.json")])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "R1"])
        assert args.seed == 2015
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.manifest is None
        assert args.trace is None
        assert args.metrics_out is None
        assert args.profile is None
        assert args.executor == "thread"

    def test_executor_accepts_thread_and_process_only(self):
        parser = build_parser()
        assert parser.parse_args(
            ["run", "R1", "--executor", "process"]
        ).executor == "process"
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "R1", "--executor", "fiber"])

    def test_bare_profile_defaults_to_results_dir(self):
        from pathlib import Path

        args = build_parser().parse_args(["run", "R1", "--profile"])
        assert args.profile == Path("results")


class TestScale:
    def test_scale_run_prints_totals_and_summary(self, capsys):
        assert main(["run", "--scale", "90", "--shard-size", "30"]) == 0
        captured = capsys.readouterr()
        assert (
            "Sharded campaign totals [web-services] — 90 units in 3 shards"
            in captured.out
        )
        assert "[90 units in 3 shards (shard_size=30)" in captured.err

    def test_scale_manifest_has_shard_schema(self, tmp_path, capsys):
        manifest_path = tmp_path / "shards.json"
        main(
            ["run", "--scale", "60", "--shard-size", "30", "--quiet",
             "--jobs", "2", "--manifest", str(manifest_path)]
        )
        capsys.readouterr()
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro/shard-run@2"
        assert payload["scale"] == 60
        assert [r["status"] for r in payload["shards"]] == ["completed"] * 2
        assert all(r["cells"] is not None for r in payload["shards"])

    def test_injected_fault_without_keep_going_aborts(self, capsys):
        with pytest.raises(SystemExit, match="run aborted — shard 1"):
            main(
                ["run", "--scale", "60", "--shard-size", "30", "--quiet",
                 "--inject-fault", "S1"]
            )

    def test_keep_going_then_resume_completes_the_run(self, tmp_path, capsys):
        manifest_path = tmp_path / "shards.json"
        code = main(
            ["run", "--scale", "90", "--shard-size", "30", "--quiet",
             "--keep-going", "--inject-fault", "s1",
             "--manifest", str(manifest_path)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "[shard 1 failed after 1 attempt: InjectedFault" in captured.err
        assert main(["run", "--quiet", "--resume", str(manifest_path)]) == 0
        err = capsys.readouterr().err
        assert "[90 units in 3 shards (shard_size=30)" in err

    def test_retries_recover_and_totals_render(self, capsys):
        code = main(
            ["run", "--scale", "60", "--shard-size", "30",
             "--retries", "1", "--inject-fault", "S0:fail=1"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Sharded campaign totals" in captured.out

    def test_trace_and_metrics_record_shard_activity(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        main(
            ["run", "--scale", "60", "--shard-size", "30", "--quiet",
             "--trace", str(trace_path), "--metrics-out", str(metrics_path)]
        )
        capsys.readouterr()
        events = json.loads(trace_path.read_text(encoding="utf-8"))["traceEvents"]
        assert {"engine.shard_run", "shard.generate", "shard.evaluate"} <= {
            e["name"] for e in events
        }
        counters = json.loads(metrics_path.read_text(encoding="utf-8"))["counters"]
        assert counters["engine.shards.completed"] == 2
        assert counters["engine.shards.units"] == 60

    def test_scale_rejects_experiment_ids(self):
        with pytest.raises(SystemExit, match="not experiments"):
            main(["run", "R1", "--scale", "100"])

    def test_scale_rejects_resume_out_profile(self, tmp_path):
        with pytest.raises(SystemExit, match="don't pass --scale alongside"):
            main(["run", "--scale", "10", "--resume", str(tmp_path / "m.json")])
        with pytest.raises(SystemExit, match="--out applies to experiment"):
            main(["run", "--scale", "10", "--out", str(tmp_path)])
        with pytest.raises(SystemExit, match="--profile applies to experiment"):
            main(["run", "--scale", "10", "--profile"])

    def test_wal_requires_scale(self, tmp_path):
        with pytest.raises(SystemExit, match="--wal applies to --scale"):
            main(["run", "R1", "--wal", str(tmp_path / "w.wal")])

    def test_wal_rejects_ecosystem_all(self, tmp_path):
        with pytest.raises(SystemExit, match="interleave"):
            main(
                ["run", "--scale", "10", "--ecosystem", "all",
                 "--wal", str(tmp_path / "w.wal")]
            )

    def test_wal_rejects_journal_resume(self, tmp_path):
        from repro.bench.engine.wal import JournalHeader, ShardJournal

        wal_path = tmp_path / "w.wal"
        journal = ShardJournal.create(
            wal_path,
            JournalHeader(
                seed=2015, scale=60, shard_size=30, ecosystem="web-services",
                tool_names=("ToolA",), tool_families=None,
            ),
        )
        journal.close()
        with pytest.raises(SystemExit, match="don't pass --wal alongside"):
            main(
                ["run", "--resume", str(wal_path),
                 "--wal", str(tmp_path / "other.wal")]
            )

    def test_shard_size_requires_scale(self):
        with pytest.raises(SystemExit, match="--shard-size requires --scale"):
            main(["run", "R1", "--shard-size", "10"])

    def test_transport_and_chunk_require_scale(self):
        with pytest.raises(SystemExit, match="--transport applies to --scale"):
            main(["run", "R1", "--transport", "shm"])
        with pytest.raises(SystemExit, match="--chunk applies to --scale"):
            main(["run", "R1", "--chunk", "2"])

    def test_chunk_must_be_positive(self):
        with pytest.raises(SystemExit, match="--chunk must be >= 1"):
            main(["run", "--scale", "60", "--shard-size", "30", "--chunk", "0"])

    def test_scale_accepts_timeout(self):
        code = main(
            ["run", "--scale", "60", "--shard-size", "30", "--quiet",
             "--timeout", "30"]
        )
        assert code == 0

    def test_wal_resume_round_trip(self, tmp_path):
        from repro.bench.engine.faults import tear_file

        wal = tmp_path / "run.wal"
        code = main(
            ["run", "--scale", "60", "--shard-size", "30", "--quiet",
             "--wal", str(wal)]
        )
        assert code == 0
        tear_file(wal, n_bytes=16)  # lose the final record's tail
        manifest = tmp_path / "resumed.json"
        code = main(
            ["run", "--resume", str(wal), "--quiet",
             "--manifest", str(manifest)]
        )
        assert code == 0
        payload = json.loads(manifest.read_text(encoding="utf-8"))
        assert payload["extra"]["resume"] == {
            "carried": [0],
            "source": "wal",
        }
        assert [r["status"] for r in payload["shards"]] == ["completed"] * 2

    def test_transport_recorded_in_manifest(self, tmp_path, capsys):
        manifest_path = tmp_path / "shards.json"
        code = main(
            ["run", "--scale", "60", "--shard-size", "30", "--quiet",
             "--jobs", "2", "--executor", "process", "--transport", "shm",
             "--manifest", str(manifest_path)]
        )
        capsys.readouterr()
        assert code == 0
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert payload["extra"]["transport"] == "shm"

    def test_invalid_scale_values_are_clean_errors(self):
        with pytest.raises(SystemExit, match="--scale must be >= 1"):
            main(["run", "--scale", "0"])
        with pytest.raises(SystemExit, match="--shard-size must be >= 1"):
            main(["run", "--scale", "10", "--shard-size", "0"])

    def test_resume_with_experiment_manifest_uses_experiment_path(
        self, tmp_path, capsys
    ):
        # An experiment-engine manifest routes to the experiment resume
        # path, not the sharded one, based on its schema tag.
        manifest_path = tmp_path / "run.json"
        main(["run", "R1", "--quiet", "--manifest", str(manifest_path)])
        capsys.readouterr()
        assert main(["run", "--quiet", "--resume", str(manifest_path)]) == 0
        err = capsys.readouterr().err
        assert "R1" in err


class TestEcosystemFlags:
    def test_list_ecosystems_prints_both_registries(self, capsys):
        from repro.tools.families import family_names
        from repro.workload.ecosystems import ecosystem_names

        assert main(["run", "--list-ecosystems"]) == 0
        out = capsys.readouterr().out
        for name in ecosystem_names():
            assert name in out
        for key in family_names():
            assert key in out

    def test_ecosystem_run_labels_the_totals(self, tmp_path, capsys):
        manifest_path = tmp_path / "eco.json"
        code = main(
            ["run", "--scale", "40", "--shard-size", "20",
             "--ecosystem", "npm-deps", "--manifest", str(manifest_path)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "[npm-deps]" in captured.out
        assert "ecosystem=npm-deps" in captured.err
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert payload["ecosystem"] == "npm-deps"

    def test_unknown_ecosystem_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="unknown ecosystem 'bogus'"):
            main(["run", "--scale", "40", "--ecosystem", "bogus"])

    def test_unknown_tool_family_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="unknown tool family 'nope'"):
            main(["run", "--scale", "40", "--tool-family", "nope"])

    def test_ecosystem_requires_scale(self):
        with pytest.raises(SystemExit, match="--ecosystem requires --scale"):
            main(["run", "R1", "--ecosystem", "npm-deps"])

    def test_tool_family_requires_scale(self):
        with pytest.raises(SystemExit, match="--tool-family requires --scale"):
            main(["run", "R1", "--tool-family", "sa"])

    def test_ecosystem_rejected_alongside_resume(self, tmp_path):
        with pytest.raises(SystemExit, match="--ecosystem"):
            main(
                ["run", "--resume", str(tmp_path / "m.json"),
                 "--ecosystem", "npm-deps"]
            )

    def test_ecosystem_all_runs_every_registry_entry(self, capsys):
        from repro.workload.ecosystems import ecosystem_names

        code = main(
            ["run", "--scale", "30", "--shard-size", "15",
             "--ecosystem", "all", "--quiet"]
        )
        err = capsys.readouterr().err
        assert code == 0
        for name in ecosystem_names():
            assert f"[ecosystem {name}]" in err

    def test_ecosystem_all_rejects_manifest(self, tmp_path):
        with pytest.raises(SystemExit, match="--ecosystem all"):
            main(
                ["run", "--scale", "30", "--ecosystem", "all",
                 "--manifest", str(tmp_path / "m.json")]
            )


class TestServe:
    """Argument validation for the campaign service subcommand.

    The service itself is exercised in tests/serve/; here we only assert
    that bad invocations die before a socket ever binds.
    """

    def test_state_dir_is_required(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve"])
        assert "--state-dir" in capsys.readouterr().err

    def test_worker_counts_must_be_positive(self, tmp_path):
        state = str(tmp_path / "state")
        with pytest.raises(SystemExit, match="--serve-workers"):
            main(["serve", "--state-dir", state, "--serve-workers", "0"])
        with pytest.raises(SystemExit, match="--jobs"):
            main(["serve", "--state-dir", state, "--jobs", "0"])
        with pytest.raises(SystemExit, match="--quantum"):
            main(["serve", "--state-dir", state, "--quantum", "0"])
        with pytest.raises(SystemExit, match="--result-cache"):
            main(["serve", "--state-dir", state, "--result-cache", "0"])

    def test_tenant_weight_syntax(self, tmp_path):
        state = str(tmp_path / "state")
        for bad in ("ci", "ci=", "=2", "ci=zero", "ci=0", "ci=-1"):
            with pytest.raises(SystemExit, match="--tenant-weight"):
                main(
                    ["serve", "--state-dir", state, "--tenant-weight", bad]
                )

    def test_weight_parser_accepts_valid_specs(self):
        from repro.cli import _parse_tenant_weights

        assert _parse_tenant_weights(["ci=2.5", "ad-hoc=0.5"]) == {
            "ci": 2.5,
            "ad-hoc": 0.5,
        }
        assert _parse_tenant_weights(None) == {}

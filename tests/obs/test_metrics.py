"""Tests for the metrics registry and the dump differ."""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConfigurationError
from repro.obs import METRICS_SCHEMA, MetricsRegistry, diff_dumps


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 2)
        assert registry.counter("hits").value == 3

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            registry.inc("hits", -1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        registry.set_gauge("wall", 3.5)
        registry.set_gauge("wall", 1.25)
        assert registry.gauge("wall").value == 1.25

    def test_histogram_buckets_observations(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]  # <=1, <=10, +inf
        assert histogram.count == 3
        assert histogram.total == pytest.approx(105.5)

    def test_histogram_rejects_unsorted_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="ascending"):
            registry.histogram("bad", buckets=(2.0, 1.0))

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_prefix_filtering_and_sorting(self):
        registry = MetricsRegistry()
        for name in ("engine.cache.miss", "engine.cache.hit", "suite.units"):
            registry.inc(name)
        values = registry.counter_values("engine.cache.")
        assert list(values) == ["engine.cache.hit", "engine.cache.miss"]

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()

        def bump(_: int) -> None:
            for _ in range(100):
                registry.inc("n")

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(bump, range(8)))
        assert registry.counter("n").value == 800


class TestRoundTrip:
    def populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.inc("engine.cache.hit", 4)
        registry.inc("engine.cache.miss", 2)
        registry.set_gauge("engine.wall_seconds", 12.5)
        registry.observe("engine.experiment.seconds", 0.25)
        return registry

    def test_to_dict_is_schema_tagged_json(self):
        payload = self.populated().to_dict()
        assert payload["schema"] == METRICS_SCHEMA
        json.dumps(payload)

    def test_from_dict_rebuilds_every_instrument(self):
        original = self.populated()
        payload = json.loads(json.dumps(original.to_dict()))
        rebuilt = MetricsRegistry.from_dict(payload)
        assert rebuilt.to_dict() == original.to_dict()

    def test_schema_drift_rejected(self):
        payload = self.populated().to_dict()
        payload["schema"] = "repro/metrics@99"
        with pytest.raises(ConfigurationError, match="schema"):
            MetricsRegistry.from_dict(payload)

    def test_render_lists_each_section(self):
        text = self.populated().render()
        assert "Counters" in text
        assert "Gauges" in text
        assert "Histograms" in text
        assert "engine.cache.hit" in text

    def test_render_prefix_narrows(self):
        text = self.populated().render("engine.cache.")
        assert "engine.cache.hit" in text
        assert "engine.wall_seconds" not in text

    def test_render_empty_registry(self):
        assert MetricsRegistry().render() == "(no metrics recorded)"


class TestMergeDict:
    def test_counters_add_and_gauges_take_incoming(self):
        parent = MetricsRegistry()
        parent.inc("engine.cache.hit", 2)
        worker = MetricsRegistry()
        worker.inc("engine.cache.hit", 3)
        worker.inc("engine.cache.miss")
        worker.set_gauge("engine.jobs", 4)
        parent.merge_dict(worker.to_dict())
        assert parent.counter("engine.cache.hit").value == 5
        assert parent.counter("engine.cache.miss").value == 1
        assert parent.gauge("engine.jobs").value == 4.0

    def test_histograms_add_bucket_by_bucket(self):
        parent = MetricsRegistry()
        parent.observe("seconds", 0.002)
        worker = MetricsRegistry()
        worker.observe("seconds", 0.002)
        worker.observe("seconds", 2.0)
        parent.merge_dict(worker.to_dict())
        merged = parent.histogram("seconds")
        assert merged.count == 3
        assert merged.total == pytest.approx(0.002 + 0.002 + 2.0)
        assert sum(merged.counts) == 3

    def test_merge_is_round_trip_equivalent(self):
        worker = MetricsRegistry()
        worker.inc("a", 7)
        worker.observe("s", 0.5)
        parent = MetricsRegistry()
        parent.merge_dict(worker.to_dict())
        assert parent.to_dict() == worker.to_dict()

    def test_schema_drift_rejected(self):
        parent = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="schema"):
            parent.merge_dict({"schema": "repro/metrics@99"})

    def test_bucket_mismatch_rejected(self):
        parent = MetricsRegistry()
        parent.histogram("seconds", (1.0, 2.0))
        worker = MetricsRegistry()
        worker.histogram("seconds", (5.0, 6.0)).observe(5.5)
        with pytest.raises(ConfigurationError, match="bucket mismatch"):
            parent.merge_dict(worker.to_dict())


class TestDiffDumps:
    def dump(self, hit: int, miss: int, wall: float) -> dict:
        registry = MetricsRegistry()
        registry.inc("engine.cache.hit", hit)
        registry.inc("engine.cache.miss", miss)
        registry.set_gauge("engine.wall_seconds", wall)
        return registry.to_dict()

    def test_no_change_flags_nothing(self):
        dump = self.dump(hit=8, miss=2, wall=10.0)
        diff = diff_dumps(dump, dump)
        assert diff.regressions == ()
        assert diff.counter_deltas == {}
        assert "No counter changed" in diff.render()

    def test_hit_rate_drop_is_flagged(self):
        diff = diff_dumps(
            self.dump(hit=8, miss=2, wall=10.0),
            self.dump(hit=2, miss=8, wall=10.0),
        )
        assert any("hit rate" in finding for finding in diff.regressions)
        assert diff.hit_rate_before == pytest.approx(0.8)
        assert diff.hit_rate_after == pytest.approx(0.2)
        assert "REGRESSIONS FLAGGED" in diff.render()

    def test_wall_time_growth_is_flagged(self):
        diff = diff_dumps(
            self.dump(hit=8, miss=2, wall=10.0),
            self.dump(hit=8, miss=2, wall=20.0),
        )
        assert any("wall time" in finding for finding in diff.regressions)

    def test_growth_below_threshold_passes(self):
        diff = diff_dumps(
            self.dump(hit=8, miss=2, wall=10.0),
            self.dump(hit=8, miss=2, wall=10.5),
        )
        assert diff.regressions == ()

    def test_counter_deltas_report_before_and_after(self):
        diff = diff_dumps(
            self.dump(hit=8, miss=2, wall=10.0),
            self.dump(hit=9, miss=2, wall=10.0),
        )
        assert diff.counter_deltas == {"engine.cache.hit": (8, 9)}

    def test_schema_checked_on_both_sides(self):
        good = self.dump(hit=1, miss=1, wall=1.0)
        with pytest.raises(ConfigurationError, match="schema"):
            diff_dumps(good, {"schema": "nope"})

"""Tests for the tracer's ring lane: wraparound, laziness, equivalence.

The ring lane defers all expensive span bookkeeping (record construction,
timestamp arithmetic, args coercion, ordering) from span close to drain
time.  These tests pin the contract that makes the deferral safe: nothing
the slow eager lane (``ring_capacity=0``) records is lost or reordered by
the ring, at any capacity, including across wraparound.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConfigurationError
from repro.obs import DEFAULT_RING_CAPACITY, Tracer


def run_workload(tracer: Tracer, rounds: int = 10) -> None:
    """A deterministic nested-span workload both lanes can replay."""
    for index in range(rounds):
        with tracer.span("outer", round=index):
            # A non-JSON-safe arg with a deterministic str(): coercion to
            # string must happen at drain, identically in both lanes.
            with tracer.span("inner", round=index, detail=[index, "x"]):
                pass
            with tracer.span("leaf"):
                pass


class TestRingWraparound:
    def test_no_span_lost_past_capacity(self):
        tracer = Tracer(ring_capacity=4)
        for index in range(25):
            with tracer.span("work", index=index):
                pass
        spans = tracer.spans
        assert len(spans) == 25
        assert [dict(r.args)["index"] for r in spans] == list(range(25))

    def test_len_counts_ring_and_drained_records(self):
        tracer = Tracer(ring_capacity=8)
        for _ in range(5):
            with tracer.span("work"):
                pass
        # Five spans sit in the ring, none drained yet — len sees them all.
        assert len(tracer) == 5
        assert len(tracer.spans) == 5  # the read drains
        assert len(tracer) == 5

    def test_close_order_survives_interleaved_drains(self):
        tracer = Tracer(ring_capacity=3)
        for index in range(4):
            with tracer.span("a", index=index):
                pass
        assert len(tracer.spans) == 4  # force a mid-sequence drain
        for index in range(4, 9):
            with tracer.span("a", index=index):
                pass
        indices = [dict(r.args)["index"] for r in tracer.spans]
        assert indices == list(range(9))

    def test_capacity_one_degenerates_gracefully(self):
        tracer = Tracer(ring_capacity=1)
        run_workload(tracer, rounds=3)
        assert len(tracer.spans) == 9

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="ring_capacity"):
            Tracer(ring_capacity=-1)


class TestLazyConversion:
    def test_starts_monotonic_across_wraparound(self):
        # Timestamps stay raw perf_counter_ns until drain; conversion must
        # not disturb the close-order timeline even when the ring wrapped.
        tracer = Tracer(ring_capacity=4)
        for _ in range(20):
            with tracer.span("tick"):
                pass
        starts = [record.start for record in tracer.spans]
        assert starts == sorted(starts)
        assert all(start >= 0 for start in starts)

    def test_args_coerced_at_drain_not_close(self):
        tracer = Tracer(ring_capacity=16)
        with tracer.span("x", weird=object(), b=2, a="one"):
            pass
        (record,) = tracer.spans
        keys = [k for k, _ in record.args]
        assert keys == sorted(keys)
        json.dumps(dict(record.args))  # coerced JSON-safe at drain

    def test_nesting_resolved_in_ring_lane(self):
        tracer = Tracer(ring_capacity=4)
        run_workload(tracer, rounds=4)  # 12 spans through a 4-slot ring
        by_id = {record.span_id: record for record in tracer.spans}
        for record in by_id.values():
            if record.name == "outer":
                assert record.parent_id is None
            else:
                assert by_id[record.parent_id].name == "outer"

    def test_ingest_drains_before_appending(self):
        remote = Tracer()
        with remote.span("remote.work"):
            pass
        local = Tracer(ring_capacity=4)
        with local.span("local.work"):
            pass
        local.ingest(remote.spans)
        names = [record.name for record in local.spans]
        # The ring-lane span drained ahead of the ingested batch.
        assert names == ["local.work", "remote.work"]


class TestLaneEquivalence:
    def export_shapes(self, tracer: Tracer) -> list[tuple]:
        """The structure of an export, minus the timing values."""
        payload = tracer.to_chrome_trace()
        spans = {r.span_id: r for r in tracer.spans}
        shapes = []
        for event in payload["traceEvents"]:
            parent_id = event["args"].get("parent_id")
            parent = spans[parent_id].name if parent_id is not None else None
            args = {
                k: v
                for k, v in event["args"].items()
                if k not in ("span_id", "parent_id")
            }
            shapes.append((event["name"], parent, tuple(sorted(args.items()))))
        return shapes

    def test_ring_matches_eager_lane(self):
        ring = Tracer(ring_capacity=DEFAULT_RING_CAPACITY)
        eager = Tracer(ring_capacity=0)
        run_workload(ring)
        run_workload(eager)
        assert self.export_shapes(ring) == self.export_shapes(eager)

    def test_ring_matches_eager_lane_across_wraparound(self):
        ring = Tracer(ring_capacity=2)  # every round wraps several times
        eager = Tracer(ring_capacity=0)
        run_workload(ring)
        run_workload(eager)
        assert self.export_shapes(ring) == self.export_shapes(eager)

    def test_summary_identical_counts(self):
        ring = Tracer(ring_capacity=8)
        eager = Tracer(ring_capacity=0)
        run_workload(ring)
        run_workload(eager)
        assert {
            name: entry["count"] for name, entry in ring.summary().items()
        } == {name: entry["count"] for name, entry in eager.summary().items()}


class TestRingThreading:
    def test_concurrent_closes_never_drop_spans(self):
        tracer = Tracer(ring_capacity=8)  # far smaller than the span count

        def work(worker: int) -> None:
            for index in range(50):
                with tracer.span("w", worker=worker, index=index):
                    pass

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(work, range(4)))

        spans = tracer.spans
        assert len(spans) == 200
        seen = {
            (dict(r.args)["worker"], dict(r.args)["index"]) for r in spans
        }
        assert len(seen) == 200

"""Tests for the cProfile hooks: .pstats files plus the hotspot table."""

from __future__ import annotations

import pstats

import pytest

from repro.obs import Profiler


def burn(n: int = 20_000) -> int:
    return sum(i * i for i in range(n))


class TestProfiler:
    def test_writes_loadable_pstats(self, tmp_path):
        profiler = Profiler(tmp_path)
        with profiler.profile("R3"):
            burn()
        path = tmp_path / "r3.pstats"
        assert path.exists()
        stats = pstats.Stats(str(path))
        assert stats.total_calls > 0

    def test_report_ranks_by_cumulative_time(self, tmp_path):
        profiler = Profiler(tmp_path, top_n=5)
        with profiler.profile("R3"):
            burn()
        (report,) = profiler.reports
        assert report.name == "R3"
        assert 0 < len(report.hotspots) <= 5
        cumulative = [row.cumulative_seconds for row in report.hotspots]
        assert cumulative == sorted(cumulative, reverse=True)
        assert any("burn" in row.location for row in report.hotspots)

    def test_reports_sorted_by_name(self, tmp_path):
        profiler = Profiler(tmp_path)
        for name in ("R9", "R3"):
            with profiler.profile(name):
                burn(1000)
        assert [r.name for r in profiler.reports] == ["R3", "R9"]

    def test_exception_still_dumps_the_profile(self, tmp_path):
        profiler = Profiler(tmp_path)
        with pytest.raises(RuntimeError):
            with profiler.profile("R5"):
                raise RuntimeError("boom")
        assert (tmp_path / "r5.pstats").exists()
        assert [r.name for r in profiler.reports] == ["R5"]

    def test_hotspot_table_and_write(self, tmp_path):
        profiler = Profiler(tmp_path)
        with profiler.profile("R3"):
            burn()
        table = profiler.hotspot_table()
        assert "Hotspots — R3" in table
        assert "cumulative s" in table
        target = profiler.write_hotspots()
        assert target == tmp_path / "hotspots.txt"
        assert target.read_text(encoding="utf-8").startswith(table[:20])

    def test_empty_profiler_renders_placeholder(self, tmp_path):
        assert Profiler(tmp_path).hotspot_table() == "(nothing profiled)"

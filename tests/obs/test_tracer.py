"""Tests for the tracer: nesting, threads, Chrome-trace round trip."""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConfigurationError
from repro.obs import TRACE_SCHEMA, Tracer, spans_from_chrome_trace


class TestSpans:
    def test_records_name_and_duration(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        (record,) = tracer.spans
        assert record.name == "work"
        assert record.duration >= 0
        assert record.parent_id is None
        assert record.thread_id == threading.get_ident()

    def test_nested_spans_record_in_close_order_with_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans
        assert [inner.name, outer.name] == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.start >= outer.start

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, outer = tracer.spans
        assert a.parent_id == b.parent_id == outer.span_id

    def test_span_ids_are_unique(self):
        tracer = Tracer()
        for _ in range(10):
            with tracer.span("x"):
                pass
        ids = [record.span_id for record in tracer.spans]
        assert len(set(ids)) == 10

    def test_args_sorted_and_json_safe(self):
        tracer = Tracer()
        with tracer.span("x", b=2, a="one", weird=object()):
            pass
        (record,) = tracer.spans
        keys = [k for k, _ in record.args]
        assert keys == sorted(keys)
        assert json.dumps(dict(record.args))  # must serialize

    def test_exception_still_closes_the_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert len(tracer) == 1
        assert tracer.spans[0].name == "doomed"

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible") as span_id:
            assert span_id is None
        assert len(tracer) == 0
        assert tracer.spans == []


class TestThreading:
    def test_parallel_workers_get_independent_span_trees(self):
        tracer = Tracer()

        def work(i: int) -> None:
            with tracer.span("outer", worker=i):
                with tracer.span("inner", worker=i):
                    pass

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(work, range(8)))

        spans = tracer.spans
        assert len(spans) == 16
        by_id = {record.span_id: record for record in spans}
        for record in spans:
            if record.name != "inner":
                continue
            parent = by_id[record.parent_id]
            assert parent.name == "outer"
            # The parent is on the same thread and carries the same worker.
            assert parent.thread_id == record.thread_id
            assert dict(parent.args)["worker"] == dict(record.args)["worker"]


class TestIngest:
    def make_remote(self):
        remote = Tracer()
        with remote.span("outer"):
            with remote.span("inner"):
                pass
        return remote

    def test_ingested_spans_join_the_timeline(self):
        local = Tracer()
        with local.span("local.work"):
            pass
        remote = self.make_remote()
        local.ingest(remote.spans)
        names = {record.name for record in local.spans}
        assert names == {"local.work", "outer", "inner"}

    def test_ids_remapped_without_collisions(self):
        local = Tracer()
        with local.span("local.work"):
            pass
        remote = self.make_remote()
        local.ingest(remote.spans)
        ids = [record.span_id for record in local.spans]
        assert len(ids) == len(set(ids))

    def test_parent_links_within_batch_preserved(self):
        local = Tracer()
        local.ingest(self.make_remote().spans)
        by_name = {record.name: record for record in local.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_offset_shifts_starts(self):
        local = Tracer()
        remote = self.make_remote()
        local.ingest(remote.spans, offset_seconds=100.0)
        outer_remote = next(r for r in remote.spans if r.name == "outer")
        outer_local = next(r for r in local.spans if r.name == "outer")
        assert outer_local.start == pytest.approx(outer_remote.start + 100.0)

    def test_disabled_tracer_ignores_ingest(self):
        local = Tracer(enabled=False)
        local.ingest(self.make_remote().spans)
        assert len(local) == 0

    def test_epoch_unix_anchors_two_tracers(self):
        import time

        before = time.time()
        tracer = Tracer()
        after = time.time()
        assert before <= tracer.epoch_unix <= after


class TestSummary:
    def test_aggregates_per_name_sorted(self):
        tracer = Tracer()
        for name in ("b", "a", "b"):
            with tracer.span(name):
                pass
        summary = tracer.summary()
        assert list(summary) == ["a", "b"]
        assert summary["b"]["count"] == 2
        assert summary["a"]["seconds"] >= 0


class TestChromeTrace:
    def make_tracer(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("outer", seed=7):
            with tracer.span("inner"):
                pass
        return tracer

    def test_export_shape(self):
        payload = self.make_tracer().to_chrome_trace()
        assert payload["otherData"]["schema"] == TRACE_SCHEMA
        assert payload["displayTimeUnit"] == "ms"
        assert all(e["ph"] == "X" for e in payload["traceEvents"])
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in payload["traceEvents"])
        json.dumps(payload)  # Perfetto gets real JSON

    def test_events_sorted_by_start(self):
        payload = self.make_tracer().to_chrome_trace()
        timestamps = [e["ts"] for e in payload["traceEvents"]]
        assert timestamps == sorted(timestamps)

    def test_round_trip_preserves_spans(self):
        tracer = self.make_tracer()
        payload = json.loads(json.dumps(tracer.to_chrome_trace()))
        rebuilt = spans_from_chrome_trace(payload)
        original = sorted(tracer.spans, key=lambda r: r.span_id)
        rebuilt = sorted(rebuilt, key=lambda r: r.span_id)
        assert [r.name for r in rebuilt] == [r.name for r in original]
        assert [r.parent_id for r in rebuilt] == [r.parent_id for r in original]
        assert [dict(r.args) for r in rebuilt] == [dict(r.args) for r in original]
        for got, want in zip(rebuilt, original):
            assert got.duration == pytest.approx(want.duration, abs=1e-9)

    def test_schema_drift_rejected(self):
        payload = self.make_tracer().to_chrome_trace()
        payload["otherData"]["schema"] = "repro/trace@99"
        with pytest.raises(ConfigurationError, match="schema"):
            spans_from_chrome_trace(payload)

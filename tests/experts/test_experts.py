"""Tests for simulated experts, panels and aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ElicitationError
from repro.experts.expert import Expert
from repro.experts.panel import (
    ExpertPanel,
    aggregate_judgments,
    aggregate_priorities,
    default_panel,
)
from repro.mcda.pairwise import SAATY_VALUES, PairwiseComparisonMatrix

CONSENSUS = {"a": 0.5, "b": 0.3, "c": 0.2}


class TestExpert:
    def test_latent_weights_normalized(self):
        expert = Expert(name="e", persona="p", bias={"a": 2.0})
        weights = expert.latent_weights(CONSENSUS)
        assert sum(weights.values()) == pytest.approx(1.0)
        assert weights["a"] > 0.5  # the bias bent it upward

    def test_no_bias_keeps_consensus(self):
        expert = Expert(name="e", persona="p")
        weights = expert.latent_weights(CONSENSUS)
        assert weights["a"] == pytest.approx(0.5)

    def test_rejects_negative_noise(self):
        with pytest.raises(ElicitationError):
            Expert(name="e", persona="p", noise_sigma=-0.1)

    def test_rejects_non_positive_bias(self):
        with pytest.raises(ElicitationError):
            Expert(name="e", persona="p", bias={"a": 0.0})

    def test_judgments_are_saaty_valued(self):
        expert = Expert(name="e", persona="p", seed=4)
        matrix = expert.judge(CONSENSUS, context_key="t")
        n = len(matrix)
        for i in range(n):
            for j in range(i + 1, n):
                assert any(
                    matrix.values[i, j] == pytest.approx(v) for v in SAATY_VALUES
                )

    def test_judgments_deterministic_per_context(self):
        expert = Expert(name="e", persona="p", seed=4)
        a = expert.judge(CONSENSUS, context_key="t")
        b = expert.judge(CONSENSUS, context_key="t")
        assert np.array_equal(a.values, b.values)

    def test_contexts_decorrelate(self):
        expert = Expert(name="e", persona="p", seed=4, noise_sigma=0.4)
        a = expert.judge(CONSENSUS, context_key="t1")
        b = expert.judge(CONSENSUS, context_key="t2")
        assert not np.array_equal(a.values, b.values)

    def test_noiseless_expert_reports_true_ratios(self):
        expert = Expert(name="e", persona="p", noise_sigma=0.0)
        matrix = expert.judge({"a": 0.6, "b": 0.2}, context_key="t", floor=0.0)
        assert matrix.values[0, 1] == pytest.approx(3.0)

    def test_needs_two_items(self):
        expert = Expert(name="e", persona="p")
        with pytest.raises(ElicitationError):
            expert.judge({"a": 1.0}, context_key="t")

    def test_noise_degrades_consistency(self):
        """Noisier experts produce higher consistency ratios on average."""
        scores = {f"c{i}": w for i, w in enumerate([0.4, 0.25, 0.15, 0.12, 0.08])}
        quiet = [
            Expert(name=f"q{s}", persona="p", noise_sigma=0.02, seed=s)
            .judge(scores, context_key="t")
            .consistency_ratio
            for s in range(10)
        ]
        noisy = [
            Expert(name=f"n{s}", persona="p", noise_sigma=0.6, seed=s)
            .judge(scores, context_key="t")
            .consistency_ratio
            for s in range(10)
        ]
        assert np.mean(noisy) > np.mean(quiet)


class TestAggregation:
    def test_aij_of_identical_matrices_is_identity(self):
        matrix = PairwiseComparisonMatrix.from_weights(["a", "b", "c"], [3, 2, 1])
        aggregated = aggregate_judgments([matrix, matrix, matrix])
        assert np.allclose(aggregated.values, matrix.values)

    def test_aij_preserves_reciprocity(self):
        experts = [Expert(name=f"e{i}", persona="p", seed=i, noise_sigma=0.3) for i in range(5)]
        matrices = [e.judge(CONSENSUS, context_key="t") for e in experts]
        aggregated = aggregate_judgments(matrices)
        assert np.allclose(aggregated.values * aggregated.values.T, 1.0)

    def test_aij_smooths_consistency(self):
        """The aggregated panel matrix is at least as consistent as the
        average individual."""
        experts = [Expert(name=f"e{i}", persona="p", seed=i, noise_sigma=0.4) for i in range(7)]
        matrices = [e.judge(CONSENSUS, context_key="t") for e in experts]
        aggregated = aggregate_judgments(matrices)
        mean_individual_cr = np.mean([m.consistency_ratio for m in matrices])
        assert aggregated.consistency_ratio <= mean_individual_cr + 1e-9

    def test_aij_rejects_empty(self):
        with pytest.raises(ElicitationError):
            aggregate_judgments([])

    def test_aij_rejects_label_mismatch(self):
        a = PairwiseComparisonMatrix.from_weights(["a", "b"], [1, 2])
        b = PairwiseComparisonMatrix.from_weights(["a", "c"], [1, 2])
        with pytest.raises(ElicitationError):
            aggregate_judgments([a, b])

    def test_aip_averages_priorities(self):
        a = PairwiseComparisonMatrix.from_weights(["a", "b"], [3, 1])
        b = PairwiseComparisonMatrix.from_weights(["a", "b"], [1, 3])
        priorities = aggregate_priorities([a, b])
        assert priorities["a"] == pytest.approx(0.5)
        assert priorities["b"] == pytest.approx(0.5)


class TestPanel:
    def test_default_panel_has_seven_members(self):
        assert len(default_panel()) == 7

    def test_unique_names(self):
        panel = default_panel()
        assert len(set(panel.names)) == 7

    def test_rejects_empty_panel(self):
        with pytest.raises(ElicitationError):
            ExpertPanel(experts=())

    def test_rejects_duplicate_names(self):
        expert = Expert(name="same", persona="p")
        with pytest.raises(ElicitationError):
            ExpertPanel(experts=(expert, Expert(name="same", persona="q")))

    def test_panel_seed_changes_judgments(self):
        # Saaty snapping can absorb small noise differences for one member,
        # but across the whole panel two seeds must diverge somewhere.
        a = default_panel(seed=1).criteria_judgments(CONSENSUS, "s")
        b = default_panel(seed=2).criteria_judgments(CONSENSUS, "s")
        assert any(
            not np.array_equal(m_a.values, m_b.values) for m_a, m_b in zip(a, b)
        )

    def test_panel_deterministic(self):
        a = default_panel(seed=1).criteria_judgments(CONSENSUS, "s")
        b = default_panel(seed=1).criteria_judgments(CONSENSUS, "s")
        for m_a, m_b in zip(a, b):
            assert np.array_equal(m_a.values, m_b.values)

"""Tests for the elicitation pipeline (scenario + evidence + panel -> AHP)."""

from __future__ import annotations

import pytest

from repro.errors import ElicitationError
from repro.experts.elicitation import elicit_hierarchy, validate_scenario
from repro.experts.panel import default_panel
from repro.scenarios.scenarios import Scenario, scenario_by_key
from repro.scenarios.cost_model import CostStructure


class TestElicitHierarchy:
    def test_criteria_match_scenario_weights(self, properties_matrix, panel):
        scenario = scenario_by_key("balanced")
        hierarchy = elicit_hierarchy(scenario, properties_matrix, panel)
        assert set(hierarchy.criteria.labels) == set(scenario.property_weights)

    def test_alternatives_are_the_metrics(self, properties_matrix, panel):
        scenario = scenario_by_key("balanced")
        hierarchy = elicit_hierarchy(scenario, properties_matrix, panel)
        assert set(hierarchy.alternative_labels) == set(
            properties_matrix.metric_symbols
        )

    def test_rejects_scenario_with_unknown_property(self, properties_matrix, panel):
        scenario = Scenario(
            key="bad",
            name="bad",
            description="d",
            cost=CostStructure(1, 1),
            prevalence_range=(0.1, 0.2),
            property_weights={"nonexistent": 1.0},
        )
        with pytest.raises(ElicitationError):
            elicit_hierarchy(scenario, properties_matrix, panel)

    def test_deterministic(self, properties_matrix, panel):
        scenario = scenario_by_key("critical")
        a = elicit_hierarchy(scenario, properties_matrix, panel).compose()
        b = elicit_hierarchy(scenario, properties_matrix, panel).compose()
        assert a.ranking == b.ranking


class TestValidateScenario:
    def test_result_fields(self, properties_matrix, panel):
        scenario = scenario_by_key("critical")
        validation = validate_scenario(scenario, properties_matrix, panel)
        assert validation.scenario_key == "critical"
        assert validation.panel_best in properties_matrix.metric_symbols
        assert set(validation.per_expert_best) == set(panel.names)
        assert 0.0 <= validation.expert_agreement <= 1.0

    def test_aggregated_panel_is_consistent(self, properties_matrix, panel):
        for key in ("critical", "triage", "balanced", "audit"):
            validation = validate_scenario(
                scenario_by_key(key), properties_matrix, panel
            )
            assert validation.ahp.is_acceptably_consistent(), key

    def test_critical_scenario_selects_recall(self, properties_matrix, panel):
        validation = validate_scenario(
            scenario_by_key("critical"), properties_matrix, panel
        )
        assert validation.panel_best == "REC"

    def test_scenarios_disagree_on_the_winner(self, properties_matrix, panel):
        winners = {
            key: validate_scenario(
                scenario_by_key(key), properties_matrix, panel
            ).panel_best
            for key in ("critical", "triage", "balanced")
        }
        assert len(set(winners.values())) >= 2

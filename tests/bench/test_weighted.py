"""Tests for severity-weighted scoring."""

from __future__ import annotations

import pytest

from repro.bench.campaign import score_report
from repro.bench.weighted import DEFAULT_SEVERITIES, score_report_weighted
from repro.errors import ConfigurationError
from repro.metrics import definitions as d
from repro.tools.base import Detection, DetectionReport
from repro.workload.code_model import SinkSite
from repro.workload.ground_truth import GroundTruth
from repro.workload.taxonomy import VulnerabilityType

SQLI = VulnerabilityType.SQL_INJECTION  # severity 9.8
XSS = VulnerabilityType.XSS  # severity 6.1

S_SQLI = SinkSite("u1", 1, SQLI)  # vulnerable
S_XSS = SinkSite("u2", 1, XSS)  # vulnerable
S_SAFE = SinkSite("u3", 1, XSS)  # safe
TRUTH = GroundTruth.from_sites([S_SQLI, S_XSS, S_SAFE], [S_SQLI, S_XSS])


def report(*sites: SinkSite) -> DetectionReport:
    return DetectionReport(
        tool_name="t", workload_name="w",
        detections=tuple(Detection(s) for s in sites),
    )


class TestWeightedScoring:
    def test_weights_flow_into_cells(self):
        cm = score_report_weighted(report(S_SQLI), TRUTH)
        assert cm.tp == pytest.approx(9.8)
        assert cm.fn == pytest.approx(6.1)
        assert cm.tn == pytest.approx(6.1)
        assert cm.fp == 0.0

    def test_severity_changes_the_verdict(self):
        """Two tools with one detection each: unweighted recall ties them,
        weighted recall prefers the one that found the riskier bug."""
        sqli_finder = report(S_SQLI)
        xss_finder = report(S_XSS)
        unweighted = (
            d.RECALL.compute(score_report(sqli_finder, TRUTH)),
            d.RECALL.compute(score_report(xss_finder, TRUTH)),
        )
        assert unweighted[0] == unweighted[1]
        weighted = (
            d.RECALL.compute(score_report_weighted(sqli_finder, TRUTH)),
            d.RECALL.compute(score_report_weighted(xss_finder, TRUTH)),
        )
        assert weighted[0] > weighted[1]

    def test_uniform_weights_reduce_to_unweighted(self, reference_campaign, small_workload):
        uniform = {t: 2.5 for t in VulnerabilityType}
        for result in reference_campaign.results:
            weighted = score_report_weighted(
                result.report, small_workload.truth, severities=uniform
            )
            plain = result.confusion
            # Same matrix up to the constant weight factor: every
            # ratio-based metric agrees exactly.
            assert d.RECALL.value_or_nan(weighted) == pytest.approx(
                d.RECALL.value_or_nan(plain), nan_ok=True
            )
            assert d.MCC.value_or_nan(weighted) == pytest.approx(
                d.MCC.value_or_nan(plain), nan_ok=True
            )
            assert weighted.total == pytest.approx(plain.total * 2.5)

    def test_total_is_total_severity(self):
        cm = score_report_weighted(report(), TRUTH)
        assert cm.total == pytest.approx(9.8 + 6.1 + 6.1)

    def test_missing_class_rejected(self):
        with pytest.raises(ConfigurationError, match="no severity"):
            score_report_weighted(report(), TRUTH, severities={SQLI: 9.8})

    def test_non_positive_weight_rejected(self):
        bad = dict(DEFAULT_SEVERITIES)
        bad[XSS] = 0.0
        with pytest.raises(ConfigurationError, match="positive"):
            score_report_weighted(report(), TRUTH, severities=bad)

    def test_unknown_site_rejected(self):
        ghost = SinkSite("ghost", 0, SQLI)
        with pytest.raises(ConfigurationError, match="absent"):
            score_report_weighted(report(ghost), TRUTH)

    def test_default_severities_cover_taxonomy(self):
        assert set(DEFAULT_SEVERITIES) == set(VulnerabilityType)

    def test_weighted_campaign_reranks_tools(self, reference_campaign, small_workload):
        """Severity weighting can reorder tools whose strengths sit on
        different vulnerability classes."""
        weighted_recalls = {}
        plain_recalls = {}
        for result in reference_campaign.results:
            weighted = score_report_weighted(result.report, small_workload.truth)
            weighted_recalls[result.tool_name] = d.RECALL.value_or_nan(weighted)
            plain_recalls[result.tool_name] = d.RECALL.value_or_nan(result.confusion)
        # Values must differ somewhere (the suite has class-skewed tools)...
        assert any(
            weighted_recalls[t] != pytest.approx(plain_recalls[t])
            for t in weighted_recalls
        )

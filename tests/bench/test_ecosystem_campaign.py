"""Cross-ecosystem campaign tests: cell threading, accumulator guards,
sharded runs under non-default ecosystems, resume, and the R20 experiment.
"""

from __future__ import annotations

import pytest

from repro.bench.engine.shards import ShardRunManifest, run_sharded_campaign
from repro.bench.experiments import r20_ecosystems
from repro.bench.streaming import CampaignAccumulator, ShardCells, evaluate_shard
from repro.errors import ConfigurationError
from repro.tools.families import suite_for_ecosystem
from repro.workload.ecosystems import (
    DEFAULT_ECOSYSTEM,
    ecosystem_names,
    get_ecosystem,
)
from repro.workload.sharded import plan_shards

SEED = 2015


def _cells(index=0, ecosystem=DEFAULT_ECOSYSTEM):
    return ShardCells(
        shard_index=index,
        tool_names=("a", "b"),
        tp=(1, 2), fp=(1, 0), fn=(1, 0), tn=(2, 3),
        n_units=3, n_sites=5, n_vulnerable=2,
        ecosystem=ecosystem,
    )


class TestCellThreading:
    def test_cells_default_to_web_services(self):
        assert _cells().ecosystem == DEFAULT_ECOSYSTEM

    def test_from_campaign_carries_the_ecosystem(self):
        plan = plan_shards(
            scale=20, shard_size=20, seed=SEED, ecosystem="npm-deps"
        )
        tools = suite_for_ecosystem("npm-deps", seed=SEED)
        cells = evaluate_shard(tools, plan.generate(0), 0)
        assert cells.ecosystem == "npm-deps"

    def test_totals_carry_the_ecosystem(self):
        accumulator = CampaignAccumulator(["a", "b"], ecosystem="iac")
        accumulator.fold(_cells(ecosystem="iac"))
        assert accumulator.result().ecosystem == "iac"


class TestAccumulatorEcosystemGuards:
    def test_fold_rejects_foreign_ecosystem(self):
        accumulator = CampaignAccumulator(["a", "b"])
        with pytest.raises(ConfigurationError, match="ecosystem"):
            accumulator.fold(_cells(ecosystem="npm-deps"))

    def test_merge_rejects_mismatched_ecosystems(self):
        left = CampaignAccumulator(["a", "b"], ecosystem="iac")
        left.fold(_cells(0, ecosystem="iac"))
        right = CampaignAccumulator(["a", "b"], ecosystem="android")
        right.fold(_cells(1, ecosystem="android"))
        with pytest.raises(ConfigurationError, match="ecosystem"):
            left.merge(right)


class TestShardedEcosystemRuns:
    def test_default_run_is_the_historical_run(self):
        explicit = run_sharded_campaign(
            scale=60, shard_size=30, seed=SEED, ecosystem=DEFAULT_ECOSYSTEM
        )
        implicit = run_sharded_campaign(scale=60, shard_size=30, seed=SEED)
        assert explicit.totals.confusions == implicit.totals.confusions
        assert explicit.totals.tool_names == implicit.totals.tool_names
        assert implicit.totals.ecosystem == DEFAULT_ECOSYSTEM

    def test_non_default_run_uses_the_profile_suite(self):
        run = run_sharded_campaign(
            scale=50, shard_size=25, seed=7, ecosystem="npm-deps"
        )
        assert run.ok
        expected = tuple(
            tool.name for tool in suite_for_ecosystem("npm-deps", seed=7)
        )
        assert run.totals.tool_names == expected
        assert run.totals.ecosystem == "npm-deps"
        assert run.manifest.ecosystem == "npm-deps"
        assert run.manifest.tool_families == get_ecosystem(
            "npm-deps"
        ).tool_families

    def test_tool_families_restrict_the_suite(self):
        run = run_sharded_campaign(
            scale=40, shard_size=20, seed=7,
            ecosystem="npm-deps", tool_families=("sca",),
        )
        assert run.totals.tool_names == ("SCA-Lock",)
        assert run.manifest.tool_families == ("sca",)

    def test_unknown_ecosystem_or_family_fail_fast(self):
        with pytest.raises(ConfigurationError, match="unknown ecosystem"):
            run_sharded_campaign(scale=20, shard_size=10, ecosystem="bogus")
        with pytest.raises(ConfigurationError, match="unknown tool family"):
            run_sharded_campaign(
                scale=20, shard_size=10, tool_families=("nope",)
            )

    def test_parity_across_executors(self):
        thread = run_sharded_campaign(
            scale=50, shard_size=25, seed=7, ecosystem="iac", jobs=2
        )
        process = run_sharded_campaign(
            scale=50, shard_size=25, seed=7, ecosystem="iac",
            jobs=2, executor="process",
        )
        assert thread.totals.confusions == process.totals.confusions

    def test_resume_restores_the_ecosystem(self):
        first = run_sharded_campaign(
            scale=40, shard_size=20, seed=7, ecosystem="android"
        )
        manifest = ShardRunManifest.from_dict(first.manifest.to_dict())
        assert manifest.ecosystem == "android"
        resumed = run_sharded_campaign(resume_from=manifest)
        assert resumed.totals.ecosystem == "android"
        assert resumed.totals.confusions == first.totals.confusions

    def test_manifest_dict_omits_families_when_default(self):
        run = run_sharded_campaign(scale=40, shard_size=20, seed=7)
        payload = run.manifest.to_dict()
        assert payload["ecosystem"] == DEFAULT_ECOSYSTEM
        clone = ShardRunManifest.from_dict(payload)
        assert clone == run.manifest


class TestR20Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return r20_ecosystems.run(seed=SEED, n_units=400)

    def test_grid_covers_every_ecosystem(self, result):
        names = ecosystem_names()
        assert result.data["ecosystems"] == names
        for row in result.data["winners"].values():
            assert set(row) == set(names)

    def test_at_least_one_winner_flip(self, result):
        flips = result.data["flips"]
        assert len(flips) >= 1
        for flip in flips:
            assert flip["winner"] != flip["baseline"]
            assert flip["ecosystem"] != DEFAULT_ECOSYSTEM

    def test_sections_render(self, result):
        for key in ("ecosystems", "winner_grid", "shifts", "rankings"):
            assert result.sections[key].strip()

    def test_taus_are_within_range(self, result):
        for per_eco in result.data["taus"].values():
            for per_metric in per_eco.values():
                for value in per_metric.values():
                    assert -1.0 <= value <= 1.0 or value != value

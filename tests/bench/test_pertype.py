"""Tests for per-vulnerability-type breakdowns and aggregation."""

from __future__ import annotations

import math

import pytest

from repro.bench.pertype import (
    PerTypeBreakdown,
    breakdown_report,
    campaign_breakdowns,
    macro_average,
    micro_average,
)
from repro.errors import ConfigurationError
from repro.metrics import definitions as d
from repro.metrics.confusion import ConfusionMatrix
from repro.workload.taxonomy import VulnerabilityType

SQLI = VulnerabilityType.SQL_INJECTION
XSS = VulnerabilityType.XSS


class TestBreakdownReport:
    def test_cells_sum_to_campaign_matrix(self, reference_campaign, small_workload):
        for result in reference_campaign.results:
            breakdown = breakdown_report(result, small_workload.truth)
            pooled = None
            for cm in breakdown.by_type.values():
                pooled = cm if pooled is None else pooled + cm
            assert pooled == result.confusion

    def test_types_match_workload(self, reference_campaign, small_workload):
        present = {site.vuln_type for site in small_workload.truth.sites}
        breakdown = breakdown_report(
            reference_campaign.results[0], small_workload.truth
        )
        assert set(breakdown.by_type) == present

    def test_matrix_for_unknown_type_raises(self):
        breakdown = PerTypeBreakdown(
            tool_name="t", by_type={SQLI: ConfusionMatrix(1, 1, 1, 1)}
        )
        with pytest.raises(ConfigurationError):
            breakdown.matrix_for(XSS)

    def test_empty_breakdown_rejected(self):
        with pytest.raises(ConfigurationError):
            PerTypeBreakdown(tool_name="t", by_type={})

    def test_campaign_breakdowns_cover_all_tools(
        self, reference_campaign, small_workload
    ):
        breakdowns = campaign_breakdowns(reference_campaign, small_workload.truth)
        assert set(breakdowns) == set(reference_campaign.tool_names)


class TestAggregation:
    def make_breakdown(self) -> PerTypeBreakdown:
        # Strong on a rare class (10 positives, recall 0.9), weak on a
        # dominant one (100 positives, recall 0.1).
        return PerTypeBreakdown(
            tool_name="t",
            by_type={
                SQLI: ConfusionMatrix(tp=9, fp=1, fn=1, tn=9),
                XSS: ConfusionMatrix(tp=10, fp=9, fn=90, tn=81),
            },
        )

    def test_macro_is_unweighted_mean(self):
        breakdown = self.make_breakdown()
        per_type = breakdown.metric_by_type(d.RECALL)
        expected = (per_type[SQLI] + per_type[XSS]) / 2
        assert macro_average(breakdown, d.RECALL) == pytest.approx(expected)

    def test_micro_equals_pooled_metric(self):
        breakdown = self.make_breakdown()
        pooled = ConfusionMatrix(tp=19, fp=10, fn=91, tn=90)
        assert micro_average(breakdown, d.RECALL) == pytest.approx(
            d.RECALL.compute(pooled)
        )

    def test_macro_and_micro_differ_under_imbalance(self):
        # Macro averages the two recalls (0.5); micro is dominated by the
        # weak, populous class (19/110).
        breakdown = self.make_breakdown()
        assert macro_average(breakdown, d.RECALL) == pytest.approx(0.5)
        assert micro_average(breakdown, d.RECALL) == pytest.approx(19 / 110)

    def test_macro_skips_undefined_classes(self):
        breakdown = PerTypeBreakdown(
            tool_name="t",
            by_type={
                SQLI: ConfusionMatrix(tp=5, fp=0, fn=5, tn=0),  # precision defined
                XSS: ConfusionMatrix(tp=0, fp=0, fn=2, tn=8),  # precision undefined
            },
        )
        assert macro_average(breakdown, d.PRECISION) == pytest.approx(1.0)

    def test_macro_nan_when_undefined_everywhere(self):
        breakdown = PerTypeBreakdown(
            tool_name="t",
            by_type={SQLI: ConfusionMatrix(tp=0, fp=0, fn=2, tn=8)},
        )
        assert math.isnan(macro_average(breakdown, d.PRECISION))

    def test_single_class_macro_equals_micro(self):
        breakdown = PerTypeBreakdown(
            tool_name="t", by_type={SQLI: ConfusionMatrix(tp=5, fp=2, fn=3, tn=10)}
        )
        assert macro_average(breakdown, d.F1) == pytest.approx(
            micro_average(breakdown, d.F1)
        )

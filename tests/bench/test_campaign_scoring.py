"""Tests for campaign scoring."""

from __future__ import annotations

import pytest

from repro.bench.campaign import CampaignResult, ToolResult, run_campaign, score_report
from repro.errors import ConfigurationError
from repro.metrics import definitions as d
from repro.tools.base import Detection, DetectionReport
from repro.tools.pattern_scanner import PatternScanner
from repro.workload.code_model import SinkSite
from repro.workload.ground_truth import GroundTruth
from repro.workload.taxonomy import VulnerabilityType

SQLI = VulnerabilityType.SQL_INJECTION
S1 = SinkSite("u1", 1, SQLI)  # vulnerable
S2 = SinkSite("u2", 1, SQLI)  # vulnerable
S3 = SinkSite("u3", 1, SQLI)  # safe
S4 = SinkSite("u4", 1, SQLI)  # safe
TRUTH = GroundTruth.from_sites([S1, S2, S3, S4], [S1, S2])


def report(*sites: SinkSite) -> DetectionReport:
    return DetectionReport(
        tool_name="t",
        workload_name="w",
        detections=tuple(Detection(site) for site in sites),
    )


class TestScoreReport:
    def test_all_four_cells(self):
        cm = score_report(report(S1, S3), TRUTH)
        assert cm.as_tuple() == (1, 1, 1, 1)

    def test_silent_tool(self):
        cm = score_report(report(), TRUTH)
        assert cm.as_tuple() == (0, 0, 2, 2)

    def test_flag_everything(self):
        cm = score_report(report(S1, S2, S3, S4), TRUTH)
        assert cm.as_tuple() == (2, 2, 0, 0)

    def test_perfect_tool(self):
        cm = score_report(report(S1, S2), TRUTH)
        assert cm.as_tuple() == (2, 0, 0, 2)

    def test_unknown_site_raises(self):
        stray = SinkSite("ghost", 0, SQLI)
        with pytest.raises(ConfigurationError, match="absent from the workload"):
            score_report(report(stray), TRUTH)


class TestRunCampaign:
    def test_requires_tools(self, small_workload):
        with pytest.raises(ConfigurationError):
            run_campaign([], small_workload)

    def test_result_per_tool(self, reference_campaign):
        assert len(reference_campaign.results) == 8

    def test_counts_sum_to_workload(self, reference_campaign, small_workload):
        for result in reference_campaign.results:
            assert result.confusion.total == small_workload.n_sites

    def test_metric_values_keyed_by_tool(self, reference_campaign):
        values = reference_campaign.metric_values(d.RECALL)
        assert set(values) == set(reference_campaign.tool_names)

    def test_confusion_lookup(self, reference_campaign):
        cm = reference_campaign.confusion_for("SA-Grep")
        assert cm is reference_campaign.result_for("SA-Grep").confusion

    def test_unknown_tool_raises(self, reference_campaign):
        with pytest.raises(ConfigurationError):
            reference_campaign.confusion_for("nope")

    def test_duplicate_tool_names_rejected(self, small_workload):
        result = run_campaign([PatternScanner(name="dup")], small_workload).results[0]
        with pytest.raises(ConfigurationError):
            CampaignResult(workload_name="w", results=(result, result))

    def test_tool_result_metric_value(self, reference_campaign):
        result = reference_campaign.result_for("SA-Grep")
        assert result.metric_value(d.RECALL) == d.RECALL.value_or_nan(result.confusion)

"""Tests for multi-workload suites and experiments R17/R18."""

from __future__ import annotations

import math

import pytest

from repro.bench.experiments import r17_workload_stability, r18_thresholds
from repro.bench.suite import ranking_stability, run_suite
from repro.errors import ConfigurationError
from repro.metrics import definitions as d
from repro.tools.suite import reference_suite
from repro.tools.taint_analyzer import TaintAnalyzer
from repro.workload.generator import WorkloadConfig, generate_workload

SEED = 99


@pytest.fixture(scope="module")
def three_workloads():
    return [
        generate_workload(
            WorkloadConfig(n_units=120, prevalence=p, seed=SEED, name=f"w{p:g}")
        )
        for p in (0.08, 0.15, 0.3)
    ]


@pytest.fixture(scope="module")
def suite(three_workloads):
    return run_suite(reference_suite(seed=SEED), three_workloads)


class TestRunSuite:
    def test_one_campaign_per_workload(self, suite, three_workloads):
        assert suite.workload_names == [w.name for w in three_workloads]

    def test_common_tool_list(self, suite):
        assert len(suite.tool_names) == 8

    def test_metric_matrix_shape(self, suite):
        matrix = suite.metric_matrix(d.RECALL)
        assert set(matrix) == set(suite.tool_names)
        for per_workload in matrix.values():
            assert set(per_workload) == set(suite.workload_names)

    def test_empty_workloads_rejected(self):
        with pytest.raises(ConfigurationError):
            run_suite(reference_suite(seed=SEED), [])

    def test_duplicate_workload_names_rejected(self, three_workloads):
        with pytest.raises(ConfigurationError):
            run_suite(
                reference_suite(seed=SEED), [three_workloads[0], three_workloads[0]]
            )

    def test_mismatched_tool_lists_rejected(self, three_workloads):
        from repro.bench.campaign import run_campaign
        from repro.bench.suite import SuiteResult

        a = run_campaign(reference_suite(seed=SEED), three_workloads[0])
        b = run_campaign([TaintAnalyzer()], three_workloads[1])
        with pytest.raises(ConfigurationError):
            SuiteResult(campaigns={"a": a, "b": b})


class TestRankingStability:
    def test_bounded(self, suite):
        for metric in (d.RECALL, d.PRECISION, d.MCC, d.F1):
            value = ranking_stability(suite, metric)
            assert -1.0 <= value <= 1.0

    def test_needs_two_workloads(self, three_workloads):
        single = run_suite(reference_suite(seed=SEED), three_workloads[:1])
        with pytest.raises(ConfigurationError):
            ranking_stability(single, d.RECALL)

    def test_identical_workloads_maximally_stable(self):
        # Same config, different names: same realized campaign up to the
        # workload-name substream; near-perfect stability for a
        # deterministic tool's exact metric.
        workloads = [
            generate_workload(
                WorkloadConfig(n_units=150, prevalence=0.2, seed=SEED, name=f"tw{i}")
            )
            for i in range(2)
        ]
        suite = run_suite(
            [
                TaintAnalyzer(name="exact"),
                TaintAnalyzer(name="shallow", max_chain_depth=2),
                TaintAnalyzer(name="blind", trust_sanitizers=False),
            ],
            workloads,
        )
        assert ranking_stability(suite, d.MCC) == pytest.approx(1.0)


class TestR17:
    @pytest.fixture(scope="class")
    def result(self):
        return r17_workload_stability.run(seed=SEED, n_units=150)

    def test_stability_tables_cover_registry(self, result):
        from repro.metrics.registry import core_candidates

        assert set(result.data["combined"]) == set(core_candidates().symbols)

    def test_values_bounded(self, result):
        for mapping in ("stability_prevalence", "stability_difficulty", "combined"):
            for value in result.data[mapping].values():
                assert -1.0 <= value <= 1.0

    def test_stability_tracks_discrimination(self, result):
        assert result.data["tau_vs_separation"] > 0.3

    def test_renders(self, result):
        assert "Kendall tau" in result.render()


class TestR18:
    @pytest.fixture(scope="class")
    def result(self):
        return r18_thresholds.run(seed=SEED, n_units=200)

    def test_optima_per_tool_and_scenario(self, result):
        optima = result.data["optima"]
        assert set(optima) == {"SA-Grep", "PT-Spider"}
        for per_scenario in optima.values():
            assert set(per_scenario) == {"critical", "triage", "balanced", "audit"}

    def test_critical_runs_the_scanner_wide_open(self, result):
        optima = result.data["optima"]["SA-Grep"]
        assert optima["critical"] == 0.0

    def test_triage_dials_the_scanner_up(self, result):
        optima = result.data["optima"]["SA-Grep"]
        assert optima["triage"] > optima["critical"]

    def test_all_thresholds_valid(self, result):
        for per_scenario in result.data["optima"].values():
            for threshold in per_scenario.values():
                assert 0.0 <= threshold <= 1.0

    def test_charts_render(self, result):
        text = result.render()
        assert "Expected cost vs confidence threshold" in text

    def test_math_is_finite(self, result):
        for per_scenario in result.data["optima"].values():
            assert all(math.isfinite(t) for t in per_scenario.values())

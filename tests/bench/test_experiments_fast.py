"""Tests for the lightweight experiment drivers (R1, R3-R6).

Beyond smoke (sections exist, render works), each experiment's *shape
claims* — the qualitative statements the paper's corresponding table or
figure supports — are asserted on the data payload.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    r1_catalog,
    r3_campaign,
    r4_metric_values,
    r5_rankings,
    r6_prevalence,
)
from repro.metrics.registry import core_candidates, default_registry


class TestR1Catalog:
    def test_covers_full_registry(self):
        result = r1_catalog.run()
        assert result.data["n_metrics"] == len(default_registry())

    def test_render_contains_headliners(self):
        text = r1_catalog.run().render()
        for token in ("Precision", "Recall", "Matthews", "Youden"):
            assert token in text

    def test_custom_registry(self):
        result = r1_catalog.run(registry=core_candidates())
        assert result.data["n_metrics"] == len(core_candidates())


class TestR3Campaign:
    @pytest.fixture(scope="class")
    def result(self):
        return r3_campaign.run(seed=99, n_units=150)

    def test_sections(self, result):
        assert "raw_results" in result.sections

    def test_eight_tools(self, result):
        assert len(result.data["campaign"].results) == 8

    def test_deterministic(self, result):
        again = r3_campaign.run(seed=99, n_units=150)
        for a, b in zip(result.data["campaign"].results, again.data["campaign"].results):
            assert a.confusion == b.confusion

    def test_seed_matters(self, result):
        other = r3_campaign.run(seed=100, n_units=150)
        assert any(
            a.confusion != b.confusion
            for a, b in zip(
                result.data["campaign"].results, other.data["campaign"].results
            )
        )


class TestR4MetricValues:
    def test_values_cover_metrics_and_tools(self):
        result = r4_metric_values.run(seed=99, n_units=150)
        values = result.data["values"]
        assert set(values) == set(core_candidates().symbols)
        campaign = result.data["campaign"]
        for per_tool in values.values():
            assert set(per_tool) == set(campaign.tool_names)


class TestR5Rankings:
    @pytest.fixture(scope="class")
    def result(self):
        return r5_rankings.run(seed=99, n_units=150)

    def test_metrics_disagree(self, result):
        """The paper's pivot: metric choice changes the tool ranking."""
        assert result.data["min_offdiag_tau"] < 0.75

    def test_but_not_randomly(self, result):
        # Metrics still broadly agree on better-vs-worse tools.
        assert result.data["mean_offdiag_tau"] > 0.2

    def test_tau_diagonal_is_one(self, result):
        tau = result.data["tau"]
        for symbol in core_candidates().symbols:
            assert tau[(symbol, symbol)] == 1.0

    def test_tau_symmetric(self, result):
        tau = result.data["tau"]
        symbols = core_candidates().symbols
        for a in symbols[:5]:
            for b in symbols[:5]:
                assert tau[(a, b)] == pytest.approx(tau[(b, a)], abs=1e-9)

    def test_recall_and_precision_rank_differently(self, result):
        ranks = result.data["ranks"]
        assert ranks["REC"] != ranks["PRE"]


class TestR6Prevalence:
    @pytest.fixture(scope="class")
    def result(self):
        return r6_prevalence.run()

    def test_sections(self, result):
        for section in ("stability_chart", "swings", "preference"):
            assert section in result.sections

    def test_prevalence_invariant_metrics_are_flat(self, result):
        swings = result.data["swings"]
        assert swings["INF"] < 0.01
        assert swings["REC"] < 0.01

    def test_prevalence_dependent_metrics_swing(self, result):
        swings = result.data["swings"]
        assert swings["PRE"] > 0.3
        assert swings["F1"] > 0.3
        assert swings["MCC"] > 0.2
        # Accuracy moves less for this (good) tool but is still an order of
        # magnitude above the invariant metrics...
        assert swings["ACC"] > 0.05
        # ...and saturates toward TNR at low prevalence, its classic failure.
        series = result.data["series"]["ACC"]
        lowest_prevalence_value = series[0][1]
        assert lowest_prevalence_value > 0.9

    def test_accuracy_flips_preferred_tool(self, result):
        """The misleading-metric exhibit: accuracy switches winners as
        prevalence moves, informedness never does."""
        flips = result.data["flips"]
        assert flips["ACC"] >= 1
        assert flips["INF"] == 0
        assert flips["REC"] == 0

    def test_chart_renders_all_series(self, result):
        chart = result.sections["stability_chart"]
        for symbol in ("ACC", "PRE", "F1", "MCC", "INF", "REC"):
            assert symbol in chart

"""Unit tests for the write-ahead shard journal (``repro/shard-wal@1``).

The crash-safety claim rests on this file format: every fold is an fsync'd
append, and replay of any prefix — including a torn one — must recover
exactly the folded shards.  These tests exercise the format directly;
``tests/bench/test_crash_safety.py`` covers the runner integration.
"""

from __future__ import annotations

import json
import struct
import zlib

import numpy as np
import pytest

from repro.bench.engine.faults import tear_file
from repro.bench.engine.wal import (
    JournalHeader,
    ShardJournal,
    is_journal,
    replay_journal,
)
from repro.errors import ConfigurationError, PersistError
from repro.persist import WAL_MAGIC, WAL_SCHEMA, sniff_schema


def make_header(**overrides) -> JournalHeader:
    params = dict(
        seed=2015,
        scale=400,
        shard_size=100,
        ecosystem="web-services",
        tool_names=("ToolA", "ToolB"),
        tool_families=("static",),
    )
    params.update(overrides)
    return JournalHeader(**params)


def cells_vector(index: int, n_tools: int = 2) -> np.ndarray:
    head = [index, 100, 40, 25]
    body = list(range(index * 10, index * 10 + 1 + 4 * n_tools))[1:]
    return np.array(head + body[: 1 + 4 * n_tools], dtype=np.int64)


class TestJournalRoundTrip:
    def test_create_replay_round_trip(self, tmp_path):
        path = tmp_path / "run.wal"
        journal = ShardJournal.create(path, make_header())
        vectors = [cells_vector(i) for i in range(3)]
        for vector in vectors:
            journal.append_cells(vector)
        journal.close()

        replay = replay_journal(path)
        assert replay.header == make_header()
        assert not replay.torn
        assert replay.duplicates == 0
        assert replay.shard_indices == [0, 1, 2]
        for got, expected in zip(replay.arrays, vectors):
            np.testing.assert_array_equal(got, expected)

    def test_header_survives_optional_families(self, tmp_path):
        path = tmp_path / "run.wal"
        ShardJournal.create(path, make_header(tool_families=None)).close()
        assert replay_journal(path).header.tool_families is None

    def test_duplicate_shard_keeps_first_record(self, tmp_path):
        path = tmp_path / "run.wal"
        journal = ShardJournal.create(path, make_header())
        first = cells_vector(1)
        journal.append_cells(first)
        second = cells_vector(1)
        second[1] = 999  # a conflicting re-run record for the same shard
        journal.append_cells(second)
        journal.close()

        replay = replay_journal(path)
        assert replay.duplicates == 1
        assert replay.shard_indices == [1]
        np.testing.assert_array_equal(replay.arrays[0], first)

    def test_create_truncates_previous_journal(self, tmp_path):
        path = tmp_path / "run.wal"
        old = ShardJournal.create(path, make_header())
        old.append_cells(cells_vector(0))
        old.close()
        ShardJournal.create(path, make_header()).close()
        assert replay_journal(path).arrays == ()


class TestTornTail:
    def test_torn_tail_discards_only_last_record(self, tmp_path):
        path = tmp_path / "run.wal"
        journal = ShardJournal.create(path, make_header())
        for index in range(3):
            journal.append_cells(cells_vector(index))
        journal.close()
        tear_file(path, n_bytes=16)

        replay = replay_journal(path)
        assert replay.torn
        assert replay.shard_indices == [0, 1]

    def test_crc_corruption_stops_replay(self, tmp_path):
        path = tmp_path / "run.wal"
        journal = ShardJournal.create(path, make_header())
        journal.append_cells(cells_vector(0))
        journal.append_cells(cells_vector(1))
        journal.close()
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF  # flip a byte inside the final record's payload
        path.write_bytes(bytes(data))

        replay = replay_journal(path)
        assert replay.torn
        assert replay.shard_indices == [0]

    def test_unknown_record_type_reads_as_tail_damage(self, tmp_path):
        path = tmp_path / "run.wal"
        journal = ShardJournal.create(path, make_header())
        journal.append_cells(cells_vector(0))
        journal.close()
        payload = b"??"
        frame = struct.Struct("<IIB").pack(
            len(payload), zlib.crc32(bytes([9]) + payload), 9
        )
        with open(path, "ab") as handle:
            handle.write(frame + payload)

        replay = replay_journal(path)
        assert replay.torn
        assert replay.shard_indices == [0]

    def test_resume_truncates_torn_tail_then_appends(self, tmp_path):
        path = tmp_path / "run.wal"
        journal = ShardJournal.create(path, make_header())
        for index in range(3):
            journal.append_cells(cells_vector(index))
        journal.close()
        tear_file(path, n_bytes=8)

        resumed, replay = ShardJournal.resume(path)
        assert replay.shard_indices == [0, 1]
        resumed.append_cells(cells_vector(2))
        resumed.close()

        final = replay_journal(path)
        assert not final.torn
        assert final.shard_indices == [0, 1, 2]

    def test_resume_without_intact_header_fails(self, tmp_path):
        path = tmp_path / "run.wal"
        ShardJournal.create(path, make_header()).close()
        path.write_bytes(path.read_bytes()[: len(WAL_MAGIC) + 4])
        with pytest.raises(PersistError, match="no intact header"):
            ShardJournal.resume(path)


class TestSniffing:
    def test_is_journal_and_sniff_schema(self, tmp_path):
        wal_path = tmp_path / "run.wal"
        ShardJournal.create(wal_path, make_header()).close()
        manifest_path = tmp_path / "run.json"
        manifest_path.write_text(json.dumps({"schema": "repro/shard-run@2"}))

        assert is_journal(wal_path)
        assert not is_journal(manifest_path)
        assert not is_journal(tmp_path / "missing.wal")
        assert sniff_schema(wal_path) == WAL_SCHEMA
        assert sniff_schema(manifest_path) == "repro/shard-run@2"
        assert sniff_schema(tmp_path / "missing.wal") is None

    def test_not_a_journal_raises_persist_error(self, tmp_path):
        path = tmp_path / "not-a-journal"
        path.write_text("{}")
        with pytest.raises(PersistError, match="bad magic"):
            replay_journal(path)

    def test_header_schema_drift_fails_loudly(self):
        payload = make_header().to_dict()
        payload["schema"] = "repro/shard-wal@99"
        with pytest.raises(ConfigurationError, match="journal schema"):
            JournalHeader.from_dict(payload)

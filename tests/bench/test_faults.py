"""Fault-tolerance tests: injection harness, retries, skips, timeouts,
resume, and cache quarantine — exercised on both executors.

The deterministic fault harness (:mod:`repro.bench.engine.faults`) makes
every failure path reproducible: ``fail=K`` fails exactly the first K
attempts, ``hang=N`` sleeps long enough to trip a timeout, and
``corrupt_file`` rots an on-disk artifact.  Nothing here is timing- or
luck-dependent except the timeout tests, which use generous margins.
"""

from __future__ import annotations

import pytest

from repro.bench.engine.faults import (
    ALWAYS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_file,
    parse_fault,
)
from repro.bench.engine.manifest import RunManifest
from repro.bench.engine.scheduler import ErrorPolicy, run_experiments
from repro.errors import (
    ConfigurationError,
    EngineError,
    ExperimentFailedError,
    ExperimentTimeoutError,
)
from repro.obs import Observability

#: Executor/jobs combinations covering the serial path, the thread pool and
#: the process pool.
EXECUTION_MODES = [
    pytest.param("thread", 1, id="serial"),
    pytest.param("thread", 2, id="thread-pool"),
    pytest.param("process", 2, id="process-pool"),
]

#: R1 is independent of R3; R4 depends on R3.  Failing R3 must leave R1
#: completed and R4 skipped.
TRIAD = ["R1", "R3", "R4"]


def fail_r3(attempts: int = ALWAYS) -> FaultPlan:
    return FaultPlan((FaultSpec("R3", fail_attempts=attempts),))


class TestParseFault:
    def test_bare_id_fails_every_attempt(self):
        spec = parse_fault("R4")
        assert spec.experiment_id == "R4"
        assert spec.fail_attempts == ALWAYS
        assert spec.hang_seconds == 0.0

    def test_lowercase_id_normalized(self):
        assert parse_fault("r4").experiment_id == "R4"

    def test_fail_clause(self):
        assert parse_fault("R4:fail=2").fail_attempts == 2

    def test_hang_clause_does_not_imply_failure(self):
        spec = parse_fault("R4:hang=1.5")
        assert spec.hang_seconds == 1.5
        assert spec.fail_attempts == 0

    def test_combined_clauses(self):
        spec = parse_fault("R4:fail=1:hang=0.2")
        assert (spec.fail_attempts, spec.hang_seconds) == (1, 0.2)

    def test_unknown_clause_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault clause"):
            parse_fault("R4:explode=1")

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigurationError, match="bad value"):
            parse_fault("R4:fail=lots")

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigurationError, match="empty experiment id"):
            parse_fault(":fail=1")

    def test_kill_clause(self):
        spec = parse_fault("s2:kill=1")
        assert spec.experiment_id == "S2"
        assert spec.kill_attempts == 1
        assert spec.fail_attempts == 0

    def test_bare_kill_clause_kills_every_attempt(self):
        assert parse_fault("S2:kill=").kill_attempts == ALWAYS

    def test_parent_stop_clause(self):
        spec = parse_fault("parent:stop=2")
        assert spec.experiment_id == "PARENT"
        assert spec.stop_after == 2
        assert spec.kill_attempts == 0

    def test_negative_kill_and_stop_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("S1", kill_attempts=-1)
        with pytest.raises(ConfigurationError):
            FaultSpec("PARENT", stop_after=-1)


class TestFaultSpec:
    def test_fails_through_configured_attempt_then_succeeds(self):
        spec = FaultSpec("R1", fail_attempts=2)
        for attempt in (1, 2):
            with pytest.raises(InjectedFault):
                spec.apply(attempt)
        spec.apply(3)  # no raise

    def test_negative_fail_attempts_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("R1", fail_attempts=-1)

    def test_negative_hang_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("R1", hang_seconds=-0.5)

    def test_spec_pickles(self):
        import pickle

        spec = FaultSpec("R1", fail_attempts=2, hang_seconds=0.1)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestFaultPlan:
    def test_duplicate_experiment_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate fault"):
            FaultPlan((FaultSpec("R1"), FaultSpec("R1", fail_attempts=1)))

    def test_untargeted_experiment_is_a_no_op(self):
        plan = fail_r3()
        plan.apply("R1", attempt=1)  # no raise
        assert plan.for_experiment("R1") is None

    def test_targeted_experiment_raises(self):
        with pytest.raises(InjectedFault):
            fail_r3().apply("R3", attempt=1)


class TestCorruptFile:
    def write(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text('{"schema": "x", "payload": [1, 2, 3]}')
        return path, path.read_bytes()

    def test_truncate_halves_the_file(self, tmp_path):
        path, original = self.write(tmp_path)
        corrupt_file(path, "truncate")
        assert path.read_bytes() == original[: len(original) // 2]

    def test_garbage_is_not_json(self, tmp_path):
        import json

        path, _ = self.write(tmp_path)
        corrupt_file(path, "garbage")
        with pytest.raises((json.JSONDecodeError, UnicodeDecodeError)):
            json.loads(path.read_text())

    def test_flip_changes_the_tail(self, tmp_path):
        path, original = self.write(tmp_path)
        corrupt_file(path, "flip")
        data = path.read_bytes()
        assert len(data) == len(original)
        assert data != original

    def test_unknown_mode_rejected(self, tmp_path):
        path, _ = self.write(tmp_path)
        with pytest.raises(ConfigurationError, match="unknown corruption"):
            corrupt_file(path, "zap")

    def test_tear_file_drops_exactly_the_tail(self, tmp_path):
        from repro.bench.engine.faults import tear_file

        path, original = self.write(tmp_path)
        tear_file(path, n_bytes=5)
        assert path.read_bytes() == original[:-5]

    def test_tear_file_beyond_length_empties_the_file(self, tmp_path):
        from repro.bench.engine.faults import tear_file

        path, original = self.write(tmp_path)
        tear_file(path, n_bytes=len(original) + 100)
        assert path.read_bytes() == b""

    def test_tear_file_requires_positive_bytes(self, tmp_path):
        from repro.bench.engine.faults import tear_file

        path, _ = self.write(tmp_path)
        with pytest.raises(ConfigurationError, match="n_bytes"):
            tear_file(path, n_bytes=0)


class TestErrorPolicy:
    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError, match="retries"):
            ErrorPolicy(retries=-1)

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ConfigurationError, match="timeout"):
            ErrorPolicy(timeout=0)


class TestKeepGoing:
    @pytest.mark.parametrize("executor,jobs", EXECUTION_MODES)
    def test_failure_is_isolated(self, executor, jobs):
        obs = Observability()
        run = run_experiments(
            TRIAD,
            seed=2015,
            jobs=jobs,
            executor=executor,
            keep_going=True,
            faults=fail_r3(),
            obs=obs,
        )
        assert not run.ok
        assert run.manifest.statuses == {
            "R1": "completed",
            "R3": "failed",
            "R4": "skipped",
        }
        assert sorted(run.results) == ["R1"]
        counters = obs.metrics.counter_values("engine.experiments.")
        assert counters["engine.experiments.completed"] == 1
        assert counters["engine.experiments.failed"] == 1
        assert counters["engine.experiments.skipped"] == 1

    def test_failure_record_is_structured(self):
        run = run_experiments(
            ["R3"], seed=2015, keep_going=True, faults=fail_r3()
        )
        record = run.manifest.record_for("R3")
        assert record.failure is not None
        assert record.failure.error_type == "InjectedFault"
        assert "injected fault: R3" in record.failure.message
        assert "InjectedFault" in record.failure.traceback
        assert record.failure.attempts == 1

    def test_skip_reason_names_the_failed_dependency(self):
        run = run_experiments(
            TRIAD, seed=2015, keep_going=True, faults=fail_r3()
        )
        record = run.manifest.record_for("R4")
        assert record.skip_reason == "dependency R3 failed"
        assert record.attempts == 0
        assert record.wall_seconds == 0.0

    def test_all_dependents_of_r3_cascade(self):
        ids = ["R1", "R3", "R4", "R5", "R7"]
        run = run_experiments(
            ids, seed=2015, jobs=2, keep_going=True, faults=fail_r3()
        )
        statuses = run.manifest.statuses
        assert statuses["R1"] == "completed"
        assert statuses["R3"] == "failed"
        assert all(statuses[k] == "skipped" for k in ("R4", "R5", "R7"))


class TestFailFast:
    @pytest.mark.parametrize("executor,jobs", EXECUTION_MODES)
    def test_raises_with_original_cause(self, executor, jobs):
        with pytest.raises(ExperimentFailedError) as exc_info:
            run_experiments(
                TRIAD, seed=2015, jobs=jobs, executor=executor,
                faults=fail_r3(),
            )
        assert "R3" in str(exc_info.value)
        assert isinstance(exc_info.value.__cause__, InjectedFault)

    def test_engine_error_base_catches_it(self):
        with pytest.raises(EngineError):
            run_experiments(["R3"], seed=2015, faults=fail_r3())


class TestRetries:
    @pytest.mark.parametrize("executor,jobs", EXECUTION_MODES)
    def test_retry_recovers_and_matches_clean_run(self, executor, jobs):
        clean = run_experiments(["R3"], seed=2015)
        retried = run_experiments(
            ["R3"],
            seed=2015,
            jobs=jobs,
            executor=executor,
            retries=1,
            faults=fail_r3(attempts=1),
        )
        assert retried.ok
        record = retried.manifest.record_for("R3")
        assert record.status == "completed"
        assert record.attempts == 2
        assert (
            retried.results["R3"].render() == clean.results["R3"].render()
        ), "retry must be bit-identical to a clean run at the same seed"

    def test_insufficient_retries_still_fail(self):
        run = run_experiments(
            ["R3"],
            seed=2015,
            keep_going=True,
            retries=1,
            faults=fail_r3(attempts=2),
        )
        record = run.manifest.record_for("R3")
        assert record.status == "failed"
        assert record.attempts == 2
        assert record.failure is not None and record.failure.attempts == 2

    def test_retried_counter(self):
        obs = Observability()
        run_experiments(
            ["R3"],
            seed=2015,
            retries=2,
            faults=fail_r3(attempts=2),
            obs=obs,
        )
        counters = obs.metrics.counter_values("engine.experiments.")
        assert counters["engine.experiments.retried"] == 2
        assert counters["engine.experiments.scheduled"] == 1


class TestTimeout:
    def test_hanging_experiment_times_out_keep_going(self):
        obs = Observability()
        # The timeout must comfortably exceed R3's real cost (~0.3s cold)
        # while the injected hang comfortably exceeds the timeout.
        run = run_experiments(
            ["R1", "R3", "R4"],
            seed=2015,
            jobs=2,
            keep_going=True,
            timeout=2.0,
            faults=FaultPlan((FaultSpec("R1", hang_seconds=6.0),)),
            obs=obs,
        )
        statuses = run.manifest.statuses
        assert statuses["R1"] == "timeout"
        assert statuses["R3"] == "completed"
        assert statuses["R4"] == "completed"
        record = run.manifest.record_for("R1")
        assert record.failure is not None
        assert record.failure.error_type == "ExperimentTimeoutError"
        counters = obs.metrics.counter_values("engine.experiments.")
        assert counters["engine.experiments.timeout"] == 1

    def test_timeouts_are_never_retried(self):
        run = run_experiments(
            ["R1"],
            seed=2015,
            jobs=2,
            keep_going=True,
            retries=3,
            timeout=0.2,
            faults=FaultPlan((FaultSpec("R1", hang_seconds=2.0),)),
        )
        assert run.manifest.record_for("R1").attempts == 1

    def test_timeout_fail_fast_raises(self):
        with pytest.raises(ExperimentTimeoutError, match="R1"):
            run_experiments(
                ["R1"],
                seed=2015,
                jobs=2,
                timeout=0.2,
                faults=FaultPlan((FaultSpec("R1", hang_seconds=2.0),)),
            )

    def test_fast_experiments_unaffected_by_generous_timeout(self):
        run = run_experiments(["R1"], seed=2015, jobs=2, timeout=120.0)
        assert run.ok


class TestResume:
    @pytest.mark.parametrize("executor,jobs", EXECUTION_MODES)
    def test_resume_completes_the_remainder(self, executor, jobs, tmp_path):
        clean = run_experiments(TRIAD, seed=2015)
        partial = run_experiments(
            TRIAD,
            seed=2015,
            jobs=jobs,
            executor=executor,
            keep_going=True,
            faults=fail_r3(),
            cache_dir=str(tmp_path),
        )
        assert partial.manifest.incomplete_ids == ["R3", "R4"]

        # Round-trip the manifest through its JSON form, as the CLI does.
        manifest = RunManifest.from_dict(partial.manifest.to_dict())
        resumed = run_experiments(
            jobs=jobs,
            executor=executor,
            cache_dir=str(tmp_path),
            resume_from=manifest,
        )
        assert resumed.ok
        assert resumed.manifest.experiment_ids == TRIAD
        assert resumed.manifest.extra["resume"] == {"carried": ["R1"]}
        assert sorted(resumed.results) == ["R3", "R4"]
        for key in ("R3", "R4"):
            assert (
                resumed.results[key].render() == clean.results[key].render()
            ), "resumed run must be bit-identical to a fault-free run"

    def test_resume_uses_the_manifest_seed(self, tmp_path):
        partial = run_experiments(
            ["R3"], seed=7, keep_going=True, faults=fail_r3()
        )
        resumed = run_experiments(
            seed=999,  # ignored: the manifest's seed wins
            resume_from=RunManifest.from_dict(partial.manifest.to_dict()),
        )
        assert resumed.manifest.seed == 7
        assert resumed.manifest.record_for("R3").seed == 7

    def test_resume_of_a_complete_manifest_runs_nothing(self):
        clean = run_experiments(["R1"], seed=2015)
        resumed = run_experiments(resume_from=clean.manifest)
        assert resumed.ok
        assert resumed.results == {}
        assert resumed.manifest.extra["resume"] == {"carried": ["R1"]}


class TestCacheQuarantine:
    @pytest.mark.parametrize("mode", ["truncate", "garbage", "flip"])
    def test_corrupt_cache_file_is_quarantined_and_recomputed(
        self, tmp_path, mode
    ):
        cold = run_experiments(["R3"], seed=2015, cache_dir=str(tmp_path))
        cached = [
            p for p in tmp_path.iterdir() if p.name.startswith("campaign")
        ]
        assert cached, "R3 must persist its campaign artifact"
        corrupt_file(cached[0], mode)

        obs = Observability()
        warm = run_experiments(
            ["R3"], seed=2015, cache_dir=str(tmp_path), obs=obs
        )
        assert warm.ok
        assert (
            warm.results["R3"].render() == cold.results["R3"].render()
        ), "recomputed artifact must reproduce the original result"
        assert warm.manifest.cache_counts()["corrupt"] == 1
        counters = obs.metrics.counter_values("engine.cache.")
        assert counters["engine.cache.corrupt"] == 1
        quarantined = list(tmp_path.glob("*.corrupt"))
        assert len(quarantined) == 1
        # The store rewrote a good copy alongside the quarantined one.
        assert cached[0].exists()

    def test_quarantine_works_through_the_process_executor(self, tmp_path):
        run_experiments(
            ["R3"], seed=2015, jobs=2, executor="process",
            cache_dir=str(tmp_path),
        )
        cached = [
            p for p in tmp_path.iterdir() if p.name.startswith("campaign")
        ]
        corrupt_file(cached[0], "truncate")
        warm = run_experiments(
            ["R3"], seed=2015, jobs=2, executor="process",
            cache_dir=str(tmp_path),
        )
        assert warm.ok
        assert warm.manifest.cache_counts()["corrupt"] == 1
        assert list(tmp_path.glob("*.corrupt"))


class TestManifestFailureRoundTrip:
    def test_statuses_survive_serialization(self):
        run = run_experiments(
            TRIAD, seed=2015, keep_going=True, retries=1, faults=fail_r3()
        )
        rebuilt = RunManifest.from_dict(run.manifest.to_dict())
        assert rebuilt.statuses == run.manifest.statuses
        r3 = rebuilt.record_for("R3")
        assert r3.failure is not None
        assert r3.failure.error_type == "InjectedFault"
        assert r3.attempts == 2
        assert rebuilt.record_for("R4").skip_reason == "dependency R3 failed"
        assert rebuilt.status_counts() == run.manifest.status_counts()

    def test_legacy_v1_manifest_loads_as_completed(self):
        run = run_experiments(["R1"], seed=2015)
        payload = run.manifest.to_dict()
        payload["schema"] = "repro/run-manifest@1"
        for entry in payload["experiments"]:
            for key in ("status", "attempts"):
                entry.pop(key, None)
        rebuilt = RunManifest.from_dict(payload)
        assert rebuilt.ok
        assert rebuilt.record_for("R1").attempts == 1

    def test_invalid_status_rejected(self):
        run = run_experiments(["R1"], seed=2015)
        payload = run.manifest.to_dict()
        payload["experiments"][0]["status"] = "exploded"
        with pytest.raises(ConfigurationError, match="status"):
            RunManifest.from_dict(payload)

"""Tests for the heavier experiment drivers (R2, R7-R11).

Runs use reduced sizes; the assertions are the DESIGN.md shape expectations.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    r2_properties,
    r7_discrimination,
    r8_scenarios,
    r9_ahp,
    r10_sensitivity,
    r11_agreement,
)
from repro.bench.experiments.r2_properties import screened_out
from repro.metrics.registry import core_candidates, default_registry

SEED = 99


@pytest.fixture(scope="module")
def r2_result():
    return r2_properties.run(seed=SEED, n_resamples=40)


@pytest.fixture(scope="module")
def r8_result():
    return r8_scenarios.run(seed=SEED, n_pools=25)


@pytest.fixture(scope="module")
def r9_result(r2_result):
    return r9_ahp.run(
        registry=core_candidates(),
        seed=SEED,
        properties_matrix=None,  # exercise the internal R2 path once
        n_resamples=40,
    )


class TestR2Properties:
    def test_matrix_covers_catalog(self, r2_result):
        matrix = r2_result.data["matrix"]
        assert set(matrix.metric_symbols) == set(default_registry().symbols)

    def test_unbounded_metrics_screened_out(self, r2_result):
        screened = set(r2_result.data["screened_out"])
        assert {"DOR", "LR+", "LR-", "LFT"} <= screened

    def test_core_candidates_survive_screening(self, r2_result):
        kept = set(r2_result.data["kept"])
        assert set(core_candidates().symbols) <= kept

    def test_screened_out_helper_consistent(self, r2_result):
        matrix = r2_result.data["matrix"]
        for symbol in matrix.metric_symbols:
            assert screened_out(matrix, symbol) == (
                symbol in set(r2_result.data["screened_out"])
            )

    def test_render_mentions_screening(self, r2_result):
        assert "screened out" in r2_result.render()


class TestR7Discrimination:
    @pytest.fixture(scope="class")
    def result(self):
        return r7_discrimination.run(seed=SEED, n_units=150, n_resamples=80)

    def test_separation_fractions_bounded(self, result):
        for fraction in result.data["separation"].values():
            assert 0.0 <= fraction <= 1.0

    def test_every_core_metric_assessed(self, result):
        assert set(result.data["separation"]) == set(core_candidates().symbols)

    def test_some_metric_discriminates(self, result):
        # On an eight-tool suite spanning the operating space, at least one
        # metric must separate most pairs.
        assert max(result.data["separation"].values()) > 0.5


class TestR8Scenarios:
    def test_rankings_per_scenario(self, r8_result):
        rankings = r8_result.data["rankings"]
        assert set(rankings) == {"critical", "triage", "balanced", "audit"}

    def test_critical_selects_recall(self, r8_result):
        assert r8_result.data["rankings"]["critical"][0] == "REC"

    def test_triage_selects_exactness_family(self, r8_result):
        # ACC qualifies here: with 2:1 costs, the cost ranking is close to
        # the error-count ranking, which is exactly what accuracy orders by.
        winner = r8_result.data["rankings"]["triage"][0]
        assert winner in {"PRE", "F0.5", "MRK", "SPC", "ACC", "KAP"}
        # Recall-family metrics must NOT win a triage scenario.
        assert winner not in {"REC", "F2"}

    def test_balanced_selects_a_composite(self, r8_result):
        winner = r8_result.data["rankings"]["balanced"][0]
        assert winner in {"F1", "MCC", "INF", "GM", "BAC", "JAC", "KAP", "F2"}

    def test_audit_winner_is_chance_corrected_or_composite(self, r8_result):
        winner = r8_result.data["rankings"]["audit"][0]
        assert winner in {"MCC", "INF", "MRK", "KAP", "BAC", "GM", "JAC", "F1", "F2"}

    def test_scenarios_pick_different_winners(self, r8_result):
        winners = {r[0] for r in r8_result.data["rankings"].values()}
        assert len(winners) >= 3

    def test_adequacy_values_bounded(self, r8_result):
        for per_metric in r8_result.data["adequacy"].values():
            for tau in per_metric.values():
                assert -1.0 <= tau <= 1.0


class TestR9Ahp:
    def test_consistency_acceptable_everywhere(self, r9_result):
        for key, cr in r9_result.data["consistency"].items():
            assert cr < 0.1, key

    def test_critical_panel_selects_recall(self, r9_result):
        assert r9_result.data["rankings"]["critical"][0] == "REC"

    def test_ahp_winner_confirmed_by_a_cross_check_method(self, r9_result):
        """Different MCDA methods legitimately disagree on exact rankings,
        but the AHP winner must appear in the top 3 of SAW or TOPSIS in
        every scenario."""
        winners = r9_result.data["method_winners"]
        for key, per_method in winners.items():
            confirmed = (
                per_method["ahp"] in per_method["saw_top3"]
                or per_method["ahp"] in per_method["topsis_top3"]
            )
            assert confirmed, (key, per_method)

    def test_expert_agreement_in_unit_interval(self, r9_result):
        for value in r9_result.data["agreement"].values():
            assert 0.0 <= value <= 1.0


class TestR10Sensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return r10_sensitivity.run(seed=SEED, n_resamples=40)

    def test_stability_bounded(self, result):
        for value in result.data["overall_stability"].values():
            assert 0.0 <= value <= 1.0

    def test_conclusions_mostly_stable(self, result):
        # The headline winners should survive most weight perturbations.
        assert min(result.data["overall_stability"].values()) > 0.5

    def test_reversal_factors_recorded_per_criterion(self, result):
        for key, factors in result.data["reversal_factors"].items():
            assert factors, key


class TestR11Agreement:
    @pytest.fixture(scope="class")
    def result(self):
        return r11_agreement.run(seed=SEED, n_pools=25, n_resamples=40)

    def test_headline_agreement(self, result):
        """The MCDA validation confirms the analytical selection."""
        assert result.data["winner_in_top5"] >= 3
        assert result.data["top1_matches"] >= 1

    def test_overlaps_bounded(self, result):
        for overlap in result.data["overlaps"].values():
            assert 0.0 <= overlap <= 1.0

    def test_tables_render(self, result):
        text = result.render()
        assert "Recommended benchmark metric" in text
        assert "critical" in text

"""Streaming campaign tests: exact parity with the in-memory path, plus the
shard runner's fault-tolerance semantics (retry, keep-going, resume, cache).
"""

from __future__ import annotations

import pytest

from repro.bench.engine.faults import ALWAYS, FaultPlan, FaultSpec
from repro.bench.engine.shards import (
    SHARD_MANIFEST_SCHEMA,
    ShardRunManifest,
    run_sharded_campaign,
    shard_fault_id,
)
from repro.bench.streaming import (
    CampaignAccumulator,
    ShardCells,
    evaluate_shard,
    materialized_totals,
)
from repro.errors import ConfigurationError, ExperimentFailedError
from repro.metrics.registry import default_registry
from repro.tools.suite import reference_suite
from repro.workload.sharded import plan_shards

SEED = 2015  # the canonical reproduction seed (DEFAULT_SEED)


def reference_totals(scale: int, shard_size: int, seed: int):
    """The in-memory reference path for one (seed, scale, shard_size)."""
    plan = plan_shards(scale=scale, shard_size=shard_size, seed=seed)
    return materialized_totals(reference_suite(seed=seed), plan)


class TestStreamingParity:
    @pytest.mark.parametrize(
        ("seed", "scale", "shard_size"),
        [
            (SEED, 120, 40),   # even split, canonical seed
            (SEED, 130, 50),   # shard size does not divide n
            (SEED, 90, 90),    # single shard
            (7, 110, 30),      # ragged, different seed
            (123, 64, 25),     # ragged, different seed again
        ],
    )
    def test_fold_matches_materialized_bit_for_bit(
        self, seed, scale, shard_size
    ):
        plan = plan_shards(scale=scale, shard_size=shard_size, seed=seed)
        tools = reference_suite(seed=seed)
        accumulator = CampaignAccumulator([tool.name for tool in tools])
        for spec in plan:
            accumulator.fold(
                evaluate_shard(tools, plan.generate(spec.index), spec.index)
            )
        streaming = accumulator.result()
        reference = materialized_totals(tools, plan)
        assert streaming.confusions == reference.confusions
        assert streaming.n_units == reference.n_units == scale
        assert streaming.n_sites == reference.n_sites
        assert streaming.n_vulnerable == reference.n_vulnerable

    def test_fold_order_does_not_change_totals(self):
        plan = plan_shards(scale=120, shard_size=30, seed=SEED)
        tools = reference_suite(seed=SEED)
        cells = [
            evaluate_shard(tools, plan.generate(spec.index), spec.index)
            for spec in plan
        ]
        forward = CampaignAccumulator([tool.name for tool in tools])
        backward = CampaignAccumulator([tool.name for tool in tools])
        for item in cells:
            forward.fold(item)
        for item in reversed(cells):
            backward.fold(item)
        assert forward.result().confusions == backward.result().confusions

    def test_metric_values_match_scalar_campaign_semantics(self):
        streaming = run_sharded_campaign(
            scale=100, shard_size=40, seed=SEED
        ).totals
        reference = reference_totals(100, 40, SEED)
        for metric in list(default_registry())[:5]:
            assert streaming.metric_values(metric) == pytest.approx(
                reference.metric_values(metric), nan_ok=True
            )

    def test_runner_parity_across_jobs_and_executors(self):
        reference = reference_totals(130, 50, SEED)
        for kwargs in (
            {"jobs": 1},
            {"jobs": 3},
            {"jobs": 2, "executor": "process"},
        ):
            run = run_sharded_campaign(
                scale=130, shard_size=50, seed=SEED, **kwargs
            )
            assert run.ok
            assert run.totals.confusions == reference.confusions, kwargs


class TestTransportParity:
    """The transport invariant: wire format changes wall clock, not cells."""

    def run_campaign(self, **kwargs):
        run = run_sharded_campaign(
            scale=130, shard_size=50, seed=SEED, **kwargs
        )
        assert run.ok
        return run

    def test_cells_identical_across_executor_and_transport(self):
        reference = self.run_campaign(jobs=2)
        assert reference.manifest.extra["transport"] == "pickle"
        reference_cells = [r.cells for r in reference.manifest.records]
        for transport in ("pickle", "shm", "auto"):
            run = self.run_campaign(
                jobs=2, executor="process", transport=transport
            )
            resolved = run.manifest.extra["transport"]
            if transport != "auto":
                assert resolved == transport
            cells = [r.cells for r in run.manifest.records]
            assert cells == reference_cells, transport

    def test_thread_executor_never_resolves_to_shm(self):
        run = self.run_campaign(jobs=2, transport="shm")
        assert run.manifest.extra["transport"] == "pickle"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError, match="transport"):
            run_sharded_campaign(
                scale=60, shard_size=30, seed=SEED, transport="carrier-pigeon"
            )

    def test_chunk_bounds_validated(self):
        with pytest.raises(ConfigurationError, match="chunk"):
            run_sharded_campaign(
                scale=60, shard_size=30, seed=SEED, chunk=0
            )

    def test_cells_array_round_trip(self):
        plan = plan_shards(scale=90, shard_size=45, seed=SEED)
        tools = reference_suite(seed=SEED)
        for spec in plan:
            cells = evaluate_shard(
                tools, plan.generate(spec.index), spec.index
            )
            rebuilt = ShardCells.from_array(
                cells.to_array(), cells.tool_names, ecosystem=cells.ecosystem
            )
            assert rebuilt == cells

    def test_warm_pool_reused_across_campaigns(self):
        from repro.bench.engine.transport import (
            cached_process_pool,
            shutdown_cached_pools,
        )

        shutdown_cached_pools()
        first = self.run_campaign(jobs=2, executor="process", transport="shm")
        # The campaign's pool stayed cached: fetching the same key returns
        # the same live executor instead of forking a fresh one.
        pool = cached_process_pool(("shards", SEED, None, "web-services"), 2)
        again = cached_process_pool(("shards", SEED, None, "web-services"), 2)
        assert pool is again
        second = self.run_campaign(jobs=2, executor="process", transport="shm")
        assert [r.cells for r in second.manifest.records] == [
            r.cells for r in first.manifest.records
        ]
        shutdown_cached_pools()


class TestAccumulatorGuards:
    def _cells(self, index=0):
        return ShardCells(
            shard_index=index,
            tool_names=("a", "b"),
            tp=(1, 2), fp=(1, 0), fn=(1, 0), tn=(2, 3),
            n_units=3, n_sites=5, n_vulnerable=2,
        )

    def test_double_fold_is_rejected(self):
        accumulator = CampaignAccumulator(["a", "b"])
        accumulator.fold(self._cells())
        with pytest.raises(ConfigurationError, match="already folded"):
            accumulator.fold(self._cells())

    def test_tool_suite_mismatch_is_rejected(self):
        accumulator = CampaignAccumulator(["x", "y"])
        with pytest.raises(ConfigurationError, match="accumulator expects"):
            accumulator.fold(self._cells())

    def test_empty_accumulator_cannot_finalize(self):
        with pytest.raises(ConfigurationError, match="no shards folded"):
            CampaignAccumulator(["a"]).result()

    def test_merge_combines_disjoint_shards(self):
        left = CampaignAccumulator(["a", "b"])
        right = CampaignAccumulator(["a", "b"])
        left.fold(self._cells(0))
        right.fold(self._cells(1))
        left.merge(right)
        totals = left.result()
        assert totals.n_units == 6
        assert sorted(totals.shard_indices) == [0, 1]

    def test_merge_rejects_overlapping_shards(self):
        left = CampaignAccumulator(["a", "b"])
        right = CampaignAccumulator(["a", "b"])
        left.fold(self._cells(0))
        right.fold(self._cells(0))
        with pytest.raises(ConfigurationError, match="both accumulators"):
            left.merge(right)

    def test_inconsistent_cells_are_rejected_on_construction(self):
        with pytest.raises(ConfigurationError, match="n_sites"):
            ShardCells(
                shard_index=0, tool_names=("a",),
                tp=(1,), fp=(1,), fn=(1,), tn=(1,),
                n_units=2, n_sites=5, n_vulnerable=2,
            )


class TestShardFaultTolerance:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_failed_shard_retries_without_changing_totals(self, executor):
        reference = reference_totals(130, 50, SEED)
        faults = FaultPlan(
            (FaultSpec(experiment_id=shard_fault_id(1), fail_attempts=1),)
        )
        run = run_sharded_campaign(
            scale=130, shard_size=50, seed=SEED, retries=1, faults=faults,
            jobs=2, executor=executor,
        )
        assert run.ok
        assert run.manifest.record_for(1).attempts == 2
        assert run.totals.confusions == reference.confusions

    def test_terminal_failure_without_keep_going_aborts(self):
        faults = FaultPlan(
            (FaultSpec(experiment_id=shard_fault_id(0), fail_attempts=ALWAYS),)
        )
        with pytest.raises(ExperimentFailedError, match="shard 0"):
            run_sharded_campaign(
                scale=60, shard_size=30, seed=SEED, faults=faults
            )

    def test_keep_going_records_failure_and_finishes_the_rest(self):
        faults = FaultPlan(
            (FaultSpec(experiment_id=shard_fault_id(1), fail_attempts=ALWAYS),)
        )
        run = run_sharded_campaign(
            scale=130, shard_size=50, seed=SEED, keep_going=True, faults=faults
        )
        assert not run.ok
        assert run.manifest.incomplete_indices == [1]
        record = run.manifest.record_for(1)
        assert record.failure.error_type == "InjectedFault"
        assert run.totals.n_units == 80  # shards 0 and 2 still folded

    def test_resume_refolds_carried_cells_and_matches_clean_run(self):
        reference = reference_totals(130, 50, SEED)
        faults = FaultPlan(
            (FaultSpec(experiment_id=shard_fault_id(1), fail_attempts=ALWAYS),)
        )
        partial = run_sharded_campaign(
            scale=130, shard_size=50, seed=SEED, keep_going=True, faults=faults
        )
        # Round-trip through JSON, as the CLI does.
        manifest = ShardRunManifest.from_dict(partial.manifest.to_dict())
        resumed = run_sharded_campaign(resume_from=manifest)
        assert resumed.ok
        assert resumed.manifest.extra["resume"] == {"carried": [0, 2]}
        assert resumed.totals.confusions == reference.confusions
        # Carried records keep their original wall times and attempts.
        assert resumed.manifest.record_for(0) == manifest.record_for(0)

    def test_manifest_round_trips_with_schema(self):
        run = run_sharded_campaign(scale=60, shard_size=30, seed=SEED)
        payload = run.manifest.to_dict()
        assert payload["schema"] == SHARD_MANIFEST_SCHEMA
        clone = ShardRunManifest.from_dict(payload)
        assert clone == run.manifest

    def test_cells_cache_warm_run_skips_evaluation(self, tmp_path):
        cold = run_sharded_campaign(
            scale=90, shard_size=30, seed=SEED, cache_dir=str(tmp_path)
        )
        warm = run_sharded_campaign(
            scale=90, shard_size=30, seed=SEED, cache_dir=str(tmp_path)
        )
        assert cold.totals.confusions == warm.totals.confusions
        assert warm.store.counts("shard-cells:")["disk-hit"] == 3
        assert warm.store.counts("shard-cells:")["miss"] == 0

    def test_shard_counters_and_spans_are_recorded(self):
        from repro.obs import Observability, Tracer

        obs = Observability(tracer=Tracer(enabled=True))
        run = run_sharded_campaign(
            scale=90, shard_size=30, seed=SEED, obs=obs
        )
        assert run.ok
        counters = obs.metrics.to_dict()["counters"]
        assert counters["engine.shards.scheduled"] == 3
        assert counters["engine.shards.completed"] == 3
        assert counters["engine.shards.units"] == 90
        names = {span.name for span in obs.tracer.spans}
        assert {"engine.shard_run", "shard.generate", "shard.evaluate"} <= names

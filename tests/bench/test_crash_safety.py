"""Chaos tests for the crash-safe sharded campaign runner.

Every scenario here kills something — a worker (``os._exit`` mid-shard), the
campaign parent (SIGKILL between folds), or the run's patience (hung
workers, torn journals) — and asserts the recovery invariant: a recovered
campaign's totals are byte-identical to an uninterrupted run's
(architecture invariant 8).  In-process tests drive
:func:`run_sharded_campaign` directly; subprocess tests go through the CLI
so the signal handling and journal flushing are exercised end to end.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.engine.faults import (
    ALWAYS,
    FaultPlan,
    FaultSpec,
    tear_file,
)
from repro.bench.engine.shards import run_sharded_campaign, shard_fault_id
from repro.bench.engine.supervise import ShutdownSignal
from repro.bench.engine.transport import SHM_PREFIX, reclaim_leaked_segments
from repro.bench.engine.wal import JournalHeader, ShardJournal, replay_journal
from repro.errors import (
    ConfigurationError,
    EngineError,
    ExperimentTimeoutError,
    WorkerCrashError,
)
from repro.obs import Observability

SEED = 2015
REPO_ROOT = Path(__file__).resolve().parents[2]


def clean_cells(scale: int = 400, shard_size: int = 100):
    """Per-shard cells arrays of an uninterrupted run (the parity target)."""
    run = run_sharded_campaign(scale=scale, shard_size=shard_size, seed=SEED)
    assert run.ok
    return [record.cells.to_array() for record in run.manifest.records]


@pytest.fixture(scope="module")
def reference_400():
    return clean_cells(400, 100)


@pytest.fixture(scope="module")
def reference_1600():
    return clean_cells(1600, 100)


def assert_parity(run, reference) -> None:
    recovered = {
        record.index: record.cells.to_array()
        for record in run.manifest.records
    }
    assert sorted(recovered) == list(range(len(reference)))
    for index, expected in enumerate(reference):
        np.testing.assert_array_equal(recovered[index], expected)


def kill_fault(index: int, attempts: int = 1) -> FaultPlan:
    return FaultPlan(
        (FaultSpec(shard_fault_id(index), kill_attempts=attempts),)
    )


class TestWorkerSupervision:
    def test_worker_kill_recovers_bit_identically(self, reference_400):
        obs = Observability()
        run = run_sharded_campaign(
            scale=400, shard_size=100, seed=SEED,
            jobs=2, executor="process",
            faults=kill_fault(2, attempts=1), obs=obs,
        )
        assert run.ok
        assert_parity(run, reference_400)
        counters = obs.metrics.counter_values("engine.")
        assert counters.get("engine.workers.crashed", 0) >= 1
        assert counters.get("engine.pool.rebuilds", 0) >= 1
        assert counters.get("engine.shards.redispatched", 0) >= 1

    def test_persistent_killer_quarantined_under_keep_going(self):
        obs = Observability()
        run = run_sharded_campaign(
            scale=400, shard_size=100, seed=SEED,
            jobs=2, executor="process", keep_going=True,
            faults=kill_fault(2, attempts=ALWAYS),
            quarantine_after=2, obs=obs,
        )
        statuses = {r.index: r.status for r in run.manifest.records}
        assert statuses[2] == "quarantined"
        assert all(
            status == "completed"
            for index, status in statuses.items()
            if index != 2
        )
        assert not run.manifest.ok
        quarantined = next(r for r in run.manifest.records if r.index == 2)
        assert quarantined.failure.error_type == "WorkerCrashError"
        assert obs.metrics.counter_values("engine.shards.").get(
            "engine.shards.quarantined"
        ) == 1

    def test_persistent_killer_aborts_without_keep_going(self):
        with pytest.raises(EngineError, match="quarantined") as excinfo:
            run_sharded_campaign(
                scale=400, shard_size=100, seed=SEED,
                jobs=2, executor="process",
                faults=kill_fault(2, attempts=ALWAYS),
                quarantine_after=2,
            )
        assert isinstance(excinfo.value.__cause__, WorkerCrashError)

    def test_kill_fault_requires_process_executor(self):
        with pytest.raises(ConfigurationError, match="require executor"):
            run_sharded_campaign(
                scale=400, shard_size=100, seed=SEED,
                jobs=2, executor="thread",
                faults=kill_fault(2),
            )

    def test_pool_rebuild_budget_is_enforced(self):
        with pytest.raises(EngineError, match="rebuild"):
            run_sharded_campaign(
                scale=400, shard_size=100, seed=SEED,
                jobs=2, executor="process",
                faults=kill_fault(2, attempts=1),
                max_pool_rebuilds=0,
            )


class TestWalCheckpointing:
    def test_wal_records_every_fold(self, tmp_path, reference_400):
        obs = Observability()
        wal = tmp_path / "run.wal"
        run = run_sharded_campaign(
            scale=400, shard_size=100, seed=SEED,
            wal_path=str(wal), obs=obs,
        )
        assert run.ok
        assert run.manifest.extra["wal"] == str(wal)
        replay = replay_journal(wal)
        assert not replay.torn
        assert sorted(replay.shard_indices) == [0, 1, 2, 3]
        by_index = {int(a[0]): a for a in replay.arrays}
        for index, expected in enumerate(reference_400):
            np.testing.assert_array_equal(by_index[index], expected)
        assert obs.metrics.counter_values("engine.wal.").get(
            "engine.wal.records"
        ) == 4

    def test_torn_journal_resumes_bit_identically(
        self, tmp_path, reference_400
    ):
        wal = tmp_path / "run.wal"
        run_sharded_campaign(
            scale=400, shard_size=100, seed=SEED, wal_path=str(wal)
        )
        tear_file(wal, n_bytes=16)  # the parent died mid-append

        resumed = run_sharded_campaign(resume_journal=str(wal))
        assert resumed.ok
        assert resumed.manifest.extra["resume"] == {
            "carried": [0, 1, 2],
            "source": "wal",
        }
        assert_parity(resumed, reference_400)
        final = replay_journal(wal)
        assert not final.torn
        assert sorted(final.shard_indices) == [0, 1, 2, 3]

    def test_complete_journal_reruns_nothing(self, tmp_path, reference_400):
        wal = tmp_path / "run.wal"
        run_sharded_campaign(
            scale=400, shard_size=100, seed=SEED, wal_path=str(wal)
        )
        resumed = run_sharded_campaign(resume_journal=str(wal))
        assert resumed.ok
        assert resumed.manifest.extra["resume"]["carried"] == [0, 1, 2, 3]
        assert_parity(resumed, reference_400)

    def test_journal_with_foreign_tools_rejected(self, tmp_path):
        wal = tmp_path / "foreign.wal"
        ShardJournal.create(
            wal,
            JournalHeader(
                seed=SEED, scale=400, shard_size=100,
                ecosystem="web-services", tool_names=("NotARealTool",),
            ),
        ).close()
        with pytest.raises(ConfigurationError, match="tool"):
            run_sharded_campaign(resume_journal=str(wal))

    def test_journal_resume_excludes_other_resume_modes(self, tmp_path):
        wal = tmp_path / "run.wal"
        run_sharded_campaign(
            scale=400, shard_size=100, seed=SEED, wal_path=str(wal)
        )
        with pytest.raises(ConfigurationError):
            run_sharded_campaign(
                resume_journal=str(wal), wal_path=str(tmp_path / "other.wal")
            )
        prior = run_sharded_campaign(scale=400, shard_size=100, seed=SEED)
        with pytest.raises(ConfigurationError):
            run_sharded_campaign(
                resume_journal=str(wal), resume_from=prior.manifest
            )


class TestGracefulShutdown:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parent_stop_drains_and_resumes(
        self, executor, tmp_path, reference_1600
    ):
        wal = tmp_path / f"stop-{executor}.wal"
        run = run_sharded_campaign(
            scale=1600, shard_size=100, seed=SEED,
            jobs=2, executor=executor, wal_path=str(wal),
            faults=FaultPlan((FaultSpec("PARENT", stop_after=2),)),
        )
        assert run.interrupted
        info = run.manifest.extra["interrupted"]
        assert "injected" in info["reason"]
        assert len(run.manifest.records) < 16
        assert len(run.manifest.records) >= 2
        assert sorted(info["unfinished"]) == sorted(
            set(range(16)) - {r.index for r in run.manifest.records}
        )
        assert not run.manifest.ok

        resumed = run_sharded_campaign(
            resume_journal=str(wal), jobs=2, executor=executor
        )
        assert resumed.ok
        assert not resumed.interrupted
        assert_parity(resumed, reference_1600)

    def test_pre_requested_shutdown_runs_nothing(self):
        shutdown = ShutdownSignal()
        shutdown.request("pre-emptied by the test")
        run = run_sharded_campaign(
            scale=400, shard_size=100, seed=SEED, shutdown=shutdown
        )
        assert run.interrupted
        assert run.manifest.records == ()
        assert run.manifest.extra["interrupted"]["reason"] == (
            "pre-emptied by the test"
        )

    def test_shutdown_signal_first_reason_wins(self):
        shutdown = ShutdownSignal()
        assert not shutdown.requested
        shutdown.request("first")
        shutdown.request("second")
        assert shutdown.requested
        assert shutdown.reason == "first"


class TestHeartbeatWatchdog:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_hung_shard_times_out_keep_going(self, executor):
        obs = Observability()
        run = run_sharded_campaign(
            scale=400, shard_size=100, seed=SEED,
            jobs=2, executor=executor, keep_going=True, timeout=0.75,
            faults=FaultPlan(
                (FaultSpec(shard_fault_id(1), hang_seconds=3.0),)
            ),
            obs=obs,
        )
        statuses = {r.index: r.status for r in run.manifest.records}
        assert statuses[1] == "timeout"
        assert all(
            status == "completed"
            for index, status in statuses.items()
            if index != 1
        )
        assert not run.manifest.ok
        hung = next(r for r in run.manifest.records if r.index == 1)
        assert hung.failure.error_type == "ExperimentTimeoutError"
        assert obs.metrics.counter_values("engine.shards.").get(
            "engine.shards.timeout"
        ) == 1

    def test_hung_shard_fail_fast_raises(self):
        with pytest.raises(ExperimentTimeoutError):
            run_sharded_campaign(
                scale=400, shard_size=100, seed=SEED,
                jobs=2, executor="process", timeout=0.75,
                faults=FaultPlan(
                    (FaultSpec(shard_fault_id(1), hang_seconds=3.0),)
                ),
            )

    def test_slow_but_beating_shards_survive_a_tight_timeout(self):
        # Every shard takes longer than a naive per-shard deadline would
        # allow in aggregate, but each one heartbeats — no false positives.
        run = run_sharded_campaign(
            scale=400, shard_size=100, seed=SEED,
            jobs=2, executor="process", timeout=30.0,
        )
        assert run.ok
        assert [r.status for r in run.manifest.records] == ["completed"] * 4


class TestShmHygiene:
    pytestmark = pytest.mark.skipif(
        not Path("/dev/shm").is_dir(), reason="no /dev/shm on this platform"
    )

    def leak(self, name: str) -> Path:
        path = Path("/dev/shm") / name
        path.write_bytes(b"\x00" * 64)
        return path

    def test_reclaims_dead_owners_only(self):
        dead = self.leak(f"{SHM_PREFIX}-99999999-0")
        alive = self.leak(f"{SHM_PREFIX}-{os.getpid()}-777777")
        foreign = self.leak(f"{SHM_PREFIX}-notapid-0")
        try:
            assert reclaim_leaked_segments() >= 1
            assert not dead.exists(), "dead owner's segment must be swept"
            assert alive.exists(), "live owner's segment must survive"
            assert foreign.exists(), "unparseable names must survive"
        finally:
            for path in (dead, alive, foreign):
                path.unlink(missing_ok=True)

    def test_campaign_start_sweeps_and_counts(self):
        leaked = self.leak(f"{SHM_PREFIX}-99999998-0")
        obs = Observability()
        try:
            run = run_sharded_campaign(
                scale=120, shard_size=60, seed=SEED, obs=obs
            )
            assert run.ok
            assert obs.metrics.counter_values("engine.shm.").get(
                "engine.shm.reclaimed", 0
            ) >= 1
        finally:
            leaked.unlink(missing_ok=True)

    def test_corrupt_transport_payload_is_retried(
        self, monkeypatch, reference_400
    ):
        from repro.bench import streaming

        real = streaming.ShardCells.from_array
        state = {"failed": False}

        def flaky(array, tool_names, **kwargs):
            if not state["failed"]:
                state["failed"] = True
                raise ConfigurationError("injected transport corruption")
            return real(array, tool_names, **kwargs)

        monkeypatch.setattr(streaming.ShardCells, "from_array", flaky)
        obs = Observability()
        run = run_sharded_campaign(
            scale=400, shard_size=100, seed=SEED,
            jobs=2, executor="process", transport="shm",
            retries=1, obs=obs,
        )
        assert run.ok
        assert_parity(run, reference_400)
        assert obs.metrics.counter_values("engine.transport.").get(
            "engine.transport.corrupt"
        ) == 1


def cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def wait_for_journal_records(wal: Path, minimum: int = 1) -> None:
    """Block until the journal holds ``minimum`` folded-shard records."""
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        if wal.exists():
            try:
                if len(replay_journal(wal).arrays) >= minimum:
                    return
            except Exception:
                pass  # mid-append; try again
        time.sleep(0.02)
    raise AssertionError(f"journal {wal} never reached {minimum} records")


class TestCrashRecoveryEndToEnd:
    """CLI subprocesses killed for real, recovered via ``--resume``."""

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_sigkilled_parent_resumes_bit_identically(
        self, executor, tmp_path, reference_400
    ):
        wal = tmp_path / f"kill-{executor}.wal"
        # No pipes here: a SIGKILL'd parent can leave orphaned pool workers
        # holding stdout/stderr open, which would wedge a capturing wait.
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "run",
                "--scale", "400", "--shard-size", "100",
                "--jobs", "2", "--executor", executor, "--quiet",
                "--inject-fault", "PARENT:kill=2", "--wal", str(wal),
            ],
            env=cli_env(), cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL
        replay = replay_journal(wal)
        assert len(replay.arrays) == 2, "exactly the pre-kill folds persist"

        resumed = run_sharded_campaign(resume_journal=str(wal))
        assert resumed.ok
        assert resumed.manifest.extra["resume"]["source"] == "wal"
        assert_parity(resumed, reference_400)

    def test_sigterm_drains_flushes_and_resumes(
        self, tmp_path, reference_1600
    ):
        wal = tmp_path / "term.wal"
        manifest = tmp_path / "term.json"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "run",
                "--scale", "1600", "--shard-size", "100", "--quiet",
                "--inject-fault", "s0:hang=2.0",
                "--inject-fault", "s1:hang=2.0",
                "--wal", str(wal), "--manifest", str(manifest),
            ],
            env=cli_env(), cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            wait_for_journal_records(wal, minimum=1)
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 1, stderr[-500:]
        assert "interrupted" in stderr
        assert manifest.exists(), "drain must still write the manifest"

        resumed = run_sharded_campaign(resume_journal=str(wal))
        assert resumed.ok
        assert_parity(resumed, reference_1600)
        carried = resumed.manifest.extra["resume"]["carried"]
        assert carried, "the drained shards must carry over"
        assert len(carried) < 16

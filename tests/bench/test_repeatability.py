"""Tests for run-noise analysis and experiment R19."""

from __future__ import annotations

import math

import pytest

from repro.bench.experiments import r19_run_noise
from repro.bench.repeatability import tool_run_noise
from repro.errors import ConfigurationError
from repro.metrics import definitions as d
from repro.tools.dynamic_injector import DynamicInjector
from repro.tools.taint_analyzer import TaintAnalyzer
from repro.workload.generator import WorkloadConfig, generate_workload

SEED = 99


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadConfig(n_units=250, prevalence=0.2, seed=SEED, name="runnoise")
    )


class TestToolRunNoise:
    def test_deterministic_tool_has_zero_run_noise(self, workload):
        summary = tool_run_noise(
            lambda run_seed: TaintAnalyzer(name="det", max_chain_depth=3),
            workload,
            d.F1,
            n_runs=5,
            seed=SEED,
        )
        assert summary.std == 0.0
        assert summary.min_value == summary.max_value
        assert summary.run_to_sampling_ratio == 0.0

    def test_stochastic_tool_has_positive_run_noise(self, workload):
        summary = tool_run_noise(
            lambda run_seed: DynamicInjector(name="dyn", seed=run_seed),
            workload,
            d.F1,
            n_runs=10,
            seed=SEED,
        )
        assert summary.std > 0.0
        assert summary.min_value < summary.max_value
        assert summary.n_runs == 10

    def test_sampling_std_positive(self, workload):
        summary = tool_run_noise(
            lambda run_seed: TaintAnalyzer(name="det", max_chain_depth=3),
            workload,
            d.F1,
            n_runs=3,
            seed=SEED,
        )
        assert summary.sampling_std > 0.0

    def test_deterministic_in_seed(self, workload):
        kwargs = dict(n_runs=6, seed=SEED)
        a = tool_run_noise(
            lambda run_seed: DynamicInjector(name="dyn", seed=run_seed),
            workload, d.F1, **kwargs,
        )
        b = tool_run_noise(
            lambda run_seed: DynamicInjector(name="dyn", seed=run_seed),
            workload, d.F1, **kwargs,
        )
        assert a == b

    def test_too_few_runs_rejected(self, workload):
        with pytest.raises(ConfigurationError):
            tool_run_noise(
                lambda run_seed: TaintAnalyzer(),
                workload,
                d.F1,
                n_runs=1,
                seed=SEED,
            )

    def test_metric_undefined_on_runs_rejected(self, workload):
        from repro.tools.simulated import SimulatedTool, ToolProfile

        silent = ToolProfile(recall=0.0, fpr=0.0)
        with pytest.raises(ConfigurationError, match="fewer than two runs"):
            tool_run_noise(
                lambda run_seed: SimulatedTool("silent", silent, seed=run_seed),
                workload,
                d.PRECISION,  # undefined for a silent tool
                n_runs=4,
                seed=SEED,
            )


class TestR19:
    @pytest.fixture(scope="class")
    def result(self):
        return r19_run_noise.run(seed=SEED, n_units=250, n_runs=8)

    def test_covers_three_archetypes(self, result):
        assert len(result.data["summaries"]) == 3

    def test_static_tool_is_run_deterministic(self, result):
        summary = result.data["summaries"]["SA-Deep (static)"]
        assert summary.std == 0.0

    def test_stochastic_tools_are_not(self, result):
        for label in ("PT-Spider (dynamic)", "VS-Beta (simulated)"):
            assert result.data["summaries"][label].std > 0.0

    def test_run_noise_not_wildly_above_sampling_noise(self, result):
        """On the reference suite, a single run is within the same noise
        regime as the workload draw (ratio around or below 1)."""
        for label, summary in result.data["summaries"].items():
            assert summary.run_to_sampling_ratio < 2.0, label
            assert math.isfinite(summary.run_to_sampling_ratio)

    def test_renders(self, result):
        assert "Run noise vs sampling noise" in result.render()

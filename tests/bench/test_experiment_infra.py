"""Tests for experiment infrastructure (ExperimentResult, registry, CLI glue)."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.bench.experiments import ALL_EXPERIMENTS, DEFAULT_SEED
from repro.bench.experiments.base import ExperimentResult
from repro.errors import ConfigurationError


class TestExperimentResult:
    def make(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="RX",
            title="A test experiment",
            sections={"alpha": "table A", "beta": "table B"},
            data={"key": 1},
        )

    def test_render_concatenates_sections(self):
        rendered = self.make().render()
        assert rendered.startswith("=== RX: A test experiment ===")
        assert "table A" in rendered
        assert "table B" in rendered

    def test_section_lookup(self):
        assert self.make().section("alpha") == "table A"

    def test_unknown_section_raises(self):
        with pytest.raises(ConfigurationError, match="no section"):
            self.make().section("gamma")

    def test_empty_sections_render(self):
        result = ExperimentResult(experiment_id="RY", title="Empty")
        assert result.render() == "=== RY: Empty ==="


class TestExperimentRegistry:
    def test_twenty_experiments(self):
        assert len(ALL_EXPERIMENTS) == 20

    def test_ids_sequential(self):
        assert list(ALL_EXPERIMENTS) == [f"R{i}" for i in range(1, 21)]

    def test_default_seed_is_publication_year(self):
        assert DEFAULT_SEED == 2015

    def test_all_drivers_callable(self):
        for driver in ALL_EXPERIMENTS.values():
            assert callable(driver)


class TestCliSubprocess:
    """End-to-end: the CLI works as an installed entry point."""

    def test_python_m_repro_list(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "R11" in completed.stdout

    def test_python_m_repro_run_r1(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "run", "R1", "--quiet"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "R1 completed" in completed.stderr

    def test_no_command_is_an_error(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode != 0

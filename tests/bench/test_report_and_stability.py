"""Tests for the scenario report generator and experiments R15/R16."""

from __future__ import annotations

import math

import pytest

from repro.bench.experiments import r15_difficulty, r16_stability
from repro.bench.report import build_scenario_report
from repro.metrics import definitions as d
from repro.scenarios.scenarios import scenario_by_key

SEED = 99


class TestScenarioReport:
    @pytest.fixture(scope="class")
    def critical_report(self, reference_campaign, small_workload):
        return build_scenario_report(
            scenario_by_key("critical"),
            reference_campaign,
            small_workload.truth,
            n_resamples=120,
            seed=SEED,
        )

    def test_lead_metric_selected_for_scenario(self, critical_report):
        assert critical_report.lead_metric.symbol == "REC"
        assert critical_report.adequacy_of_lead > 0.8

    def test_verdicts_cover_suite_best_first(self, critical_report):
        assert len(critical_report.verdicts) == 8
        values = [v.lead_value for v in critical_report.verdicts]
        finite = [v for v in values if math.isfinite(v)]
        assert finite == sorted(finite, reverse=True)

    def test_recommendation_is_a_total_recall_tool(self, critical_report):
        assert critical_report.recommended_tool in {"SA-Grep", "SA-Flow"}

    def test_leader_p_value_is_one(self, critical_report):
        assert critical_report.verdicts[0].p_value_vs_leader == 1.0

    def test_contenders_start_with_leader(self, critical_report):
        assert critical_report.contenders[0] == critical_report.recommended_tool

    def test_field_cost_finite_for_informative_tools(self, critical_report):
        for verdict in critical_report.verdicts:
            assert math.isfinite(verdict.expected_field_cost), verdict.tool_name

    def test_render_contains_everything(self, critical_report):
        text = critical_report.render()
        assert "Recommendation" in text
        assert "Recall" in text
        assert "100:1" in text

    def test_scenarios_recommend_different_tools(
        self, reference_campaign, small_workload
    ):
        critical = build_scenario_report(
            scenario_by_key("critical"),
            reference_campaign,
            small_workload.truth,
            n_resamples=60,
            seed=SEED,
        )
        triage = build_scenario_report(
            scenario_by_key("triage"),
            reference_campaign,
            small_workload.truth,
            n_resamples=60,
            seed=SEED,
        )
        assert critical.recommended_tool != triage.recommended_tool

    def test_pinned_lead_metric_respected(self, reference_campaign, small_workload):
        report = build_scenario_report(
            scenario_by_key("balanced"),
            reference_campaign,
            small_workload.truth,
            lead_metric=d.MCC,
            n_resamples=60,
            seed=SEED,
        )
        assert report.lead_metric is d.MCC

    def test_deterministic(self, reference_campaign, small_workload):
        a = build_scenario_report(
            scenario_by_key("triage"),
            reference_campaign,
            small_workload.truth,
            n_resamples=60,
            seed=SEED,
        )
        b = build_scenario_report(
            scenario_by_key("triage"),
            reference_campaign,
            small_workload.truth,
            n_resamples=60,
            seed=SEED,
        )
        assert a.render() == b.render()


class TestR15Difficulty:
    @pytest.fixture(scope="class")
    def result(self):
        return r15_difficulty.run(seed=SEED, n_units=500)

    def test_grep_scanner_is_difficulty_blind(self, result):
        recalls = result.data["recalls"]["SA-Grep"]
        assert all(r == 1.0 for r in recalls if math.isfinite(r))

    def test_deep_analyzer_collapses_on_hard_sites(self, result):
        recalls = result.data["recalls"]["SA-Deep"]
        assert recalls[0] > 0.9
        assert recalls[-1] < 0.3

    def test_dynamic_tester_degrades(self, result):
        recalls = result.data["recalls"]["PT-Spider"]
        assert recalls[0] > recalls[-1]

    def test_every_bin_populated(self, result):
        assert all(size > 0 for size in result.data["bin_sizes"].values())

    def test_sections_render(self, result):
        assert "Recall vs site difficulty" in result.render()


class TestR16Stability:
    @pytest.fixture(scope="class")
    def result(self):
        return r16_stability.run(seed=SEED, n_replicas=6, n_pools=15, n_resamples=30)

    def test_critical_winner_is_unanimous(self, result):
        winners = result.data["analytical_winners"]["critical"]
        assert set(winners) == {"REC"}
        mcda = result.data["mcda_winners"]["critical"]
        assert max(mcda, key=mcda.get) == "REC"

    def test_mcda_conclusions_are_panel_stable(self, result):
        for key, share in result.data["modal_shares"]["mcda"].items():
            assert share >= 0.5, key

    def test_analytical_winners_stay_in_family(self, result):
        """Across seeds the analytical winner may move, but only inside the
        scenario-appropriate cluster."""
        triage_ok = {"PRE", "F0.5", "MRK", "SPC", "ACC", "KAP", "F1", "MCC", "JAC"}
        for winner in result.data["analytical_winners"]["triage"]:
            assert winner in triage_ok
        critical_ok = {"REC", "F2", "GM"}
        for winner in result.data["analytical_winners"]["critical"]:
            assert winner in critical_ok

    def test_counts_sum_to_replicas(self, result):
        n = result.data["n_replicas"]
        for counter in result.data["analytical_winners"].values():
            assert sum(counter.values()) == n
        for counter in result.data["mcda_winners"].values():
            assert sum(counter.values()) == n

"""Tests for the extension experiments R12-R14 and the CLI."""

from __future__ import annotations

import math

import pytest

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    r12_pertype,
    r13_ranking,
    r14_significance,
)
from repro.cli import main
from repro.metrics import definitions as d

SEED = 99


class TestR12PerType:
    @pytest.fixture(scope="class")
    def result(self):
        return r12_pertype.run(seed=SEED, n_units=200)

    def test_sections(self, result):
        for section in ("per_type", "aggregation", "summary"):
            assert section in result.sections

    def test_breakdowns_cover_suite(self, result):
        assert len(result.data["breakdowns"]) == 8

    def test_aggregations_correlate_but_not_perfectly(self, result):
        tau = result.data["tau_macro_micro"]
        assert 0.3 < tau <= 1.0

    def test_winners_recorded(self, result):
        assert result.data["macro_winner"] in result.data["macro"]
        assert result.data["micro_winner"] in result.data["micro"]

    def test_custom_metric(self):
        result = r12_pertype.run(seed=SEED, n_units=150, metric=d.RECALL)
        assert "Recall per vulnerability class" in result.render()


class TestR13Ranking:
    @pytest.fixture(scope="class")
    def result(self):
        return r13_ranking.run(seed=SEED, n_units=200)

    def test_auc_for_every_tool(self, result):
        assert len(result.data["auc"]) == 8
        for value in result.data["auc"].values():
            assert 0.0 <= value <= 1.0

    def test_tools_rank_better_than_chance(self, result):
        assert all(value > 0.5 for value in result.data["auc"].values())

    def test_ap_bounded(self, result):
        for value in result.data["ap"].values():
            assert 0.0 <= value <= 1.0

    def test_ranking_metrics_tell_a_different_story(self, result):
        """AUC ordering diverges from the fixed-threshold composites — the
        reason a benchmark must choose deliberately between report-level and
        ranking-level evaluation."""
        taus = result.data["taus"]
        assert taus["auc_vs_F1"] < 0.8

    def test_roc_chart_rendered(self, result):
        assert "true positive rate" in result.sections["roc"]


class TestR14Significance:
    @pytest.fixture(scope="class")
    def result(self):
        return r14_significance.run(seed=SEED, n_units=200)

    def test_pvalues_bounded(self, result):
        for p in result.data["p_values"].values():
            assert 0.0 <= p <= 1.0

    def test_symmetric(self, result):
        p_values = result.data["p_values"]
        for (a, b), p in p_values.items():
            assert p_values[(b, a)] == p

    def test_extreme_pairs_significant(self, result):
        p_values = result.data["p_values"]
        assert p_values[("SA-Grep", "SA-Deep")] < 0.01

    def test_some_pairs_distinguishable(self, result):
        assert result.data["significant_fraction"] > 0.5

    def test_tables_render(self, result):
        text = result.render()
        assert "McNemar" in text
        assert "Wilson" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ALL_EXPERIMENTS:
            assert key in out

    def test_run_single(self, capsys):
        assert main(["run", "R1"]) == 0
        assert "Candidate metrics" in capsys.readouterr().out

    def test_run_quiet(self, capsys):
        assert main(["run", "R1", "--quiet"]) == 0
        captured = capsys.readouterr()
        assert "Candidate metrics" not in captured.out
        assert "R1 completed" in captured.err

    def test_run_case_insensitive(self, capsys):
        assert main(["run", "r1", "--quiet"]) == 0

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "R99"])

    def test_out_dir_written(self, tmp_path, capsys):
        assert main(["run", "R1", "--quiet", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "r1.txt").exists()
        assert "Candidate metrics" in (tmp_path / "r1.txt").read_text()

    def test_seed_forwarded(self, tmp_path, capsys):
        main(["run", "R3", "--quiet", "--seed", "123", "--out", str(tmp_path / "a")])
        main(["run", "R3", "--quiet", "--seed", "124", "--out", str(tmp_path / "b")])
        assert (
            (tmp_path / "a" / "r3.txt").read_text()
            != (tmp_path / "b" / "r3.txt").read_text()
        )

    def test_all_resolves_every_experiment(self):
        from repro.cli import _normalize_ids

        assert _normalize_ids(["all"]) == list(ALL_EXPERIMENTS)


def test_math_sanity():
    """Guard against accidental nan leakage in the experiment payloads."""
    result = r13_ranking.run(seed=SEED, n_units=120)
    assert all(math.isfinite(v) for v in result.data["auc"].values())

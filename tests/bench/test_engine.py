"""Tests for the experiment engine: specs, artifact store, scheduler."""

from __future__ import annotations

import json

import pytest

from repro.bench.engine.artifacts import ArtifactCodec, ArtifactKey, ArtifactStore
from repro.bench.engine.context import (
    RunContext,
    UncacheableParameter,
    _canonical,
    ensure_context,
    workload_codec,
)
from repro.bench.engine.manifest import MANIFEST_SCHEMA, RunManifest
from repro.bench.engine.scheduler import run_experiments, topological_order
from repro.bench.engine.spec import (
    ExperimentSpec,
    all_specs,
    experiment_ids,
    get_spec,
)
from repro.errors import ConfigurationError

ALL_IDS = [f"R{i}" for i in range(1, 21)]
#: A cheap slice of the suite covering shared artifacts and a diamond of
#: dependencies; used where running all twenty would be wasteful.
FAST_SUBSET = ["R1", "R3", "R4", "R5", "R6", "R12", "R13"]

CAMPAIGN_600 = "campaign:reference[n_units=600,seed=2015]"


class TestSpecRegistry:
    def test_every_experiment_has_a_spec(self):
        assert experiment_ids() == ALL_IDS

    def test_seedless_flags_match_the_old_cli_set(self):
        seedless = {s.experiment_id for s in all_specs() if s.seedless}
        assert seedless == {"R1", "R6"}

    def test_titles_and_artifacts_nonempty(self):
        for spec in all_specs():
            assert spec.title
            assert spec.artifact
            assert spec.list_line == f"{spec.title} ({spec.artifact})"

    def test_dependencies_are_known_experiments(self):
        known = set(experiment_ids())
        for spec in all_specs():
            assert set(spec.depends_on) <= known

    def test_get_spec_is_case_insensitive(self):
        assert get_spec("r11").experiment_id == "R11"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            get_spec("R99")

    def test_self_dependency_rejected(self):
        with pytest.raises(ConfigurationError, match="depend on itself"):
            ExperimentSpec(
                experiment_id="RX",
                title="x",
                artifact="table",
                runner=lambda **kw: None,
                depends_on=("RX",),
            )

    def test_full_suite_orders_canonically(self):
        ordered = [s.experiment_id for s in topological_order(ALL_IDS)]
        assert ordered == ALL_IDS

    def test_dependencies_precede_dependents(self):
        ordered = [s.experiment_id for s in topological_order(["R11", "R9", "R8"])]
        assert ordered.index("R8") < ordered.index("R11")
        assert ordered.index("R9") < ordered.index("R11")

    def test_edges_outside_the_requested_set_are_ignored(self):
        ordered = [s.experiment_id for s in topological_order(["R5", "R4"])]
        assert ordered == ["R4", "R5"]

    def test_cycle_detected(self, monkeypatch):
        from repro.bench.engine import spec as spec_module

        def runner(**kwargs):  # pragma: no cover - never runs
            raise AssertionError

        a = ExperimentSpec("X1", "a", "table", runner, depends_on=("X2",))
        b = ExperimentSpec("X2", "b", "table", runner, depends_on=("X1",))
        monkeypatch.setitem(spec_module._REGISTRY, "X1", a)
        monkeypatch.setitem(spec_module._REGISTRY, "X2", b)
        with pytest.raises(ConfigurationError, match="cycle"):
            topological_order(["X1", "X2"])


class TestCanonicalKeys:
    def test_scalars_pass_through(self):
        assert _canonical(3) == 3
        assert _canonical("x") == "x"
        assert _canonical(None) is None

    def test_registry_keys_by_symbols(self):
        from repro.metrics.registry import core_candidates

        kind, symbols = _canonical(core_candidates())
        assert kind == "registry"
        assert symbols == tuple(core_candidates().symbols)

    def test_metric_keys_by_symbol(self):
        from repro.metrics import definitions

        assert _canonical(definitions.F1) == ("metric", definitions.F1.symbol)

    def test_scenario_keys_by_key(self):
        from repro.scenarios.scenarios import canonical_scenarios

        scenario = canonical_scenarios()[0]
        assert _canonical(scenario) == ("scenario", scenario.key)

    def test_expert_panel_is_uncacheable(self):
        from repro.experts.panel import default_panel

        with pytest.raises(UncacheableParameter):
            _canonical(default_panel(seed=1))

    def test_arbitrary_objects_are_uncacheable(self):
        with pytest.raises(UncacheableParameter):
            _canonical(object())


class TestArtifactStore:
    def key(self, **params) -> ArtifactKey:
        return ArtifactKey("thing", "t", tuple(sorted(params.items())))

    def test_computes_once_then_hits(self):
        store = ArtifactStore()
        calls = []
        for _ in range(3):
            value = store.get_or_compute(
                self.key(n=1), lambda: calls.append(1) or 42
            )
            assert value == 42
        assert len(calls) == 1
        assert store.counts()["miss"] == 1
        assert store.counts()["hit"] == 2

    def test_distinct_keys_compute_separately(self):
        store = ArtifactStore()
        assert store.get_or_compute(self.key(n=1), lambda: "a") == "a"
        assert store.get_or_compute(self.key(n=2), lambda: "b") == "b"
        assert store.counts()["miss"] == 2

    def test_events_attribute_to_requester(self):
        store = ArtifactStore()
        store.get_or_compute(self.key(n=1), lambda: 1, requester="R3")
        store.get_or_compute(self.key(n=1), lambda: 1, requester="R4")
        assert [e.status for e in store.events_for("R3")] == ["miss"]
        assert [e.status for e in store.events_for("R4")] == ["hit"]

    def test_record_uncached(self):
        store = ArtifactStore()
        store.record_uncached(self.key(), requester="R9")
        assert store.counts()["uncached"] == 1

    def test_disk_tier_round_trips_workloads(self, tmp_path):
        from repro.bench.experiments.r3_campaign import reference_workload

        codec = workload_codec()
        key = ArtifactKey("workload", "reference", (("n_units", 40), ("seed", 7)))
        compute_calls = []

        def compute():
            compute_calls.append(1)
            return reference_workload(seed=7, n_units=40)

        cold = ArtifactStore(cache_dir=tmp_path)
        first = cold.get_or_compute(key, compute, codec=codec)
        assert compute_calls == [1]
        assert (tmp_path / key.filename).exists()

        warm = ArtifactStore(cache_dir=tmp_path)
        second = warm.get_or_compute(key, compute, codec=codec)
        assert compute_calls == [1], "warm store must not recompute"
        assert warm.counts()["disk-hit"] == 1
        assert second.truth == first.truth
        assert second.units == first.units

    def test_schema_mismatched_disk_payload_quarantined(self, tmp_path):
        # Pre-integrity-envelope (or plain wrong-schema) cache files are
        # quarantined and recomputed, not fatal.
        from repro.bench.experiments.r3_campaign import reference_workload

        key = ArtifactKey("workload", "reference", (("seed", 7),))
        path = tmp_path / key.filename
        path.write_text(
            json.dumps({"schema": "repro/workload@99"}), encoding="utf-8"
        )
        store = ArtifactStore(cache_dir=tmp_path)
        value = store.get_or_compute(
            key,
            lambda: reference_workload(seed=7, n_units=40),
            codec=workload_codec(),
        )
        assert len(value.units) == 40
        assert path.with_name(path.name + ".corrupt").exists()
        assert store.counts()["corrupt"] == 1
        assert store.counts()["miss"] == 1

    def test_no_codec_means_memory_only(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path)
        store.get_or_compute(self.key(n=1), lambda: 1)
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_retention_cap_prunes_oldest(self, tmp_path):
        import os

        from repro.bench.engine.artifacts import CORRUPT_RETENTION_CAP
        from repro.bench.experiments.r3_campaign import reference_workload

        # A cache dir already at the retention cap, oldest-first mtimes.
        for i in range(CORRUPT_RETENTION_CAP):
            stale = tmp_path / f"old-{i:02d}.json.corrupt"
            stale.write_text("x")
            os.utime(stale, (1_000_000 + i, 1_000_000 + i))
        key = ArtifactKey("workload", "reference", (("seed", 7),))
        path = tmp_path / key.filename
        path.write_text(
            json.dumps({"schema": "repro/workload@99"}), encoding="utf-8"
        )
        store = ArtifactStore(cache_dir=tmp_path)
        store.get_or_compute(
            key,
            lambda: reference_workload(seed=7, n_units=40),
            codec=workload_codec(),
        )
        corrupt = {p.name for p in tmp_path.glob("*.corrupt")}
        assert len(corrupt) == CORRUPT_RETENTION_CAP
        assert "old-00.json.corrupt" not in corrupt, "oldest must age out"
        assert path.name + ".corrupt" in corrupt, "newest must survive"
        counters = store.obs.metrics.counter_values("engine.cache.")
        assert counters.get("engine.cache.corrupt_pruned") == 1
        gauges = store.obs.metrics.gauge_values("engine.cache.")
        assert gauges.get("engine.cache.corrupt_files") == float(
            CORRUPT_RETENTION_CAP
        )


class TestCacheSemantics:
    def test_campaign_computed_once_across_r3_r4_r5(self):
        run = run_experiments(["R3", "R4", "R5"], seed=2015)
        counts = run.manifest.cache_counts(CAMPAIGN_600)
        assert counts["miss"] == 1
        assert counts["hit"] == 2

    def test_different_seed_is_a_different_artifact(self):
        store = ArtifactStore()
        run_experiments(["R4"], seed=1, store=store)
        run_experiments(["R4"], seed=2, store=store)
        campaign_events = [
            e for e in store.events if e.key.startswith("campaign:reference")
        ]
        assert [e.status for e in campaign_events] == ["miss", "miss"]

    def test_explicit_default_matches_implicit_default(self):
        ctx = RunContext(seed=2015)
        ctx.experiment("R4", seed=2015, n_units=600)
        ctx.experiment("R4", seed=2015)  # relies on cache_defaults
        experiment_events = [
            e for e in ctx.store.events if e.key.startswith("experiment:R4")
        ]
        assert [e.status for e in experiment_events] == ["miss", "hit"]

    def test_warm_store_reruns_for_free(self):
        store = ArtifactStore()
        cold = run_experiments(["R3", "R4"], seed=2015, store=store)
        warm = run_experiments(["R3", "R4"], seed=2015, store=store)
        assert warm.manifest.cache_counts()["miss"] == 0
        for key in ("R3", "R4"):
            assert warm.results[key].render() == cold.results[key].render()

    def test_standalone_run_still_works_without_context(self):
        from repro.bench.experiments.r4_metric_values import run as run_r4

        result = run_r4(seed=2015)
        assert result.experiment_id == "R4"
        assert result.sections


class TestSchedulerParallel:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            run_experiments(["R1"], jobs=0)

    def test_parallel_is_byte_identical_to_serial(self):
        serial = run_experiments(FAST_SUBSET, seed=2015, jobs=1)
        parallel = run_experiments(FAST_SUBSET, seed=2015, jobs=4)
        for key in FAST_SUBSET:
            assert serial.results[key].render() == parallel.results[key].render()

    def test_parallel_manifest_matches_serial_modulo_timing(self):
        def strip(manifest: RunManifest) -> str:
            payload = manifest.to_dict()
            payload["wall_seconds"] = payload["jobs"] = None
            for record in payload["experiments"]:
                record["wall_seconds"] = None
                for event in record["artifacts"]:
                    event["seconds"] = None
            return json.dumps(payload, sort_keys=True)

        serial = run_experiments(FAST_SUBSET, seed=2015, jobs=1)
        parallel = run_experiments(FAST_SUBSET, seed=2015, jobs=4)
        assert strip(serial.manifest) == strip(parallel.manifest)

    def test_results_keyed_in_requested_order(self):
        requested = ["R5", "R3", "R1"]
        run = run_experiments(requested, seed=2015)
        assert list(run.results) == requested
        assert run.manifest.experiment_ids == requested


class TestProcessExecutor:
    def test_renders_match_thread_executor(self):
        thread = run_experiments(["R1", "R4"], seed=2015, jobs=2)
        process = run_experiments(
            ["R1", "R4"], seed=2015, jobs=2, executor="process"
        )
        for key in ("R1", "R4"):
            assert (
                thread.results[key].render() == process.results[key].render()
            )

    def test_invalid_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="executor"):
            run_experiments(["R1"], executor="fiber")

    def test_profiling_requires_thread_executor(self, tmp_path):
        from repro.obs import Observability, Profiler

        obs = Observability(profiler=Profiler(tmp_path))
        with pytest.raises(ConfigurationError, match="thread executor"):
            run_experiments(["R1"], executor="process", obs=obs)

    def test_worker_metrics_merge_into_parent(self):
        from repro.bench.engine.transport import shutdown_cached_pools
        from repro.obs import Observability

        # Pools are cached across runs; start cold so worker-side cache
        # misses (and the compute they trigger) are guaranteed to happen.
        shutdown_cached_pools()
        obs = Observability()
        run_experiments(
            ["R1", "R4"], seed=2015, jobs=2, obs=obs, executor="process"
        )
        counters = obs.metrics.counter_values()
        # Scheduling is parent-side bookkeeping; cache traffic and the
        # experiment's own counters happened in the workers and arrive
        # only through the merged dumps.
        assert counters["engine.experiments.scheduled"] == 2
        assert counters["engine.experiments.completed"] == 2
        assert counters.get("engine.cache.miss", 0) >= 1
        assert counters.get("experiment.R4.units_processed", 0) > 0

    def test_worker_spans_stitch_into_parent_trace(self):
        from repro.obs import Observability, Tracer

        obs = Observability(tracer=Tracer(enabled=True))
        run_experiments(
            ["R1", "R4"], seed=2015, jobs=2, obs=obs, executor="process"
        )
        summary = obs.tracer.summary()
        assert "engine.run" in summary  # recorded by the parent
        assert "experiment.R1" in summary  # recorded in a worker
        assert "experiment.R4" in summary
        span_ids = [record.span_id for record in obs.tracer.spans]
        assert len(span_ids) == len(set(span_ids))  # remapped, no collisions

    def test_manifest_records_worker_artifacts(self):
        from repro.bench.engine.transport import shutdown_cached_pools

        shutdown_cached_pools()  # cold workers, so the miss is guaranteed
        run = run_experiments(["R4"], seed=2015, executor="process")
        record = run.manifest.record_for("R4")
        assert record.seed == 2015
        assert record.wall_seconds >= 0
        assert record.cache_counts["miss"] >= 1


class TestRunManifest:
    def run_once(self):
        return run_experiments(["R3", "R4"], seed=2015)

    def test_round_trips_through_json(self):
        manifest = self.run_once().manifest
        payload = json.loads(json.dumps(manifest.to_dict()))
        rebuilt = RunManifest.from_dict(payload)
        assert rebuilt.seed == manifest.seed
        assert rebuilt.experiment_ids == manifest.experiment_ids
        assert (
            rebuilt.record_for("R4").cache_counts
            == manifest.record_for("R4").cache_counts
        )

    def test_schema_tagged_and_checked(self):
        manifest = self.run_once().manifest
        payload = manifest.to_dict()
        assert payload["schema"] == MANIFEST_SCHEMA
        payload["schema"] = "repro/run-manifest@99"
        with pytest.raises(ConfigurationError, match="schema"):
            RunManifest.from_dict(payload)

    def test_records_carry_seed_and_wall_time(self):
        manifest = self.run_once().manifest
        record = manifest.record_for("R3")
        assert record.seed == 2015
        assert record.wall_seconds >= 0
        seedless = run_experiments(["R1"]).manifest.record_for("R1")
        assert seedless.seed is None

    def test_unknown_record_rejected(self):
        with pytest.raises(ConfigurationError, match="no record"):
            self.run_once().manifest.record_for("R9")

    def test_summary_line_mentions_jobs_and_seed(self):
        line = self.run_once().manifest.summary_line()
        assert "jobs=1" in line
        assert "seed=2015" in line


class TestEnsureContext:
    def test_passthrough(self):
        ctx = RunContext(seed=7)
        assert ensure_context(ctx, seed=99) is ctx

    def test_fresh_context_on_none(self):
        ctx = ensure_context(None, seed=7)
        assert ctx.seed == 7
        assert len(ctx.store) == 0

    def test_stream_seed_is_deterministic(self):
        from repro._rng import derive_seed

        ctx = RunContext(seed=7)
        assert ctx.stream_seed("x") == derive_seed(7, "x")


class TestObservabilityIntegration:
    """The metrics dump, the manifest and the trace describe the same run."""

    def run_traced(self, jobs: int = 1):
        from repro.obs import Observability

        obs = Observability.enabled()
        run = run_experiments(FAST_SUBSET, seed=2015, jobs=jobs, obs=obs)
        return run, obs

    def test_cache_counters_equal_manifest_totals(self):
        run, obs = self.run_traced()
        totals = run.manifest.cache_counts()
        counters = obs.metrics.counter_values("engine.cache.")
        for status in ("hit", "miss", "disk-hit", "uncached"):
            name = f"engine.cache.{status.replace('-', '_')}"
            assert counters.get(name, 0) == totals[status], status

    def test_experiment_lifecycle_counters(self):
        run, obs = self.run_traced()
        counters = obs.metrics.counter_values("engine.experiments.")
        n = len(FAST_SUBSET)
        assert counters["engine.experiments.scheduled"] == n
        assert counters["engine.experiments.completed"] == n
        assert counters.get("engine.experiments.failed", 0) == 0
        assert obs.metrics.histogram("engine.experiment.seconds").count == n
        del run

    def test_spans_cover_the_taxonomy(self):
        run, obs = self.run_traced()
        names = {record.name for record in obs.tracer.spans}
        assert "engine.run" in names
        for key in FAST_SUBSET:
            assert f"experiment.{key}" in names
        assert "artifact.compute" in names
        assert "metric.compute" in names
        del run

    def test_experiment_spans_nest_under_engine_run(self):
        run, obs = self.run_traced()
        by_id = {record.span_id: record for record in obs.tracer.spans}
        roots = [r for r in obs.tracer.spans if r.name == "engine.run"]
        assert len(roots) == 1
        for record in obs.tracer.spans:
            if record.name.startswith("experiment."):
                assert by_id[record.parent_id].name == "engine.run"
        del run

    def test_manifest_embeds_the_span_summary_when_tracing(self):
        run, obs = self.run_traced()
        summary = run.manifest.observability["spans"]
        assert summary == obs.tracer.summary()
        assert summary["engine.run"]["count"] == 1
        untraced = run_experiments(["R1"], seed=2015)
        assert untraced.manifest.observability is None

    def test_parallel_traced_run_is_byte_identical_to_serial(self):
        serial, serial_obs = self.run_traced(jobs=1)
        parallel, parallel_obs = self.run_traced(jobs=4)
        for key in FAST_SUBSET:
            assert serial.results[key].render() == parallel.results[key].render()
        # Same work happened, whatever the interleaving: identical counters
        # and identical span-name census (timings aside).
        assert serial_obs.metrics.counter_values() == (
            parallel_obs.metrics.counter_values()
        )
        assert {n: s["count"] for n, s in serial_obs.tracer.summary().items()} == {
            n: s["count"] for n, s in parallel_obs.tracer.summary().items()
        }

    def test_units_processed_counters_recorded_per_experiment(self):
        run, obs = self.run_traced()
        counters = obs.metrics.counter_values("experiment.")
        for key in ("R3", "R4", "R5", "R13"):
            assert counters[f"experiment.{key}.units_processed"] > 0
        del run

    def test_default_run_keeps_metrics_but_no_spans(self):
        store = ArtifactStore()
        run = run_experiments(["R1"], seed=2015, store=store)
        assert len(store.obs.tracer) == 0
        assert store.obs.metrics.counter_values("engine.experiments.")[
            "engine.experiments.completed"
        ] == 1
        del run

    def test_profiler_wraps_each_experiment(self, tmp_path):
        from repro.obs import Observability, Profiler

        obs = Observability(profiler=Profiler(tmp_path))
        run_experiments(["R1", "R2"], seed=2015, obs=obs)
        assert {r.name for r in obs.profiler.reports} == {"R1", "R2"}
        assert (tmp_path / "r1.pstats").exists()
        assert (tmp_path / "r2.pstats").exists()


class TestArtifactCodecHelpers:
    def test_key_token_is_stable(self):
        key = ArtifactKey("campaign", "reference", (("n_units", 600), ("seed", 2015)))
        assert key.token == CAMPAIGN_600

    def test_filename_is_collision_safe(self):
        a = ArtifactKey("workload", "reference", (("seed", 1),))
        b = ArtifactKey("workload", "reference", (("seed", 2),))
        assert a.filename != b.filename
        assert a.filename.endswith(".json")

    def test_codec_is_a_pure_pair(self):
        codec = ArtifactCodec(to_dict=lambda v: {"v": v}, from_dict=lambda d: d["v"])
        assert codec.from_dict(codec.to_dict(5)) == 5

"""Tests for the scenario-guidance wizard."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.adequacy import AdequacyConfig
from repro.scenarios.guidance import GuidanceAnswers, recommend

CONFIG = AdequacyConfig(n_pools=25, seed=5)


def answers(**overrides) -> GuidanceAnswers:
    defaults = dict(
        miss_to_alarm_ratio=5.0,
        field_prevalence=(0.1, 0.3),
        benchmark_enriched=False,
        audience="mixed",
        triage_capacity="adequate",
    )
    defaults.update(overrides)
    return GuidanceAnswers(**defaults)


class TestValidation:
    @pytest.mark.parametrize("ratio", [0.0, -1.0, float("inf")])
    def test_bad_ratio(self, ratio):
        with pytest.raises(ConfigurationError):
            answers(miss_to_alarm_ratio=ratio)

    @pytest.mark.parametrize("prevalence", [(0.0, 0.1), (0.3, 0.1), (0.1, 1.0)])
    def test_bad_prevalence(self, prevalence):
        with pytest.raises(ConfigurationError):
            answers(field_prevalence=prevalence)

    def test_bad_audience(self):
        with pytest.raises(ConfigurationError):
            answers(audience="robots")

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            answers(triage_capacity="infinite")


class TestSynthesizedScenario:
    def test_weights_normalized(self):
        recommendation = recommend(answers(), config=CONFIG)
        total = sum(recommendation.scenario.property_weights.values())
        assert total == pytest.approx(1.0)

    def test_cost_matches_ratio(self):
        recommendation = recommend(answers(miss_to_alarm_ratio=42.0), config=CONFIG)
        assert recommendation.scenario.cost.miss_to_alarm_ratio == 42.0

    def test_enriched_benchmark_declared(self):
        recommendation = recommend(
            answers(field_prevalence=(0.01, 0.04), benchmark_enriched=True),
            config=CONFIG,
        )
        assert recommendation.scenario.benchmark_prevalence_range is not None

    def test_scenario_is_valid_and_usable(self):
        # The returned scenario passes full Scenario validation and can be
        # fed back into any scenario-consuming API.
        from repro.scenarios.adequacy import scenario_adequacy
        from repro.metrics import definitions as d

        recommendation = recommend(answers(), config=CONFIG)
        result = scenario_adequacy(d.MCC, recommendation.scenario, CONFIG)
        assert -1.0 <= result.mean_tau <= 1.0


class TestRecommendations:
    def test_catastrophic_misses_recommend_recall_family(self):
        recommendation = recommend(
            answers(miss_to_alarm_ratio=100.0, triage_capacity="ample"),
            config=CONFIG,
        )
        assert recommendation.lead_metric_symbol in {"REC", "F2", "GM", "BAC"}

    def test_alarm_fatigue_recommends_exactness_family(self):
        recommendation = recommend(
            answers(
                miss_to_alarm_ratio=1.0,
                triage_capacity="scarce",
                audience="practitioners",
            ),
            config=CONFIG,
        )
        assert recommendation.lead_metric_symbol in {
            "PRE", "F0.5", "MRK", "SPC", "ACC", "KAP",
        }

    def test_different_answers_can_change_the_pick(self):
        critical = recommend(
            answers(miss_to_alarm_ratio=100.0, triage_capacity="ample"),
            config=CONFIG,
        )
        triage = recommend(
            answers(miss_to_alarm_ratio=1.0, triage_capacity="scarce"),
            config=CONFIG,
        )
        assert critical.lead_metric_symbol != triage.lead_metric_symbol

    def test_rationale_mentions_each_adjustment(self):
        recommendation = recommend(
            answers(
                miss_to_alarm_ratio=50.0,
                benchmark_enriched=True,
                audience="practitioners",
                triage_capacity="scarce",
            ),
            config=CONFIG,
        )
        text = " ".join(recommendation.rationale)
        assert "detection" in text
        assert "enriched" in text or "low-prevalence" in text
        assert "practitioner" in text
        assert "scarce" in text

    def test_render(self):
        recommendation = recommend(answers(), config=CONFIG)
        rendered = recommendation.render()
        assert "Recommended benchmark metric" in rendered
        assert recommendation.lead_metric_symbol in rendered

    def test_runners_up_exclude_the_winner(self):
        recommendation = recommend(answers(), config=CONFIG)
        assert recommendation.lead_metric_symbol not in recommendation.runners_up
        assert len(recommendation.runners_up) == 3

"""Tests for the analytical adequacy study (the heart of R8)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.metrics import definitions as d
from repro.metrics.registry import MetricRegistry
from repro.scenarios.adequacy import (
    AdequacyConfig,
    rank_metrics_for_scenario,
    scenario_adequacy,
)
from repro.scenarios.scenarios import scenario_by_key

CONFIG = AdequacyConfig(n_pools=25, seed=3)


class TestConfigValidation:
    def test_defaults(self):
        AdequacyConfig()

    def test_rejects_no_pools(self):
        with pytest.raises(ConfigurationError):
            AdequacyConfig(n_pools=0)

    def test_rejects_tiny_pools(self):
        with pytest.raises(ConfigurationError):
            AdequacyConfig(tools_per_pool=2)

    def test_rejects_empty_workload(self):
        with pytest.raises(ConfigurationError):
            AdequacyConfig(workload_sites=0)


class TestScenarioAdequacy:
    def test_deterministic(self):
        scenario = scenario_by_key("balanced")
        a = scenario_adequacy(d.MCC, scenario, CONFIG)
        b = scenario_adequacy(d.MCC, scenario, CONFIG)
        assert a == b

    def test_tau_within_bounds(self):
        scenario = scenario_by_key("balanced")
        for metric in (d.RECALL, d.PRECISION, d.MCC, d.ACCURACY):
            result = scenario_adequacy(metric, scenario, CONFIG)
            assert -1.0 <= result.mean_tau <= 1.0
            assert result.n_pools == CONFIG.n_pools

    def test_recall_dominates_in_critical_scenario(self):
        scenario = scenario_by_key("critical")
        recall = scenario_adequacy(d.RECALL, scenario, CONFIG).mean_tau
        precision = scenario_adequacy(d.PRECISION, scenario, CONFIG).mean_tau
        specificity = scenario_adequacy(d.SPECIFICITY, scenario, CONFIG).mean_tau
        assert recall > precision
        assert recall > specificity
        assert recall > 0.9

    def test_exactness_family_wins_triage(self):
        scenario = scenario_by_key("triage")
        f05 = scenario_adequacy(d.F05, scenario, CONFIG).mean_tau
        recall = scenario_adequacy(d.RECALL, scenario, CONFIG).mean_tau
        assert f05 > recall

    def test_cost_metric_is_perfectly_adequate_for_its_own_scenario(self):
        """Sanity: the scenario's own expected cost has tau = 1 in scenarios
        where the benchmark matches the field."""
        scenario = scenario_by_key("balanced")
        own_cost = d.ExpectedCost(
            scenario.cost.cost_fn, scenario.cost.cost_fp, label="own"
        )
        result = scenario_adequacy(own_cost, scenario, CONFIG)
        assert result.mean_tau == pytest.approx(1.0)

    def test_prevalence_mismatch_degrades_prevalence_dependent_metrics(self):
        """In the audit scenario (bench prevalence >> field prevalence),
        prevalence-invariant composites must beat precision."""
        scenario = scenario_by_key("audit")
        informedness = scenario_adequacy(d.INFORMEDNESS, scenario, CONFIG).mean_tau
        precision = scenario_adequacy(d.PRECISION, scenario, CONFIG).mean_tau
        assert informedness > precision


class TestRankMetrics:
    def test_ordering_is_by_adequacy(self):
        registry = MetricRegistry([d.RECALL, d.PRECISION, d.MCC, d.SPECIFICITY])
        results = rank_metrics_for_scenario(
            registry, scenario_by_key("critical"), CONFIG
        )
        taus = [r.mean_tau for r in results]
        assert taus == sorted(taus, reverse=True)

    def test_critical_winner_is_recall(self):
        registry = MetricRegistry([d.RECALL, d.PRECISION, d.MCC, d.SPECIFICITY, d.F1])
        results = rank_metrics_for_scenario(
            registry, scenario_by_key("critical"), CONFIG
        )
        assert results[0].metric_symbol == "REC"

    def test_all_metrics_present(self, core_registry):
        results = rank_metrics_for_scenario(
            core_registry, scenario_by_key("balanced"), CONFIG
        )
        assert {r.metric_symbol for r in results} == set(core_registry.symbols)

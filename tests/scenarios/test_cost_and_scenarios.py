"""Tests for cost structures and scenario definitions."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.metrics.confusion import ConfusionMatrix
from repro.scenarios.cost_model import CostStructure
from repro.scenarios.scenarios import Scenario, canonical_scenarios, scenario_by_key

CM = ConfusionMatrix(tp=60, fp=40, fn=20, tn=380)


class TestCostStructure:
    def test_expected_cost(self):
        cost = CostStructure(cost_fn=10.0, cost_fp=1.0)
        assert cost.expected_cost(CM) == pytest.approx((10 * 20 + 40) / 500)

    def test_total_cost(self):
        cost = CostStructure(cost_fn=10.0, cost_fp=1.0)
        assert cost.total_cost(CM) == pytest.approx(240.0)

    def test_miss_to_alarm_ratio(self):
        assert CostStructure(cost_fn=20, cost_fp=4).miss_to_alarm_ratio == 5.0

    def test_ratio_infinite_with_free_alarms(self):
        assert math.isinf(CostStructure(cost_fn=1, cost_fp=0).miss_to_alarm_ratio)

    def test_rejects_negative_cost(self):
        with pytest.raises(ConfigurationError):
            CostStructure(cost_fn=-1, cost_fp=1)

    def test_rejects_all_zero(self):
        with pytest.raises(ConfigurationError):
            CostStructure(cost_fn=0, cost_fp=0)

    def test_perfect_tool_costs_nothing(self):
        perfect = ConfusionMatrix(tp=80, fp=0, fn=0, tn=420)
        assert CostStructure(5, 1).expected_cost(perfect) == 0.0

    def test_cost_ranking_prefers_recall_when_misses_dominate(self):
        thorough = ConfusionMatrix.from_rates(0.95, 0.2, 100, 900)
        cautious = ConfusionMatrix.from_rates(0.5, 0.01, 100, 900)
        fn_heavy = CostStructure(cost_fn=100, cost_fp=1)
        fp_heavy = CostStructure(cost_fn=1, cost_fp=1)
        assert fn_heavy.expected_cost(thorough) < fn_heavy.expected_cost(cautious)
        assert fp_heavy.expected_cost(thorough) > fp_heavy.expected_cost(cautious)


class TestScenarioValidation:
    def _scenario(self, **overrides):
        defaults = dict(
            key="k",
            name="n",
            description="d",
            cost=CostStructure(2, 1),
            prevalence_range=(0.1, 0.3),
            property_weights={"bounded": 1.0},
        )
        defaults.update(overrides)
        return Scenario(**defaults)

    def test_valid(self):
        self._scenario()

    @pytest.mark.parametrize("bounds", [(0.0, 0.3), (0.3, 0.1), (0.1, 1.0)])
    def test_rejects_bad_prevalence_range(self, bounds):
        with pytest.raises(ConfigurationError):
            self._scenario(prevalence_range=bounds)

    def test_rejects_bad_benchmark_range(self):
        with pytest.raises(ConfigurationError):
            self._scenario(benchmark_prevalence_range=(0.5, 0.2))

    def test_rejects_empty_weights(self):
        with pytest.raises(ConfigurationError):
            self._scenario(property_weights={})

    def test_rejects_negative_weights(self):
        with pytest.raises(ConfigurationError):
            self._scenario(property_weights={"bounded": -1.0})


class TestCanonicalScenarios:
    def test_four_scenarios(self):
        assert len(canonical_scenarios()) == 4

    def test_keys(self):
        assert [s.key for s in canonical_scenarios()] == [
            "critical",
            "triage",
            "balanced",
            "audit",
        ]

    def test_weights_sum_to_one(self):
        for scenario in canonical_scenarios():
            assert sum(scenario.property_weights.values()) == pytest.approx(1.0)

    def test_cost_ordering_matches_stories(self):
        by_key = {s.key: s for s in canonical_scenarios()}
        assert (
            by_key["critical"].cost.miss_to_alarm_ratio
            > by_key["audit"].cost.miss_to_alarm_ratio
            > by_key["balanced"].cost.miss_to_alarm_ratio
            > by_key["triage"].cost.miss_to_alarm_ratio
        )

    def test_critical_emphasizes_detection(self):
        critical = scenario_by_key("critical")
        assert critical.property_weights["rewards detection"] == max(
            critical.property_weights.values()
        )

    def test_triage_emphasizes_silence_over_detection(self):
        triage = scenario_by_key("triage")
        weights = triage.property_weights
        assert weights["rewards silence"] > weights["rewards detection"]

    def test_audit_prevalence_mismatch_declared(self):
        audit = scenario_by_key("audit")
        assert audit.benchmark_prevalence_range is not None
        assert audit.benchmark_prevalence_range[0] > audit.prevalence_range[1]

    def test_scenario_by_key_unknown(self):
        with pytest.raises(ConfigurationError):
            scenario_by_key("nope")

"""Deficit-round-robin fairness under skewed, abusive tenant load."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serve.fairness import DeficitRoundRobin, QueuedJob
from repro.serve.trace import build_trace


def job(job_id, tenant, cost=100, priority=0, seq=0):
    return QueuedJob(
        job_id=job_id, tenant=tenant, cost=cost, priority=priority, seq=seq
    )


def drain(drr):
    out = []
    while True:
        item = drr.pop()
        if item is None:
            return out
        out.append(item)


class TestBasics:
    def test_empty_pop_is_none(self):
        assert DeficitRoundRobin().pop() is None

    def test_single_tenant_is_fifo(self):
        drr = DeficitRoundRobin(quantum=100)
        for n in range(5):
            drr.push(job(f"a{n}", "a", seq=n))
        assert [j.job_id for j in drain(drr)] == [f"a{n}" for n in range(5)]

    def test_len_tracks_pending(self):
        drr = DeficitRoundRobin(quantum=100)
        drr.push(job("a0", "a", seq=0))
        drr.push(job("b0", "b", seq=1))
        assert len(drr) == 2
        drr.pop()
        assert len(drr) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="quantum"):
            DeficitRoundRobin(quantum=0)
        with pytest.raises(ConfigurationError, match="weight"):
            DeficitRoundRobin().set_weight("a", 0.0)
        with pytest.raises(ConfigurationError, match="tenant"):
            DeficitRoundRobin().set_weight("", 1.0)
        with pytest.raises(ConfigurationError, match="cost"):
            QueuedJob(job_id="x", tenant="a", cost=0)
        with pytest.raises(ConfigurationError, match="tenant"):
            DeficitRoundRobin().push(
                QueuedJob(job_id="x", tenant="", cost=1)
            )

    def test_snapshot_reports_backlog(self):
        drr = DeficitRoundRobin(quantum=100, weights={"a": 2.0})
        drr.push(job("a0", "a", cost=300, seq=0))
        drr.push(job("a1", "a", cost=200, seq=1))
        snap = drr.snapshot()
        assert snap["a"]["pending_jobs"] == 2
        assert snap["a"]["pending_units"] == 500
        assert snap["a"]["weight"] == 2.0


class TestAbusiveTenantBound:
    """The tentpole property: abuse is bounded to the weight share."""

    def test_abusive_backlog_cannot_starve_equals(self):
        # The abusive tenant floods 60 jobs; two polite tenants queue 6
        # each.  While everyone is backlogged, served units must track
        # the (equal) weights — one third each, not submission share.
        drr = DeficitRoundRobin(quantum=100)
        seq = 0
        for n in range(60):
            drr.push(job(f"abuse{n}", "abusive", cost=100, seq=seq))
            seq += 1
        for tenant in ("polite-1", "polite-2"):
            for n in range(6):
                drr.push(job(f"{tenant}-{n}", tenant, cost=100, seq=seq))
                seq += 1
        served = {"abusive": 0, "polite-1": 0, "polite-2": 0}
        order = drain(drr)
        # Judge fairness over the window where every tenant still has
        # backlog: the polite tenants run dry after 6 jobs each.
        window = order[: 3 * 6]
        for item in window:
            served[item.tenant] += item.cost
        assert served["polite-1"] == 600
        assert served["polite-2"] == 600
        # The abusive tenant got at most its fair third (+1 job of slack
        # for the in-flight rotation).
        assert served["abusive"] <= 600 + 100
        # And everything still drains eventually — no starvation either way.
        assert len(order) == 72

    def test_weights_scale_the_share(self):
        # tenant 'heavy' is entitled to 3x 'light'; both stay backlogged.
        drr = DeficitRoundRobin(quantum=100, weights={"heavy": 3.0})
        seq = 0
        for n in range(30):
            drr.push(job(f"h{n}", "heavy", cost=100, seq=seq))
            seq += 1
            drr.push(job(f"l{n}", "light", cost=100, seq=seq))
            seq += 1
        window = [drr.pop() for _ in range(20)]
        units = {"heavy": 0, "light": 0}
        for item in window:
            units[item.tenant] += item.cost
        assert units["heavy"] / units["light"] == pytest.approx(3.0, rel=0.35)

    def test_large_jobs_wait_proportionally_not_forever(self):
        # One tenant queues a single huge campaign, the other many small
        # ones.  The huge job must eventually dispatch (no starvation),
        # but only after the small tenant got its proportional turns.
        drr = DeficitRoundRobin(quantum=100)
        drr.push(job("big", "whale", cost=1000, seq=0))
        for n in range(20):
            drr.push(job(f"s{n}", "minnow", cost=100, seq=n + 1))
        order = [item.job_id for item in drain(drr)]
        big_at = order.index("big")
        # The whale waits ~cost/quantum rotations while the minnow serves.
        assert 5 <= big_at <= 12
        assert len(order) == 21

    def test_poisson_trace_skew_is_bounded(self):
        # Replay the FAIRSERVE-style trace: one abusive tenant at 6x the
        # normal arrival rate.  Submission share is wildly skewed; the
        # served share over the backlogged window must not be.
        trace = build_trace(n_tenants=4, duration=2000.0, seed=7)
        abusive_share = trace.count_for("tenant-0") / len(trace.events)
        assert abusive_share > 0.5, "trace must actually be abusive"
        drr = DeficitRoundRobin(quantum=100)
        for event in trace.events:
            drr.push(
                job(f"job{event.index}", event.tenant, cost=100,
                    seq=event.index)
            )
        counts = {tenant: trace.count_for(tenant) for tenant in trace.tenants}
        fair_window = 4 * min(counts.values())
        served: dict[str, int] = {}
        for _ in range(fair_window):
            item = drr.pop()
            served[item.tenant] = served.get(item.tenant, 0) + 1
        served_share = served["tenant-0"] / fair_window
        assert served_share <= 0.25 + 0.05, (
            f"abusive tenant served {served_share:.0%} of the fair window"
        )


class TestPriority:
    def test_priority_orders_within_a_tenant(self):
        # A later urgent job overtakes the tenant's own earlier backlog —
        # no priority inversion behind same-tenant bulk work.
        drr = DeficitRoundRobin(quantum=100)
        for n in range(3):
            drr.push(job(f"bulk{n}", "a", seq=n))
        drr.push(job("urgent", "a", priority=10, seq=3))
        assert drr.pop().job_id == "urgent"

    def test_priority_does_not_cross_tenants(self):
        # Tenant 'a' marks everything maximally urgent; tenant 'b' uses
        # priority 0.  DRR still alternates — priority is tenant-local by
        # design, otherwise it would reintroduce starvation.
        drr = DeficitRoundRobin(quantum=100)
        seq = 0
        for n in range(10):
            drr.push(job(f"a{n}", "a", priority=1000, seq=seq))
            seq += 1
        drr.push(job("b0", "b", priority=0, seq=seq))
        order = [drr.pop().job_id for _ in range(4)]
        assert "b0" in order, "the quiet tenant dispatches within a rotation"

    def test_fifo_breaks_priority_ties(self):
        drr = DeficitRoundRobin(quantum=100)
        drr.push(job("first", "a", priority=5, seq=0))
        drr.push(job("second", "a", priority=5, seq=1))
        assert [drr.pop().job_id, drr.pop().job_id] == ["first", "second"]


class TestTrace:
    def test_trace_is_deterministic(self):
        one = build_trace(n_tenants=3, duration=500.0, seed=11)
        two = build_trace(n_tenants=3, duration=500.0, seed=11)
        assert one == two

    def test_adding_a_tenant_preserves_existing_streams(self):
        three = build_trace(n_tenants=3, duration=500.0, seed=11)
        four = build_trace(n_tenants=4, duration=500.0, seed=11)
        for tenant in three.tenants:
            assert three.count_for(tenant) == four.count_for(tenant)

    def test_abusive_rate_dominates(self):
        trace = build_trace(n_tenants=4, duration=2000.0, seed=3)
        normal = [trace.count_for(t) for t in trace.tenants if t != "tenant-0"]
        assert trace.count_for("tenant-0") > 3 * max(normal)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="tenant"):
            build_trace(n_tenants=0)
        with pytest.raises(ConfigurationError, match="duration"):
            build_trace(duration=0)
        with pytest.raises(ConfigurationError, match="abusive"):
            build_trace(n_tenants=2, abusive="tenant-9")

"""Persistent job queue transitions and the LRU result cache."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.obs import Observability
from repro.persist import SERVE_JOB_SCHEMA, load_json
from repro.serve.cache import ResultCache
from repro.serve.queue import JobQueue, JobRecord, JobSpec


def spec(**overrides):
    base = dict(scale=100, shard_size=50)
    base.update(overrides)
    return JobSpec(**base)


class TestJobSpec:
    def test_round_trip(self):
        original = spec(ecosystem="web-services", tool_families=("sast",))
        assert JobSpec.from_dict(original.to_dict()) == original

    def test_planned_shards_rounds_up(self):
        assert spec(scale=101, shard_size=50).planned_shards == 3

    def test_from_payload_rejects_garbage(self):
        with pytest.raises(ServeError, match="scale"):
            JobSpec.from_payload({})
        with pytest.raises(ServeError, match="scale"):
            JobSpec.from_payload({"scale": 0})
        with pytest.raises(ServeError, match="shard_size"):
            JobSpec.from_payload({"scale": 10, "shard_size": -1})
        with pytest.raises(ServeError, match="unknown spec fields"):
            JobSpec.from_payload({"scale": 10, "shardsize": 5})
        with pytest.raises(ServeError, match="malformed"):
            JobSpec.from_payload({"scale": "lots"})
        with pytest.raises(ServeError, match="ecosystem"):
            JobSpec.from_payload({"scale": 10, "ecosystem": "nope"})
        with pytest.raises(ServeError, match="body"):
            JobSpec.from_payload([1, 2])

    def test_from_payload_tolerates_tenant_and_priority(self):
        built = JobSpec.from_payload(
            {"scale": 10, "tenant": "t", "priority": 3}
        )
        assert built.scale == 10


class TestJobQueue:
    def test_submit_persists_a_tagged_record(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit(spec(), tenant="t1")
        payload = load_json(tmp_path / "jobs" / f"{record.job_id}.json")
        assert payload["schema"] == SERVE_JOB_SCHEMA
        assert payload["state"] == "queued"
        assert JobRecord.from_dict(payload) == record

    def test_lifecycle_transitions_are_durable(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit(spec())
        popped = queue.pop_next()
        assert popped.job_id == record.job_id
        assert popped.state == "running"
        assert popped.attempts == 1
        on_disk = load_json(tmp_path / "jobs" / f"{record.job_id}.json")
        assert on_disk["state"] == "running"
        done = queue.finish(record.job_id)
        assert done.state == "completed"
        assert done.finished

    def test_failure_records_the_error(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit(spec())
        queue.pop_next()
        failed = queue.finish(record.job_id, error="boom")
        assert failed.state == "failed"
        assert failed.error == "boom"

    def test_unknown_job_maps_to_404(self, tmp_path):
        queue = JobQueue(tmp_path)
        with pytest.raises(ServeError, match="no such job") as info:
            queue.get("j999999")
        assert info.value.status == 404

    def test_empty_tenant_is_rejected(self, tmp_path):
        with pytest.raises(ServeError, match="tenant"):
            JobQueue(tmp_path).submit(spec(), tenant="")

    def test_recover_requeues_queued_and_running(self, tmp_path):
        queue = JobQueue(tmp_path)
        first = queue.submit(spec(), tenant="a")
        queue.submit(spec(), tenant="b")
        done = queue.submit(spec(), tenant="c")
        queue.pop_next()  # first -> running (simulates a crash mid-run)
        for _ in range(2):
            queue.pop_next()
        queue.finish(done.job_id)

        reborn = JobQueue(tmp_path)
        requeued = reborn.recover()
        ids = [record.job_id for record in requeued]
        assert first.job_id in ids
        assert done.job_id not in ids
        assert len(ids) == 2
        # The interrupted 'running' record was reset durably.
        assert reborn.get(first.job_id).state == "queued"
        # Sequence numbers continue, never collide.
        again = reborn.submit(spec())
        assert again.seq == 3
        assert again.job_id == "j000003"

    def test_snapshot_counts_states_and_units(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit(spec(scale=120), tenant="t")
        queue.submit(spec(scale=80), tenant="t")
        queue.pop_next()
        queue.finish(record.job_id)
        snap = queue.snapshot()
        assert snap["states"]["completed"] == 1
        assert snap["states"]["queued"] == 1
        assert snap["completed_units"] == {"t": 120}
        assert snap["pending"] == 1


class TestResultCache:
    def test_hot_hit_counts(self, tmp_path):
        obs = Observability()
        cache = ResultCache(tmp_path, capacity=4, obs=obs)
        cache.put("j1", {"n": 1})
        assert cache.get("j1") == {"n": 1}
        assert obs.metrics.counter("serve.cache.hits").value == 1

    def test_eviction_falls_back_to_disk(self, tmp_path):
        obs = Observability()
        cache = ResultCache(tmp_path, capacity=2, obs=obs)
        for n in range(3):
            cache.put(f"j{n}", {"n": n})
        # j0 was evicted from memory but persists on disk.
        assert obs.metrics.counter("serve.cache.evicted").value == 1
        assert cache.get("j0") == {"n": 0}
        assert obs.metrics.counter("serve.cache.misses").value == 1
        # ...and is hot again now (LRU re-admission).
        assert cache.get("j0") == {"n": 0}
        assert obs.metrics.counter("serve.cache.hits").value == 1

    def test_lru_evicts_least_recently_used(self, tmp_path):
        obs = Observability()
        cache = ResultCache(tmp_path, capacity=2, obs=obs)
        cache.put("j0", {"n": 0})
        cache.put("j1", {"n": 1})
        cache.get("j0")  # refresh j0; j1 becomes the LRU entry
        cache.put("j2", {"n": 2})
        cache.get("j0")
        cache.get("j2")
        assert obs.metrics.counter("serve.cache.hits").value == 3
        assert obs.metrics.counter("serve.cache.misses").value == 0
        cache.get("j1")  # evicted -> disk
        assert obs.metrics.counter("serve.cache.misses").value == 1

    def test_absent_and_corrupt_are_distinct(self, tmp_path):
        obs = Observability()
        cache = ResultCache(tmp_path, capacity=2, obs=obs)
        assert cache.get("never") is None
        assert obs.metrics.counter("serve.cache.absent").value == 1
        cache.put("j0", {"n": 0})
        # A fresh instance (cold memory) facing a corrupted file.
        cold = ResultCache(tmp_path, capacity=2, obs=obs)
        path = cold._path("j0")
        path.write_text('{"schema": "garbage"}', encoding="utf-8")
        assert cold.get("j0") is None
        assert obs.metrics.counter("serve.cache.corrupt").value == 1

    def test_gauge_tracks_size(self, tmp_path):
        obs = Observability()
        cache = ResultCache(tmp_path, capacity=8, obs=obs)
        cache.put("j0", {})
        cache.put("j1", {})
        assert obs.metrics.gauge("serve.cache.size").value == 2.0

    def test_capacity_must_be_positive(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="capacity"):
            ResultCache(tmp_path, capacity=0)

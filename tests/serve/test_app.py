"""The HTTP surface, exercised in-process over a real loopback socket."""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.app import run_app
from repro.serve.service import CampaignService, ServiceConfig


class LiveApp:
    """One service + event loop + bound ephemeral port, for a test."""

    def __init__(self, tmp_path, **config):
        self.service = CampaignService(
            ServiceConfig(state_dir=tmp_path / "state", **config)
        )
        self.service.start()
        self.loop = asyncio.new_event_loop()
        ready = self.loop.create_future()
        self.task = None

        def runner():
            asyncio.set_event_loop(self.loop)
            self.task = self.loop.create_task(
                run_app(self.service, port=0, ready=ready)
            )
            try:
                self.loop.run_until_complete(self.task)
            except asyncio.CancelledError:
                pass

        self.thread = threading.Thread(target=runner, daemon=True)
        self.thread.start()
        deadline = time.monotonic() + 10
        while not ready.done():
            if time.monotonic() > deadline:
                raise AssertionError("server never became ready")
            time.sleep(0.01)
        self.port = ready.result()
        self.base = f"http://127.0.0.1:{self.port}"

    def close(self):
        self.loop.call_soon_threadsafe(lambda: self.task.cancel())
        self.thread.join(timeout=30)

    def request(self, path, payload=None, method=None):
        """(status, parsed JSON body) for one request."""
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            self.base + path, data=data, method=method
        )
        if data is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def wait_finished(self, job_id, timeout=60):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, status = self.request(f"/v1/jobs/{job_id}")
            if status["state"] in ("completed", "failed"):
                return status
            time.sleep(0.03)
        raise AssertionError(f"job {job_id} never finished")


@pytest.fixture
def app(tmp_path):
    live = LiveApp(tmp_path)
    yield live
    live.close()
    live.service.stop()


class TestEndpoints:
    def test_healthz(self, app):
        status, body = app.request("/healthz")
        assert (status, body["ok"]) == (200, True)

    def test_submit_poll_result_round_trip(self, app):
        status, body = app.request(
            "/v1/campaigns",
            payload={"scale": 120, "shard_size": 60, "tenant": "t1"},
            method="POST",
        )
        assert status == 202
        job_id = body["job"]["job_id"]
        final = app.wait_finished(job_id)
        assert final["state"] == "completed"
        assert final["shards"] == {"planned": 2, "completed": 2}
        status, result = app.request(f"/v1/jobs/{job_id}/result")
        assert status == 200
        assert result["totals"]["n_units"] == 120
        assert result["manifest"]["statuses"]["completed"] == 2

    def test_jobs_listing_filters_by_tenant(self, app):
        for tenant in ("alice", "bob", "alice"):
            app.request(
                "/v1/campaigns",
                payload={"scale": 30, "shard_size": 30, "tenant": tenant},
                method="POST",
            )
        _, listing = app.request("/v1/jobs?tenant=alice")
        assert len(listing["jobs"]) == 2
        assert {j["tenant"] for j in listing["jobs"]} == {"alice"}
        _, everyone = app.request("/v1/jobs")
        assert len(everyone["jobs"]) == 3

    def test_queue_and_stats_endpoints(self, app):
        _, snap = app.request("/v1/queue")
        assert {"pending", "states", "tenants", "quantum"} <= set(snap)
        _, stats = app.request("/v1/stats")
        assert stats["counters"]["serve.http.requests"] >= 1

    def test_error_statuses(self, app):
        assert app.request("/v1/jobs/j999999")[0] == 404
        assert app.request("/nope")[0] == 404
        assert app.request("/v1/campaigns")[0] == 405  # GET on a POST route
        status, body = app.request(
            "/v1/campaigns", payload={"scale": 0}, method="POST"
        )
        assert status == 400 and "scale" in body["error"]
        status, _ = app.request(
            "/v1/campaigns",
            payload={"scale": 10, "ecosystem": "nope"},
            method="POST",
        )
        assert status == 400

    def test_malformed_json_body_is_a_400(self, app):
        request = urllib.request.Request(
            app.base + "/v1/campaigns", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_result_of_unfinished_job_is_a_409(self, app):
        # Big enough that the first poll happens while it runs or queues.
        _, body = app.request(
            "/v1/campaigns",
            payload={"scale": 4000, "shard_size": 100},
            method="POST",
        )
        job_id = body["job"]["job_id"]
        status, _ = app.request(f"/v1/jobs/{job_id}/result")
        assert status == 409
        app.wait_finished(job_id)

    def test_events_stream_ends_with_terminal_state(self, app):
        _, body = app.request(
            "/v1/campaigns",
            payload={"scale": 200, "shard_size": 50},
            method="POST",
        )
        job_id = body["job"]["job_id"]
        with urllib.request.urlopen(
            app.base + f"/v1/jobs/{job_id}/events", timeout=60
        ) as stream:
            lines = stream.read().decode().strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert events[-1]["state"] == "completed"
        assert events[-1]["shards"]["completed"] == 4
        # Progress only ever moves forward.
        counts = [e["shards"]["completed"] for e in events]
        assert counts == sorted(counts)

    def test_keep_alive_pipelines_sequential_requests(self, app):
        with socket.create_connection(("127.0.0.1", app.port), timeout=10) as sock:
            probe = (
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            sock.sendall(probe + probe)  # two requests, one write
            sock.settimeout(10)
            received = b""
            while received.count(b'"ok": true') < 2:
                chunk = sock.recv(4096)
                assert chunk, "server closed before both responses"
                received += chunk
        assert received.count(b"HTTP/1.1 200 OK") == 2

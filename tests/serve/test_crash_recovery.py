"""Chaos tests for the service: SIGKILL the process, restart, verify parity.

The service inherits the engine's crash-safety machinery (per-job shard
journals), so the invariant under test is architecture invariant 9: a
service killed at any instant and restarted over the same state dir
finishes every in-flight campaign with totals byte-identical to an
uninterrupted run.  These tests drive the real ``repro serve`` CLI in
subprocesses and kill it for real.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.bench.engine.shards import run_sharded_campaign
from repro.bench.engine.wal import replay_journal
from repro.persist import streaming_totals_to_dict

REPO_ROOT = Path(__file__).resolve().parents[2]


def cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


class ServeProcess:
    """One ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, state_dir: Path):
        # stderr goes to DEVNULL: after a SIGKILL nobody drains the pipe.
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--state-dir", str(state_dir), "--port", "0",
            ],
            env=cli_env(), cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        )
        line = self.proc.stdout.readline().strip()
        assert line.startswith("serving on http://"), line
        self.base = line.removeprefix("serving on ")

    def request(self, path, payload=None, method=None, timeout=30):
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            self.base + path, data=data, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def wait_finished(self, job_id, timeout=120):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, status = self.request(f"/v1/jobs/{job_id}")
            if status["state"] in ("completed", "failed"):
                return status
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never finished")

    def sigkill(self):
        self.proc.kill()
        self.proc.wait(timeout=30)
        assert self.proc.returncode == -signal.SIGKILL

    def sigterm(self, timeout=60):
        self.proc.send_signal(signal.SIGTERM)
        self.proc.wait(timeout=timeout)

    def cleanup(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)
        self.proc.stdout.close()


def wait_for_journal(wal: Path, minimum: int, timeout=60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if wal.exists():
            try:
                if len(replay_journal(wal).arrays) >= minimum:
                    return
            except Exception:
                pass  # header mid-write
        time.sleep(0.02)
    raise AssertionError(f"{wal} never reached {minimum} records")


@pytest.mark.parametrize("kill", ["sigkill", "sigterm"])
def test_killed_service_resumes_bit_identically(tmp_path, kill):
    state = tmp_path / "state"
    first = ServeProcess(state)
    try:
        status, body = first.request(
            "/v1/campaigns",
            payload={"scale": 20000, "shard_size": 500, "tenant": "t1"},
            method="POST",
        )
        assert status == 202
        job_id = body["job"]["job_id"]
        wal = state / "wal" / f"{job_id}.wal"
        wait_for_journal(wal, minimum=2)
        if kill == "sigkill":
            first.sigkill()
        else:
            first.sigterm()
            assert first.proc.returncode == 0, "drain exits cleanly"
    finally:
        first.cleanup()

    folded = len(replay_journal(wal).arrays)
    assert 2 <= folded < 40, "the kill landed mid-campaign"
    # The job record still reads running/queued — never lost, never done.
    record = json.loads(
        (state / "jobs" / f"{job_id}.json").read_text(encoding="utf-8")
    )
    assert record["state"] in ("running", "queued")

    second = ServeProcess(state)
    try:
        final = second.wait_finished(job_id)
        assert final["state"] == "completed", final.get("error")
        assert final["shards"]["completed"] == 40
        _, stats = second.request("/v1/stats")
        assert stats["counters"]["serve.jobs.resumed"] == 1
        _, payload = second.request(f"/v1/jobs/{job_id}/result")
    finally:
        second.cleanup()

    reference = run_sharded_campaign(scale=20000, shard_size=500)
    expected = streaming_totals_to_dict(reference.totals)
    assert payload["totals"] == expected
    # Byte-identical, not merely equal: serialize both canonically.
    assert json.dumps(payload["totals"], sort_keys=True) == json.dumps(
        expected, sort_keys=True
    )


def test_restart_with_empty_state_dir_is_quiet(tmp_path):
    service = ServeProcess(tmp_path / "fresh")
    try:
        status, body = service.request("/healthz")
        assert (status, body["ok"]) == (200, True)
        _, listing = service.request("/v1/jobs")
        assert listing["jobs"] == []
        service.sigterm()
        assert service.proc.returncode == 0
    finally:
        service.cleanup()

"""The service core: fair dispatch onto the engine, parity, graceful drain."""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.bench.engine.shards import run_sharded_campaign
from repro.bench.engine.wal import replay_journal
from repro.errors import ServeError
from repro.persist import streaming_totals_to_dict
from repro.serve.queue import JobSpec
from repro.serve.service import CampaignService, ServiceConfig


def wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition never became true")


@pytest.fixture
def service(tmp_path):
    instance = CampaignService(ServiceConfig(state_dir=tmp_path / "state"))
    instance.start()
    yield instance
    instance.stop()


class TestExecution:
    def test_submitted_job_completes_with_engine_parity(self, service):
        record = service.submit(
            {"scale": 200, "shard_size": 100, "tenant": "t1"}
        )
        wait_until(
            lambda: service.queue.get(record.job_id).finished
        )
        final = service.queue.get(record.job_id)
        assert final.state == "completed", final.error
        status = service.job_status(record.job_id)
        assert status["shards"] == {"planned": 2, "completed": 2}
        payload = service.result(record.job_id)
        reference = run_sharded_campaign(scale=200, shard_size=100)
        assert payload["totals"] == streaming_totals_to_dict(reference.totals)
        # The journal is retired once the result is durable.
        assert not service.queue.wal_path(record.job_id).exists()

    def test_result_before_completion_is_a_conflict(self, tmp_path):
        # No dispatcher: the job stays queued forever.
        idle = CampaignService(ServiceConfig(state_dir=tmp_path / "idle"))
        record = idle.queue.submit(JobSpec(scale=100))
        with pytest.raises(ServeError, match="not ready") as info:
            idle.result(record.job_id)
        assert info.value.status == 409

    def test_bad_submission_is_rejected_up_front(self, service):
        with pytest.raises(ServeError, match="ecosystem"):
            service.submit({"scale": 10, "ecosystem": "nope"})
        with pytest.raises(ServeError, match="priority"):
            service.submit({"scale": 10, "priority": "high"})

    def test_multiple_tenants_all_complete(self, service):
        records = [
            service.submit(
                {"scale": 100, "shard_size": 50, "tenant": f"t{n % 2}"}
            )
            for n in range(4)
        ]
        wait_until(
            lambda: all(
                service.queue.get(r.job_id).finished for r in records
            )
        )
        states = {service.queue.get(r.job_id).state for r in records}
        assert states == {"completed"}
        snap = service.queue.snapshot()
        assert snap["completed_units"] == {"t0": 200, "t1": 200}


class TestGracefulDrainAndResume:
    def test_stop_midway_resumes_bit_identically(self, tmp_path):
        state = tmp_path / "state"
        first = CampaignService(ServiceConfig(state_dir=state))
        first.start()
        record = first.submit({"scale": 4000, "shard_size": 100})
        wal = first.queue.wal_path(record.job_id)
        # Wait until real progress is journalled, then drain mid-campaign.
        wait_until(lambda: wal.exists() and _records_in(wal) >= 2)
        first.stop()
        interrupted = first.queue.get(record.job_id)
        assert interrupted.state == "running", "drained jobs stay running"
        folded = _records_in(wal)
        assert 2 <= folded < 40, "the drain stopped the campaign midway"

        second = CampaignService(ServiceConfig(state_dir=state))
        recovered = second.start()
        assert [r.job_id for r in recovered] == [record.job_id]
        try:
            wait_until(
                lambda: second.queue.get(record.job_id).finished
            )
            final = second.queue.get(record.job_id)
            assert final.state == "completed", final.error
            assert final.attempts == 2
            payload = second.result(record.job_id)
            reference = run_sharded_campaign(scale=4000, shard_size=100)
            assert payload["totals"] == streaming_totals_to_dict(
                reference.totals
            )
            resumed = second.obs.metrics.counter("serve.jobs.resumed").value
            assert resumed == 1
        finally:
            second.stop()


def _records_in(wal: Path) -> int:
    try:
        return len(replay_journal(wal).arrays)
    except Exception:
        return 0  # header still being written

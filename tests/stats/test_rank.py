"""Tests for ranking and rank correlation, cross-checked against scipy."""

from __future__ import annotations

import math

import pytest
import scipy.stats
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stats.rank import (
    kendall_tau,
    order_by_score,
    rank_of,
    rank_scores,
    spearman_rho,
    top_k_overlap,
)


class TestRankScores:
    def test_simple_descending(self):
        assert rank_scores([0.9, 0.5, 0.7]) == [1.0, 3.0, 2.0]

    def test_lower_is_better(self):
        assert rank_scores([0.9, 0.5, 0.7], higher_is_better=False) == [3.0, 1.0, 2.0]

    def test_ties_get_average_rank(self):
        assert rank_scores([0.5, 0.5, 0.1]) == [1.5, 1.5, 3.0]

    def test_all_tied(self):
        assert rank_scores([1.0, 1.0, 1.0]) == [2.0, 2.0, 2.0]

    def test_nan_ranks_last(self):
        ranks = rank_scores([0.5, float("nan"), 0.9])
        assert ranks == [2.0, 3.0, 1.0]

    def test_multiple_nans_tie_at_the_bottom(self):
        ranks = rank_scores([float("nan"), 0.5, float("nan")])
        assert ranks == [2.5, 1.0, 2.5]

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            rank_scores([])

    def test_single_element(self):
        assert rank_scores([42.0]) == [1.0]

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    def test_ranks_are_a_permutation_average(self, scores):
        ranks = rank_scores(scores)
        n = len(scores)
        # Fractional ranks always sum to n(n+1)/2.
        assert sum(ranks) == pytest.approx(n * (n + 1) / 2)
        assert all(1.0 <= r <= n for r in ranks)


class TestOrderByScore:
    def test_orders_best_first(self):
        assert order_by_score(["a", "b", "c"], [0.1, 0.9, 0.5]) == ["b", "c", "a"]

    def test_tie_broken_by_name(self):
        assert order_by_score(["zeta", "alpha"], [0.5, 0.5]) == ["alpha", "zeta"]

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            order_by_score(["a"], [1.0, 2.0])

    def test_rank_of(self):
        assert rank_of("b", ["a", "b", "c"], [0.1, 0.9, 0.5]) == 1.0

    def test_rank_of_unknown(self):
        with pytest.raises(ConfigurationError):
            rank_of("x", ["a"], [1.0])


class TestKendallTau:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_constant_vector_is_nan(self):
        assert math.isnan(kendall_tau([1, 1, 1], [1, 2, 3]))

    def test_too_short_raises(self):
        with pytest.raises(ConfigurationError):
            kendall_tau([1], [1])

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            kendall_tau([1, 2], [1, 2, 3])

    @given(
        st.lists(st.integers(-50, 50), min_size=3, max_size=25),
        st.data(),
    )
    def test_matches_scipy_tau_b(self, x, data):
        y = data.draw(
            st.lists(st.integers(-50, 50), min_size=len(x), max_size=len(x))
        )
        ours = kendall_tau(x, y)
        theirs = scipy.stats.kendalltau(x, y).statistic
        if math.isnan(ours) or math.isnan(theirs):
            assert math.isnan(ours) and math.isnan(theirs)
        else:
            assert ours == pytest.approx(theirs, abs=1e-9)

    @given(st.lists(st.floats(-10, 10), min_size=3, max_size=20, unique=True))
    def test_tau_is_symmetric(self, x):
        y = list(reversed(x))
        assert kendall_tau(x, y) == pytest.approx(kendall_tau(y, x))


class TestSpearmanRho:
    def test_perfect_agreement(self):
        assert spearman_rho([1, 2, 3], [5, 9, 11]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert spearman_rho([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_vector_is_nan(self):
        assert math.isnan(spearman_rho([2, 2, 2], [1, 2, 3]))

    def test_too_short_raises(self):
        with pytest.raises(ConfigurationError):
            spearman_rho([1], [2])

    @pytest.mark.filterwarnings("ignore::scipy.stats.ConstantInputWarning")
    @given(
        st.lists(st.integers(-50, 50), min_size=3, max_size=25),
        st.data(),
    )
    def test_matches_scipy(self, x, data):
        y = data.draw(
            st.lists(st.integers(-50, 50), min_size=len(x), max_size=len(x))
        )
        ours = spearman_rho(x, y)
        theirs = scipy.stats.spearmanr(x, y).statistic
        if math.isnan(ours) or math.isnan(theirs):
            assert math.isnan(ours) and math.isnan(theirs)
        else:
            assert ours == pytest.approx(theirs, abs=1e-9)


class TestTopKOverlap:
    def test_full_overlap(self):
        assert top_k_overlap(["a", "b", "c"], ["b", "a", "c"], 2) == 1.0

    def test_no_overlap(self):
        assert top_k_overlap(["a", "b"], ["c", "d"], 2) == 0.0

    def test_partial(self):
        assert top_k_overlap(["a", "b", "c"], ["a", "x", "y"], 3) == pytest.approx(1 / 3)

    def test_k_zero_raises(self):
        with pytest.raises(ConfigurationError):
            top_k_overlap(["a"], ["a"], 0)

    def test_k_too_large_raises(self):
        with pytest.raises(ConfigurationError):
            top_k_overlap(["a"], ["a", "b"], 2)


class TestKendallsW:
    def test_perfect_agreement(self):
        from repro.stats.rank import kendalls_w

        raters = [[3.0, 2.0, 1.0], [30.0, 20.0, 10.0], [0.9, 0.5, 0.1]]
        assert kendalls_w(raters) == pytest.approx(1.0)

    def test_perfect_disagreement_two_raters(self):
        from repro.stats.rank import kendalls_w

        raters = [[1.0, 2.0, 3.0], [3.0, 2.0, 1.0]]
        assert kendalls_w(raters) == pytest.approx(0.0, abs=1e-9)

    def test_partial_agreement_in_between(self):
        from repro.stats.rank import kendalls_w

        raters = [[1, 2, 3, 4], [1, 2, 4, 3], [2, 1, 3, 4]]
        w = kendalls_w(raters)
        assert 0.0 < w < 1.0

    def test_all_ties_is_nan(self):
        import math

        from repro.stats.rank import kendalls_w

        raters = [[1.0, 1.0, 1.0], [2.0, 2.0, 2.0]]
        assert math.isnan(kendalls_w(raters))

    def test_needs_two_raters(self):
        from repro.stats.rank import kendalls_w

        with pytest.raises(ConfigurationError):
            kendalls_w([[1, 2, 3]])

    def test_needs_two_items(self):
        from repro.stats.rank import kendalls_w

        with pytest.raises(ConfigurationError):
            kendalls_w([[1], [2]])

    def test_mismatched_lengths_rejected(self):
        from repro.stats.rank import kendalls_w

        with pytest.raises(ConfigurationError):
            kendalls_w([[1, 2], [1, 2, 3]])

    def test_more_agreeing_raters_raise_w(self):
        from repro.stats.rank import kendalls_w

        mixed = [[1, 2, 3, 4], [4, 3, 2, 1], [1, 2, 3, 4]]
        aligned = [[1, 2, 3, 4], [1, 2, 3, 4], [1, 2, 3, 4]]
        assert kendalls_w(aligned) > kendalls_w(mixed)

    @given(
        st.integers(2, 6).flatmap(
            lambda m: st.lists(
                st.lists(st.floats(0, 10), min_size=m, max_size=m),
                min_size=2,
                max_size=6,
            )
        )
    )
    def test_w_bounded(self, raters):
        import math

        from repro.stats.rank import kendalls_w

        w = kendalls_w(raters)
        if not math.isnan(w):
            assert -1e-9 <= w <= 1.0 + 1e-9

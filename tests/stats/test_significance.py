"""Tests for McNemar's test and Wilson intervals."""

from __future__ import annotations

import math

import pytest
import scipy.stats

from repro.errors import ConfigurationError
from repro.stats.significance import (
    PairedOutcomes,
    mcnemar_exact,
    paired_outcomes,
    wilson_interval,
)
from repro.tools.base import Detection, DetectionReport
from repro.workload.code_model import SinkSite
from repro.workload.ground_truth import GroundTruth
from repro.workload.taxonomy import VulnerabilityType

SQLI = VulnerabilityType.SQL_INJECTION


def outcomes(only_first: int, only_second: int, both_correct: int = 10,
             both_wrong: int = 5) -> PairedOutcomes:
    return PairedOutcomes(
        first_tool="a",
        second_tool="b",
        both_correct=both_correct,
        only_first=only_first,
        only_second=only_second,
        both_wrong=both_wrong,
    )


class TestPairedOutcomes:
    def make_reports(self):
        s = [SinkSite(f"u{i}", 0, SQLI) for i in range(6)]
        truth = GroundTruth.from_sites(s, [s[0], s[1], s[2]])
        # Tool A flags s0, s1 (correct on s0, s1, s4, s5; wrong on s2, s3? ->
        # s3 is safe & unflagged: correct. wrong on s2 only).
        report_a = DetectionReport(
            "a", "w", detections=(Detection(s[0]), Detection(s[1]))
        )
        # Tool B flags s0, s3: correct on s0, s4, s5; wrong on s1, s2, s3.
        report_b = DetectionReport(
            "b", "w", detections=(Detection(s[0]), Detection(s[3]))
        )
        return report_a, report_b, truth

    def test_table_counts(self):
        report_a, report_b, truth = self.make_reports()
        table = paired_outcomes(report_a, report_b, truth)
        assert table.n_sites == 6
        assert table.both_correct == 3  # s0, s4, s5
        assert table.only_first == 2  # s1, s3
        assert table.only_second == 0
        assert table.both_wrong == 1  # s2
        assert table.discordant == 2

    def test_workload_mismatch_rejected(self):
        report_a, report_b, truth = self.make_reports()
        other = DetectionReport("b", "other", detections=())
        with pytest.raises(ConfigurationError):
            paired_outcomes(report_a, other, truth)

    def test_symmetry(self):
        report_a, report_b, truth = self.make_reports()
        ab = paired_outcomes(report_a, report_b, truth)
        ba = paired_outcomes(report_b, report_a, truth)
        assert ab.only_first == ba.only_second
        assert ab.both_correct == ba.both_correct


class TestMcNemar:
    def test_no_discordance_is_one(self):
        assert mcnemar_exact(outcomes(0, 0)) == 1.0

    def test_balanced_discordance_not_significant(self):
        assert mcnemar_exact(outcomes(5, 5)) > 0.5

    def test_lopsided_discordance_significant(self):
        assert mcnemar_exact(outcomes(25, 2)) < 0.001

    def test_symmetric_in_direction(self):
        assert mcnemar_exact(outcomes(12, 3)) == mcnemar_exact(outcomes(3, 12))

    def test_matches_scipy_binomtest(self):
        for only_first, only_second in [(8, 2), (15, 5), (3, 3), (20, 1), (7, 0)]:
            ours = mcnemar_exact(outcomes(only_first, only_second))
            n = only_first + only_second
            theirs = scipy.stats.binomtest(
                min(only_first, only_second), n, 0.5, alternative="two-sided"
            ).pvalue
            assert ours == pytest.approx(theirs, abs=1e-9), (only_first, only_second)

    def test_p_value_in_unit_interval(self):
        for a in range(0, 12):
            for b in range(0, 12):
                p = mcnemar_exact(outcomes(a, b))
                assert 0.0 <= p <= 1.0


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_behaves_at_extremes(self):
        low, high = wilson_interval(50, 50)
        assert high == pytest.approx(1.0)
        assert low < 0.95  # perfect observed != certainty
        low, high = wilson_interval(0, 50)
        assert low == pytest.approx(0.0)
        assert high > 0.05

    def test_narrows_with_more_trials(self):
        small = wilson_interval(8, 10)
        large = wilson_interval(800, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_higher_confidence_is_wider(self):
        narrow = wilson_interval(30, 100, confidence=0.8)
        wide = wilson_interval(30, 100, confidence=0.99)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_matches_scipy_normal_quantile(self):
        # Indirect check of the internal quantile approximation.
        from repro.stats.significance import _normal_quantile

        for p in (0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.995):
            assert _normal_quantile(p) == pytest.approx(
                scipy.stats.norm.ppf(p), abs=1e-7
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"successes": -1, "trials": 10},
            {"successes": 11, "trials": 10},
            {"successes": 5, "trials": 0},
            {"successes": 5, "trials": 10, "confidence": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            wilson_interval(**kwargs)

    def test_coverage_simulation(self):
        """Wilson intervals cover the true proportion ~95% of the time."""
        import numpy as np

        rng = np.random.default_rng(3)
        p_true = 0.3
        covered = 0
        trials = 400
        for _ in range(trials):
            successes = rng.binomial(80, p_true)
            low, high = wilson_interval(int(successes), 80)
            covered += low <= p_true <= high
        assert covered / trials > 0.9


class TestCampaignSignificance:
    def test_extreme_tools_differ_significantly(
        self, reference_campaign, small_workload
    ):
        grep = reference_campaign.result_for("SA-Grep").report
        deep = reference_campaign.result_for("SA-Deep").report
        table = paired_outcomes(grep, deep, small_workload.truth)
        assert mcnemar_exact(table) < 0.01

    def test_tool_vs_itself_is_not_significant(
        self, reference_campaign, small_workload
    ):
        grep = reference_campaign.result_for("SA-Grep").report
        table = paired_outcomes(grep, grep, small_workload.truth)
        assert mcnemar_exact(table) == 1.0

"""Tests for the bootstrap machinery."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.metrics import definitions as d
from repro.metrics.confusion import ConfusionMatrix
from repro.stats.bootstrap import (
    BootstrapSummary,
    bootstrap_metric,
    bootstrap_metric_scalar,
    intervals_separated,
    percentile_interval,
    separation_detail,
    separation_fraction,
)

CM = ConfusionMatrix(tp=60, fp=40, fn=20, tn=380)


def make_summary(low: float, high: float) -> BootstrapSummary:
    return BootstrapSummary(
        metric_symbol="X",
        point_estimate=(low + high) / 2,
        mean=(low + high) / 2,
        std=(high - low) / 4,
        ci_low=low,
        ci_high=high,
        n_resamples=100,
        n_defined=100,
    )


class TestPercentileInterval:
    def test_symmetric_interval(self):
        values = list(range(101))
        low, high = percentile_interval(values, confidence=0.9)
        assert low == pytest.approx(5.0)
        assert high == pytest.approx(95.0)

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            percentile_interval([])

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 1.5])
    def test_bad_confidence_raises(self, confidence):
        with pytest.raises(ConfigurationError):
            percentile_interval([1.0, 2.0], confidence=confidence)


class TestBootstrapMetric:
    def test_deterministic_in_seed(self):
        a = bootstrap_metric(d.RECALL, CM, n_resamples=50, seed=3)
        b = bootstrap_metric(d.RECALL, CM, n_resamples=50, seed=3)
        assert a == b

    def test_point_estimate_matches_metric(self):
        summary = bootstrap_metric(d.RECALL, CM, n_resamples=50, seed=3)
        assert summary.point_estimate == pytest.approx(d.RECALL.compute(CM))

    def test_interval_contains_point_estimate(self):
        summary = bootstrap_metric(d.F1, CM, n_resamples=200, seed=3)
        assert summary.ci_low <= summary.point_estimate <= summary.ci_high

    def test_interval_narrows_with_workload_size(self):
        small = CM
        large = ConfusionMatrix(tp=600, fp=400, fn=200, tn=3800)
        narrow = bootstrap_metric(d.RECALL, large, n_resamples=200, seed=3)
        wide = bootstrap_metric(d.RECALL, small, n_resamples=200, seed=3)
        assert narrow.width < wide.width

    def test_defined_fraction_for_robust_metric(self):
        summary = bootstrap_metric(d.ACCURACY, CM, n_resamples=100, seed=3)
        assert summary.defined_fraction == 1.0
        assert summary.n_defined == 100

    def test_undefined_resamples_counted(self):
        # One needle: some resamples lose all positives and recall goes
        # undefined there.
        needle = ConfusionMatrix(tp=1, fp=0, fn=0, tn=30)
        summary = bootstrap_metric(d.RECALL, needle, n_resamples=300, seed=3)
        assert summary.n_defined < summary.n_resamples

    def test_all_undefined_yields_nan_summary(self):
        # A workload with no positives can never define recall.
        no_positives = ConfusionMatrix(tp=0, fp=5, fn=0, tn=55)
        summary = bootstrap_metric(d.RECALL, no_positives, n_resamples=20, seed=3)
        assert summary.n_defined == 0
        assert math.isnan(summary.mean)
        assert math.isnan(summary.ci_low)

    def test_too_few_resamples_raises(self):
        with pytest.raises(ConfigurationError):
            bootstrap_metric(d.RECALL, CM, n_resamples=1, seed=3)
        with pytest.raises(ConfigurationError):
            bootstrap_metric_scalar(d.RECALL, CM, n_resamples=1, seed=3)


class TestVectorizedMatchesScalar:
    """The batched path must be byte-identical to the reference loop."""

    @pytest.mark.parametrize(
        "metric", [d.RECALL, d.PRECISION, d.F1, d.MCC, d.KAPPA, d.DOR, d.LIFT],
        ids=lambda m: m.symbol,
    )
    @pytest.mark.parametrize("seed", [0, 3, 2015])
    def test_summaries_identical(self, metric, seed):
        fast = bootstrap_metric(metric, CM, n_resamples=120, seed=seed)
        slow = bootstrap_metric_scalar(metric, CM, n_resamples=120, seed=seed)
        assert fast == slow

    def test_identical_on_partially_undefined_metric(self):
        needle = ConfusionMatrix(tp=1, fp=0, fn=0, tn=30)
        fast = bootstrap_metric(d.RECALL, needle, n_resamples=300, seed=3)
        slow = bootstrap_metric_scalar(d.RECALL, needle, n_resamples=300, seed=3)
        assert fast == slow
        assert fast.n_defined < fast.n_resamples

    def test_identical_with_generator_seed(self):
        import numpy as np

        fast = bootstrap_metric(
            d.F1, CM, n_resamples=80, seed=np.random.default_rng(11)
        )
        slow = bootstrap_metric_scalar(
            d.F1, CM, n_resamples=80, seed=np.random.default_rng(11)
        )
        assert fast == slow

    def test_percentile_interval_accepts_ndarray(self):
        import numpy as np

        values = np.arange(101, dtype=float)
        assert percentile_interval(values, confidence=0.9) == percentile_interval(
            values.tolist(), confidence=0.9
        )


class TestSeparation:
    def test_disjoint_intervals_separated(self):
        assert intervals_separated(make_summary(0.1, 0.2), make_summary(0.3, 0.4))

    def test_overlapping_intervals_not_separated(self):
        assert not intervals_separated(make_summary(0.1, 0.35), make_summary(0.3, 0.4))

    def test_nan_intervals_never_separated(self):
        nan_summary = BootstrapSummary(
            metric_symbol="X",
            point_estimate=0.5,
            mean=float("nan"),
            std=float("nan"),
            ci_low=float("nan"),
            ci_high=float("nan"),
            n_resamples=10,
            n_defined=0,
        )
        assert not intervals_separated(nan_summary, make_summary(0.1, 0.2))

    def test_order_irrelevant(self):
        a, b = make_summary(0.1, 0.2), make_summary(0.5, 0.6)
        assert intervals_separated(a, b) == intervals_separated(b, a)

    def test_separation_fraction(self):
        summaries = [
            make_summary(0.0, 0.1),
            make_summary(0.2, 0.3),
            make_summary(0.25, 0.35),
        ]
        # pairs: (0,1) separated, (0,2) separated, (1,2) overlap -> 2/3
        assert separation_fraction(summaries) == pytest.approx(2 / 3)

    def test_separation_needs_two(self):
        with pytest.raises(ConfigurationError):
            separation_fraction([make_summary(0, 1)])

    def test_detail_counts_nan_pairs_instead_of_hiding_them(self):
        nan = float("nan")
        undefined = BootstrapSummary(
            metric_symbol="X", point_estimate=0.5, mean=nan, std=nan,
            ci_low=nan, ci_high=nan, n_resamples=10, n_defined=0,
        )
        summaries = [make_summary(0.0, 0.1), make_summary(0.2, 0.3), undefined]
        detail = separation_detail(summaries)
        assert detail.n_tools == 3
        assert detail.n_pairs == 3
        assert detail.n_undefined_pairs == 2
        assert detail.n_defined_pairs == 1
        assert detail.n_separated == 1
        # The undefined pairs no longer drag the fraction down.
        assert detail.fraction == 1.0
        assert separation_fraction(summaries) == 1.0

    def test_detail_all_nan_is_nan_fraction(self):
        nan = float("nan")
        undefined = BootstrapSummary(
            metric_symbol="X", point_estimate=0.5, mean=nan, std=nan,
            ci_low=nan, ci_high=nan, n_resamples=10, n_defined=0,
        )
        detail = separation_detail([undefined, undefined])
        assert detail.n_defined_pairs == 0
        assert math.isnan(detail.fraction)
        assert math.isnan(separation_fraction([undefined, undefined]))

    def test_detail_agrees_with_pairwise_loop(self):
        summaries = [
            make_summary(0.0, 0.1),
            make_summary(0.05, 0.2),
            make_summary(0.3, 0.4),
            make_summary(0.45, 0.5),
        ]
        detail = separation_detail(summaries)
        n = len(summaries)
        expected = sum(
            intervals_separated(summaries[i], summaries[j])
            for i in range(n)
            for j in range(i + 1, n)
        )
        assert detail.n_separated == expected
        assert detail.n_pairs == n * (n - 1) // 2
        assert detail.n_undefined_pairs == 0

"""Tests for the bootstrap machinery."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.metrics import definitions as d
from repro.metrics.confusion import ConfusionMatrix
from repro.stats.bootstrap import (
    BootstrapSummary,
    bootstrap_metric,
    intervals_separated,
    percentile_interval,
    separation_fraction,
)

CM = ConfusionMatrix(tp=60, fp=40, fn=20, tn=380)


def make_summary(low: float, high: float) -> BootstrapSummary:
    return BootstrapSummary(
        metric_symbol="X",
        point_estimate=(low + high) / 2,
        mean=(low + high) / 2,
        std=(high - low) / 4,
        ci_low=low,
        ci_high=high,
        n_resamples=100,
        n_defined=100,
    )


class TestPercentileInterval:
    def test_symmetric_interval(self):
        values = list(range(101))
        low, high = percentile_interval(values, confidence=0.9)
        assert low == pytest.approx(5.0)
        assert high == pytest.approx(95.0)

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            percentile_interval([])

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 1.5])
    def test_bad_confidence_raises(self, confidence):
        with pytest.raises(ConfigurationError):
            percentile_interval([1.0, 2.0], confidence=confidence)


class TestBootstrapMetric:
    def test_deterministic_in_seed(self):
        a = bootstrap_metric(d.RECALL, CM, n_resamples=50, seed=3)
        b = bootstrap_metric(d.RECALL, CM, n_resamples=50, seed=3)
        assert a == b

    def test_point_estimate_matches_metric(self):
        summary = bootstrap_metric(d.RECALL, CM, n_resamples=50, seed=3)
        assert summary.point_estimate == pytest.approx(d.RECALL.compute(CM))

    def test_interval_contains_point_estimate(self):
        summary = bootstrap_metric(d.F1, CM, n_resamples=200, seed=3)
        assert summary.ci_low <= summary.point_estimate <= summary.ci_high

    def test_interval_narrows_with_workload_size(self):
        small = CM
        large = ConfusionMatrix(tp=600, fp=400, fn=200, tn=3800)
        narrow = bootstrap_metric(d.RECALL, large, n_resamples=200, seed=3)
        wide = bootstrap_metric(d.RECALL, small, n_resamples=200, seed=3)
        assert narrow.width < wide.width

    def test_defined_fraction_for_robust_metric(self):
        summary = bootstrap_metric(d.ACCURACY, CM, n_resamples=100, seed=3)
        assert summary.defined_fraction == 1.0
        assert summary.n_defined == 100

    def test_undefined_resamples_counted(self):
        # One needle: some resamples lose all positives and recall goes
        # undefined there.
        needle = ConfusionMatrix(tp=1, fp=0, fn=0, tn=30)
        summary = bootstrap_metric(d.RECALL, needle, n_resamples=300, seed=3)
        assert summary.n_defined < summary.n_resamples

    def test_all_undefined_yields_nan_summary(self):
        # A workload with no positives can never define recall.
        no_positives = ConfusionMatrix(tp=0, fp=5, fn=0, tn=55)
        summary = bootstrap_metric(d.RECALL, no_positives, n_resamples=20, seed=3)
        assert summary.n_defined == 0
        assert math.isnan(summary.mean)
        assert math.isnan(summary.ci_low)

    def test_too_few_resamples_raises(self):
        with pytest.raises(ConfigurationError):
            bootstrap_metric(d.RECALL, CM, n_resamples=1, seed=3)


class TestSeparation:
    def test_disjoint_intervals_separated(self):
        assert intervals_separated(make_summary(0.1, 0.2), make_summary(0.3, 0.4))

    def test_overlapping_intervals_not_separated(self):
        assert not intervals_separated(make_summary(0.1, 0.35), make_summary(0.3, 0.4))

    def test_nan_intervals_never_separated(self):
        nan_summary = BootstrapSummary(
            metric_symbol="X",
            point_estimate=0.5,
            mean=float("nan"),
            std=float("nan"),
            ci_low=float("nan"),
            ci_high=float("nan"),
            n_resamples=10,
            n_defined=0,
        )
        assert not intervals_separated(nan_summary, make_summary(0.1, 0.2))

    def test_order_irrelevant(self):
        a, b = make_summary(0.1, 0.2), make_summary(0.5, 0.6)
        assert intervals_separated(a, b) == intervals_separated(b, a)

    def test_separation_fraction(self):
        summaries = [
            make_summary(0.0, 0.1),
            make_summary(0.2, 0.3),
            make_summary(0.25, 0.35),
        ]
        # pairs: (0,1) separated, (0,2) separated, (1,2) overlap -> 2/3
        assert separation_fraction(summaries) == pytest.approx(2 / 3)

    def test_separation_needs_two(self):
        with pytest.raises(ConfigurationError):
            separation_fraction([make_summary(0, 1)])

"""Property-based invariants over the whole metric catalog."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import definitions as d
from repro.metrics.confusion import ConfusionMatrix
from repro.metrics.registry import default_registry

ALL_METRICS = list(default_registry())

matrices = (
    st.tuples(
        st.integers(0, 300),
        st.integers(0, 300),
        st.integers(0, 300),
        st.integers(0, 300),
    )
    .filter(lambda cells: sum(cells) > 0)
    .map(lambda cells: ConfusionMatrix(*map(float, cells)))
)


@given(cm=matrices)
def test_every_metric_respects_its_declared_range(cm):
    for metric in ALL_METRICS:
        value = metric.value_or_nan(cm)
        if math.isnan(value):
            continue
        info = metric.info
        assert info.lower_bound - 1e-9 <= value, (metric.symbol, value, cm)
        assert value <= info.upper_bound + 1e-9, (metric.symbol, value, cm)


@given(cm=matrices)
def test_compute_and_value_or_nan_agree(cm):
    for metric in ALL_METRICS:
        value = metric.value_or_nan(cm)
        if math.isnan(value):
            assert not metric.is_defined(cm)
        else:
            assert metric.is_defined(cm)
            assert metric.compute(cm) == value


@given(cm=matrices)
def test_f1_lies_between_precision_and_recall(cm):
    precision = d.PRECISION.value_or_nan(cm)
    recall = d.RECALL.value_or_nan(cm)
    f1 = d.F1.value_or_nan(cm)
    if any(math.isnan(v) for v in (precision, recall, f1)):
        return
    low, high = min(precision, recall), max(precision, recall)
    assert low - 1e-9 <= f1 <= high + 1e-9


@given(cm=matrices)
def test_complement_identities(cm):
    pairs = [
        (d.ERROR_RATE, d.ACCURACY),
        (d.FDR, d.PRECISION),
        (d.FNR, d.RECALL),
        (d.FPR, d.SPECIFICITY),
        (d.FOR, d.NPV),
    ]
    for complement, primal in pairs:
        c = complement.value_or_nan(cm)
        p = primal.value_or_nan(cm)
        if math.isnan(c) or math.isnan(p):
            assert math.isnan(c) == math.isnan(p), (complement.symbol, primal.symbol)
        else:
            assert c == pytest.approx(1.0 - p, abs=1e-9)


@given(cm=matrices)
def test_mcc_is_symmetric_under_class_swap(cm):
    """Swapping what counts as 'positive' only preserves MCC and kappa."""
    swapped = ConfusionMatrix(tp=cm.tn, fp=cm.fn, fn=cm.fp, tn=cm.tp)
    for metric in (d.MCC, d.KAPPA, d.ACCURACY, d.ERROR_RATE):
        original = metric.value_or_nan(cm)
        mirrored = metric.value_or_nan(swapped)
        if math.isnan(original) or math.isnan(mirrored):
            continue
        assert original == pytest.approx(mirrored, abs=1e-9), metric.symbol


@given(cm=matrices)
def test_informedness_duality(cm):
    """Informedness looks at rows of the matrix, markedness at columns;
    transposing the matrix swaps them."""
    transposed = ConfusionMatrix(tp=cm.tp, fp=cm.fn, fn=cm.fp, tn=cm.tn)
    informedness = d.INFORMEDNESS.value_or_nan(cm)
    markedness = d.MARKEDNESS.value_or_nan(transposed)
    if math.isnan(informedness) or math.isnan(markedness):
        return
    assert informedness == pytest.approx(markedness, abs=1e-9)


@given(cm=matrices)
def test_mcc_is_geometric_mean_of_informedness_and_markedness(cm):
    mcc = d.MCC.value_or_nan(cm)
    informedness = d.INFORMEDNESS.value_or_nan(cm)
    markedness = d.MARKEDNESS.value_or_nan(cm)
    if any(math.isnan(v) for v in (mcc, informedness, markedness)):
        return
    product = informedness * markedness
    if product < 0:
        return  # the identity holds with sign only when both share a sign
    expected = math.copysign(math.sqrt(product), informedness)
    assert mcc == pytest.approx(expected, abs=1e-6)


@given(
    tpr=st.floats(0.05, 0.95),
    fpr=st.floats(0.05, 0.95),
    prev_a=st.floats(0.05, 0.95),
    prev_b=st.floats(0.05, 0.95),
)
def test_informedness_and_recall_are_prevalence_invariant(tpr, fpr, prev_a, prev_b):
    cm_a = ConfusionMatrix.from_rates(tpr, fpr, prev_a * 1000, (1 - prev_a) * 1000)
    cm_b = ConfusionMatrix.from_rates(tpr, fpr, prev_b * 1000, (1 - prev_b) * 1000)
    for metric in (d.INFORMEDNESS, d.RECALL, d.SPECIFICITY, d.BALANCED_ACCURACY, d.G_MEAN):
        assert metric.value_or_nan(cm_a) == pytest.approx(
            metric.value_or_nan(cm_b), abs=1e-9
        ), metric.symbol


@given(cm=matrices, extra=st.integers(1, 50))
def test_recall_monotone_in_found_vulnerabilities(cm, extra):
    if cm.fn < extra:
        return
    improved = ConfusionMatrix(cm.tp + extra, cm.fp, cm.fn - extra, cm.tn)
    before = d.RECALL.value_or_nan(cm)
    after = d.RECALL.value_or_nan(improved)
    if math.isnan(before) or math.isnan(after):
        return
    assert after > before


@given(cm=matrices, extra=st.integers(1, 50))
def test_precision_monotone_in_silenced_alarms(cm, extra):
    if cm.fp < extra or cm.tp == 0:
        return
    improved = ConfusionMatrix(cm.tp, cm.fp - extra, cm.fn, cm.tn + extra)
    assert d.PRECISION.value_or_nan(improved) > d.PRECISION.value_or_nan(cm)

"""Tests for the metric registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.metrics import definitions as d
from repro.metrics.base import MetricFamily
from repro.metrics.registry import MetricRegistry, core_candidates, default_registry


class TestRegistryBasics:
    def test_register_and_get(self):
        registry = MetricRegistry([d.RECALL])
        assert registry.get("REC") is d.RECALL

    def test_duplicate_symbol_rejected(self):
        registry = MetricRegistry([d.RECALL])
        with pytest.raises(ConfigurationError):
            registry.register(d.Recall())

    def test_unknown_symbol_raises(self):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            MetricRegistry([d.RECALL]).get("NOPE")

    def test_contains(self):
        registry = MetricRegistry([d.RECALL])
        assert "REC" in registry
        assert "PRE" not in registry

    def test_iteration_preserves_order(self):
        registry = MetricRegistry([d.PRECISION, d.RECALL, d.F1])
        assert [m.symbol for m in registry] == ["PRE", "REC", "F1"]

    def test_len(self):
        assert len(MetricRegistry([d.RECALL, d.PRECISION])) == 2

    def test_symbols(self):
        assert MetricRegistry([d.F1, d.MCC]).symbols == ["F1", "MCC"]

    def test_subset(self):
        registry = default_registry()
        subset = registry.subset(["MCC", "REC"])
        assert subset.symbols == ["MCC", "REC"]

    def test_subset_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            default_registry().subset(["NOPE"])

    def test_by_family(self):
        registry = default_registry()
        error_rates = registry.by_family(MetricFamily.ERROR_RATE)
        assert {m.symbol for m in error_rates} == {"ERR", "FPR", "FNR", "FDR", "FOR"}


class TestDefaultRegistry:
    def test_has_all_catalog_metrics(self):
        assert len(default_registry()) == 26

    def test_contains_the_paper_headliners(self):
        registry = default_registry()
        for symbol in ("REC", "PRE", "F1", "MCC", "INF", "MRK", "ACC"):
            assert symbol in registry

    def test_fresh_instance_each_call(self):
        a = default_registry()
        b = default_registry()
        a.register(d.ExpectedCost(5, 1))
        assert "EC" not in b


class TestCoreCandidates:
    def test_is_subset_of_default(self):
        full = set(default_registry().symbols)
        core = set(core_candidates().symbols)
        assert core < full

    def test_excludes_unbounded_metrics(self):
        core = core_candidates()
        for symbol in ("DOR", "LR+", "LR-", "LFT"):
            assert symbol not in core

    def test_excludes_redundant_complements(self):
        core = core_candidates()
        for symbol in ("ERR", "FDR", "FNR", "FOR", "FPR"):
            assert symbol not in core

    def test_keeps_scenario_relevant_families(self):
        core = core_candidates()
        for symbol in ("REC", "PRE", "SPC", "F1", "F2", "F0.5", "MCC", "INF", "MRK"):
            assert symbol in core

"""Tests for the confusion matrix."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.metrics.confusion import ConfusionMatrix


class TestConstruction:
    def test_basic_counts(self):
        cm = ConfusionMatrix(tp=10, fp=5, fn=3, tn=82)
        assert cm.tp == 10
        assert cm.fp == 5
        assert cm.fn == 3
        assert cm.tn == 82

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix(tp=-1, fp=0, fn=0, tn=10)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix(tp=float("nan"), fp=0, fn=0, tn=10)

    def test_rejects_infinite(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix(tp=float("inf"), fp=0, fn=0, tn=10)

    def test_rejects_empty_matrix(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix(tp=0, fp=0, fn=0, tn=0)

    def test_accepts_fractional_counts(self):
        cm = ConfusionMatrix(tp=1.5, fp=0.5, fn=0.25, tn=7.75)
        assert cm.total == 10.0

    def test_is_frozen(self):
        cm = ConfusionMatrix(tp=1, fp=1, fn=1, tn=1)
        with pytest.raises(AttributeError):
            cm.tp = 5  # type: ignore[misc]

    def test_equality(self):
        assert ConfusionMatrix(1, 2, 3, 4) == ConfusionMatrix(1, 2, 3, 4)
        assert ConfusionMatrix(1, 2, 3, 4) != ConfusionMatrix(4, 3, 2, 1)


class TestFromOutcomes:
    def test_all_four_cells(self):
        truth = [True, True, False, False, True]
        predicted = [True, False, True, False, True]
        cm = ConfusionMatrix.from_outcomes(truth, predicted)
        assert cm.as_tuple() == (2, 1, 1, 1)

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix.from_outcomes([True], [True, False])

    def test_accepts_generators(self):
        cm = ConfusionMatrix.from_outcomes(
            (b for b in [True, False]), (b for b in [True, True])
        )
        assert cm.as_tuple() == (1, 1, 0, 0)


class TestFromRates:
    def test_expected_counts(self):
        cm = ConfusionMatrix.from_rates(tpr=0.8, fpr=0.1, positives=100, negatives=900)
        assert cm.tp == pytest.approx(80)
        assert cm.fn == pytest.approx(20)
        assert cm.fp == pytest.approx(90)
        assert cm.tn == pytest.approx(810)

    def test_rates_recoverable(self):
        cm = ConfusionMatrix.from_rates(tpr=0.65, fpr=0.2, positives=50, negatives=450)
        assert cm.tpr == pytest.approx(0.65)
        assert cm.fpr == pytest.approx(0.2)

    @pytest.mark.parametrize("tpr", [-0.1, 1.1])
    def test_rejects_bad_tpr(self, tpr):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix.from_rates(tpr=tpr, fpr=0.1, positives=10, negatives=10)

    @pytest.mark.parametrize("fpr", [-0.1, 1.5])
    def test_rejects_bad_fpr(self, fpr):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix.from_rates(tpr=0.5, fpr=fpr, positives=10, negatives=10)

    def test_rejects_negative_populations(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix.from_rates(tpr=0.5, fpr=0.1, positives=-1, negatives=10)


class TestAggregates:
    def test_totals(self, typical_cm):
        assert typical_cm.total == 500
        assert typical_cm.positives == 80
        assert typical_cm.negatives == 420
        assert typical_cm.predicted_positives == 100
        assert typical_cm.predicted_negatives == 400

    def test_prevalence(self, typical_cm):
        assert typical_cm.prevalence == pytest.approx(80 / 500)

    def test_rates(self, typical_cm):
        assert typical_cm.tpr == pytest.approx(60 / 80)
        assert typical_cm.fnr == pytest.approx(20 / 80)
        assert typical_cm.fpr == pytest.approx(40 / 420)
        assert typical_cm.tnr == pytest.approx(380 / 420)

    def test_rates_nan_without_positives(self):
        cm = ConfusionMatrix(tp=0, fp=3, fn=0, tn=7)
        assert math.isnan(cm.tpr)
        assert math.isnan(cm.fnr)

    def test_rates_nan_without_negatives(self):
        cm = ConfusionMatrix(tp=3, fp=0, fn=7, tn=0)
        assert math.isnan(cm.fpr)
        assert math.isnan(cm.tnr)


class TestAddition:
    def test_add_cells(self):
        total = ConfusionMatrix(1, 2, 3, 4) + ConfusionMatrix(10, 20, 30, 40)
        assert total.as_tuple() == (11, 22, 33, 44)

    def test_add_wrong_type(self):
        with pytest.raises(TypeError):
            ConfusionMatrix(1, 2, 3, 4) + 5  # type: ignore[operator]


class TestWithPrevalence:
    def test_preserves_operating_point(self, typical_cm):
        rebalanced = typical_cm.with_prevalence(0.02)
        assert rebalanced.tpr == pytest.approx(typical_cm.tpr)
        assert rebalanced.fpr == pytest.approx(typical_cm.fpr)
        assert rebalanced.prevalence == pytest.approx(0.02)

    def test_preserves_total_by_default(self, typical_cm):
        assert typical_cm.with_prevalence(0.3).total == pytest.approx(typical_cm.total)

    def test_custom_total(self, typical_cm):
        assert typical_cm.with_prevalence(0.3, total=1000).total == pytest.approx(1000)

    @pytest.mark.parametrize("prevalence", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_degenerate_prevalence(self, typical_cm, prevalence):
        with pytest.raises(ConfigurationError):
            typical_cm.with_prevalence(prevalence)

    def test_rejects_unidentified_operating_point(self):
        silent_on_positives = ConfusionMatrix(tp=0, fp=5, fn=0, tn=5)
        with pytest.raises(ConfigurationError):
            silent_on_positives.with_prevalence(0.5)


class TestResample:
    def test_preserves_total(self, typical_cm):
        resampled = typical_cm.resample(seed=0)
        assert resampled.total == typical_cm.total

    def test_deterministic_in_seed(self, typical_cm):
        assert typical_cm.resample(seed=42) == typical_cm.resample(seed=42)

    def test_varies_across_seeds(self, typical_cm):
        outcomes = {typical_cm.resample(seed=s).as_tuple() for s in range(10)}
        assert len(outcomes) > 1

    def test_accepts_generator(self, typical_cm):
        rng = np.random.default_rng(7)
        resampled = typical_cm.resample(rng)
        assert resampled.total == typical_cm.total

    def test_mean_tracks_cell_proportions(self, typical_cm):
        rng = np.random.default_rng(3)
        tps = [typical_cm.resample(rng).tp for _ in range(300)]
        assert np.mean(tps) == pytest.approx(typical_cm.tp, rel=0.1)


@given(
    tp=st.integers(0, 500),
    fp=st.integers(0, 500),
    fn=st.integers(0, 500),
    tn=st.integers(0, 500),
)
def test_aggregate_identities_hold(tp, fp, fn, tn):
    """Marginals always recombine to the total."""
    if tp + fp + fn + tn == 0:
        return
    cm = ConfusionMatrix(tp=tp, fp=fp, fn=fn, tn=tn)
    assert cm.positives + cm.negatives == cm.total
    assert cm.predicted_positives + cm.predicted_negatives == cm.total
    assert 0.0 <= cm.prevalence <= 1.0


@given(
    tpr=st.floats(0.01, 0.99),
    fpr=st.floats(0.01, 0.99),
    prevalence=st.floats(0.01, 0.99),
    new_prevalence=st.floats(0.01, 0.99),
)
def test_with_prevalence_is_rate_invariant(tpr, fpr, prevalence, new_prevalence):
    """Rebalancing never changes the tool's intrinsic rates."""
    cm = ConfusionMatrix.from_rates(tpr, fpr, prevalence * 1000, (1 - prevalence) * 1000)
    rebalanced = cm.with_prevalence(new_prevalence)
    assert rebalanced.tpr == pytest.approx(tpr, abs=1e-9)
    assert rebalanced.fpr == pytest.approx(fpr, abs=1e-9)

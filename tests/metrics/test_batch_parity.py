"""Scalar-vs-batch parity for every registered metric kernel.

The vectorized kernels in ``definitions.py`` promise to be elementwise
*bit-identical* to ``value_or_nan`` — not merely close.  These tests sweep
randomly generated confusion matrices (hypothesis-style, with a fixed seed so
failures reproduce) plus a hand-picked set of degenerate matrices where one
or more margins collapse to zero, and assert exact equality (``nan``-aware)
for every metric the default registry knows about.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics import ConfusionBatch, ConfusionMatrix, Metric, default_registry
from repro.metrics.base import MetricFamily, MetricInfo, Orientation
from repro.metrics.batch import safe_div_array

#: Matrices with collapsed margins: no positives, no negatives, no reports,
#: no silence, single-cell masses.  These exercise every undefined branch.
DEGENERATE = [
    ConfusionMatrix(1, 0, 0, 0),
    ConfusionMatrix(0, 1, 0, 0),
    ConfusionMatrix(0, 0, 1, 0),
    ConfusionMatrix(0, 0, 0, 1),
    ConfusionMatrix(5, 5, 0, 0),  # everything reported
    ConfusionMatrix(0, 0, 5, 5),  # nothing reported
    ConfusionMatrix(5, 0, 5, 0),  # no negatives
    ConfusionMatrix(0, 5, 0, 5),  # no positives
    ConfusionMatrix(7, 0, 0, 3),  # perfect tool
    ConfusionMatrix(0, 3, 7, 0),  # perfectly wrong tool
]


def random_matrices(n: int, seed: int, high: int = 60) -> list[ConfusionMatrix]:
    rng = np.random.default_rng(seed)
    matrices = []
    while len(matrices) < n:
        counts = rng.integers(0, high, size=4)
        if counts.sum() == 0:
            continue  # an empty matrix is invalid by construction
        matrices.append(ConfusionMatrix(*(float(c) for c in counts)))
    return matrices


def assert_elementwise_identical(metric: Metric, matrices: list[ConfusionMatrix]) -> None:
    batch = ConfusionBatch.from_matrices(matrices)
    vectorized = metric.compute_batch(batch)
    scalar = np.array([metric.value_or_nan(cm) for cm in matrices], dtype=float)
    assert vectorized.shape == scalar.shape
    mismatch = ~((vectorized == scalar) | (np.isnan(vectorized) & np.isnan(scalar)))
    assert not mismatch.any(), (
        f"{metric.symbol}: batch kernel diverges from scalar path at rows "
        f"{np.where(mismatch)[0][:5].tolist()}: "
        f"{vectorized[mismatch][:5]} != {scalar[mismatch][:5]}"
    )


class TestBatchMatchesScalar:
    @pytest.mark.parametrize(
        "metric", list(default_registry()), ids=lambda m: m.symbol
    )
    def test_random_sweep(self, metric):
        assert_elementwise_identical(metric, random_matrices(300, seed=20150))

    @pytest.mark.parametrize(
        "metric", list(default_registry()), ids=lambda m: m.symbol
    )
    def test_degenerate_matrices(self, metric):
        assert_elementwise_identical(metric, DEGENERATE)

    @pytest.mark.parametrize(
        "metric", list(default_registry()), ids=lambda m: m.symbol
    )
    def test_resampled_batch(self, metric):
        # The actual shape of bootstrap inputs: multinomial resamples of one
        # matrix, including a needle-in-haystack one that loses all its
        # positives in some resamples.
        for cm in (ConfusionMatrix(60, 40, 20, 380), ConfusionMatrix(1, 0, 0, 30)):
            batch = ConfusionBatch.resample(cm, 200, seed=99)
            vectorized = metric.compute_batch(batch)
            scalar = np.array(
                [metric.value_or_nan(batch.matrix(i)) for i in range(len(batch))]
            )
            assert np.array_equal(vectorized, scalar, equal_nan=True), metric.symbol

    def test_no_numpy_warnings_leak(self):
        # Kernels must stay silent even on fully degenerate inputs.
        import warnings

        batch = ConfusionBatch.from_matrices(DEGENERATE)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for metric in default_registry():
                metric.compute_batch(batch)


class TestGenericFallback:
    class _Custom(Metric):
        """A metric without a vectorized kernel: exercises the base fallback."""

        info = MetricInfo(
            name="Custom",
            symbol="CST",
            formula="TP - FP",
            family=MetricFamily.COMPOSITE,
            orientation=Orientation.HIGHER_IS_BETTER,
            lower_bound=-float("inf"),
            upper_bound=float("inf"),
            chance_corrected=False,
            uses_tn=False,
            popularity=0.0,
        )

        def _compute(self, cm):
            return cm.tp - cm.fp

    def test_fallback_loops_the_scalar_path(self):
        metric = self._Custom()
        matrices = random_matrices(25, seed=3)
        batch = ConfusionBatch.from_matrices(matrices)
        expected = np.array([metric.value_or_nan(cm) for cm in matrices])
        assert np.array_equal(metric.compute_batch(batch), expected)

    def test_bad_kernel_shape_is_rejected(self):
        class Broken(self._Custom):
            def _compute_batch(self, batch):
                return np.zeros(len(batch) + 1)

        batch = ConfusionBatch.from_matrices(DEGENERATE)
        with pytest.raises(ConfigurationError, match="batch kernel returned shape"):
            Broken().compute_batch(batch)


class TestConfusionBatch:
    def test_resample_matches_sequential_scalar_resamples(self):
        cm = ConfusionMatrix(60, 40, 20, 380)
        batch = ConfusionBatch.resample(cm, 50, seed=123)
        rng = np.random.default_rng(123)
        sequential = [cm.resample(rng) for _ in range(50)]
        assert batch.matrices() == sequential

    def test_from_matrices_round_trips(self):
        matrices = random_matrices(10, seed=1)
        assert ConfusionBatch.from_matrices(matrices).matrices() == matrices

    def test_aggregates_mirror_scalar_properties(self):
        matrices = random_matrices(40, seed=5) + DEGENERATE
        batch = ConfusionBatch.from_matrices(matrices)
        for i, cm in enumerate(matrices):
            assert batch.total[i] == cm.total
            assert batch.positives[i] == cm.positives
            assert batch.negatives[i] == cm.negatives
            assert batch.predicted_positives[i] == cm.predicted_positives
            assert batch.predicted_negatives[i] == cm.predicted_negatives
            assert batch.prevalence[i] == cm.prevalence
            for rate in ("tpr", "fpr", "tnr", "fnr"):
                left, right = getattr(batch, rate)[i], getattr(cm, rate)
                assert left == right or (np.isnan(left) and np.isnan(right))

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="at least one matrix"):
            ConfusionBatch.from_matrices([])
        with pytest.raises(ConfigurationError, match="must be 1-D"):
            ConfusionBatch(
                tp=np.zeros((2, 2)), fp=np.zeros((2, 2)),
                fn=np.zeros((2, 2)), tn=np.ones((2, 2)),
            )
        with pytest.raises(ConfigurationError, match="disagree in shape"):
            ConfusionBatch(
                tp=np.ones(3), fp=np.ones(2), fn=np.ones(3), tn=np.ones(3)
            )
        with pytest.raises(ConfigurationError, match="finite and >= 0"):
            ConfusionBatch(
                tp=np.array([-1.0]), fp=np.array([1.0]),
                fn=np.array([1.0]), tn=np.array([1.0]),
            )
        with pytest.raises(ConfigurationError, match=">= 1 site"):
            ConfusionBatch(
                tp=np.array([0.0]), fp=np.array([0.0]),
                fn=np.array([0.0]), tn=np.array([0.0]),
            )
        with pytest.raises(ConfigurationError, match="n_resamples"):
            ConfusionBatch.resample(ConfusionMatrix(1, 1, 1, 1), 0, seed=0)


class TestSafeDivArray:
    def test_matches_scalar_safe_div(self):
        from repro.metrics.base import safe_div

        numerators = np.array([1.0, 0.0, -2.0, np.nan, 5.0])
        denominators = np.array([2.0, 0.0, 4.0, 2.0, 0.0])
        out = safe_div_array(numerators, denominators)
        expected = np.array(
            [safe_div(n, d) for n, d in zip(numerators, denominators)]
        )
        assert np.array_equal(out, expected, equal_nan=True)

"""Golden-value tests for every metric definition.

Each metric is checked against hand-computed values on a reference matrix,
plus its documented undefined inputs.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, UndefinedMetricError
from repro.metrics import definitions as d
from repro.metrics.base import Orientation
from repro.metrics.confusion import ConfusionMatrix

# Reference matrix: tp=60, fp=40, fn=20, tn=380 (N=500, prevalence 0.16).
CM = ConfusionMatrix(tp=60, fp=40, fn=20, tn=380)

GOLDEN = {
    d.RECALL: 60 / 80,
    d.SPECIFICITY: 380 / 420,
    d.PRECISION: 60 / 100,
    d.NPV: 380 / 400,
    d.ACCURACY: 440 / 500,
    d.ERROR_RATE: 60 / 500,
    d.BALANCED_ACCURACY: (60 / 80 + 380 / 420) / 2,
    d.F1: 2 * 60 / (2 * 60 + 20 + 40),
    d.F2: 5 * 60 / (5 * 60 + 4 * 20 + 40),
    d.F05: 1.25 * 60 / (1.25 * 60 + 0.25 * 20 + 40),
    d.MCC: (60 * 380 - 40 * 20) / math.sqrt(100 * 80 * 420 * 400),
    d.INFORMEDNESS: 60 / 80 + 380 / 420 - 1,
    d.MARKEDNESS: 60 / 100 + 380 / 400 - 1,
    d.G_MEAN: math.sqrt((60 / 80) * (380 / 420)),
    d.FOWLKES_MALLOWS: math.sqrt((60 / 100) * (60 / 80)),
    d.JACCARD: 60 / 120,
    d.DOR: (60 * 380) / (40 * 20),
    d.LR_POSITIVE: (60 / 80) / (40 / 420),
    d.LR_NEGATIVE: (20 / 80) / (380 / 420),
    d.FPR: 40 / 420,
    d.FNR: 20 / 80,
    d.FDR: 40 / 100,
    d.FOR: 20 / 400,
    d.LIFT: (60 / 100) / (80 / 500),
}


@pytest.mark.parametrize("metric", list(GOLDEN), ids=lambda m: m.symbol)
def test_golden_value(metric):
    assert metric.compute(CM) == pytest.approx(GOLDEN[metric])


def test_kappa_golden_value():
    p_o = 440 / 500
    p_e = (80 * 100 + 420 * 400) / (500 * 500)
    assert d.KAPPA.compute(CM) == pytest.approx((p_o - p_e) / (1 - p_e))


def test_prevalence_threshold_golden_value():
    tpr, fpr = 60 / 80, 40 / 420
    expected = (math.sqrt(tpr * fpr) - fpr) / (tpr - fpr)
    assert d.PREVALENCE_THRESHOLD.compute(CM) == pytest.approx(expected)


class TestUndefinedInputs:
    def test_recall_undefined_without_positives(self):
        cm = ConfusionMatrix(tp=0, fp=5, fn=0, tn=5)
        with pytest.raises(UndefinedMetricError):
            d.RECALL.compute(cm)
        assert math.isnan(d.RECALL.value_or_nan(cm))

    def test_precision_undefined_for_silent_tool(self):
        cm = ConfusionMatrix(tp=0, fp=0, fn=5, tn=5)
        assert not d.PRECISION.is_defined(cm)

    def test_specificity_undefined_without_negatives(self):
        cm = ConfusionMatrix(tp=5, fp=0, fn=5, tn=0)
        assert not d.SPECIFICITY.is_defined(cm)

    def test_dor_undefined_with_zero_errors(self):
        cm = ConfusionMatrix(tp=5, fp=0, fn=0, tn=5)
        assert not d.DOR.is_defined(cm)

    def test_mcc_undefined_for_single_class_workload(self):
        cm = ConfusionMatrix(tp=5, fp=0, fn=5, tn=0)
        assert not d.MCC.is_defined(cm)

    def test_f1_defined_for_silent_tool(self):
        # F1 = 0 when tp=0 but fn+fp > 0: defined, and rightly terrible.
        cm = ConfusionMatrix(tp=0, fp=0, fn=5, tn=5)
        assert d.F1.compute(cm) == 0.0

    def test_accuracy_always_defined(self):
        cm = ConfusionMatrix(tp=0, fp=0, fn=0, tn=1)
        assert d.ACCURACY.compute(cm) == 1.0


class TestGoodnessOrientation:
    def test_higher_is_better_passthrough(self):
        assert d.RECALL.goodness(CM) == d.RECALL.compute(CM)

    def test_lower_is_better_negated(self):
        assert d.FPR.goodness(CM) == -d.FPR.compute(CM)

    def test_error_rate_goodness_consistent_with_accuracy(self):
        better = ConfusionMatrix(tp=70, fp=30, fn=10, tn=390)
        assert d.ERROR_RATE.goodness(better) > d.ERROR_RATE.goodness(CM)
        assert d.ACCURACY.goodness(better) > d.ACCURACY.goodness(CM)

    @pytest.mark.parametrize(
        "metric",
        [d.ERROR_RATE, d.FPR, d.FNR, d.FDR, d.FOR, d.LR_NEGATIVE, d.PREVALENCE_THRESHOLD],
        ids=lambda m: m.symbol,
    )
    def test_lower_is_better_flags(self, metric):
        assert metric.info.orientation is Orientation.LOWER_IS_BETTER


class TestComplementIdentities:
    def test_error_rate_is_one_minus_accuracy(self):
        assert d.ERROR_RATE.compute(CM) == pytest.approx(1 - d.ACCURACY.compute(CM))

    def test_fdr_is_one_minus_precision(self):
        assert d.FDR.compute(CM) == pytest.approx(1 - d.PRECISION.compute(CM))

    def test_fnr_is_one_minus_recall(self):
        assert d.FNR.compute(CM) == pytest.approx(1 - d.RECALL.compute(CM))

    def test_fpr_is_one_minus_specificity(self):
        assert d.FPR.compute(CM) == pytest.approx(1 - d.SPECIFICITY.compute(CM))

    def test_for_is_one_minus_npv(self):
        assert d.FOR.compute(CM) == pytest.approx(1 - d.NPV.compute(CM))

    def test_informedness_is_twice_balanced_accuracy_minus_one(self):
        assert d.INFORMEDNESS.compute(CM) == pytest.approx(
            2 * d.BALANCED_ACCURACY.compute(CM) - 1
        )

    def test_dor_is_lr_ratio(self):
        assert d.DOR.compute(CM) == pytest.approx(
            d.LR_POSITIVE.compute(CM) / d.LR_NEGATIVE.compute(CM)
        )


class TestPerfectAndWorstTools:
    PERFECT = ConfusionMatrix(tp=80, fp=0, fn=0, tn=420)

    def test_perfect_tool_hits_upper_bounds(self):
        for metric in (d.RECALL, d.PRECISION, d.ACCURACY, d.F1, d.MCC, d.INFORMEDNESS,
                       d.MARKEDNESS, d.G_MEAN, d.JACCARD, d.KAPPA, d.BALANCED_ACCURACY):
            assert metric.compute(self.PERFECT) == pytest.approx(
                1.0 if metric.info.upper_bound == 1.0 else metric.info.upper_bound
            )

    def test_perfectly_wrong_tool_hits_lower_bounds(self):
        worst = ConfusionMatrix(tp=0, fp=420, fn=80, tn=0)
        assert d.MCC.compute(worst) == pytest.approx(-1.0)
        assert d.INFORMEDNESS.compute(worst) == pytest.approx(-1.0)
        assert d.ACCURACY.compute(worst) == 0.0

    def test_random_tool_scores_zero_on_chance_corrected(self):
        # TPR == FPR == 0.5 at any prevalence.
        random_tool = ConfusionMatrix.from_rates(0.5, 0.5, 100, 400)
        assert d.MCC.compute(random_tool) == pytest.approx(0.0, abs=1e-12)
        assert d.INFORMEDNESS.compute(random_tool) == pytest.approx(0.0, abs=1e-12)
        assert d.KAPPA.compute(random_tool) == pytest.approx(0.0, abs=1e-12)


class TestParameterizedMetrics:
    def test_fmeasure_rejects_bad_beta(self):
        with pytest.raises(ConfigurationError):
            d.FMeasure(0.0)
        with pytest.raises(ConfigurationError):
            d.FMeasure(-1.0)
        with pytest.raises(ConfigurationError):
            d.FMeasure(float("inf"))

    def test_f1_is_harmonic_mean(self):
        precision = d.PRECISION.compute(CM)
        recall = d.RECALL.compute(CM)
        assert d.F1.compute(CM) == pytest.approx(
            2 * precision * recall / (precision + recall)
        )

    def test_f2_leans_toward_recall(self):
        # Here recall (0.75) > precision (0.6): F2 must exceed F1, F0.5 must
        # sit below it.
        assert d.F2.compute(CM) > d.F1.compute(CM) > d.F05.compute(CM)

    def test_expected_cost_golden(self):
        metric = d.ExpectedCost(cost_fn=10.0, cost_fp=1.0)
        assert metric.compute(CM) == pytest.approx((10 * 20 + 40) / 500)

    def test_expected_cost_validation(self):
        with pytest.raises(ConfigurationError):
            d.ExpectedCost(cost_fn=-1.0, cost_fp=1.0)
        with pytest.raises(ConfigurationError):
            d.ExpectedCost(cost_fn=0.0, cost_fp=0.0)

    def test_normalized_expected_cost_beats_trivial_policies(self):
        metric = d.NormalizedExpectedCost(cost_fn=10.0, cost_fp=1.0)
        value = metric.compute(CM)
        # A useful tool beats the better trivial policy: NEC < 1.
        assert 0.0 < value < 1.0

    def test_normalized_expected_cost_of_silent_tool_is_at_least_one(self):
        silent = ConfusionMatrix(tp=0, fp=0, fn=80, tn=420)
        metric = d.NormalizedExpectedCost(cost_fn=10.0, cost_fp=1.0)
        assert metric.compute(silent) >= 1.0


class TestMetricIdentity:
    def test_equality_by_info(self):
        assert d.FMeasure(1.0) == d.F1
        assert d.FMeasure(2.0) != d.F1

    def test_hashable(self):
        assert len({d.RECALL, d.PRECISION, d.RECALL}) == 2

    def test_symbols_unique_across_catalog(self):
        metrics = [
            d.RECALL, d.SPECIFICITY, d.PRECISION, d.NPV, d.ACCURACY, d.ERROR_RATE,
            d.BALANCED_ACCURACY, d.F1, d.F2, d.F05, d.MCC, d.INFORMEDNESS,
            d.MARKEDNESS, d.G_MEAN, d.FOWLKES_MALLOWS, d.JACCARD, d.KAPPA, d.DOR,
            d.LR_POSITIVE, d.LR_NEGATIVE, d.FPR, d.FNR, d.FDR, d.FOR,
            d.PREVALENCE_THRESHOLD, d.LIFT,
        ]
        symbols = [m.symbol for m in metrics]
        assert len(set(symbols)) == len(symbols)

"""Tests for ROC / PR curve analysis."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.metrics.curves import (
    ScoredSite,
    auc_roc,
    average_precision,
    pr_points,
    roc_points,
    score_sites,
)
from repro.tools.base import Detection, DetectionReport
from repro.workload.code_model import SinkSite
from repro.workload.ground_truth import GroundTruth
from repro.workload.taxonomy import VulnerabilityType

SQLI = VulnerabilityType.SQL_INJECTION


def sites(*pairs: tuple[float, bool]) -> list[ScoredSite]:
    return [ScoredSite(score=s, vulnerable=v) for s, v in pairs]


class TestScoreSites:
    def test_unflagged_sites_score_zero(self):
        s1 = SinkSite("u1", 0, SQLI)
        s2 = SinkSite("u2", 0, SQLI)
        truth = GroundTruth.from_sites([s1, s2], [s1])
        report = DetectionReport(
            tool_name="t",
            workload_name="w",
            detections=(Detection(s1, confidence=0.8),),
        )
        scored = score_sites(report, truth)
        assert scored[0].score == 0.8
        assert scored[1].score == 0.0
        assert scored[0].vulnerable and not scored[1].vulnerable

    def test_unknown_site_raises(self):
        truth = GroundTruth.from_sites([SinkSite("u1", 0, SQLI)], [])
        report = DetectionReport(
            tool_name="t",
            workload_name="w",
            detections=(Detection(SinkSite("ghost", 0, SQLI)),),
        )
        with pytest.raises(ConfigurationError):
            score_sites(report, truth)


class TestRocCurve:
    def test_perfect_ranker(self):
        scored = sites((0.9, True), (0.8, True), (0.2, False), (0.1, False))
        assert auc_roc(scored) == pytest.approx(1.0)
        assert roc_points(scored)[0] == (0.0, 0.0)
        assert roc_points(scored)[-1] == (1.0, 1.0)

    def test_inverted_ranker(self):
        scored = sites((0.9, False), (0.8, False), (0.2, True), (0.1, True))
        assert auc_roc(scored) == pytest.approx(0.0)

    def test_all_tied_is_chance(self):
        scored = sites((0.5, True), (0.5, False), (0.5, True), (0.5, False))
        assert auc_roc(scored) == pytest.approx(0.5)

    def test_known_value(self):
        # positives at 0.9, 0.4; negatives at 0.6, 0.1
        # pairs: (0.9>0.6), (0.9>0.1), (0.4<0.6), (0.4>0.1) -> 3/4
        scored = sites((0.9, True), (0.4, True), (0.6, False), (0.1, False))
        assert auc_roc(scored) == pytest.approx(0.75)

    def test_needs_both_classes(self):
        with pytest.raises(ConfigurationError):
            auc_roc(sites((0.5, True)))
        with pytest.raises(ConfigurationError):
            auc_roc(sites((0.5, False)))

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            roc_points([])

    @given(
        st.lists(
            st.tuples(st.floats(0, 1), st.booleans()), min_size=4, max_size=40
        ).filter(
            lambda pairs: any(v for _, v in pairs) and any(not v for _, v in pairs)
        )
    )
    def test_auc_equals_mann_whitney(self, pairs):
        """AUC == P[positive scored above negative] with ties counted half."""
        scored = sites(*pairs)
        positives = [s.score for s in scored if s.vulnerable]
        negatives = [s.score for s in scored if not s.vulnerable]
        wins = sum(
            1.0 if p > n else (0.5 if p == n else 0.0)
            for p in positives
            for n in negatives
        )
        expected = wins / (len(positives) * len(negatives))
        assert auc_roc(scored) == pytest.approx(expected, abs=1e-9)

    @given(
        st.lists(
            st.tuples(st.floats(0, 1), st.booleans()), min_size=4, max_size=40
        ).filter(
            lambda pairs: any(v for _, v in pairs) and any(not v for _, v in pairs)
        )
    )
    def test_roc_points_monotone(self, pairs):
        points = roc_points(sites(*pairs))
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            assert x1 >= x0
            assert y1 >= y0


class TestPrCurve:
    def test_perfect_ranker_ap_is_one(self):
        scored = sites((0.9, True), (0.8, True), (0.2, False))
        assert average_precision(scored) == pytest.approx(1.0)

    def test_known_ap(self):
        # Ranked: T(0.9), F(0.6), T(0.4).
        # Thresholds: @0.9 -> r=1/2, p=1; @0.6 -> r=1/2, p=1/2; @0.4 -> r=1, p=2/3.
        # AP = 0.5*1 + 0*0.5 + 0.5*(2/3) = 5/6.
        scored = sites((0.9, True), (0.6, False), (0.4, True))
        assert average_precision(scored) == pytest.approx(5 / 6)

    def test_needs_a_positive(self):
        with pytest.raises(ConfigurationError):
            pr_points(sites((0.5, False)))

    def test_recall_reaches_one(self):
        scored = sites((0.9, True), (0.1, True), (0.5, False))
        assert pr_points(scored)[-1][0] == pytest.approx(1.0)

    @given(
        st.lists(
            st.tuples(st.floats(0, 1), st.booleans()), min_size=3, max_size=40
        ).filter(lambda pairs: any(v for _, v in pairs))
    )
    def test_ap_within_unit_interval(self, pairs):
        assert 0.0 <= average_precision(sites(*pairs)) <= 1.0 + 1e-9


class TestToolsProduceInformativeRankings:
    def test_reference_tools_beat_chance(self, reference_campaign, small_workload):
        for result in reference_campaign.results:
            scored = score_sites(result.report, small_workload.truth)
            assert auc_roc(scored) > 0.55, result.tool_name

    def test_taint_confidence_decays_with_depth(self, small_workload):
        from repro.tools.taint_analyzer import TaintAnalyzer

        report = TaintAnalyzer().analyze(small_workload)
        confidences = {d.confidence for d in report.detections}
        assert len(confidences) > 1  # graded, not constant

"""The docs are checked like code: links resolve, fenced examples work.

Runs ``tools/check_docs.py`` over ``README.md`` and every ``docs/*.md`` on
each test run, so the documentation cannot silently rot behind the code
(the CI docs job calls the same checker).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


check_docs = _load_checker()

DOC_FILES = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))


CLI_FLAGS = check_docs.known_cli_flags()


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_file_is_healthy(path):
    problems = check_docs.check_file(path, cli_flags=CLI_FLAGS)
    assert problems == [], "\n".join(str(p) for p in problems)


def test_docs_exist_and_are_indexed():
    assert (ROOT / "docs" / "index.md").exists()
    index = (ROOT / "docs" / "index.md").read_text(encoding="utf-8")
    for page in ("architecture.md", "observability.md", "benchmarking.md", "scaling.md"):
        assert page in index, f"docs/index.md must link {page}"


def test_public_api_is_fully_docstringed():
    problems = check_docs.check_api_docstrings(ROOT / "src" / "repro")
    assert problems == [], "\n".join(str(p) for p in problems)


class TestCheckerItself:
    """The checker must actually catch problems, not just pass clean files."""

    def test_broken_link_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [gone](missing.md)\n", encoding="utf-8")
        problems = check_docs.check_file(page)
        assert len(problems) == 1
        assert "missing.md" in problems[0].message

    def test_links_inside_code_are_ignored(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "`sink[class](w)` in a table\n\n```\nv := sanitize[class](w)\n```\n",
            encoding="utf-8",
        )
        assert check_docs.check_file(page) == []

    def test_failing_doctest_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "```python\n>>> 1 + 1\n3\n```\n", encoding="utf-8"
        )
        problems = check_docs.check_file(page)
        assert len(problems) == 1
        assert "doctest failed" in problems[0].message

    def test_syntax_error_reported_without_doctest_prompts(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```python\ndef broken(:\n```\n", encoding="utf-8")
        problems = check_docs.check_file(page)
        assert len(problems) == 1
        assert "does not compile" in problems[0].message

    def test_skip_marker_opts_a_block_out(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "<!-- docs-check: skip -->\n```python\ndef broken(:\n```\n",
            encoding="utf-8",
        )
        assert check_docs.check_file(page) == []

    def test_unknown_cli_flag_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "run with `repro run --frobnicate` for speed\n", encoding="utf-8"
        )
        problems = check_docs.check_file(page, cli_flags=CLI_FLAGS)
        assert len(problems) == 1
        assert "--frobnicate" in problems[0].message

    def test_known_cli_flags_pass(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "`--jobs 4` pairs well with `--cache-dir DIR`\n", encoding="utf-8"
        )
        assert check_docs.check_file(page, cli_flags=CLI_FLAGS) == []

    def test_foreign_tool_flags_are_exempt(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "pytest benchmarks/ --benchmark-only runs the perf suite\n",
            encoding="utf-8",
        )
        assert check_docs.check_file(page, cli_flags=CLI_FLAGS) == []

    def test_known_flags_cover_run_and_scale_surface(self):
        assert {
            "--jobs", "--seed", "--executor", "--keep-going", "--retries",
            "--resume", "--scale", "--shard-size", "--inject-fault",
        } <= CLI_FLAGS

    def test_docstring_checker_flags_a_bare_function(self, tmp_path):
        src = tmp_path / "repro"
        src.mkdir()
        (src / "mod.py").write_text(
            '"""A module."""\n\n\ndef exposed():\n    return 1\n\n\ndef _hidden():\n    return 2\n',
            encoding="utf-8",
        )
        problems = check_docs.check_api_docstrings(src)
        assert [p.message for p in problems] == [
            "public function `exposed` has no docstring"
        ]

    def test_docstring_checker_recurses_into_public_classes(self, tmp_path):
        src = tmp_path / "repro"
        src.mkdir()
        (src / "mod.py").write_text(
            '"""A module."""\n\n\nclass Tool:\n    """A tool."""\n\n    def analyze(self):\n        return 0\n',
            encoding="utf-8",
        )
        problems = check_docs.check_api_docstrings(src)
        assert [p.message for p in problems] == [
            "public function `Tool.analyze` has no docstring"
        ]

    def test_main_reports_missing_file(self, capsys):
        assert check_docs.main(["/nonexistent/page.md"]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_main_default_run_is_clean(self, capsys):
        assert check_docs.main([]) == 0
        assert "docs ok" in capsys.readouterr().out

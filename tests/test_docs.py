"""The docs are checked like code: links resolve, fenced examples work.

Runs ``tools/check_docs.py`` over ``README.md`` and every ``docs/*.md`` on
each test run, so the documentation cannot silently rot behind the code
(the CI docs job calls the same checker).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


check_docs = _load_checker()

DOC_FILES = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))


CLI_FLAGS = check_docs.known_cli_flags()


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_file_is_healthy(path):
    problems = check_docs.check_file(path, cli_flags=CLI_FLAGS)
    assert problems == [], "\n".join(str(p) for p in problems)


def test_docs_exist_and_are_indexed():
    assert (ROOT / "docs" / "index.md").exists()
    index = (ROOT / "docs" / "index.md").read_text(encoding="utf-8")
    for page in (
        "architecture.md", "observability.md", "benchmarking.md",
        "scaling.md", "serve.md",
    ):
        assert page in index, f"docs/index.md must link {page}"


def test_public_api_is_fully_docstringed():
    problems = check_docs.check_api_docstrings(ROOT / "src" / "repro")
    assert problems == [], "\n".join(str(p) for p in problems)


class TestBenchTableFreshness:
    """Marker-delimited bench tables must match their committed dumps —
    and the checker must catch every way they can drift."""

    PAYLOAD = {
        "schema": "repro/bench-shard@1",
        "throughput": {
            "rows": [
                {
                    "scale": 2000,
                    "shard_size": 500,
                    "wall_seconds": 0.5,
                    "units_per_second": 4000.0,
                    "peak_rss_mb": 60.0,
                }
            ]
        },
        "generation": {
            "rows": [
                {
                    "ecosystem": "web-services",
                    "n_units": 2000,
                    "scalar_units_per_second": 4000.0,
                    "batch_units_per_second": 50000.0,
                    "speedup": 12.5,
                    "identical": True,
                }
            ]
        },
    }

    ENGINE_PAYLOAD = {
        "schema": "repro/bench-engine@1",
        "transport": {
            "campaign_scale": 20000,
            "shard_size": 2000,
            "jobs": 4,
            "cpu_count": 4,
            "thread_seconds": 2.0,
            "process_pickle_seconds": 2.5,
            "process_shm_seconds": 1.0,
            "shm_speedup_vs_thread": 2.0,
            "cells_identical": True,
            "speedup_asserted": True,
        },
    }

    SERVE_PAYLOAD = {
        "schema": "repro/bench-serve@1",
        "latency": {
            "rows": [
                {
                    "phase": "query",
                    "requests": 20000,
                    "p50_ms": 1.2,
                    "p99_ms": 4.8,
                    "rps": 15000.0,
                }
            ]
        },
        "fairness": {
            "abusive": "tenant-0",
            "bounded": True,
            "tenants": {
                "tenant-0": {
                    "weight": 1.0,
                    "submitted_share": 0.67,
                    "served_share": 0.26,
                },
                "tenant-1": {
                    "weight": 1.0,
                    "submitted_share": 0.33,
                    "served_share": 0.74,
                },
            },
        },
    }

    def _payload_for(self, table) -> dict:
        return {
            "results/BENCH_engine.json": self.ENGINE_PAYLOAD,
            "results/BENCH_serve.json": self.SERVE_PAYLOAD,
        }.get(table.results, self.PAYLOAD)

    def _fresh_doc(self) -> str:
        from repro.reporting.benchtables import bench_tables

        parts = ["# scaling\n"]
        for table in bench_tables():
            parts.append(
                table.begin
                + "\n"
                + table.render(self._payload_for(table))
                + "\n"
                + table.end
            )
        return "\n\n".join(parts) + "\n"

    def _root(self, tmp_path, doc_text):
        import json

        from repro.reporting.benchtables import bench_tables

        (tmp_path / "results").mkdir()
        (tmp_path / "docs").mkdir()
        (tmp_path / "results" / "BENCH_shard.json").write_text(
            json.dumps(self.PAYLOAD), encoding="utf-8"
        )
        (tmp_path / "results" / "BENCH_engine.json").write_text(
            json.dumps(self.ENGINE_PAYLOAD), encoding="utf-8"
        )
        (tmp_path / "results" / "BENCH_serve.json").write_text(
            json.dumps(self.SERVE_PAYLOAD), encoding="utf-8"
        )
        # Every registered doc gets the full marker set; each table only
        # inspects its own markers, so sharing the text is harmless.
        for doc in {table.doc for table in bench_tables()}:
            (tmp_path / doc).write_text(doc_text, encoding="utf-8")
        return tmp_path

    def test_fresh_tables_pass(self, tmp_path):
        root = self._root(tmp_path, self._fresh_doc())
        assert check_docs.check_bench_tables(root) == []

    def test_stale_table_reported(self, tmp_path):
        root = self._root(
            tmp_path, self._fresh_doc().replace("| 2,000 |", "| 2,001 |")
        )
        problems = check_docs.check_bench_tables(root)
        assert len(problems) == 1
        assert "stale" in problems[0].message
        assert "shard-throughput" in problems[0].message

    def test_missing_markers_reported(self, tmp_path):
        from repro.reporting.benchtables import bench_tables

        generation = next(t for t in bench_tables() if t.key == "shard-generation")
        root = self._root(
            tmp_path, self._fresh_doc().replace(generation.begin, "<!-- gone -->")
        )
        problems = check_docs.check_bench_tables(root)
        assert len(problems) == 1
        assert "no markers" in problems[0].message

    def test_missing_dump_is_not_a_problem(self, tmp_path):
        root = self._root(tmp_path, self._fresh_doc())
        (root / "results" / "BENCH_shard.json").unlink()
        assert check_docs.check_bench_tables(root) == []

    def test_invalid_dump_reported(self, tmp_path):
        root = self._root(tmp_path, self._fresh_doc())
        (root / "results" / "BENCH_shard.json").write_text(
            "{not json", encoding="utf-8"
        )
        problems = check_docs.check_bench_tables(root)
        assert problems and "not valid JSON" in problems[0].message

    def test_refresh_doc_makes_a_stale_table_fresh(self, tmp_path):
        from repro.reporting.benchtables import bench_tables, refresh_doc

        root = self._root(
            tmp_path, self._fresh_doc().replace("| 2,000 |", "| 9,999 |")
        )
        assert check_docs.check_bench_tables(root) != []
        changed = [t.key for t in bench_tables() if refresh_doc(t, root)]
        assert changed == ["shard-throughput"]
        assert check_docs.check_bench_tables(root) == []

    def test_committed_tables_are_fresh(self):
        problems = check_docs.check_bench_tables(ROOT)
        assert problems == [], "\n".join(str(p) for p in problems)


class TestCheckerItself:
    """The checker must actually catch problems, not just pass clean files."""

    def test_broken_link_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [gone](missing.md)\n", encoding="utf-8")
        problems = check_docs.check_file(page)
        assert len(problems) == 1
        assert "missing.md" in problems[0].message

    def test_links_inside_code_are_ignored(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "`sink[class](w)` in a table\n\n```\nv := sanitize[class](w)\n```\n",
            encoding="utf-8",
        )
        assert check_docs.check_file(page) == []

    def test_failing_doctest_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "```python\n>>> 1 + 1\n3\n```\n", encoding="utf-8"
        )
        problems = check_docs.check_file(page)
        assert len(problems) == 1
        assert "doctest failed" in problems[0].message

    def test_syntax_error_reported_without_doctest_prompts(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```python\ndef broken(:\n```\n", encoding="utf-8")
        problems = check_docs.check_file(page)
        assert len(problems) == 1
        assert "does not compile" in problems[0].message

    def test_skip_marker_opts_a_block_out(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "<!-- docs-check: skip -->\n```python\ndef broken(:\n```\n",
            encoding="utf-8",
        )
        assert check_docs.check_file(page) == []

    def test_unknown_cli_flag_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "run with `repro run --frobnicate` for speed\n", encoding="utf-8"
        )
        problems = check_docs.check_file(page, cli_flags=CLI_FLAGS)
        assert len(problems) == 1
        assert "--frobnicate" in problems[0].message

    def test_known_cli_flags_pass(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "`--jobs 4` pairs well with `--cache-dir DIR`\n", encoding="utf-8"
        )
        assert check_docs.check_file(page, cli_flags=CLI_FLAGS) == []

    def test_foreign_tool_flags_are_exempt(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "pytest benchmarks/ --benchmark-only runs the perf suite\n",
            encoding="utf-8",
        )
        assert check_docs.check_file(page, cli_flags=CLI_FLAGS) == []

    def test_known_flags_cover_run_and_scale_surface(self):
        assert {
            "--jobs", "--seed", "--executor", "--keep-going", "--retries",
            "--resume", "--scale", "--shard-size", "--inject-fault",
        } <= CLI_FLAGS

    def test_docstring_checker_flags_a_bare_function(self, tmp_path):
        src = tmp_path / "repro"
        src.mkdir()
        (src / "mod.py").write_text(
            '"""A module."""\n\n\ndef exposed():\n    return 1\n\n\ndef _hidden():\n    return 2\n',
            encoding="utf-8",
        )
        problems = check_docs.check_api_docstrings(src)
        assert [p.message for p in problems] == [
            "public function `exposed` has no docstring"
        ]

    def test_docstring_checker_recurses_into_public_classes(self, tmp_path):
        src = tmp_path / "repro"
        src.mkdir()
        (src / "mod.py").write_text(
            '"""A module."""\n\n\nclass Tool:\n    """A tool."""\n\n    def analyze(self):\n        return 0\n',
            encoding="utf-8",
        )
        problems = check_docs.check_api_docstrings(src)
        assert [p.message for p in problems] == [
            "public function `Tool.analyze` has no docstring"
        ]

    def test_main_reports_missing_file(self, capsys):
        assert check_docs.main(["/nonexistent/page.md"]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_main_default_run_is_clean(self, capsys):
        assert check_docs.main([]) == 0
        assert "docs ok" in capsys.readouterr().out

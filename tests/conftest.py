"""Shared fixtures.

Heavy artifacts (reference campaign, properties matrix) are session-scoped:
they are deterministic in their seeds, so sharing them across tests changes
nothing except wall-clock time.
"""

from __future__ import annotations

import pytest

from repro.bench.campaign import CampaignResult, run_campaign
from repro.experts.panel import ExpertPanel, default_panel
from repro.metrics.confusion import ConfusionMatrix
from repro.metrics.registry import MetricRegistry, core_candidates, default_registry
from repro.properties.base import AssessmentContext
from repro.properties.matrix import PropertiesMatrix, build_properties_matrix
from repro.tools.suite import reference_suite
from repro.workload.generator import Workload, WorkloadConfig, generate_workload


@pytest.fixture(scope="session")
def small_workload() -> Workload:
    """A compact generated workload (a few hundred sites)."""
    return generate_workload(
        WorkloadConfig(n_units=150, prevalence=0.15, seed=101, name="test-small")
    )


@pytest.fixture(scope="session")
def reference_campaign(small_workload: Workload) -> CampaignResult:
    """The reference suite scored on the small workload."""
    return run_campaign(reference_suite(seed=101), small_workload)


@pytest.fixture(scope="session")
def full_registry() -> MetricRegistry:
    return default_registry()


@pytest.fixture(scope="session")
def core_registry() -> MetricRegistry:
    return core_candidates()


@pytest.fixture(scope="session")
def assessment_context() -> AssessmentContext:
    """A reduced-resample context to keep property checks fast."""
    return AssessmentContext.default(seed=7, n_resamples=40)


@pytest.fixture(scope="session")
def properties_matrix(
    core_registry: MetricRegistry, assessment_context: AssessmentContext
) -> PropertiesMatrix:
    return build_properties_matrix(core_registry, context=assessment_context)


@pytest.fixture(scope="session")
def panel() -> ExpertPanel:
    return default_panel(seed=13)


@pytest.fixture
def typical_cm() -> ConfusionMatrix:
    """A garden-variety campaign outcome."""
    return ConfusionMatrix(tp=60, fp=40, fn=20, tn=380)

"""Tests for the detection tool interface types."""

from __future__ import annotations

import pytest

from repro.errors import ToolError
from repro.tools.base import Detection, DetectionReport
from repro.workload.code_model import SinkSite
from repro.workload.taxonomy import VulnerabilityType

SQLI = VulnerabilityType.SQL_INJECTION
SITE_A = SinkSite("u1", 1, SQLI)
SITE_B = SinkSite("u2", 4, SQLI)


class TestDetection:
    def test_valid(self):
        detection = Detection(site=SITE_A, confidence=0.8)
        assert detection.confidence == 0.8

    def test_default_confidence(self):
        assert Detection(site=SITE_A).confidence == 1.0

    @pytest.mark.parametrize("confidence", [0.0, -0.5, 1.5])
    def test_rejects_bad_confidence(self, confidence):
        with pytest.raises(ToolError):
            Detection(site=SITE_A, confidence=confidence)


class TestDetectionReport:
    def test_flagged_sites(self):
        report = DetectionReport(
            tool_name="t",
            workload_name="w",
            detections=(Detection(SITE_A), Detection(SITE_B)),
        )
        assert report.flagged_sites == {SITE_A, SITE_B}
        assert report.n_detections == 2

    def test_duplicate_site_rejected(self):
        with pytest.raises(ToolError, match="twice"):
            DetectionReport(
                tool_name="t",
                workload_name="w",
                detections=(Detection(SITE_A), Detection(SITE_A, confidence=0.5)),
            )

    def test_empty_report(self):
        report = DetectionReport(tool_name="t", workload_name="w", detections=())
        assert report.flagged_sites == frozenset()
        assert report.n_detections == 0

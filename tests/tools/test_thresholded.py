"""Tests for thresholded tools and operating-point selection."""

from __future__ import annotations

import pytest

from repro.errors import ToolError
from repro.scenarios.cost_model import CostStructure
from repro.tools.pattern_scanner import PatternScanner
from repro.tools.taint_analyzer import TaintAnalyzer
from repro.tools.thresholded import ThresholdedTool, optimal_threshold, threshold_sweep
from repro.workload.generator import WorkloadConfig, generate_workload


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadConfig(n_units=250, prevalence=0.2, decoy_fraction=0.6, seed=47)
    )


class TestThresholdedTool:
    def test_zero_threshold_is_identity(self, workload):
        base = PatternScanner()
        wrapped = ThresholdedTool(base, 0.0)
        assert wrapped.analyze(workload).flagged_sites == base.analyze(
            workload
        ).flagged_sites

    def test_raising_threshold_shrinks_the_report(self, workload):
        base = TaintAnalyzer(trust_sanitizers=False)
        low = ThresholdedTool(base, 0.2).analyze(workload)
        high = ThresholdedTool(base, 0.8).analyze(workload)
        assert high.flagged_sites < low.flagged_sites

    def test_impossible_threshold_silences_the_tool(self, workload):
        wrapped = ThresholdedTool(PatternScanner(), 1.0)
        report = wrapped.analyze(workload)
        # PatternScanner confidences max out at 0.6 < 1.0.
        assert report.n_detections == 0

    def test_name_encodes_threshold(self):
        assert ThresholdedTool(PatternScanner(), 0.5).name == "PatternScanner@0.5"

    @pytest.mark.parametrize("threshold", [-0.1, 1.5])
    def test_threshold_validation(self, threshold):
        with pytest.raises(ToolError):
            ThresholdedTool(PatternScanner(), threshold)


class TestThresholdSweep:
    def test_points_sorted_and_complete(self, workload):
        points = threshold_sweep(
            PatternScanner(), workload, thresholds=(0.5, 0.0, 0.9)
        )
        assert [p.threshold for p in points] == [0.0, 0.5, 0.9]

    def test_reports_shrink_monotonically(self, workload):
        points = threshold_sweep(
            TaintAnalyzer(trust_sanitizers=False),
            workload,
            thresholds=(0.0, 0.3, 0.6, 0.9),
        )
        reported = [p.confusion.predicted_positives for p in points]
        assert reported == sorted(reported, reverse=True)

    def test_cost_attached_when_requested(self, workload):
        cost = CostStructure(5, 1)
        points = threshold_sweep(PatternScanner(), workload, cost=cost)
        for point in points:
            assert point.expected_cost == pytest.approx(
                cost.expected_cost(point.confusion)
            )

    def test_cost_omitted_by_default(self, workload):
        points = threshold_sweep(PatternScanner(), workload, thresholds=(0.0,))
        assert points[0].expected_cost is None

    def test_empty_thresholds_rejected(self, workload):
        with pytest.raises(ToolError):
            threshold_sweep(PatternScanner(), workload, thresholds=())

    def test_out_of_range_threshold_rejected(self, workload):
        with pytest.raises(ToolError):
            threshold_sweep(PatternScanner(), workload, thresholds=(0.5, 1.2))


class TestOptimalThreshold:
    def test_optimal_threshold_monotone_in_cost_ratio(self, workload):
        """The costlier a miss, the lower (or equal) the optimal cut-off:
        alarm-dominated economics always dial the tool up at least as far
        as miss-dominated economics do."""
        ratios = (100.0, 10.0, 2.0, 1.0)
        optima = [
            optimal_threshold(
                PatternScanner(), workload, CostStructure(cost_fn=r, cost_fp=1.0)
            ).threshold
            for r in ratios
        ]
        assert optima == sorted(optima)

    def test_extreme_miss_cost_keeps_every_confident_finding(self, workload):
        """With misses one-thousand-fold costlier, no threshold that drops
        a true finding can win; the optimum keeps all true positives."""
        best = optimal_threshold(
            PatternScanner(), workload, CostStructure(cost_fn=1000, cost_fp=1)
        )
        assert best.confusion.fn == 0

    def test_optimum_minimizes_over_the_sweep(self, workload):
        cost = CostStructure(3, 1)
        points = threshold_sweep(PatternScanner(), workload, cost=cost)
        best = optimal_threshold(PatternScanner(), workload, cost)
        assert best.expected_cost == min(p.expected_cost for p in points)

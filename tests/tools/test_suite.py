"""Tests for the reference tool suite."""

from __future__ import annotations

import pytest

from repro.metrics import definitions as d
from repro.tools.suite import real_tool_suite, reference_suite, simulated_pool


class TestSuiteComposition:
    def test_eight_tools(self):
        assert len(reference_suite()) == 8

    def test_unique_names(self):
        names = [tool.name for tool in reference_suite()]
        assert len(set(names)) == len(names)

    def test_partition(self):
        reference = {t.name for t in reference_suite(seed=1)}
        real = {t.name for t in real_tool_suite(seed=1)}
        simulated = {t.name for t in simulated_pool(seed=1)}
        assert reference == real | simulated
        assert not (real & simulated)


class TestSuiteOperatingSpace:
    """The suite must span the precision/recall space the study needs."""

    def test_grep_scanner_has_total_recall(self, reference_campaign):
        cm = reference_campaign.confusion_for("SA-Grep")
        assert d.RECALL.compute(cm) == 1.0
        assert d.PRECISION.compute(cm) < 0.5

    def test_deep_analyzer_is_precise_but_incomplete(self, reference_campaign):
        cm = reference_campaign.confusion_for("SA-Deep")
        assert d.PRECISION.compute(cm) > 0.9
        assert d.RECALL.compute(cm) < 1.0

    def test_flow_analyzer_false_positives_on_decoys(self, reference_campaign):
        cm = reference_campaign.confusion_for("SA-Flow")
        assert d.RECALL.compute(cm) == 1.0
        assert cm.fp > 0

    def test_dynamic_tools_are_precise_with_modest_recall(self, reference_campaign):
        for name in ("PT-Spider", "PT-Probe"):
            cm = reference_campaign.confusion_for(name)
            assert d.PRECISION.compute(cm) > 0.6, name
            assert d.RECALL.compute(cm) < 0.8, name

    def test_cautious_probe_quieter_than_spider(self, reference_campaign):
        probe = reference_campaign.confusion_for("PT-Probe")
        spider = reference_campaign.confusion_for("PT-Spider")
        assert probe.fp <= spider.fp
        assert d.RECALL.compute(probe) < d.RECALL.compute(spider)

    def test_recall_spread_is_wide(self, reference_campaign):
        recalls = [
            d.RECALL.compute(r.confusion) for r in reference_campaign.results
        ]
        assert max(recalls) - min(recalls) > 0.4

    def test_precision_spread_is_wide(self, reference_campaign):
        precisions = [
            d.PRECISION.compute(r.confusion) for r in reference_campaign.results
        ]
        assert max(precisions) - min(precisions) > 0.4

    def test_no_tool_dominates_all_others(self, reference_campaign):
        """The suite would be a boring benchmark if one tool were best on
        both axes simultaneously against every other tool."""
        values = [
            (d.RECALL.compute(r.confusion), d.PRECISION.compute(r.confusion))
            for r in reference_campaign.results
        ]
        for recall, precision in values:
            dominates_all = all(
                (recall >= other_recall and precision >= other_precision)
                for other_recall, other_precision in values
            )
            assert not dominates_all


class TestSeedPropagation:
    def test_same_seed_same_reports(self, small_workload):
        a = reference_suite(seed=7)
        b = reference_suite(seed=7)
        for tool_a, tool_b in zip(a, b):
            assert tool_a.analyze(small_workload) == tool_b.analyze(small_workload)

    def test_stochastic_tools_respond_to_seed(self, small_workload):
        spider_a = reference_suite(seed=7)[3]
        spider_b = reference_suite(seed=8)[3]
        assert spider_a.name == spider_b.name == "PT-Spider"
        assert (
            spider_a.analyze(small_workload).flagged_sites
            != spider_b.analyze(small_workload).flagged_sites
        )

"""Tests for the dynamic injector and the simulated tools."""

from __future__ import annotations

import pytest

from repro.bench.campaign import score_report
from repro.errors import ToolError
from repro.tools.dynamic_injector import DynamicInjector
from repro.tools.simulated import SimulatedTool, ToolProfile
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.taxonomy import VulnerabilityType


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadConfig(n_units=500, prevalence=0.2, seed=31, name="stochastic")
    )


class TestDynamicInjector:
    def test_deterministic_in_seed(self, workload):
        a = DynamicInjector(seed=5).analyze(workload)
        b = DynamicInjector(seed=5).analyze(workload)
        assert a == b

    def test_seed_changes_outcome(self, workload):
        a = DynamicInjector(seed=5).analyze(workload)
        b = DynamicInjector(seed=6).analyze(workload)
        assert a.flagged_sites != b.flagged_sites

    def test_higher_coverage_finds_more(self, workload):
        narrow = score_report(
            DynamicInjector(payload_coverage=0.3, seed=5).analyze(workload),
            workload.truth,
        )
        broad = score_report(
            DynamicInjector(payload_coverage=1.0, seed=5).analyze(workload),
            workload.truth,
        )
        assert broad.tp > narrow.tp

    def test_false_alarm_rate_calibrated(self, workload):
        cm = score_report(
            DynamicInjector(false_alarm_rate=0.1, seed=5).analyze(workload),
            workload.truth,
        )
        assert cm.fpr == pytest.approx(0.1, abs=0.03)

    def test_zero_false_alarm_rate_is_clean(self, workload):
        cm = score_report(
            DynamicInjector(false_alarm_rate=0.0, seed=5).analyze(workload),
            workload.truth,
        )
        assert cm.fp == 0

    def test_difficulty_penalty_hurts_recall(self, workload):
        easygoing = score_report(
            DynamicInjector(difficulty_penalty=0.0, seed=5).analyze(workload),
            workload.truth,
        )
        struggling = score_report(
            DynamicInjector(difficulty_penalty=1.0, seed=5).analyze(workload),
            workload.truth,
        )
        assert struggling.tp < easygoing.tp

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"payload_coverage": 0.0},
            {"payload_coverage": 1.5},
            {"difficulty_penalty": -0.1},
            {"false_alarm_rate": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ToolError):
            DynamicInjector(**kwargs)


class TestToolProfile:
    def test_valid(self):
        profile = ToolProfile(recall=0.7, fpr=0.1)
        assert profile.detection_probability(VulnerabilityType.XSS, 0.0) == 0.7

    @pytest.mark.parametrize("kwargs", [{"recall": 1.5, "fpr": 0.1},
                                        {"recall": 0.5, "fpr": -0.1},
                                        {"recall": 0.5, "fpr": 0.1,
                                         "difficulty_sensitivity": 2.0}])
    def test_validation(self, kwargs):
        with pytest.raises(ToolError):
            ToolProfile(**kwargs)

    def test_per_type_override(self):
        profile = ToolProfile(
            recall=0.5,
            fpr=0.1,
            recall_by_type={VulnerabilityType.XSS: 0.9},
            fpr_by_type={VulnerabilityType.XSS: 0.0},
        )
        assert profile.detection_probability(VulnerabilityType.XSS, 0.0) == 0.9
        assert profile.detection_probability(VulnerabilityType.SQL_INJECTION, 0.0) == 0.5
        assert profile.false_alarm_probability(VulnerabilityType.XSS) == 0.0

    def test_rejects_bad_override(self):
        with pytest.raises(ToolError):
            ToolProfile(recall=0.5, fpr=0.1, recall_by_type={VulnerabilityType.XSS: 1.2})

    def test_difficulty_scales_detection(self):
        profile = ToolProfile(recall=0.8, fpr=0.1, difficulty_sensitivity=0.5)
        easy = profile.detection_probability(VulnerabilityType.XSS, 0.0)
        hard = profile.detection_probability(VulnerabilityType.XSS, 1.0)
        assert hard == pytest.approx(easy * 0.5)


class TestSimulatedTool:
    def test_deterministic(self, workload):
        profile = ToolProfile(recall=0.7, fpr=0.1)
        a = SimulatedTool("sim", profile, seed=3).analyze(workload)
        b = SimulatedTool("sim", profile, seed=3).analyze(workload)
        assert a == b

    def test_name_decorrelates_streams(self, workload):
        profile = ToolProfile(recall=0.7, fpr=0.1)
        a = SimulatedTool("sim-a", profile, seed=3).analyze(workload)
        b = SimulatedTool("sim-b", profile, seed=3).analyze(workload)
        assert a.flagged_sites != b.flagged_sites

    def test_rates_realized_on_large_workload(self, workload):
        profile = ToolProfile(recall=0.8, fpr=0.15, difficulty_sensitivity=0.0)
        cm = score_report(
            SimulatedTool("sim", profile, seed=3).analyze(workload), workload.truth
        )
        assert cm.tpr == pytest.approx(0.8, abs=0.07)
        assert cm.fpr == pytest.approx(0.15, abs=0.04)

    def test_extremes(self, workload):
        perfect = ToolProfile(recall=1.0, fpr=0.0, difficulty_sensitivity=0.0)
        cm = score_report(
            SimulatedTool("perfect", perfect, seed=3).analyze(workload), workload.truth
        )
        assert cm.fn == 0
        assert cm.fp == 0

        silent = ToolProfile(recall=0.0, fpr=0.0)
        cm = score_report(
            SimulatedTool("silent", silent, seed=3).analyze(workload), workload.truth
        )
        assert cm.tp == 0
        assert cm.fp == 0

"""Tests for the pattern scanner and the taint analyzer.

The load-bearing invariant: a taint analyzer with no depth limit and a full
sanitizer model *is* the oracle — zero false positives and zero false
negatives on any generated workload.  Each configured weakness then breaks
exactly the error class it is documented to break.
"""

from __future__ import annotations

import pytest

from repro.bench.campaign import score_report
from repro.tools.pattern_scanner import PatternScanner
from repro.tools.taint_analyzer import TaintAnalyzer
from repro.workload.generator import WorkloadConfig, generate_workload


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadConfig(n_units=200, prevalence=0.2, decoy_fraction=0.6, seed=23)
    )


class TestPatternScanner:
    def test_flags_every_sink_in_units_with_input(self, workload):
        report = PatternScanner().analyze(workload)
        cm = score_report(report, workload.truth)
        # Every vulnerable site lives in a unit with an input: perfect recall.
        assert cm.fn == 0
        # And the decoys/mixed units guarantee false alarms.
        assert cm.fp > 0

    def test_silent_on_input_free_units(self, workload):
        report = PatternScanner().analyze(workload)
        flagged_units = {d.site.unit_id for d in report.detections}
        for unit in workload.units:
            has_input = any(s.kind.value == "input" for s in unit.statements)
            if not has_input:
                assert unit.unit_id not in flagged_units

    def test_sanitizer_awareness_reduces_false_positives(self, workload):
        naive = score_report(PatternScanner().analyze(workload), workload.truth)
        aware = score_report(
            PatternScanner(respect_sanitizers=True).analyze(workload), workload.truth
        )
        assert aware.fp < naive.fp

    def test_deterministic(self, workload):
        assert PatternScanner().analyze(workload) == PatternScanner().analyze(workload)

    def test_report_metadata(self, workload):
        report = PatternScanner(name="scanner-x").analyze(workload)
        assert report.tool_name == "scanner-x"
        assert report.workload_name == workload.name


class TestTaintAnalyzer:
    def test_unlimited_analyzer_is_the_oracle(self, workload):
        """Full depth + sanitizer model => exact ground truth."""
        report = TaintAnalyzer(trust_sanitizers=True, max_chain_depth=None).analyze(
            workload
        )
        cm = score_report(report, workload.truth)
        assert cm.fp == 0
        assert cm.fn == 0

    def test_depth_limit_causes_only_false_negatives(self, workload):
        limited = TaintAnalyzer(trust_sanitizers=True, max_chain_depth=2).analyze(
            workload
        )
        cm = score_report(limited, workload.truth)
        assert cm.fp == 0  # a depth limit never invents flows
        assert cm.fn > 0  # but it drops deep ones

    def test_deeper_budget_finds_more(self, workload):
        shallow = score_report(
            TaintAnalyzer(max_chain_depth=1).analyze(workload), workload.truth
        )
        deep = score_report(
            TaintAnalyzer(max_chain_depth=6).analyze(workload), workload.truth
        )
        assert deep.tp > shallow.tp

    def test_ignoring_sanitizers_causes_only_false_positives(self, workload):
        unsound = TaintAnalyzer(trust_sanitizers=False).analyze(workload)
        cm = score_report(unsound, workload.truth)
        assert cm.fn == 0  # ignoring sanitizers never loses taint
        assert cm.fp > 0  # every decoy now fires

    def test_false_positives_are_exactly_the_decoys(self, workload):
        unsound = TaintAnalyzer(trust_sanitizers=False).analyze(workload)
        for detection in unsound.detections:
            site = detection.site
            if site not in workload.truth.vulnerable:
                assert workload.profiles[site].sanitizer_present

    def test_concat_taint_loss_causes_false_negatives(self, workload):
        lossy = TaintAnalyzer(concat_taint_loss=True).analyze(workload)
        cm = score_report(lossy, workload.truth)
        assert cm.fp == 0
        assert cm.fn > 0

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            TaintAnalyzer(max_chain_depth=-1)

    def test_deterministic(self, workload):
        a = TaintAnalyzer(max_chain_depth=3).analyze(workload)
        b = TaintAnalyzer(max_chain_depth=3).analyze(workload)
        assert a == b

"""Tests for the tool-family registry, SCA matcher and ensemble tool.

The family registry is the single construction path for every suite in the
repo, so two things must hold: the default ecosystem reproduces the
historical ``reference_suite`` exactly, and *every* family yields sane
confusion matrices on *every* registered ecosystem — including the
ensemble, whose members are themselves built from the registry.
"""

from __future__ import annotations

import pytest

from repro.bench.campaign import run_campaign
from repro.errors import ConfigurationError, ToolError
from repro.tools.ensemble import EnsembleTool
from repro.tools.families import (
    all_families,
    build_family,
    family_names,
    get_family,
    suite_for_ecosystem,
)
from repro.tools.sca_matcher import ScaMatcher, is_dependency_unit
from repro.tools.simulated import SimulatedTool, ToolProfile
from repro.tools.suite import real_tool_suite, reference_suite, simulated_pool
from repro.workload.ecosystems import (
    DEFAULT_ECOSYSTEM,
    all_ecosystems,
    get_ecosystem,
)
from repro.workload.generator import generate_workload


@pytest.fixture(scope="module")
def workloads():
    """One small workload per registered ecosystem."""
    return {
        profile.name: generate_workload(
            profile.workload_config(n_units=40, seed=11)
        )
        for profile in all_ecosystems()
    }


class TestFamilyRegistry:
    def test_expected_families_registered(self):
        assert {"sa", "pt", "vs", "dast", "sca", "ensemble"} <= set(
            family_names()
        )

    def test_get_roundtrip_and_titles(self):
        for key in family_names():
            family = get_family(key)
            assert family.key == key
            assert family.title

    def test_unknown_family_lists_known_keys(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_family("oracle")
        message = str(excinfo.value)
        assert "unknown tool family 'oracle'" in message
        for key in family_names():
            assert key in message

    def test_all_families_matches_names(self):
        assert [f.key for f in all_families()] == family_names()

    def test_build_family_accepts_name_or_profile(self):
        by_name = build_family("vs", seed=3, ecosystem="npm-deps")
        by_profile = build_family("vs", seed=3, ecosystem=get_ecosystem("npm-deps"))
        assert [t.name for t in by_name] == [t.name for t in by_profile]


class TestSuiteParity:
    """The registry path reproduces the historical suites bit-for-bit."""

    def test_reference_suite_matches_registry(self, small_workload):
        legacy = run_campaign(reference_suite(seed=2015), small_workload)
        registry = run_campaign(
            suite_for_ecosystem(DEFAULT_ECOSYSTEM, seed=2015), small_workload
        )
        legacy_cells = {
            r.tool_name: (r.confusion.tp, r.confusion.fp, r.confusion.fn, r.confusion.tn)
            for r in legacy.results
        }
        registry_cells = {
            r.tool_name: (r.confusion.tp, r.confusion.fp, r.confusion.fn, r.confusion.tn)
            for r in registry.results
        }
        assert legacy_cells == registry_cells

    def test_real_suite_is_sa_plus_pt(self):
        names = [t.name for t in real_tool_suite(seed=1)]
        registry = [
            t.name
            for t in suite_for_ecosystem(
                DEFAULT_ECOSYSTEM, seed=1, families=("sa", "pt")
            )
        ]
        assert names == registry

    def test_simulated_pool_is_vs(self):
        names = [t.name for t in simulated_pool(seed=1)]
        registry = [
            t.name
            for t in suite_for_ecosystem(DEFAULT_ECOSYSTEM, seed=1, families=("vs",))
        ]
        assert names == registry

    def test_explicit_empty_families_rejected(self):
        with pytest.raises(ConfigurationError):
            suite_for_ecosystem(DEFAULT_ECOSYSTEM, families=())


class TestScaMatcher:
    def test_only_flags_dependency_units(self, workloads):
        workload = workloads["npm-deps"]
        fraction = get_ecosystem("npm-deps").dependency_fraction
        tool = ScaMatcher(dependency_fraction=fraction, seed=4)
        report = tool.analyze(workload)
        assert report.n_detections > 0
        for site in report.flagged_sites:
            assert is_dependency_unit(site.unit_id, fraction)

    def test_zero_fraction_sees_nothing(self, workloads):
        tool = ScaMatcher(dependency_fraction=0.0, seed=4)
        assert tool.analyze(workloads[DEFAULT_ECOSYSTEM]).n_detections == 0

    def test_partition_is_seed_free(self):
        assert is_dependency_unit("unit-001", 1.0)
        assert not is_dependency_unit("unit-001", 0.0)
        first = [is_dependency_unit(f"u{i}", 0.5) for i in range(50)]
        second = [is_dependency_unit(f"u{i}", 0.5) for i in range(50)]
        assert first == second

    def test_reports_are_deterministic(self, workloads):
        workload = workloads["npm-deps"]
        a = ScaMatcher(dependency_fraction=0.85, seed=9).analyze(workload)
        b = ScaMatcher(dependency_fraction=0.85, seed=9).analyze(workload)
        assert a.flagged_sites == b.flagged_sites

    def test_validation_bounds(self):
        with pytest.raises(ToolError):
            ScaMatcher(db_coverage=0.0)
        with pytest.raises(ToolError):
            ScaMatcher(db_coverage=1.5)
        with pytest.raises(ToolError):
            ScaMatcher(version_noise=1.0)
        with pytest.raises(ToolError):
            ScaMatcher(dependency_fraction=-0.2)
        with pytest.raises(ToolError):
            is_dependency_unit("u", 1.5)


class TestToolProfileBounds:
    def test_rate_bounds(self):
        with pytest.raises(ToolError):
            ToolProfile(recall=1.2, fpr=0.1)
        with pytest.raises(ToolError):
            ToolProfile(recall=0.5, fpr=-0.1)

    def test_sensitivity_and_ranking_bounds(self):
        with pytest.raises(ToolError):
            ToolProfile(recall=0.5, fpr=0.1, difficulty_sensitivity=1.5)
        with pytest.raises(ToolError):
            ToolProfile(recall=0.5, fpr=0.1, ranking_quality=-0.5)


class TestEnsemble:
    def _members(self, seed=0):
        return [
            SimulatedTool(f"M{i}", ToolProfile(recall=0.8, fpr=0.05), seed + i)
            for i in range(3)
        ]

    def test_quorum_full_consensus_is_intersection(self, workloads):
        workload = workloads[DEFAULT_ECOSYSTEM]
        members = self._members()
        flagged = [m.analyze(workload).flagged_sites for m in members]
        ensemble = EnsembleTool("ENS", members, quorum=len(members))
        expected = frozenset.intersection(*flagged)
        assert ensemble.analyze(workload).flagged_sites == expected

    def test_quorum_one_is_union(self, workloads):
        workload = workloads[DEFAULT_ECOSYSTEM]
        members = self._members()
        flagged = [m.analyze(workload).flagged_sites for m in members]
        ensemble = EnsembleTool("ENS", members, quorum=1)
        expected = frozenset.union(*flagged)
        assert ensemble.analyze(workload).flagged_sites == expected

    def test_majority_shrinks_the_union(self, workloads):
        workload = workloads[DEFAULT_ECOSYSTEM]
        members = self._members()
        union = EnsembleTool("U", members, quorum=1).analyze(workload)
        majority = EnsembleTool("M", members, quorum=2).analyze(workload)
        assert majority.flagged_sites <= union.flagged_sites

    def test_validation(self):
        with pytest.raises(ToolError):
            EnsembleTool("E", [], quorum=1)
        members = self._members()
        with pytest.raises(ToolError):
            EnsembleTool("E", members, quorum=0)
        with pytest.raises(ToolError):
            EnsembleTool("E", members, quorum=4)
        duplicated = [members[0], members[0]]
        with pytest.raises(ToolError):
            EnsembleTool("E", duplicated, quorum=1)


class TestEveryFamilyOnEveryEcosystem:
    """Property sweep: all (family, ecosystem) pairs yield sane matrices."""

    def test_confusion_matrices_are_sane(self, workloads):
        for profile in all_ecosystems():
            workload = workloads[profile.name]
            suite = suite_for_ecosystem(profile, seed=17)
            assert [t.name for t in suite]  # non-empty, unique names
            assert len({t.name for t in suite}) == len(suite)
            campaign = run_campaign(suite, workload)
            for result in campaign.results:
                cm = result.confusion
                label = f"{result.tool_name} on {profile.name}"
                assert min(cm.tp, cm.fp, cm.fn, cm.tn) >= 0, label
                assert cm.tp + cm.fp + cm.fn + cm.tn == workload.n_sites, label
                assert cm.tp + cm.fn == workload.truth.n_vulnerable, label

    def test_every_family_builds_everywhere(self):
        for profile in all_ecosystems():
            for key in family_names():
                tools = build_family(key, seed=5, ecosystem=profile)
                assert tools, f"{key} on {profile.name}"

    def test_ensemble_member_count_tracks_the_profile(self):
        for profile in all_ecosystems():
            if "ensemble" not in profile.tool_families:
                continue
            (ensemble,) = build_family("ensemble", seed=5, ecosystem=profile)
            non_ensemble = [
                k for k in profile.tool_families if k != "ensemble"
            ]
            expected = sum(
                len(build_family(k, seed=5, ecosystem=profile))
                for k in non_ensemble
            )
            assert len(ensemble.members) == expected
            assert 1 <= ensemble.quorum <= len(ensemble.members)

"""Docs checker: fenced python examples must work, internal links must resolve.

The docs pages document an executable system, so they are checked like
code: every fenced ``python`` block either runs under :mod:`doctest` (when
it contains ``>>>`` prompts) or must at least compile, and every relative
markdown link must point at a file that exists.  `tests/test_docs.py` runs
this over ``docs/*.md`` and ``README.md`` on every test run, and the docs
CI job calls it directly — so the observability and architecture pages
cannot rot the way the pre-engine README quickstart did.

Three drift checks go beyond the markdown itself:

- every ``--flag`` a doc mentions must actually exist on the ``repro``
  CLI (lines invoking other tools — pytest, pip, git — are exempt), so a
  renamed flag cannot survive in prose or diagrams;
- every public function, class, and method under ``src/repro/`` must
  carry a docstring, so the API surface the docs describe stays
  self-describing;
- every marker-delimited bench table registered in
  :mod:`repro.reporting.benchtables` must equal its regeneration from the
  committed ``results/BENCH_*.json`` dump, so a docs table cannot cite
  numbers the dump no longer backs (a stale table fails here and in the
  docs CI job; rerun ``benchmarks/bench_shard_scale.py`` to refresh).

Usage::

    PYTHONPATH=src python tools/check_docs.py README.md docs/*.md

A block can opt out of execution (e.g. it needs files that only exist
mid-walkthrough) by preceding the fence with ``<!-- docs-check: skip -->``.
"""

from __future__ import annotations

import argparse
import ast
import doctest
import re
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "DocProblem",
    "check_api_docstrings",
    "check_bench_tables",
    "check_file",
    "extract_fenced_blocks",
    "known_cli_flags",
    "main",
]

_FENCE = re.compile(
    r"(?P<skip><!--\s*docs-check:\s*skip\s*-->\s*\n)?"
    r"^```(?P<lang>[A-Za-z0-9_+-]*)[^\n]*\n(?P<body>.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


@dataclass(frozen=True)
class DocProblem:
    """One broken thing in one markdown file."""

    path: Path
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


def extract_fenced_blocks(text: str) -> list[tuple[int, str, str, bool]]:
    """``(start_line, language, body, skipped)`` for every fenced block."""
    blocks = []
    for match in _FENCE.finditer(text):
        line = text.count("\n", 0, match.start("body")) + 1
        blocks.append(
            (
                line,
                match.group("lang").lower(),
                match.group("body"),
                match.group("skip") is not None,
            )
        )
    return blocks


def _check_python_block(path: Path, line: int, body: str) -> list[DocProblem]:
    if ">>>" in body:
        # Interactive examples run for real under doctest.
        runner = doctest.DocTestRunner(verbose=False)
        parser = doctest.DocTestParser()
        try:
            test = parser.get_doctest(
                body, {"__name__": "__docs__"}, str(path), str(path), line
            )
        except ValueError as error:
            return [DocProblem(path, line, f"unparseable doctest: {error}")]
        results = runner.run(test, clear_globs=True)
        if results.failed:
            return [
                DocProblem(
                    path, line, f"doctest failed ({results.failed} example(s))"
                )
            ]
        return []
    try:
        compile(body, f"{path}:{line}", "exec")
    except SyntaxError as error:
        return [
            DocProblem(
                path,
                line + (error.lineno or 1) - 1,
                f"python block does not compile: {error.msg}",
            )
        ]
    return []


_CODE_SPAN = re.compile(r"`[^`\n]*`")


def _blank_code(text: str) -> str:
    """Replace code (fenced blocks and inline spans) with spaces.

    Keeps every newline, so line numbers computed against the blanked text
    still point at the original file; keeps link syntax out of code from
    being mistaken for markdown links (``sink[class](w)``).
    """

    def blank(match: re.Match) -> str:
        return "".join(c if c == "\n" else " " for c in match.group(0))

    text = _FENCE.sub(blank, text)
    return _CODE_SPAN.sub(blank, text)


def _check_links(path: Path, text: str) -> list[DocProblem]:
    problems = []
    text = _blank_code(text)
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            problems.append(
                DocProblem(path, line, f"broken internal link: {target}")
            )
    return problems


_FLAG = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")
# Lines invoking these tools carry flags that are not ours to validate.
_FOREIGN_COMMANDS = re.compile(r"\b(pytest|pip|git|cargo|go|npm|docker)\b")


def known_cli_flags() -> frozenset[str]:
    """Every ``--flag`` the ``repro`` CLI accepts, across all subcommands."""
    from repro.cli import build_parser

    flags: set[str] = set()
    parsers = [build_parser()]
    while parsers:
        parser = parsers.pop()
        for action in parser._actions:
            flags.update(
                option
                for option in action.option_strings
                if option.startswith("--")
            )
            if isinstance(action, argparse._SubParsersAction):
                parsers.extend(action.choices.values())
    return frozenset(flags)


def _check_cli_flags(
    path: Path, text: str, flags: frozenset[str]
) -> list[DocProblem]:
    """Every ``--flag`` a doc mentions must exist on the ``repro`` CLI."""
    problems = []
    for offset, line_text in enumerate(text.splitlines()):
        if _FOREIGN_COMMANDS.search(line_text):
            continue
        for match in _FLAG.finditer(line_text):
            if match.group(0) not in flags:
                problems.append(
                    DocProblem(
                        path,
                        offset + 1,
                        f"documents unknown CLI flag {match.group(0)} "
                        "(not accepted by any `repro` subcommand)",
                    )
                )
    return problems


def _public_defs(body, prefix=""):
    """``(node, qualified_name)`` for every public def/class, recursively."""
    for node in body:
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if node.name.startswith("_"):
            continue
        yield node, f"{prefix}{node.name}"
        if isinstance(node, ast.ClassDef):
            yield from _public_defs(node.body, prefix=f"{node.name}.")


def check_api_docstrings(src_root: Path) -> list[DocProblem]:
    """Every public symbol under ``src_root`` must carry a docstring."""
    problems = []
    for source in sorted(src_root.rglob("*.py")):
        if any(part.startswith("_") for part in source.relative_to(src_root).parts):
            continue
        tree = ast.parse(source.read_text(encoding="utf-8"), filename=str(source))
        if ast.get_docstring(tree) is None:
            problems.append(DocProblem(source, 1, "module has no docstring"))
        for node, name in _public_defs(tree.body):
            if ast.get_docstring(node) is None:
                kind = "class" if isinstance(node, ast.ClassDef) else "function"
                problems.append(
                    DocProblem(
                        source,
                        node.lineno,
                        f"public {kind} `{name}` has no docstring",
                    )
                )
    return problems


def check_bench_tables(root: Path) -> list[DocProblem]:
    """Marker-delimited bench tables must match their committed dumps.

    For every table registered in :func:`repro.reporting.benchtables.
    bench_tables`: when the dump it cites is committed (a fresh checkout
    without bench results is fine) and carries the table's section, the
    doc must carry the markers and the text between them must equal the
    renderer's output byte for byte.  Anything else — hand-edited rows,
    a bench rerun that forgot the doc, markers deleted in a rewrite —
    is reported with the command that regenerates the table.
    """
    import json

    from repro.reporting.benchtables import bench_tables, table_in_doc

    problems = []
    for table in bench_tables():
        results = root / table.results
        doc = root / table.doc
        if not results.exists():
            continue
        try:
            payload = json.loads(results.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            problems.append(
                DocProblem(results, 0, f"bench dump is not valid JSON: {error}")
            )
            continue
        if table.section not in payload:
            # An incomplete dump is the bench checker's problem
            # (tools/check_bench.py), not a docs-freshness one.
            continue
        if not doc.exists():
            problems.append(
                DocProblem(
                    doc, 0, f"bench table {table.key!r} registered but doc missing"
                )
            )
            continue
        text = doc.read_text(encoding="utf-8")
        current = table_in_doc(table, text)
        if current is None:
            problems.append(
                DocProblem(
                    doc,
                    0,
                    f"bench table {table.key!r} has no markers "
                    f"({table.begin} … {table.end}) but {table.results} "
                    f"carries a {table.section!r} section to render",
                )
            )
            continue
        if current != table.render(payload):
            line = text[: text.index(table.begin)].count("\n") + 1
            problems.append(
                DocProblem(
                    doc,
                    line,
                    f"bench table {table.key!r} is stale against "
                    f"{table.results}; rerun `PYTHONPATH=src python -m pytest "
                    "benchmarks/bench_shard_scale.py` to regenerate it",
                )
            )
    return problems


def check_file(
    path: Path, cli_flags: frozenset[str] | None = None
) -> list[DocProblem]:
    """Every problem in one markdown file (examples, links, flag drift)."""
    text = path.read_text(encoding="utf-8")
    problems = _check_links(path, text)
    if cli_flags is None:
        cli_flags = known_cli_flags()
    problems.extend(_check_cli_flags(path, text, cli_flags))
    for line, lang, body, skipped in extract_fenced_blocks(text):
        if lang != "python" or skipped:
            continue
        problems.extend(_check_python_block(path, line, body))
    return sorted(problems, key=lambda p: p.line)


def main(argv: list[str] | None = None) -> int:
    """Check the named markdown files (default: README + docs/) and the API."""
    root = Path(__file__).resolve().parent.parent
    if str(root / "src") not in sys.path:
        sys.path.insert(0, str(root / "src"))  # plain `python tools/check_docs.py`
    args = sys.argv[1:] if argv is None else list(argv)
    if not args:
        args = [str(root / "README.md")] + sorted(
            str(p) for p in (root / "docs").glob("*.md")
        )
    flags = known_cli_flags()
    problems: list[DocProblem] = []
    for name in args:
        path = Path(name)
        if not path.exists():
            problems.append(DocProblem(path, 0, "file does not exist"))
            continue
        problems.extend(check_file(path, cli_flags=flags))
    api_problems = check_api_docstrings(root / "src" / "repro")
    problems.extend(api_problems)
    problems.extend(check_bench_tables(root))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print(
        f"docs ok: {len(args)} file(s) checked, "
        "public API fully docstringed, no CLI-flag drift, "
        "bench tables fresh"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark smoke checker: the perf claims must stay checkable in seconds.

The full benchmark suite (``benchmarks/``) regenerates every reproduction
artifact and takes minutes; CI cannot afford that on every push, but it
*can* afford to verify that the machinery behind the committed numbers
still works.  This checker runs three fast probes:

1. **Kernel parity** — the vectorized batch kernels produce exactly the
   scalar values over a handful of confusion matrices (including a
   degenerate one), for every registered metric.
2. **Resampler stream identity** — the single-call multinomial resampler
   draws the same stream as the per-resample scalar loop at the same seed,
   so ``bootstrap_metric`` and ``bootstrap_metric_scalar`` must return
   identical summaries.
2b. **Generation parity** — the columnar workload generator produces
   byte-identical output to the scalar reference on a small corpus, and
   is not slower than it (the 10x claim lives in the full bench; CI only
   guards the machinery and the direction).
3. **Dump schema** — ``results/BENCH_engine.json`` and
   ``results/BENCH_shard.json``, when present, carry the expected schema
   tags and the sections the docs cite.
4. **Fault-injection smoke** — a real ``repro run --keep-going`` with an
   injected mid-graph failure must isolate it (independents complete,
   dependents skip), write a structurally sound partial manifest, and
   exit non-zero.
5. **Shard-scale smoke** — a small ``repro run --scale`` campaign on both
   executors *and both process transports* (pickle and the shared-memory
   ring) must exit 0, write a ``repro/shard-run@2`` manifest recording
   the resolved transport, and produce per-shard cells identical across
   every executor × transport combination.
6. **Cross-ecosystem smoke** — the same sharded run under a non-default
   ``--ecosystem`` must record the ecosystem and its tool families in the
   manifest, produce per-shard cells identical across executors, and
   diverge from the default ecosystem's cells (different workload, not a
   relabel).
7. **Ecosystems dump schema** — ``results/BENCH_ecosystems.json``, when
   present, carries the expected schema tag, a full winner grid, and at
   least one recorded winner flip.
8. **Chaos-recovery smoke** — a SIGKILL'd worker recovers in-run (pool
   rebuild + re-dispatch), and a SIGKILL'd campaign *parent* recovers via
   ``--resume`` of its write-ahead journal — on both executors, with a
   torn journal tail tolerated — and every recovered run's per-shard
   cells equal the uninterrupted run's byte-for-byte.
9. **Serve dump schema** — ``results/BENCH_serve.json``, when present,
   carries the ``repro/bench-serve@1`` tag, the latency rows and the
   fairness section ``docs/serve.md`` cites, sane percentiles
   (``p99 >= p50 > 0``), and ``bounded: true`` for the abusive tenant.
10. **Serve smoke** — a real ``repro serve`` subprocess must accept a
    campaign over HTTP, run it to completion, and return totals equal to
    an in-process ``run_sharded_campaign`` at the same parameters.

Usage::

    PYTHONPATH=src python tools/check_bench.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_JSON = Path(__file__).resolve().parent.parent / "results" / "BENCH_engine.json"
BENCH_JSON_SCHEMA = "repro/bench-engine@1"
#: Sections the docs cite; a partial bench run must not silently drop one.
REQUIRED_SECTIONS = ("suite", "bootstrap", "executor", "tracing", "transport")

SHARD_JSON = Path(__file__).resolve().parent.parent / "results" / "BENCH_shard.json"
SHARD_JSON_SCHEMA = "repro/bench-shard@1"
#: Sections docs/scaling.md cites.
SHARD_SECTIONS = ("parity", "generation", "throughput", "memory")

ECOSYSTEMS_JSON = (
    Path(__file__).resolve().parent.parent / "results" / "BENCH_ecosystems.json"
)
ECOSYSTEMS_JSON_SCHEMA = "repro/bench-ecosystems@1"
#: Sections docs/workloads.md cites from the R20 dump.
ECOSYSTEMS_SECTIONS = ("ecosystems", "winners", "taus", "flips")

#: The sharded-campaign manifest schema the CLI currently writes.
SHARD_MANIFEST_SCHEMA = "repro/shard-run@2"

SERVE_JSON = Path(__file__).resolve().parent.parent / "results" / "BENCH_serve.json"
SERVE_JSON_SCHEMA = "repro/bench-serve@1"
#: Sections docs/serve.md cites from the serve dump.
SERVE_SECTIONS = ("latency", "fairness")


def check_kernel_parity() -> list[str]:
    """Batch kernels must equal the scalar path, NaN-for-NaN."""
    import math

    from repro.metrics.batch import ConfusionBatch
    from repro.metrics.confusion import ConfusionMatrix
    from repro.metrics.registry import default_registry

    matrices = [
        ConfusionMatrix(tp=40, fp=25, fn=20, tn=515),
        ConfusionMatrix(tp=1, fp=0, fn=0, tn=30),
        ConfusionMatrix(tp=0, fp=0, fn=5, tn=5),  # degenerate: no positives found
        ConfusionMatrix(tp=7, fp=3, fn=2, tn=0),
    ]
    batch = ConfusionBatch.from_matrices(matrices)
    problems = []
    for metric in default_registry():
        values = metric.compute_batch(batch)
        for index, cm in enumerate(matrices):
            scalar = metric.value_or_nan(cm)
            vector = float(values[index])
            same = (
                math.isnan(scalar) and math.isnan(vector)
            ) or scalar == vector
            if not same:
                problems.append(
                    f"kernel parity: {metric.symbol} at matrix {index}: "
                    f"scalar {scalar!r} != batch {vector!r}"
                )
    return problems


def check_resampler_identity() -> list[str]:
    """Batch and scalar bootstrap must agree exactly at the same seed."""
    from repro.metrics.confusion import ConfusionMatrix
    from repro.metrics.registry import default_registry
    from repro.stats.bootstrap import bootstrap_metric, bootstrap_metric_scalar

    cm = ConfusionMatrix(tp=40, fp=25, fn=20, tn=515)
    problems = []
    for metric in list(default_registry())[:5]:
        batch = bootstrap_metric(metric, cm, n_resamples=50, seed=2015)
        scalar = bootstrap_metric_scalar(metric, cm, n_resamples=50, seed=2015)
        if repr(batch) != repr(scalar):
            problems.append(
                f"resampler identity: {metric.symbol}: "
                f"{batch!r} != {scalar!r}"
            )
    return problems


def check_generation_smoke() -> list[str]:
    """Columnar generation: identical bytes, and no slower than scalar."""
    import time

    from repro.persist import payload_digest, workload_to_dict
    from repro.workload.columnar import generate_workload_batch, supports_batch
    from repro.workload.generator import WorkloadConfig, generate_workload_scalar

    config = WorkloadConfig(n_units=400, seed=2015, name="bench-smoke")
    if not supports_batch(config):
        return [
            "generation smoke: the default config is outside the columnar "
            "path's envelope — campaigns would silently run scalar"
        ]
    problems = []
    generate_workload_batch(config)  # warm caches: steady-state comparison
    started = time.perf_counter()
    scalar = generate_workload_scalar(config)
    scalar_wall = time.perf_counter() - started
    started = time.perf_counter()
    batch = generate_workload_batch(config)
    batch_wall = time.perf_counter() - started
    if payload_digest(workload_to_dict(scalar)) != payload_digest(
        workload_to_dict(batch)
    ):
        problems.append(
            "generation smoke: columnar output is not byte-identical to the "
            "scalar reference at seed 2015"
        )
    if batch_wall > scalar_wall:
        problems.append(
            "generation smoke: columnar path is slower than scalar "
            f"({batch_wall:.3f}s vs {scalar_wall:.3f}s for 400 units)"
        )
    return problems


def check_bench_json() -> list[str]:
    """The committed dump must be schema-tagged and structurally complete."""
    if not BENCH_JSON.exists():
        # Fresh checkouts before the first bench run have no dump; that is
        # not an error — the schema only has to hold once one exists.
        return []
    try:
        payload = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        return [f"bench json: {BENCH_JSON} is not valid JSON: {error}"]
    problems = []
    found = payload.get("schema")
    if found != BENCH_JSON_SCHEMA:
        problems.append(
            f"bench json: expected schema {BENCH_JSON_SCHEMA!r}, found {found!r}"
        )
    for section in REQUIRED_SECTIONS:
        if section not in payload:
            problems.append(f"bench json: missing section {section!r}")
    bootstrap = payload.get("bootstrap", {})
    if bootstrap and bootstrap.get("speedup", 0) < 1.0:
        problems.append(
            "bench json: recorded bootstrap speedup below 1x — the batch "
            f"path regressed ({bootstrap.get('speedup')})"
        )
    tracing = payload.get("tracing", {})
    if tracing:
        overhead = tracing.get("overhead_fraction")
        guard = tracing.get("guard_fraction")
        if overhead is None or guard is None:
            problems.append(
                "bench json: tracing section lacks overhead_fraction / "
                "guard_fraction"
            )
        elif overhead >= guard:
            problems.append(
                f"bench json: recorded tracing overhead {overhead:.1%} is at "
                f"or over the {guard:.0%} guard — the fast path regressed"
            )
    transport = payload.get("transport", {})
    if transport:
        missing = {
            "campaign_scale", "shard_size", "jobs", "cpu_count",
            "thread_seconds", "process_pickle_seconds", "process_shm_seconds",
            "shm_speedup_vs_thread", "cells_identical", "speedup_asserted",
        } - set(transport)
        if missing:
            problems.append(
                f"bench json: transport section lacks {sorted(missing)}"
            )
        else:
            if transport["cells_identical"] is not True:
                problems.append(
                    "bench json: transport section does not record "
                    "byte-identical cells across executors and transports"
                )
            # The >=1.5x shm claim only holds where parallelism is possible;
            # the bench records whether it asserted it, keyed on cpu_count.
            if transport["cpu_count"] >= 2 and not transport["speedup_asserted"]:
                problems.append(
                    "bench json: transport dump comes from a multi-core "
                    "machine but did not assert the shm speedup"
                )
            if (
                transport["speedup_asserted"]
                and transport["shm_speedup_vs_thread"] < 1.5
            ):
                problems.append(
                    "bench json: asserted shm speedup below 1.5x "
                    f"({transport['shm_speedup_vs_thread']})"
                )
    return problems


def check_shard_json() -> list[str]:
    """The shard dump must be schema-tagged, complete, and record parity."""
    if not SHARD_JSON.exists():
        return []
    try:
        payload = json.loads(SHARD_JSON.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        return [f"shard json: {SHARD_JSON} is not valid JSON: {error}"]
    problems = []
    found = payload.get("schema")
    if found != SHARD_JSON_SCHEMA:
        problems.append(
            f"shard json: expected schema {SHARD_JSON_SCHEMA!r}, found {found!r}"
        )
    for section in SHARD_SECTIONS:
        if section not in payload:
            problems.append(f"shard json: missing section {section!r}")
    if payload.get("parity", {}).get("identical") is not True:
        problems.append(
            "shard json: parity section does not record identical totals"
        )
    rows = payload.get("throughput", {}).get("rows", [])
    if not rows:
        problems.append("shard json: throughput section has no rows")
    for row in rows:
        missing = {
            "scale", "shard_size", "wall_seconds",
            "units_per_second", "peak_rss_mb",
        } - set(row)
        if missing:
            problems.append(f"shard json: throughput row lacks {sorted(missing)}")
    generation = payload.get("generation", {}).get("rows", [])
    if "generation" in payload and not generation:
        problems.append("shard json: generation section has no rows")
    for row in generation:
        missing = {
            "ecosystem", "n_units", "scalar_units_per_second",
            "batch_units_per_second", "speedup", "identical",
        } - set(row)
        if missing:
            problems.append(f"shard json: generation row lacks {sorted(missing)}")
            continue
        if row["identical"] is not True:
            problems.append(
                f"shard json: generation row {row['ecosystem']!r} does not "
                "record byte-identical output"
            )
        if row["speedup"] < 1.0:
            problems.append(
                f"shard json: generation row {row['ecosystem']!r} records a "
                f"slowdown ({row['speedup']}) — the columnar path regressed"
            )
    return problems


def check_shard_scale() -> list[str]:
    """Sharded runs per executor × transport: exit 0, identical totals."""
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    problems: list[str] = []
    totals_by_config: dict[str, list] = {}
    configs = (
        ("thread", "auto"),
        ("process", "pickle"),
        ("process", "shm"),
    )
    with tempfile.TemporaryDirectory() as tmp:
        for executor, transport in configs:
            label = f"{executor}/{transport}"
            manifest_path = Path(tmp) / f"shards-{executor}-{transport}.json"
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro", "run",
                    "--scale", "400", "--shard-size", "150",
                    "--jobs", "2", "--executor", executor,
                    "--transport", transport,
                    "--quiet", "--manifest", str(manifest_path),
                ],
                env=env,
                cwd=repo_root,
                capture_output=True,
                text=True,
                timeout=300,
            )
            if proc.returncode != 0:
                problems.append(
                    f"shard smoke ({label}): exited "
                    f"{proc.returncode}: {proc.stderr[-500:]}"
                )
                continue
            payload = json.loads(manifest_path.read_text(encoding="utf-8"))
            if payload.get("schema") != SHARD_MANIFEST_SCHEMA:
                problems.append(
                    f"shard smoke ({label}): manifest schema is "
                    f"{payload.get('schema')!r}, expected "
                    f"{SHARD_MANIFEST_SCHEMA!r}"
                )
                continue
            # The manifest records the *resolved* transport: threads never
            # serialize (always "pickle"), process honours the request.
            expected_transport = "pickle" if executor == "thread" else transport
            recorded = payload.get("extra", {}).get("transport")
            if recorded != expected_transport:
                problems.append(
                    f"shard smoke ({label}): manifest records transport "
                    f"{recorded!r}, expected {expected_transport!r}"
                )
                continue
            records = payload["shards"]
            if [r["status"] for r in records] != ["completed"] * 3:
                problems.append(
                    f"shard smoke ({label}): expected 3 completed shards, "
                    f"got {[r['status'] for r in records]}"
                )
                continue
            totals_by_config[label] = [
                [r["cells"]["tp"], r["cells"]["fp"], r["cells"]["fn"], r["cells"]["tn"]]
                for r in records
            ]
    if len(totals_by_config) == len(configs):
        reference = totals_by_config["thread/auto"]
        for label, totals in totals_by_config.items():
            if totals != reference:
                problems.append(
                    f"shard smoke: per-shard cells under {label} differ "
                    "from the thread reference"
                )
    return problems


def check_ecosystems_json() -> list[str]:
    """The R20 dump must be schema-tagged, complete, and record a flip."""
    if not ECOSYSTEMS_JSON.exists():
        return []
    try:
        payload = json.loads(ECOSYSTEMS_JSON.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        return [f"ecosystems json: {ECOSYSTEMS_JSON} is not valid JSON: {error}"]
    problems = []
    found = payload.get("schema")
    if found != ECOSYSTEMS_JSON_SCHEMA:
        problems.append(
            f"ecosystems json: expected schema {ECOSYSTEMS_JSON_SCHEMA!r}, "
            f"found {found!r}"
        )
    for section in ECOSYSTEMS_SECTIONS:
        if section not in payload:
            problems.append(f"ecosystems json: missing section {section!r}")
    names = payload.get("ecosystems", [])
    if len(names) < 4:
        problems.append(
            f"ecosystems json: registry dump lists {len(names)} ecosystems, "
            "expected at least 4"
        )
    for scenario_key, row in payload.get("winners", {}).items():
        missing = set(names) - set(row)
        if missing:
            problems.append(
                f"ecosystems json: winner row {scenario_key!r} lacks "
                f"{sorted(missing)}"
            )
    if not payload.get("flips"):
        problems.append(
            "ecosystems json: no winner flips recorded — the cross-ecosystem "
            "claim (the adequate metric is ecosystem-dependent) is not backed"
        )
    for flip in payload.get("flips", []):
        missing = {"scenario", "ecosystem", "baseline", "winner"} - set(flip)
        if missing:
            problems.append(f"ecosystems json: flip lacks {sorted(missing)}")
    return problems


def check_cross_ecosystem() -> list[str]:
    """Sharded runs under two ecosystems: parity per executor, divergence."""
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    problems: list[str] = []
    cells: dict[tuple[str, str], list] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for ecosystem in ("web-services", "npm-deps"):
            for executor in ("thread", "process"):
                manifest_path = Path(tmp) / f"eco-{ecosystem}-{executor}.json"
                proc = subprocess.run(
                    [
                        sys.executable, "-m", "repro", "run",
                        "--scale", "120", "--shard-size", "60",
                        "--jobs", "2", "--executor", executor,
                        "--ecosystem", ecosystem,
                        "--quiet", "--manifest", str(manifest_path),
                    ],
                    env=env,
                    cwd=repo_root,
                    capture_output=True,
                    text=True,
                    timeout=300,
                )
                if proc.returncode != 0:
                    problems.append(
                        f"ecosystem smoke ({ecosystem}/{executor}): exited "
                        f"{proc.returncode}: {proc.stderr[-500:]}"
                    )
                    continue
                payload = json.loads(manifest_path.read_text(encoding="utf-8"))
                if payload.get("ecosystem") != ecosystem:
                    problems.append(
                        f"ecosystem smoke ({ecosystem}/{executor}): manifest "
                        f"records ecosystem {payload.get('ecosystem')!r}"
                    )
                    continue
                if ecosystem != "web-services" and not payload.get(
                    "tool_families"
                ):
                    problems.append(
                        f"ecosystem smoke ({ecosystem}/{executor}): manifest "
                        "lacks the resolved tool_families"
                    )
                cells[(ecosystem, executor)] = [
                    [
                        r["cells"]["tp"], r["cells"]["fp"],
                        r["cells"]["fn"], r["cells"]["tn"],
                    ]
                    for r in payload["shards"]
                ]
    for ecosystem in ("web-services", "npm-deps"):
        thread = cells.get((ecosystem, "thread"))
        process = cells.get((ecosystem, "process"))
        if thread is not None and process is not None and thread != process:
            problems.append(
                f"ecosystem smoke ({ecosystem}): per-shard cells differ "
                "between thread and process executors"
            )
    default = cells.get(("web-services", "thread"))
    other = cells.get(("npm-deps", "thread"))
    if default is not None and other is not None and default == other:
        problems.append(
            "ecosystem smoke: npm-deps produced the same cells as "
            "web-services — the ecosystem is not reaching the workload"
        )
    return problems


def check_fault_injection() -> list[str]:
    """An injected failure must isolate, manifest correctly, and exit 1."""
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    with tempfile.TemporaryDirectory() as tmp:
        manifest_path = Path(tmp) / "manifest.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "run", "R1", "R3", "R4",
                "--quiet", "--jobs", "2", "--keep-going",
                "--inject-fault", "R3", "--manifest", str(manifest_path),
            ],
            env=env,
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=300,
        )
        problems = []
        if proc.returncode == 0:
            problems.append(
                "fault smoke: keep-going run with a failure exited 0 "
                "(must be non-zero)"
            )
        if not manifest_path.exists():
            problems.append(
                "fault smoke: no manifest written for the partial run"
            )
            return problems
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        statuses = {
            entry["experiment_id"]: entry["status"]
            for entry in payload["experiments"]
        }
        expected = {"R1": "completed", "R3": "failed", "R4": "skipped"}
        if statuses != expected:
            problems.append(
                f"fault smoke: expected statuses {expected}, got {statuses}"
            )
        failed = next(
            e for e in payload["experiments"] if e["experiment_id"] == "R3"
        )
        if failed.get("failure", {}).get("error_type") != "InjectedFault":
            problems.append(
                "fault smoke: R3's manifest record lacks a structured "
                f"InjectedFault failure: {failed.get('failure')!r}"
            )
        return problems


def _shard_cells(manifest_path: Path) -> list:
    """Per-shard confusion cells from a manifest, for parity comparisons."""
    payload = json.loads(manifest_path.read_text(encoding="utf-8"))
    return [
        [r["cells"]["tp"], r["cells"]["fp"], r["cells"]["fn"], r["cells"]["tn"]]
        for r in sorted(payload["shards"], key=lambda r: r["index"])
    ]


def check_chaos_recovery() -> list[str]:
    """Crash chaos matrix: killed workers and killed parents must recover.

    One clean reference run per executor, then three chaos scenarios whose
    recovered per-shard cells must equal the clean run's byte-for-byte:

    - **worker-kill** (process only): ``--inject-fault s2:kill=1`` SIGKILLs
      the worker executing shard 2 once; supervision rebuilds the pool and
      re-dispatches, so the run still exits 0 with every shard completed.
    - **parent-kill** (both executors): ``--inject-fault PARENT:kill=2``
      SIGKILLs the campaign parent after 2 journaled folds; a
      ``--resume`` of the write-ahead journal completes the campaign.
    - **torn journal** (thread): the WAL of a clean run loses its tail
      mid-record; resume discards the torn record, re-runs that shard,
      and still converges to the reference cells.
    """
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    problems: list[str] = []

    def run_cli(*extra: str, capture: bool = True) -> subprocess.CompletedProcess:
        # capture=False for parent-kill runs: a SIGKILL'd parent can leave
        # orphaned pool workers holding stdout/stderr open, which would
        # wedge a capturing wait until the workers notice and exit.
        streams = (
            {"capture_output": True, "text": True}
            if capture
            else {"stdout": subprocess.DEVNULL, "stderr": subprocess.DEVNULL}
        )
        return subprocess.run(
            [
                sys.executable, "-m", "repro", "run",
                "--scale", "400", "--shard-size", "100",
                "--jobs", "2", "--quiet", *extra,
            ],
            env=env,
            cwd=repo_root,
            timeout=300,
            **streams,
        )

    def resume_cli(wal: Path, manifest: Path) -> subprocess.CompletedProcess:
        return subprocess.run(
            [
                sys.executable, "-m", "repro", "run",
                "--resume", str(wal), "--jobs", "2", "--quiet",
                "--manifest", str(manifest),
            ],
            env=env,
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=300,
        )

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        reference: dict[str, list] = {}
        for executor in ("thread", "process"):
            clean = tmp_path / f"clean-{executor}.json"
            proc = run_cli("--executor", executor, "--manifest", str(clean))
            if proc.returncode != 0:
                problems.append(
                    f"chaos smoke (clean/{executor}): exited "
                    f"{proc.returncode}: {proc.stderr[-500:]}"
                )
                continue
            reference[executor] = _shard_cells(clean)
        if len(reference) < 2:
            return problems  # no baseline; the failures above say why

        # Worker kill: shard 2's first attempt SIGKILLs its worker.
        manifest = tmp_path / "worker-kill.json"
        proc = run_cli(
            "--executor", "process",
            "--inject-fault", "s2:kill=1",
            "--manifest", str(manifest),
        )
        if proc.returncode != 0:
            problems.append(
                f"chaos smoke (worker-kill): exited {proc.returncode}: "
                f"{proc.stderr[-500:]}"
            )
        elif _shard_cells(manifest) != reference["process"]:
            problems.append(
                "chaos smoke (worker-kill): recovered cells differ from "
                "the clean run"
            )

        # Parent kill + journal resume, on both executors.
        for executor in ("thread", "process"):
            wal = tmp_path / f"parent-{executor}.wal"
            proc = run_cli(
                "--executor", executor,
                "--inject-fault", "PARENT:kill=2",
                "--wal", str(wal),
                capture=False,
            )
            if proc.returncode == 0:
                problems.append(
                    f"chaos smoke (parent-kill/{executor}): SIGKILL'd "
                    "parent exited 0"
                )
                continue
            manifest = tmp_path / f"parent-{executor}.json"
            resumed = resume_cli(wal, manifest)
            if resumed.returncode != 0:
                problems.append(
                    f"chaos smoke (parent-kill/{executor}): resume exited "
                    f"{resumed.returncode}: {resumed.stderr[-500:]}"
                )
            elif _shard_cells(manifest) != reference[executor]:
                problems.append(
                    f"chaos smoke (parent-kill/{executor}): resumed cells "
                    "differ from the clean run"
                )

        # Torn journal: a clean WAL loses its tail; resume must converge.
        wal = tmp_path / "torn.wal"
        proc = run_cli("--executor", "thread", "--wal", str(wal))
        if proc.returncode != 0:
            problems.append(
                f"chaos smoke (torn-journal): WAL run exited "
                f"{proc.returncode}: {proc.stderr[-500:]}"
            )
        else:
            sys.path.insert(0, str(repo_root / "src"))
            try:
                from repro.bench.engine.faults import tear_file

                tear_file(wal, n_bytes=16)
            finally:
                sys.path.pop(0)
            manifest = tmp_path / "torn.json"
            resumed = resume_cli(wal, manifest)
            if resumed.returncode != 0:
                problems.append(
                    f"chaos smoke (torn-journal): resume exited "
                    f"{resumed.returncode}: {resumed.stderr[-500:]}"
                )
            elif _shard_cells(manifest) != reference["thread"]:
                problems.append(
                    "chaos smoke (torn-journal): resumed cells differ from "
                    "the clean run"
                )
    return problems


def check_serve_json() -> list[str]:
    """The serve dump must be schema-tagged, complete, and record fairness."""
    if not SERVE_JSON.exists():
        return []
    try:
        payload = json.loads(SERVE_JSON.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        return [f"serve json: {SERVE_JSON} is not valid JSON: {error}"]
    problems = []
    found = payload.get("schema")
    if found != SERVE_JSON_SCHEMA:
        problems.append(
            f"serve json: expected schema {SERVE_JSON_SCHEMA!r}, found {found!r}"
        )
    for section in SERVE_SECTIONS:
        if section not in payload:
            problems.append(f"serve json: missing section {section!r}")
    rows = payload.get("latency", {}).get("rows", [])
    if "latency" in payload and not rows:
        problems.append("serve json: latency section has no rows")
    for row in rows:
        missing = {"phase", "requests", "p50_ms", "p99_ms", "rps"} - set(row)
        if missing:
            problems.append(f"serve json: latency row lacks {sorted(missing)}")
            continue
        if not 0 < row["p50_ms"] <= row["p99_ms"]:
            problems.append(
                f"serve json: latency row {row['phase']!r} has unsound "
                f"percentiles (p50={row['p50_ms']}, p99={row['p99_ms']})"
            )
    fairness = payload.get("fairness", {})
    if fairness:
        if fairness.get("bounded") is not True:
            problems.append(
                "serve json: fairness section does not record the abusive "
                "tenant bounded to its weight share — the DRR claim is "
                "not backed"
            )
        tenants = fairness.get("tenants", {})
        abusive = fairness.get("abusive")
        if abusive not in tenants:
            problems.append(
                f"serve json: abusive tenant {abusive!r} missing from the "
                "fairness tenants"
            )
        for tenant, row in tenants.items():
            missing = {"weight", "submitted_share", "served_share"} - set(row)
            if missing:
                problems.append(
                    f"serve json: fairness row {tenant!r} lacks "
                    f"{sorted(missing)}"
                )
    return problems


def check_serve_smoke() -> list[str]:
    """A real ``repro serve`` process must run a campaign with parity."""
    import time
    import urllib.error
    import urllib.request

    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    problems: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--state-dir", str(Path(tmp) / "state"), "--port", "0",
            ],
            env=env, cwd=repo_root,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        )
        try:
            line = proc.stdout.readline().strip()
            if not line.startswith("serving on http://"):
                return [f"serve smoke: unexpected banner {line!r}"]
            base = line.removeprefix("serving on ")

            def request(path, payload=None):
                data = json.dumps(payload).encode() if payload else None
                req = urllib.request.Request(base + path, data=data)
                try:
                    with urllib.request.urlopen(req, timeout=30) as response:
                        return response.status, json.loads(response.read())
                except urllib.error.HTTPError as error:
                    return error.code, json.loads(error.read())

            status, body = request(
                "/v1/campaigns", {"scale": 300, "shard_size": 150}
            )
            if status != 202:
                return [f"serve smoke: submit returned {status}: {body}"]
            job_id = body["job"]["job_id"]
            deadline = time.monotonic() + 120
            state = None
            while time.monotonic() < deadline:
                _, view = request(f"/v1/jobs/{job_id}")
                state = view["state"]
                if state in ("completed", "failed"):
                    break
                time.sleep(0.1)
            if state != "completed":
                return [
                    f"serve smoke: job ended {state!r}: {view.get('error')}"
                ]
            _, result = request(f"/v1/jobs/{job_id}/result")
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=30)
            proc.stdout.close()
    sys.path.insert(0, str(repo_root / "src"))
    try:
        from repro.bench.engine.shards import run_sharded_campaign
        from repro.persist import streaming_totals_to_dict

        reference = run_sharded_campaign(scale=300, shard_size=150)
        expected = streaming_totals_to_dict(reference.totals)
    finally:
        sys.path.pop(0)
    if result["totals"] != expected:
        problems.append(
            "serve smoke: totals served over HTTP differ from the "
            "in-process campaign at the same (scale, shard_size, seed)"
        )
    return problems


def main() -> int:
    problems = (
        check_kernel_parity()
        + check_resampler_identity()
        + check_generation_smoke()
        + check_bench_json()
        + check_shard_json()
        + check_ecosystems_json()
        + check_fault_injection()
        + check_serve_json()
        + check_shard_scale()
        + check_cross_ecosystem()
        + check_chaos_recovery()
        + check_serve_smoke()
    )
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} benchmark problem(s)", file=sys.stderr)
        return 1
    print(
        "bench ok: kernels, resampler stream, generation parity, dump "
        "schemas, fault-injection smoke, shard-scale smoke (executor x "
        "transport parity), cross-ecosystem smoke, chaos-recovery "
        "smoke (worker-kill / parent-kill / torn-journal), and serve "
        "smoke (HTTP campaign parity) checked"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The metric wizard: answer five questions, get a defensible metric.

Wraps the whole study in one call: describe your context (how costly a miss
is, your code base's vulnerability rate, whether your benchmark workloads
are enriched, who reads the report, how much triage capacity exists) and
get back a synthesized scenario, the analytically recommended metric, and a
written rationale for every weight your answers moved.

Run:  python examples/metric_wizard.py
"""

from __future__ import annotations

from repro.scenarios import GuidanceAnswers, recommend


def main() -> None:
    cases = {
        "Medical-device firmware gate": GuidanceAnswers(
            miss_to_alarm_ratio=200.0,
            field_prevalence=(0.05, 0.2),
            benchmark_enriched=False,
            audience="mixed",
            triage_capacity="ample",
        ),
        "SaaS AppSec team, two reviewers": GuidanceAnswers(
            miss_to_alarm_ratio=1.5,
            field_prevalence=(0.05, 0.15),
            benchmark_enriched=False,
            audience="practitioners",
            triage_capacity="scarce",
        ),
        "Annual audit of a hardened kernel": GuidanceAnswers(
            miss_to_alarm_ratio=20.0,
            field_prevalence=(0.005, 0.03),
            benchmark_enriched=True,
            audience="researchers",
            triage_capacity="adequate",
        ),
    }
    for label, answers in cases.items():
        recommendation = recommend(answers)
        print(f"### {label}")
        print(recommendation.render())
        print()


if __name__ == "__main__":
    main()

"""The benchmark as a regression detector.

A security team patches a vulnerability (or accidentally drops a sanitizer)
and wants the next campaign to say so with statistical confidence.  This
example uses the mutation operators to build fix and regression variants of
a workload, re-runs a tool, and checks — with McNemar's paired test —
whether the campaign can actually tell the variants apart, at two workload
sizes.  The punchline is the paper's repeatability concern in action: the
same change that is invisible at 300 sites is significant at 3000.

The same discipline applies to the benchmark infrastructure itself: pass
two ``--metrics-out`` dumps from ``python -m repro run`` and the example
diffs them instead, flagging cache-hit-rate drops and wall-time growth
between the runs.

Run:  python examples/regression_tracking.py
      python examples/regression_tracking.py before.json after.json
"""

from __future__ import annotations

import sys

from repro import WorkloadConfig, generate_workload
from repro.bench.campaign import score_report
from repro.metrics import definitions as d
from repro.reporting import format_table
from repro.stats import mcnemar_exact, paired_outcomes
from repro.tools import DynamicInjector, TaintAnalyzer
from repro.workload import break_site, fix_site


def analyze_change(n_units: int, n_mutations: int, seed: int) -> list[object]:
    """Fix some vulnerabilities, break some decoys, measure the delta."""
    workload = generate_workload(
        WorkloadConfig(
            n_units=n_units,
            prevalence=0.15,
            decoy_fraction=0.6,
            seed=seed,
            name=f"release-{n_units}",
        )
    )
    tool = TaintAnalyzer(name="scanner", max_chain_depth=4)

    # The "next release": fix the first k vulnerabilities, regress k decoys.
    mutated = workload
    fixed = 0
    for site in sorted(workload.truth.vulnerable):
        if fixed >= n_mutations:
            break
        mutated = fix_site(mutated, sorted(mutated.truth.vulnerable)[0])
        fixed += 1
    broken = 0
    for site in sorted(mutated.truth.sites):
        if broken >= n_mutations:
            break
        profile = mutated.profiles.get(site)
        if profile and not profile.vulnerable and profile.sanitizer_present:
            mutated = break_site(mutated, site)
            broken += 1

    before_report = tool.analyze(workload)
    before = score_report(before_report, workload.truth)
    after_report = tool.analyze(mutated)
    after = score_report(after_report, mutated.truth)

    # Can this campaign tell two *genuinely close* tools apart?  Compare
    # two dynamic testers whose payload dictionaries differ modestly —
    # the kind of gap a release-to-release tool upgrade produces.
    broad = DynamicInjector(name="broad", payload_coverage=0.9, seed=1)
    narrow = DynamicInjector(name="narrow", payload_coverage=0.75, seed=2)
    table = paired_outcomes(
        broad.analyze(mutated), narrow.analyze(mutated), mutated.truth
    )
    p_value = mcnemar_exact(table)
    return [
        n_units,
        mutated.truth.n_sites,
        d.RECALL.value_or_nan(before),
        d.RECALL.value_or_nan(after),
        d.F1.value_or_nan(before),
        d.F1.value_or_nan(after),
        p_value,
    ]


def diff_metrics_dumps(before_path: str, after_path: str) -> None:
    """Diff two ``--metrics-out`` dumps and print the regression report."""
    from repro.obs import diff_dumps
    from repro.persist import load_json

    diff = diff_dumps(load_json(before_path), load_json(after_path))
    print(f"Engine metrics diff: {before_path} -> {after_path}")
    print()
    print(diff.render())


def main() -> None:
    if len(sys.argv) == 3:
        diff_metrics_dumps(sys.argv[1], sys.argv[2])
        return
    rows = [
        analyze_change(n_units=300, n_mutations=10, seed=3),
        analyze_change(n_units=3000, n_mutations=10, seed=3),
    ]
    print(
        format_table(
            headers=[
                "units",
                "sites",
                "recall before",
                "recall after",
                "F1 before",
                "F1 after",
                "broad-vs-narrow tester p (McNemar)",
            ],
            rows=rows,
            title="Release-to-release campaign deltas (10 fixes + 10 regressions)",
        )
    )
    print()
    print(
        "Read the last column: on the small campaign the two testers are\n"
        "not statistically distinguishable (p > 0.05); on the large one the\n"
        "same comparison is decisive. Size the workload for the deltas you\n"
        "need to detect."
    )


if __name__ == "__main__":
    main()

"""MCDA validation with an expert panel, end to end.

Builds the executable properties matrix, assembles a custom expert panel
(your own personas and biases), elicits Saaty-scale pairwise judgments,
composes the AHP hierarchy per scenario, and reports winners, consistency
ratios, per-expert disagreement and weight-perturbation stability — the
paper's step 4 as a reusable workflow.

Run:  python examples/expert_panel_validation.py
"""

from __future__ import annotations

from repro import (
    AssessmentContext,
    build_properties_matrix,
    canonical_scenarios,
    core_candidates,
    validate_scenario,
)
from repro.experts import Expert, ExpertPanel, elicit_hierarchy
from repro.mcda import weight_sensitivity
from repro.reporting import format_table


def custom_panel() -> ExpertPanel:
    """Three stakeholders with openly different priorities."""
    return ExpertPanel(
        experts=(
            Expert(
                name="ciso",
                persona="CISO of a payment processor",
                noise_sigma=0.15,
                bias={"rewards detection": 1.6, "accepted": 1.2},
                seed=101,
            ),
            Expert(
                name="triager",
                persona="Lead of a 3-person AppSec triage team",
                noise_sigma=0.20,
                bias={"rewards silence": 1.6, "understandable": 1.3},
                seed=102,
            ),
            Expert(
                name="metrician",
                persona="Measurement researcher",
                noise_sigma=0.08,
                bias={"chance-corrected": 1.6, "prevalence-invariant": 1.4},
                seed=103,
            ),
        )
    )


def main() -> None:
    registry = core_candidates()
    context = AssessmentContext.default(seed=21, n_resamples=60)
    print("Assessing every metric against the good-metric properties...")
    matrix = build_properties_matrix(registry, context=context)
    panel = custom_panel()

    rows = []
    for scenario in canonical_scenarios():
        validation = validate_scenario(scenario, matrix, panel)
        rows.append(
            [
                scenario.key,
                validation.panel_best,
                ", ".join(validation.ahp.ranking[:3]),
                validation.ahp.max_consistency_ratio,
                f"{validation.expert_agreement:.0%}",
            ]
        )
    print()
    print(
        format_table(
            ["scenario", "panel pick", "top 3", "max CR", "experts agree"],
            rows,
            title="Expert-validated AHP per scenario (CR < 0.1 = consistent)",
        )
    )
    print()

    # How robust is the critical-scenario conclusion to the panel's weights?
    scenario = canonical_scenarios()[0]
    hierarchy = elicit_hierarchy(scenario, matrix, panel)
    weights = hierarchy.criteria.priorities()
    local = {c: m.priorities() for c, m in hierarchy.alternatives.items()}
    report = weight_sensitivity(
        list(hierarchy.alternative_labels), local, weights, normalize="none"
    )
    print(
        format_table(
            ["criterion", "weight", "winner stability"],
            [
                [criterion, weights[criterion], report.stability(criterion)]
                for criterion in sorted(weights, key=weights.get, reverse=True)
            ],
            title=(
                f"Stability of {scenario.key!r} winner "
                f"({report.baseline_best}) under weight perturbation"
            ),
        )
    )


if __name__ == "__main__":
    main()

"""Plug your own detector into the benchmark.

Implements a custom tool against the public ``VulnerabilityDetectionTool``
interface — a "two-pass" analyzer that combines the pattern scanner's
candidates with a shallow taint check — benchmarks it against the reference
suite, and reports bootstrap confidence intervals so you can tell whether
its edge over the incumbents is real or sampling noise.

Run:  python examples/benchmark_your_own_tool.py
"""

from __future__ import annotations

from repro import (
    VulnerabilityDetectionTool,
    Workload,
    WorkloadConfig,
    generate_workload,
    reference_suite,
    run_campaign,
)
from repro.metrics import definitions as d
from repro.reporting import format_table
from repro.stats import bootstrap_metric
from repro.tools import PatternScanner, TaintAnalyzer
from repro.tools.base import DetectionReport


class TwoPassAnalyzer(VulnerabilityDetectionTool):
    """Report a site only when both a cheap pass and a flow pass agree.

    Pass 1 (pattern scanner) proposes candidates; pass 2 (depth-limited
    taint analysis) confirms them.  Intersecting the reports trades a little
    recall for a large precision gain — a classic industrial design.
    """

    def __init__(self, name: str = "TwoPass", flow_depth: int = 3) -> None:
        super().__init__(name)
        self._scanner = PatternScanner(name=f"{name}/scan")
        self._flow = TaintAnalyzer(name=f"{name}/flow", max_chain_depth=flow_depth)

    def analyze(self, workload: Workload) -> DetectionReport:
        candidates = self._scanner.analyze(workload).flagged_sites
        confirmed = self._flow.analyze(workload)
        kept = [det for det in confirmed.detections if det.site in candidates]
        return self._report(workload, kept)


def main() -> None:
    workload = generate_workload(
        WorkloadConfig(n_units=500, prevalence=0.15, seed=11, name="byot")
    )
    tools = reference_suite(seed=11) + [TwoPassAnalyzer()]
    campaign = run_campaign(tools, workload)

    rows = []
    for result in campaign.results:
        cm = result.confusion
        rows.append(
            [
                result.tool_name,
                d.RECALL.value_or_nan(cm),
                d.PRECISION.value_or_nan(cm),
                d.F1.value_or_nan(cm),
                d.MCC.value_or_nan(cm),
            ]
        )
    print(format_table(["tool", "recall", "precision", "F1", "MCC"], rows,
                       title="Campaign results (incl. your tool)"))
    print()

    # Is TwoPass's F1 edge over PT-Spider real?  Bootstrap both.
    rows = []
    for name in ("TwoPass", "PT-Spider", "SA-Deep"):
        summary = bootstrap_metric(
            d.F1, campaign.confusion_for(name), n_resamples=400, seed=11
        )
        rows.append([name, summary.point_estimate, summary.ci_low, summary.ci_high])
    print(
        format_table(
            ["tool", "F1", "95% CI low", "95% CI high"],
            rows,
            title="Bootstrap confidence intervals (400 resamples)",
        )
    )
    print()
    print(
        "Non-overlapping intervals mean a benchmark reader can rely on the\n"
        "difference; overlapping ones mean the workload is too small to call it."
    )


if __name__ == "__main__":
    main()

"""Publish a scenario-appropriate benchmark report.

The end-to-end artifact the paper's guidance implies: run a campaign once,
then generate, per use scenario, the report a benchmark would publish — led
by the analytically selected metric, with bootstrap confidence intervals,
McNemar significance against the leader, projected field cost, and an
honest shortlist of statistically tied contenders.

Run:  python examples/publish_benchmark_report.py
"""

from __future__ import annotations

from repro import (
    WorkloadConfig,
    canonical_scenarios,
    generate_workload,
    reference_suite,
    run_campaign,
)
from repro.bench.report import build_scenario_report
from repro.workload.corpus import corpus_workload


def main() -> None:
    workload = generate_workload(
        WorkloadConfig(n_units=500, prevalence=0.15, seed=2015, name="publish")
    )
    campaign = run_campaign(reference_suite(seed=2015), workload)

    for scenario in canonical_scenarios():
        report = build_scenario_report(
            scenario, campaign, workload.truth, seed=2015, n_resamples=300
        )
        print(report.render())
        print()

    # The same machinery works on the hand-written corpus (14 sites —
    # the intervals will say so loudly).
    corpus = corpus_workload()
    corpus_campaign = run_campaign(reference_suite(seed=2015), corpus)
    report = build_scenario_report(
        canonical_scenarios()[0], corpus_campaign, corpus.truth, seed=2015
    )
    print("--- corpus workload (tiny: watch the intervals widen) ---")
    print(report.render())


if __name__ == "__main__":
    main()

"""How popular metrics mislead when the workload mix changes.

Fixes two tools — a thorough one (finds 90%, noisy) and a cautious one
(finds 55%, nearly silent) — and shows which one each metric prefers as the
workload's vulnerability rate moves from 1% to 50%.  Accuracy and precision
flip their verdict; informedness never does.  This is the paper's strongest
argument for prevalence-invariant metrics in low-prevalence scenarios.

Run:  python examples/prevalence_pitfalls.py
"""

from __future__ import annotations

import numpy as np

from repro import ConfusionMatrix
from repro.metrics import definitions as d
from repro.reporting import ascii_chart, format_table

THOROUGH = (0.90, 0.15)  # (TPR, FPR)
CAUTIOUS = (0.55, 0.01)
METRICS = (d.ACCURACY, d.PRECISION, d.F1, d.MCC, d.INFORMEDNESS)
TOTAL_SITES = 10_000.0


def matrix(tpr: float, fpr: float, prevalence: float) -> ConfusionMatrix:
    positives = prevalence * TOTAL_SITES
    return ConfusionMatrix.from_rates(tpr, fpr, positives, TOTAL_SITES - positives)


def main() -> None:
    prevalences = [float(p) for p in np.linspace(0.01, 0.5, 25)]

    # Panel 1: the same tool, measured at different prevalences.
    series = {
        metric.symbol: [
            (p, metric.value_or_nan(matrix(*THOROUGH, p))) for p in prevalences
        ]
        for metric in METRICS
    }
    print(
        ascii_chart(
            series,
            title="One fixed tool (TPR=0.90, FPR=0.15), measured at different prevalences",
            x_label="workload prevalence",
            y_label="metric value",
        )
    )
    print()

    # Panel 2: which tool does each metric prefer?
    rows = []
    for metric in METRICS:
        verdicts = []
        for p in (0.01, 0.05, 0.1, 0.2, 0.35, 0.5):
            thorough = metric.goodness(matrix(*THOROUGH, p))
            cautious = metric.goodness(matrix(*CAUTIOUS, p))
            verdicts.append("thorough" if thorough >= cautious else "cautious")
        flips = sum(1 for a, b in zip(verdicts, verdicts[1:]) if a != b)
        rows.append([metric.symbol, *verdicts, flips])
    print(
        format_table(
            ["metric", "p=1%", "p=5%", "p=10%", "p=20%", "p=35%", "p=50%", "flips"],
            rows,
            title="Preferred tool by prevalence (thorough 0.90/0.15 vs cautious 0.55/0.01)",
        )
    )
    print()
    print(
        "A benchmark that reports accuracy or precision on an enriched\n"
        "workload can recommend the wrong tool for a low-prevalence field —\n"
        "informedness (and other chance-corrected, prevalence-invariant\n"
        "metrics) cannot."
    )


if __name__ == "__main__":
    main()

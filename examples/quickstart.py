"""Quickstart: benchmark a tool suite and see why metric choice matters.

Generates a synthetic vulnerability-detection workload, runs the reference
tool suite over it, scores every tool, and prints the candidate metrics —
showing immediately that different metrics crown different winners.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    WorkloadConfig,
    core_candidates,
    generate_workload,
    reference_suite,
    run_campaign,
)
from repro.reporting import format_table


def main() -> None:
    # 1. A workload: 400 code units, ~15% of analysis sites vulnerable.
    workload = generate_workload(
        WorkloadConfig(n_units=400, prevalence=0.15, seed=42, name="quickstart")
    )
    print(
        f"Workload: {len(workload.units)} units, {workload.n_sites} analysis "
        f"sites, prevalence {workload.prevalence:.1%}\n"
    )

    # 2. Benchmark the reference suite (3 real detectors + parametric tools).
    campaign = run_campaign(reference_suite(seed=42), workload)

    rows = []
    for result in campaign.results:
        cm = result.confusion
        rows.append(
            [result.tool_name, int(cm.tp), int(cm.fp), int(cm.fn), int(cm.tn)]
        )
    print(format_table(["tool", "TP", "FP", "FN", "TN"], rows, title="Raw results"))
    print()

    # 3. Every candidate metric, every tool.
    registry = core_candidates()
    rows = [
        [metric.symbol]
        + [campaign.metric_values(metric)[name] for name in campaign.tool_names]
        for metric in registry
    ]
    print(
        format_table(
            ["metric", *campaign.tool_names], rows, title="Metric values per tool"
        )
    )
    print()

    # 4. The point of the paper, in two lines.
    recall_winner = max(
        campaign.results, key=lambda r: r.metric_value(registry.get("REC"))
    ).tool_name
    precision_winner = max(
        campaign.results, key=lambda r: r.metric_value(registry.get("PRE"))
    ).tool_name
    print(f"Best tool by recall:    {recall_winner}")
    print(f"Best tool by precision: {precision_winner}")
    print("Choosing the metric chooses the winner — pick it for your scenario.")


if __name__ == "__main__":
    main()

"""Scenario-driven metric selection — the paper's core workflow.

Suppose you are assembling a benchmark for vulnerability detection tools and
must decide which metric its reports should lead with.  The answer depends
on the use scenario: this example runs the analytical adequacy study for
the four canonical scenarios plus a custom one you define from your own
cost structure, and prints the recommended metric for each.

Run:  python examples/select_metric_for_scenario.py
"""

from __future__ import annotations

from repro import (
    AdequacyConfig,
    CostStructure,
    Scenario,
    canonical_scenarios,
    core_candidates,
    rank_metrics_for_scenario,
)
from repro.reporting import format_table


def custom_scenario() -> Scenario:
    """A bug-bounty triage desk: false alarms cost real payout reviews, but
    a miss is merely a bounty someone else collects later."""
    return Scenario(
        key="bounty",
        name="Bug-bounty triage desk",
        description="Reports are expensive to validate; misses are cheap.",
        cost=CostStructure(cost_fn=1.0, cost_fp=1.0),
        prevalence_range=(0.02, 0.10),
        property_weights={
            "rewards silence": 0.25,
            "rewards detection": 0.05,
            "defined": 0.10,
            "bounded": 0.05,
            "repeatable": 0.10,
            "discriminating": 0.10,
            "prevalence-invariant": 0.05,
            "chance-corrected": 0.05,
            "understandable": 0.15,
            "accepted": 0.10,
        },
    )


def main() -> None:
    registry = core_candidates()
    config = AdequacyConfig(n_pools=40, seed=7)

    scenarios = canonical_scenarios() + [custom_scenario()]
    summary_rows = []
    for scenario in scenarios:
        ranked = rank_metrics_for_scenario(registry, scenario, config)
        top = ranked[:3]
        print(
            format_table(
                ["rank", "metric", "adequacy (mean Kendall tau)"],
                [[i + 1, r.metric_symbol, r.mean_tau] for i, r in enumerate(ranked[:6])],
                title=f"{scenario.name} — miss:alarm cost "
                f"{scenario.cost.cost_fn:g}:{scenario.cost.cost_fp:g}",
            )
        )
        print()
        summary_rows.append(
            [scenario.key, top[0].metric_symbol, ", ".join(r.metric_symbol for r in top)]
        )

    print(
        format_table(
            ["scenario", "recommended metric", "top 3"],
            summary_rows,
            title="Recommendation summary",
        )
    )


if __name__ == "__main__":
    main()

"""repro — reproduction of "On the Metrics for Benchmarking Vulnerability
Detection Tools" (Antunes & Vieira, DSN 2015).

The library implements the paper's full pipeline:

1. **metrics** — the candidate metric catalog over confusion matrices;
2. **workload / tools / bench** — a synthetic benchmarking substrate:
   code workloads with injected vulnerabilities, real and simulated
   detection tools, and the campaign runner that scores them;
3. **properties** — the "characteristics of a good metric" made executable;
4. **scenarios** — use scenarios with cost structures and the analytical
   adequacy study;
5. **mcda / experts** — AHP (plus SAW and TOPSIS) driven by a simulated
   expert panel, validating the analytical selection;
6. **bench.experiments** — drivers R1..R11 regenerating every table and
   figure of the study (see DESIGN.md).

Quickstart::

    from repro import (
        WorkloadConfig, generate_workload, reference_suite, run_campaign,
        default_registry,
    )

    workload = generate_workload(WorkloadConfig(n_units=200, seed=7))
    campaign = run_campaign(reference_suite(seed=7), workload)
    for metric in default_registry():
        print(metric.symbol, campaign.metric_values(metric))
"""

from repro.bench.campaign import CampaignResult, ToolResult, run_campaign, score_report
from repro.bench.report import ScenarioReport, ToolVerdict, build_scenario_report
from repro.errors import (
    ConfigurationError,
    ElicitationError,
    InconsistentJudgmentError,
    McdaError,
    MetricError,
    ReproError,
    ToolError,
    UndefinedMetricError,
    WorkloadError,
)
from repro.experts import (
    Expert,
    ExpertPanel,
    default_panel,
    elicit_hierarchy,
    validate_scenario,
)
from repro.mcda import (
    AhpHierarchy,
    AhpResult,
    PairwiseComparisonMatrix,
    comparison_from_scores,
    simple_additive_weighting,
    topsis,
    weight_sensitivity,
)
from repro.metrics import (
    ConfusionMatrix,
    Metric,
    MetricFamily,
    MetricRegistry,
    Orientation,
    core_candidates,
    default_registry,
    definitions,
)
from repro.properties import (
    AssessmentContext,
    PropertiesMatrix,
    build_properties_matrix,
    default_properties,
)
from repro.scenarios import (
    AdequacyConfig,
    CostStructure,
    Scenario,
    canonical_scenarios,
    rank_metrics_for_scenario,
    scenario_adequacy,
    scenario_by_key,
)
from repro.tools import (
    DynamicInjector,
    PatternScanner,
    SimulatedTool,
    TaintAnalyzer,
    ToolProfile,
    VulnerabilityDetectionTool,
    reference_suite,
)
from repro.workload import (
    CodeUnit,
    GroundTruth,
    SinkSite,
    VulnerabilityType,
    Workload,
    WorkloadConfig,
    generate_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # campaign
    "CampaignResult",
    "ToolResult",
    "run_campaign",
    "score_report",
    "ScenarioReport",
    "ToolVerdict",
    "build_scenario_report",
    # errors
    "ConfigurationError",
    "ElicitationError",
    "InconsistentJudgmentError",
    "McdaError",
    "MetricError",
    "ReproError",
    "ToolError",
    "UndefinedMetricError",
    "WorkloadError",
    # experts
    "Expert",
    "ExpertPanel",
    "default_panel",
    "elicit_hierarchy",
    "validate_scenario",
    # mcda
    "AhpHierarchy",
    "AhpResult",
    "PairwiseComparisonMatrix",
    "comparison_from_scores",
    "simple_additive_weighting",
    "topsis",
    "weight_sensitivity",
    # metrics
    "ConfusionMatrix",
    "Metric",
    "MetricFamily",
    "MetricRegistry",
    "Orientation",
    "core_candidates",
    "default_registry",
    "definitions",
    # properties
    "AssessmentContext",
    "PropertiesMatrix",
    "build_properties_matrix",
    "default_properties",
    # scenarios
    "AdequacyConfig",
    "CostStructure",
    "Scenario",
    "canonical_scenarios",
    "rank_metrics_for_scenario",
    "scenario_adequacy",
    "scenario_by_key",
    # tools
    "DynamicInjector",
    "PatternScanner",
    "SimulatedTool",
    "TaintAnalyzer",
    "ToolProfile",
    "VulnerabilityDetectionTool",
    "reference_suite",
    # workload
    "CodeUnit",
    "GroundTruth",
    "SinkSite",
    "VulnerabilityType",
    "Workload",
    "WorkloadConfig",
    "generate_workload",
]

"""R3 — the reference benchmarking campaign.

The raw material of the metric-value and ranking tables: the reference tool
suite run over the reference workload, reported as per-tool confusion
counts.  This mirrors the "benchmark campaign results" table of the original
study (tools x detected/false-alarmed/missed).
"""

from __future__ import annotations

from repro.bench.campaign import CampaignResult
from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.reporting.tables import format_table
from repro.workload.generator import Workload, WorkloadConfig, generate_workload

__all__ = ["reference_workload", "run", "SPEC"]


def reference_workload(seed: int = DEFAULT_SEED, n_units: int = 600) -> Workload:
    """The workload every campaign-based experiment shares."""
    return generate_workload(
        WorkloadConfig(
            n_units=n_units,
            sites_per_unit=(1, 3),
            prevalence=0.15,
            decoy_fraction=0.5,
            seed=seed,
            name="reference",
        )
    )


def run(
    seed: int = DEFAULT_SEED,
    n_units: int = 600,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Run the reference campaign and render the raw-results table."""
    ctx = ensure_context(context, seed=seed)
    workload = ctx.workload(n_units=n_units, seed=seed)
    campaign: CampaignResult = ctx.campaign(n_units=n_units, seed=seed)

    ctx.metrics.inc("experiment.R3.units_processed", len(campaign.results))
    rows = []
    for result in campaign.results:
        cm = result.confusion
        rows.append(
            [
                result.tool_name,
                int(cm.tp),
                int(cm.fp),
                int(cm.fn),
                int(cm.tn),
                int(cm.predicted_positives),
            ]
        )
    table = format_table(
        headers=["tool", "TP", "FP", "FN", "TN", "reported"],
        rows=rows,
        title=(
            f"Campaign raw results — workload {workload.name!r}: "
            f"{workload.n_sites} sites, prevalence {workload.prevalence:.3f}"
        ),
    )
    return ExperimentResult(
        experiment_id="R3",
        title="Reference benchmarking campaign",
        sections={"raw_results": table},
        data={"campaign": campaign, "workload": workload},
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R3",
        title="Reference benchmarking campaign",
        artifact="table",
        runner=run,
        cache_defaults={"n_units": 600},
    )
)

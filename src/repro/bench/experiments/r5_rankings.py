"""R5 — tool rankings induced by each metric, and how much they disagree.

The paper's pivotal observation made tabular: each metric orders the
benchmarked tools its own way.  The first table shows the rank each metric
assigns to each tool; the second the Kendall tau-b between every pair of
metric-induced rankings — the off-diagonal structure is the quantitative
form of "choosing the metric chooses the winner".
"""

from __future__ import annotations

import math

from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.metrics.registry import MetricRegistry, core_candidates
from repro.reporting.tables import format_table
from repro.stats.rank import kendall_tau, rank_scores

__all__ = ["run", "SPEC"]


def run(
    registry: MetricRegistry | None = None,
    seed: int = DEFAULT_SEED,
    n_units: int = 600,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Rank the campaign tools under every metric and cross-correlate."""
    ctx = ensure_context(context, seed=seed)
    registry = registry if registry is not None else core_candidates()
    campaign = ctx.campaign(n_units=n_units, seed=seed)
    tool_names = campaign.tool_names

    goodness: dict[str, list[float]] = {}
    ranks: dict[str, list[float]] = {}
    with ctx.span("r5.rank_tools"):
        for metric in registry:
            with ctx.span("metric.compute", metric=metric.symbol, experiment="R5"):
                scores = [
                    g if math.isfinite(g := metric.goodness(campaign.confusion_for(name))) else -math.inf
                    for name in tool_names
                ]
            goodness[metric.symbol] = scores
            ranks[metric.symbol] = rank_scores(scores, higher_is_better=True)
    ctx.metrics.inc("experiment.R5.units_processed", len(goodness))

    rank_rows = [
        [symbol] + [ranks[symbol][i] for i in range(len(tool_names))]
        for symbol in goodness
    ]
    rank_table = format_table(
        headers=["metric", *tool_names],
        rows=rank_rows,
        title="Tool rank under each metric (1 = best)",
        float_format=".1f",
    )

    symbols = list(goodness)
    tau: dict[tuple[str, str], float] = {}
    tau_rows = []
    for a in symbols:
        row: list[object] = [a]
        for b in symbols:
            value = 1.0 if a == b else kendall_tau(goodness[a], goodness[b])
            tau[(a, b)] = value
            row.append(value)
        tau_rows.append(row)
    tau_table = format_table(
        headers=["tau", *symbols],
        rows=tau_rows,
        title="Kendall tau-b between metric-induced tool rankings",
        float_format=".2f",
    )

    off_diagonal = [tau[(a, b)] for a in symbols for b in symbols if a != b]
    min_tau = min(off_diagonal)
    mean_tau = sum(off_diagonal) / len(off_diagonal)
    return ExperimentResult(
        experiment_id="R5",
        title="Metric-induced tool rankings",
        sections={"ranks": rank_table, "tau_matrix": tau_table},
        data={
            "ranks": ranks,
            "tau": tau,
            "min_offdiag_tau": min_tau,
            "mean_offdiag_tau": mean_tau,
            "tool_names": tool_names,
        },
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R5",
        title="Metric-induced tool rankings + tau matrix",
        artifact="table",
        runner=run,
        depends_on=("R3",),
        cache_defaults={"n_units": 600},
    )
)

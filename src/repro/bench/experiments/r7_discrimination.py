"""R7 — discriminative power of each metric on the reference campaign.

For every candidate metric, bootstrap the campaign's per-tool values and ask:
how many tool pairs does this metric separate with non-overlapping 95%
confidence intervals?  A benchmark reports a metric so readers can *choose*
between tools; a metric that blurs most pairs at realistic workload sizes is
decorative.
"""

from __future__ import annotations

from repro._rng import derive_seed
from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.metrics.registry import MetricRegistry, core_candidates
from repro.reporting.tables import format_table
from repro.stats.bootstrap import SeparationResult, bootstrap_metric, separation_detail

__all__ = ["run", "SPEC"]


def run(
    registry: MetricRegistry | None = None,
    seed: int = DEFAULT_SEED,
    n_units: int = 600,
    n_resamples: int = 200,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Bootstrap every metric for every tool; rank metrics by separation."""
    ctx = ensure_context(context, seed=seed)
    registry = registry if registry is not None else core_candidates()
    campaign = ctx.campaign(n_units=n_units, seed=seed)

    separation: dict[str, float] = {}
    details: dict[str, SeparationResult] = {}
    ci_rows = []
    for metric in registry:
        summaries = []
        with ctx.span("metric.compute", metric=metric.symbol, experiment="R7"):
            for result in campaign.results:
                # Explicit per-(metric, tool) child seeds keep the draws
                # independent of evaluation order, so thread- and
                # process-executor runs produce identical summaries.
                summary = bootstrap_metric(
                    metric,
                    result.confusion,
                    n_resamples=n_resamples,
                    seed=derive_seed(seed, f"r7:{metric.symbol}:{result.tool_name}"),
                )
                summaries.append(summary)
                ci_rows.append(
                    [
                        metric.symbol,
                        result.tool_name,
                        summary.point_estimate,
                        summary.ci_low,
                        summary.ci_high,
                        summary.width,
                    ]
                )
            detail = separation_detail(summaries)
            details[metric.symbol] = detail
            # No defined pair means no separation evidence at all; rank such
            # a metric at the bottom but surface the undefined-pair count.
            separation[metric.symbol] = (
                detail.fraction if detail.n_defined_pairs else 0.0
            )
    ctx.metrics.inc("experiment.R7.units_processed", len(separation))

    ci_table = format_table(
        headers=["metric", "tool", "value", "ci low", "ci high", "ci width"],
        rows=ci_rows,
        title="Bootstrap 95% confidence intervals per metric and tool",
    )
    ranking = sorted(separation.items(), key=lambda kv: (-kv[1], kv[0]))
    separation_table = format_table(
        headers=["metric", "separated tool pairs (fraction)", "undefined pairs"],
        rows=[
            [symbol, fraction, details[symbol].n_undefined_pairs]
            for symbol, fraction in ranking
        ],
        title="Discriminative power (non-overlapping CIs over defined tool pairs)",
    )
    return ExperimentResult(
        experiment_id="R7",
        title="Discriminative power",
        sections={"intervals": ci_table, "separation": separation_table},
        data={
            "separation": separation,
            "ranking": [s for s, _ in ranking],
            "undefined_pairs": {
                symbol: detail.n_undefined_pairs for symbol, detail in details.items()
            },
        },
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R7",
        title="Discriminative power",
        artifact="figure",
        runner=run,
        depends_on=("R3",),
        cache_defaults={"n_units": 600, "n_resamples": 200},
    )
)

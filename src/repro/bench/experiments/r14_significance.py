"""R14 (extension) — statistical significance of tool differences.

A benchmark table without uncertainty quantification invites over-reading.
This experiment computes, for every tool pair of the reference campaign,
McNemar's exact test over the paired per-site outcomes, plus Wilson
intervals for each tool's recall and precision — the statistical apparatus a
responsible benchmark report attaches to the numbers the earlier
experiments produce.
"""

from __future__ import annotations

from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.metrics.batch import ConfusionBatch, safe_div_array
from repro.reporting.tables import format_table
from repro.stats.significance import mcnemar_exact, paired_outcomes, wilson_interval

__all__ = ["run", "SPEC"]


def run(
    seed: int = DEFAULT_SEED,
    n_units: int = 600,
    alpha: float = 0.05,
    context: RunContext | None = None,
) -> ExperimentResult:
    """McNemar matrix + Wilson intervals for the reference campaign."""
    ctx = ensure_context(context, seed=seed)
    campaign = ctx.campaign(n_units=n_units, seed=seed)
    workload = ctx.workload(n_units=n_units, seed=seed)
    names = campaign.tool_names

    p_values: dict[tuple[str, str], float] = {}
    matrix_rows = []
    significant_pairs = 0
    total_pairs = 0
    with ctx.span("r14.mcnemar_matrix", tools=len(names)):
        for a in names:
            row: list[object] = [a]
            for b in names:
                if a == b:
                    row.append(float("nan"))
                    continue
                key = (a, b)
                if (b, a) in p_values:
                    p_values[key] = p_values[(b, a)]
                else:
                    outcomes = paired_outcomes(
                        campaign.result_for(a).report,
                        campaign.result_for(b).report,
                        workload.truth,
                    )
                    p_values[key] = mcnemar_exact(outcomes)
                    total_pairs += 1
                    if p_values[key] < alpha:
                        significant_pairs += 1
                row.append(p_values[key])
            matrix_rows.append(row)
    ctx.metrics.inc("experiment.R14.units_processed", total_pairs)
    mcnemar_table = format_table(
        headers=["p-value", *names],
        rows=matrix_rows,
        title=f"McNemar exact test between tool pairs (alpha = {alpha:g})",
    )

    # Point estimates for all tools in one vectorized pass (elementwise
    # identical to the per-matrix properties); Wilson bounds stay scalar —
    # they are O(#tools) and exercise the exact integer path.
    batch = ConfusionBatch.from_matrices([r.confusion for r in campaign.results])
    recalls = batch.tpr
    precisions = safe_div_array(batch.tp, batch.predicted_positives)
    interval_rows = []
    for index, result in enumerate(campaign.results):
        cm = result.confusion
        recall_low, recall_high = wilson_interval(int(cm.tp), int(cm.positives))
        if cm.predicted_positives > 0:
            precision_low, precision_high = wilson_interval(
                int(cm.tp), int(cm.predicted_positives)
            )
        else:
            precision_low = precision_high = float("nan")
        interval_rows.append(
            [
                result.tool_name,
                float(recalls[index]),
                f"[{recall_low:.3f}, {recall_high:.3f}]",
                float(precisions[index]),
                f"[{precision_low:.3f}, {precision_high:.3f}]",
            ]
        )
    wilson_table = format_table(
        headers=["tool", "recall", "recall 95% CI", "precision", "precision 95% CI"],
        rows=interval_rows,
        title="Wilson score intervals per tool",
    )

    return ExperimentResult(
        experiment_id="R14",
        title="Statistical significance of tool differences",
        sections={"mcnemar": mcnemar_table, "wilson": wilson_table},
        data={
            "p_values": p_values,
            "significant_fraction": significant_pairs / total_pairs,
            "alpha": alpha,
        },
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R14",
        title="Statistical significance of tool differences",
        artifact="extension",
        runner=run,
        depends_on=("R3",),
        cache_defaults={"n_units": 600, "alpha": 0.05},
    )
)

"""R4 — every candidate metric evaluated for every tool on the campaign.

The paper's "metric values per tool" table.  Reading down a column shows a
tool's profile; reading across a row previews the next experiment's point:
different metrics already *look* like they will order the tools differently.
"""

from __future__ import annotations

from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.metrics.registry import MetricRegistry, core_candidates
from repro.reporting.tables import format_table

__all__ = ["run", "SPEC"]


def run(
    registry: MetricRegistry | None = None,
    seed: int = DEFAULT_SEED,
    n_units: int = 600,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Evaluate ``registry`` (default: screened core candidates) on R3."""
    ctx = ensure_context(context, seed=seed)
    registry = registry if registry is not None else core_candidates()
    campaign = ctx.campaign(n_units=n_units, seed=seed)

    values: dict[str, dict[str, float]] = {}
    rows = []
    with ctx.span("r4.metric_values"):
        for metric in registry:
            with ctx.span("metric.compute", metric=metric.symbol, experiment="R4"):
                per_tool = campaign.metric_values(metric)
            values[metric.symbol] = per_tool
            rows.append(
                [metric.symbol] + [per_tool[name] for name in campaign.tool_names]
            )
    ctx.metrics.inc("experiment.R4.units_processed", len(values))
    table = format_table(
        headers=["metric", *campaign.tool_names],
        rows=rows,
        title="Metric values per tool on the reference campaign",
    )
    return ExperimentResult(
        experiment_id="R4",
        title="Metric values per tool",
        sections={"values": table},
        data={"values": values, "campaign": campaign},
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R4",
        title="Metric values per tool",
        artifact="table",
        runner=run,
        depends_on=("R3",),
        cache_defaults={"n_units": 600},
    )
)

"""R8 — scenario definitions and analytical metric adequacy.

The paper's step-3 table: for each use scenario, how faithfully each
candidate metric reproduces the tool ranking the scenario's economics
actually imply.  Adequacy is the mean Kendall tau between the
metric-induced ranking (computed on benchmark workloads) and the
expected-cost ranking (paid at field prevalence) over sampled tool pools.
"""

from __future__ import annotations

from repro.bench.engine.context import RunContext
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.metrics.registry import MetricRegistry, core_candidates
from repro.reporting.tables import format_table
from repro.scenarios.adequacy import AdequacyConfig, rank_metrics_for_scenario
from repro.scenarios.scenarios import Scenario, canonical_scenarios

__all__ = ["run", "SPEC"]


def run(
    registry: MetricRegistry | None = None,
    scenarios: list[Scenario] | None = None,
    seed: int = DEFAULT_SEED,
    n_pools: int = 40,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Compute and render per-scenario adequacy tables."""
    registry = registry if registry is not None else core_candidates()
    scenarios = scenarios if scenarios is not None else canonical_scenarios()
    config = AdequacyConfig(n_pools=n_pools, seed=seed)

    definition_rows = [
        [
            s.key,
            s.name,
            f"{s.cost.cost_fn:g}:{s.cost.cost_fp:g}",
            f"{s.prevalence_range[0]:.2f}-{s.prevalence_range[1]:.2f}",
            (
                f"{s.benchmark_prevalence_range[0]:.2f}-"
                f"{s.benchmark_prevalence_range[1]:.2f}"
                if s.benchmark_prevalence_range
                else "matches field"
            ),
        ]
        for s in scenarios
    ]
    definitions_table = format_table(
        headers=["key", "scenario", "miss:alarm cost", "field prevalence", "bench prevalence"],
        rows=definition_rows,
        title="Scenario definitions",
    )

    sections = {"definitions": definitions_table}
    rankings: dict[str, list[str]] = {}
    adequacy: dict[str, dict[str, float]] = {}
    for scenario in scenarios:
        results = rank_metrics_for_scenario(registry, scenario, config)
        rankings[scenario.key] = [r.metric_symbol for r in results]
        adequacy[scenario.key] = {r.metric_symbol: r.mean_tau for r in results}
        sections[f"adequacy_{scenario.key}"] = format_table(
            headers=["rank", "metric", "mean tau", "std"],
            rows=[
                [index + 1, r.metric_symbol, r.mean_tau, r.std_tau]
                for index, r in enumerate(results)
            ],
            title=f"Analytical adequacy — scenario {scenario.key!r} ({scenario.name})",
        )

    summary_table = format_table(
        headers=["scenario", "best metric", "top 3"],
        rows=[
            [key, ranking[0], ", ".join(ranking[:3])]
            for key, ranking in rankings.items()
        ],
        title="Analytically selected metric per scenario",
    )
    sections["summary"] = summary_table
    return ExperimentResult(
        experiment_id="R8",
        title="Scenario analysis (analytical)",
        sections=sections,
        data={"rankings": rankings, "adequacy": adequacy},
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R8",
        title="Scenario analysis, analytical selection",
        artifact="table",
        runner=run,
        cache_defaults={"n_pools": 40},
    )
)

"""R16 (extension) — are the headline conclusions seed-stable?

Every number in this reproduction is deterministic in a seed, which cuts
both ways: a conclusion could be an artifact of the canonical seed.  This
experiment re-derives the per-scenario winner across many seeds — for the
analytical selection (fresh tool pools each time) and for the MCDA
validation (fresh expert panels each time, shared evidence matrix) — and
reports how often the modal winner wins.
"""

from __future__ import annotations

from collections import Counter

from repro._rng import derive_seed
from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.experts.elicitation import validate_scenario
from repro.experts.panel import default_panel
from repro.metrics.registry import MetricRegistry, core_candidates
from repro.reporting.tables import format_table
from repro.scenarios.adequacy import AdequacyConfig, rank_metrics_for_scenario
from repro.scenarios.scenarios import canonical_scenarios

__all__ = ["run", "SPEC"]


def run(
    registry: MetricRegistry | None = None,
    seed: int = DEFAULT_SEED,
    n_replicas: int = 12,
    n_pools: int = 25,
    n_resamples: int = 80,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Winner distributions over ``n_replicas`` independent seeds."""
    ctx = ensure_context(context, seed=seed)
    registry = registry if registry is not None else core_candidates()
    scenarios = canonical_scenarios()
    properties_matrix = ctx.properties_matrix(
        registry, n_resamples=n_resamples, seed=seed
    )

    analytical: dict[str, Counter] = {s.key: Counter() for s in scenarios}
    mcda: dict[str, Counter] = {s.key: Counter() for s in scenarios}
    for replica in range(n_replicas):
        ctx.metrics.inc("experiment.R16.units_processed")
        replica_seed = derive_seed(seed, f"stability:{replica}")
        config = AdequacyConfig(n_pools=n_pools, seed=replica_seed)
        panel = default_panel(seed=replica_seed)
        for scenario in scenarios:
            ranked = rank_metrics_for_scenario(registry, scenario, config)
            analytical[scenario.key][ranked[0].metric_symbol] += 1
            validation = validate_scenario(scenario, properties_matrix, panel)
            mcda[scenario.key][validation.panel_best] += 1

    rows = []
    modal_shares: dict[str, dict[str, float]] = {"analytical": {}, "mcda": {}}
    for scenario in scenarios:
        key = scenario.key
        a_modal, a_count = analytical[key].most_common(1)[0]
        m_modal, m_count = mcda[key].most_common(1)[0]
        modal_shares["analytical"][key] = a_count / n_replicas
        modal_shares["mcda"][key] = m_count / n_replicas
        rows.append(
            [
                key,
                f"{a_modal} ({a_count}/{n_replicas})",
                f"{m_modal} ({m_count}/{n_replicas})",
            ]
        )
    table = format_table(
        headers=["scenario", "analytical modal winner", "MCDA modal winner"],
        rows=rows,
        title=f"Winner stability over {n_replicas} independent seeds",
    )
    return ExperimentResult(
        experiment_id="R16",
        title="Seed stability of the conclusions",
        sections={"stability": table},
        data={
            "analytical_winners": {k: dict(v) for k, v in analytical.items()},
            "mcda_winners": {k: dict(v) for k, v in mcda.items()},
            "modal_shares": modal_shares,
            "n_replicas": n_replicas,
        },
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R16",
        title="Seed stability of the conclusions",
        artifact="extension",
        runner=run,
        cache_defaults={"n_replicas": 12, "n_pools": 25, "n_resamples": 80},
    )
)

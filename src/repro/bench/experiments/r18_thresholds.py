"""R18 (extension) — the scenario chooses the operating point too.

With confidence thresholds, one tool is a family of operating points, and
the scenario's cost structure picks the right one: the critical scenario
runs the tool wide open (every finding matters at 100:1), the triage
scenario dials the cut-off up.  This experiment sweeps the threshold of the
aggressive scanner and one balanced tool, renders expected-cost-vs-threshold
per scenario, and reports each scenario's optimum — the operating-point
corollary of the paper's metric-selection argument.
"""

from __future__ import annotations

from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.reporting.figures import ascii_chart
from repro.reporting.tables import format_table
from repro.scenarios.scenarios import Scenario, canonical_scenarios
from repro.tools.pattern_scanner import PatternScanner
from repro.tools.suite import reference_suite
from repro.tools.thresholded import optimal_threshold, threshold_sweep

__all__ = ["run", "SPEC"]

_THRESHOLDS = (0.0, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def run(
    scenarios: list[Scenario] | None = None,
    seed: int = DEFAULT_SEED,
    n_units: int = 600,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Threshold sweeps and per-scenario optima."""
    ctx = ensure_context(context, seed=seed)
    scenarios = scenarios if scenarios is not None else canonical_scenarios()
    workload = ctx.workload(n_units=n_units, seed=seed)
    subjects = [
        PatternScanner(name="SA-Grep"),
        next(t for t in reference_suite(seed=seed) if t.name == "PT-Spider"),
    ]

    sections: dict[str, str] = {}
    optima: dict[str, dict[str, float]] = {}
    for tool in subjects:
        series: dict[str, list[tuple[float, float]]] = {}
        rows = []
        optima[tool.name] = {}
        for scenario in scenarios:
            with ctx.span(
                "r18.threshold_sweep", tool=tool.name, scenario=scenario.key
            ):
                points = threshold_sweep(
                    tool, workload, thresholds=_THRESHOLDS, cost=scenario.cost
                )
            ctx.metrics.inc("experiment.R18.units_processed", len(points))
            series[scenario.key] = [
                (p.threshold, p.expected_cost) for p in points
            ]
            best = optimal_threshold(
                tool, workload, scenario.cost, thresholds=_THRESHOLDS
            )
            optima[tool.name][scenario.key] = best.threshold
            rows.append(
                [
                    scenario.key,
                    best.threshold,
                    best.expected_cost,
                    int(best.confusion.predicted_positives),
                ]
            )
        sections[f"sweep_{tool.name}"] = ascii_chart(
            series,
            width=64,
            height=14,
            title=f"Expected cost vs confidence threshold — {tool.name}",
            x_label="threshold",
            y_label="expected cost per site",
        )
        sections[f"optima_{tool.name}"] = format_table(
            headers=["scenario", "optimal threshold", "cost at optimum", "findings kept"],
            rows=rows,
            title=f"Scenario-optimal operating point — {tool.name}",
        )
    return ExperimentResult(
        experiment_id="R18",
        title="Scenario-optimal confidence thresholds",
        sections=sections,
        data={"optima": optima},
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R18",
        title="Scenario-optimal confidence thresholds",
        artifact="extension",
        runner=run,
        cache_defaults={"n_units": 600},
    )
)

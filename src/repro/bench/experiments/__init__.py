"""Experiment drivers R1..R11 (one per reproduced table/figure).

See DESIGN.md for the experiment index.  Each module exposes
``run(...) -> ExperimentResult``.
"""

from repro.bench.experiments import (
    r1_catalog,
    r2_properties,
    r3_campaign,
    r4_metric_values,
    r5_rankings,
    r6_prevalence,
    r7_discrimination,
    r8_scenarios,
    r9_ahp,
    r10_sensitivity,
    r11_agreement,
    r12_pertype,
    r13_ranking,
    r14_significance,
    r15_difficulty,
    r16_stability,
    r17_workload_stability,
    r18_thresholds,
    r19_run_noise,
)
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult

#: R1-R11 reproduce the paper's tables/figures; R12-R14 are extensions
#: (per-type aggregation, ranking metrics, significance testing).
ALL_EXPERIMENTS = {
    "R1": r1_catalog.run,
    "R2": r2_properties.run,
    "R3": r3_campaign.run,
    "R4": r4_metric_values.run,
    "R5": r5_rankings.run,
    "R6": r6_prevalence.run,
    "R7": r7_discrimination.run,
    "R8": r8_scenarios.run,
    "R9": r9_ahp.run,
    "R10": r10_sensitivity.run,
    "R11": r11_agreement.run,
    "R12": r12_pertype.run,
    "R13": r13_ranking.run,
    "R14": r14_significance.run,
    "R15": r15_difficulty.run,
    "R16": r16_stability.run,
    "R17": r17_workload_stability.run,
    "R18": r18_thresholds.run,
    "R19": r19_run_noise.run,
}

__all__ = [
    "DEFAULT_SEED",
    "ExperimentResult",
    "ALL_EXPERIMENTS",
    "r1_catalog",
    "r2_properties",
    "r3_campaign",
    "r4_metric_values",
    "r5_rankings",
    "r6_prevalence",
    "r7_discrimination",
    "r8_scenarios",
    "r9_ahp",
    "r10_sensitivity",
    "r11_agreement",
    "r12_pertype",
    "r13_ranking",
    "r14_significance",
    "r15_difficulty",
    "r16_stability",
    "r17_workload_stability",
    "r18_thresholds",
    "r19_run_noise",
]

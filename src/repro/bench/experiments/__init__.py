"""Experiment drivers R1..R20 (one per reproduced table/figure).

See DESIGN.md for the experiment index.  Each module exposes
``run(...) -> ExperimentResult`` and registers an
:class:`~repro.bench.engine.spec.ExperimentSpec` describing its id, title,
artifact kind, seedlessness and upstream dependencies.  ``ALL_EXPERIMENTS``
is derived from that registry — the modules are the single source of truth.
"""

from repro.bench.experiments import (
    r1_catalog,
    r2_properties,
    r3_campaign,
    r4_metric_values,
    r5_rankings,
    r6_prevalence,
    r7_discrimination,
    r8_scenarios,
    r9_ahp,
    r10_sensitivity,
    r11_agreement,
    r12_pertype,
    r13_ranking,
    r14_significance,
    r15_difficulty,
    r16_stability,
    r17_workload_stability,
    r18_thresholds,
    r19_run_noise,
    r20_ecosystems,
)
from repro.bench.engine.spec import all_specs
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult

#: Experiment id -> ``run`` callable, in index order.  R1-R11 reproduce the
#: paper's tables/figures; R12-R20 are extensions.
ALL_EXPERIMENTS = {spec.experiment_id: spec.runner for spec in all_specs()}

__all__ = [
    "DEFAULT_SEED",
    "ExperimentResult",
    "ALL_EXPERIMENTS",
    "r1_catalog",
    "r2_properties",
    "r3_campaign",
    "r4_metric_values",
    "r5_rankings",
    "r6_prevalence",
    "r7_discrimination",
    "r8_scenarios",
    "r9_ahp",
    "r10_sensitivity",
    "r11_agreement",
    "r12_pertype",
    "r13_ranking",
    "r14_significance",
    "r15_difficulty",
    "r16_stability",
    "r17_workload_stability",
    "r18_thresholds",
    "r19_run_noise",
    "r20_ecosystems",
]

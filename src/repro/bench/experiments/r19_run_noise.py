"""R19 (extension) — run noise vs sampling noise.

For each tool archetype: how much does the score move if the *same* tool is
re-run on the *same* workload (run noise), compared with how much it would
move on a fresh same-population workload (sampling noise)?  Static analyses
are run-deterministic; dynamic testers are not.  The ratio tells a benchmark
whether averaging runs is mandatory before its error bars mean anything.
"""

from __future__ import annotations

from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.bench.repeatability import tool_run_noise
from repro.metrics import definitions
from repro.metrics.base import Metric
from repro.reporting.tables import format_table
from repro.tools.dynamic_injector import DynamicInjector
from repro.tools.simulated import SimulatedTool, ToolProfile
from repro.tools.taint_analyzer import TaintAnalyzer

__all__ = ["run", "SPEC"]


def run(
    seed: int = DEFAULT_SEED,
    n_units: int = 600,
    n_runs: int = 15,
    metric: Metric = definitions.F1,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Run-noise table for a deterministic, a dynamic and a simulated tool."""
    ctx = ensure_context(context, seed=seed)
    workload = ctx.workload(n_units=n_units, seed=seed)

    factories = {
        "SA-Deep (static)": lambda run_seed: TaintAnalyzer(
            name="SA-Deep (static)", max_chain_depth=4
        ),
        "PT-Spider (dynamic)": lambda run_seed: DynamicInjector(
            name="PT-Spider (dynamic)",
            payload_coverage=0.9,
            difficulty_penalty=0.45,
            false_alarm_rate=0.03,
            seed=run_seed,
        ),
        "VS-Beta (simulated)": lambda run_seed: SimulatedTool(
            "VS-Beta (simulated)",
            ToolProfile(recall=0.92, fpr=0.35, difficulty_sensitivity=0.10),
            seed=run_seed,
        ),
    }

    rows = []
    summaries = {}
    for label, factory in factories.items():
        with ctx.span("r19.run_noise", tool=label, runs=n_runs):
            summary = tool_run_noise(
                factory, workload, metric, n_runs=n_runs, seed=seed
            )
        ctx.metrics.inc("experiment.R19.units_processed", n_runs)
        summaries[label] = summary
        rows.append(
            [
                label,
                summary.mean,
                summary.std,
                summary.max_value - summary.min_value,
                summary.sampling_std,
                summary.run_to_sampling_ratio,
            ]
        )
    table = format_table(
        headers=[
            "tool",
            f"mean {metric.symbol}",
            "run std",
            "run range",
            "sampling std (bootstrap)",
            "run/sampling ratio",
        ],
        rows=rows,
        title=f"Run noise vs sampling noise over {n_runs} runs",
    )
    return ExperimentResult(
        experiment_id="R19",
        title="Tool run noise vs workload sampling noise",
        sections={"noise": table},
        data={"summaries": summaries},
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R19",
        title="Tool run noise vs sampling noise",
        artifact="extension",
        runner=run,
        cache_defaults={"n_units": 600, "n_runs": 15},
    )
)

"""R6 — metric behaviour under prevalence (the misleading-metrics figure).

Two panels reproduce the paper's prevalence argument:

- **stability**: one fixed tool (its intrinsic TPR/FPR never changes) is
  measured at workload prevalences from 1% to 50%.  Prevalence-dependent
  metrics (accuracy, precision, F-measure) swing wildly although the tool is
  the same; informedness and recall stay flat.
- **preference**: a thorough tool (high recall, noisy) is compared against a
  cautious tool (low recall, almost no false alarms) across the same sweep.
  Metrics that flip their preferred tool as prevalence moves cannot anchor a
  workload-independent benchmark conclusion.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bench.engine.context import RunContext
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import ExperimentResult
from repro.metrics import definitions
from repro.metrics.base import Metric
from repro.properties.base import OperatingPoint
from repro.reporting.figures import ascii_chart
from repro.reporting.tables import format_table

__all__ = ["run", "STABILITY_METRICS", "SPEC"]

#: Metrics plotted in the stability panel.
STABILITY_METRICS: tuple[Metric, ...] = (
    definitions.ACCURACY,
    definitions.PRECISION,
    definitions.F1,
    definitions.MCC,
    definitions.INFORMEDNESS,
    definitions.RECALL,
)

_FIXED_TOOL = OperatingPoint(tpr=0.75, fpr=0.08)
_THOROUGH = OperatingPoint(tpr=0.90, fpr=0.15)
_CAUTIOUS = OperatingPoint(tpr=0.55, fpr=0.01)


def run(
    n_points: int = 25,
    total_sites: float = 10_000.0,
    min_prevalence: float = 0.01,
    max_prevalence: float = 0.5,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Sweep prevalence analytically and render both panels."""
    prevalences = [
        float(p) for p in np.linspace(min_prevalence, max_prevalence, n_points)
    ]

    # Panel 1: stability of each metric for the fixed tool.
    series: dict[str, list[tuple[float, float]]] = {}
    swings: dict[str, float] = {}
    for metric in STABILITY_METRICS:
        points = []
        for prevalence in prevalences:
            cm = _FIXED_TOOL.matrix(prevalence, total_sites)
            value = metric.value_or_nan(cm)
            if math.isfinite(value):
                points.append((prevalence, value))
        series[metric.symbol] = points
        values = [v for _, v in points]
        swings[metric.symbol] = max(values) - min(values)
    chart = ascii_chart(
        series,
        title=(
            "Metric value of a fixed tool (TPR=0.75, FPR=0.08) "
            "vs workload prevalence"
        ),
        x_label="prevalence",
        y_label="metric value",
    )
    swing_table = format_table(
        headers=["metric", "min", "max", "swing"],
        rows=[
            [
                symbol,
                min(v for _, v in series[symbol]),
                max(v for _, v in series[symbol]),
                swings[symbol],
            ]
            for symbol in series
        ],
        title="Prevalence-induced swing (same tool, same code quality)",
    )

    # Panel 2: preferred tool per metric per prevalence.
    flips: dict[str, int] = {}
    preference_rows = []
    shown = [p for i, p in enumerate(prevalences) if i % max(1, n_points // 8) == 0]
    for metric in STABILITY_METRICS:
        preferences = []
        for prevalence in prevalences:
            thorough = metric.goodness(_THOROUGH.matrix(prevalence, total_sites))
            cautious = metric.goodness(_CAUTIOUS.matrix(prevalence, total_sites))
            if not (math.isfinite(thorough) and math.isfinite(cautious)):
                preferences.append("-")
            else:
                preferences.append("T" if thorough >= cautious else "C")
        flips[metric.symbol] = sum(
            1
            for a, b in zip(preferences, preferences[1:])
            if "-" not in (a, b) and a != b
        )
        row_cells = [
            preferences[prevalences.index(p)] for p in shown
        ]
        preference_rows.append([metric.symbol, *row_cells, flips[metric.symbol]])
    preference_table = format_table(
        headers=["metric", *[f"p={p:.2f}" for p in shown], "flips"],
        rows=preference_rows,
        title=(
            "Preferred tool across prevalence "
            "(T = thorough 0.90/0.15, C = cautious 0.55/0.01)"
        ),
    )

    return ExperimentResult(
        experiment_id="R6",
        title="Metric behaviour vs prevalence",
        sections={
            "stability_chart": chart,
            "swings": swing_table,
            "preference": preference_table,
        },
        data={"series": series, "swings": swings, "flips": flips},
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R6",
        title="Metric behaviour vs prevalence",
        artifact="figure",
        runner=run,
        seedless=True,
        cache_defaults={"n_points": 25},
    )
)

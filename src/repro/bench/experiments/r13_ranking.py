"""R13 (extension) — threshold-free ranking metrics (AUC-ROC, AP).

Fixed-threshold metrics judge the report a tool chose to emit; ranking
metrics judge the confidence ordering underneath it.  This experiment
computes AUC-ROC and average precision for every tool on the reference
campaign, compares the rankings they induce against the fixed-threshold
families, and renders the ROC curves — the "metrics seldom used in the
benchmarking area" family taken one step further than the paper's catalog.
"""

from __future__ import annotations

import math

from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.metrics import definitions
from repro.metrics.curves import auc_roc, average_precision, roc_points, score_sites
from repro.reporting.figures import ascii_chart
from repro.reporting.tables import format_table
from repro.stats.rank import kendall_tau

__all__ = ["run", "SPEC"]


def run(
    seed: int = DEFAULT_SEED,
    n_units: int = 600,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Compute ranking metrics per tool and compare with fixed-threshold ones."""
    ctx = ensure_context(context, seed=seed)
    campaign = ctx.campaign(n_units=n_units, seed=seed)
    workload = ctx.workload(n_units=n_units, seed=seed)

    auc: dict[str, float] = {}
    ap: dict[str, float] = {}
    roc_series: dict[str, list[tuple[float, float]]] = {}
    rows = []
    for result in campaign.results:
        with ctx.span("metric.compute", tool=result.tool_name, experiment="R13"):
            sites = score_sites(result.report, workload.truth)
            auc[result.tool_name] = auc_roc(sites)
            ap[result.tool_name] = average_precision(sites)
        ctx.metrics.inc("experiment.R13.units_processed")
        rows.append(
            [
                result.tool_name,
                auc[result.tool_name],
                ap[result.tool_name],
                definitions.F1.value_or_nan(result.confusion),
                definitions.MCC.value_or_nan(result.confusion),
            ]
        )
    values_table = format_table(
        headers=["tool", "AUC-ROC", "avg precision", "F1 (fixed)", "MCC (fixed)"],
        rows=rows,
        title="Ranking metrics vs fixed-threshold metrics per tool",
    )

    # ROC chart for a representative trio spanning the operating space.
    for name in ("SA-Grep", "SA-Deep", "PT-Spider"):
        result = campaign.result_for(name)
        roc_series[name] = roc_points(score_sites(result.report, workload.truth))
    chart = ascii_chart(
        roc_series,
        title="ROC curves (reference campaign)",
        x_label="false positive rate",
        y_label="true positive rate",
    )

    # Rank agreement between metric families.
    names = campaign.tool_names

    def scores_for(metric) -> list[float]:
        return [
            g if math.isfinite(g := metric.goodness(campaign.confusion_for(n))) else -math.inf
            for n in names
        ]

    auc_scores = [auc[n] for n in names]
    ap_scores = [ap[n] for n in names]
    tau_rows = []
    taus: dict[str, float] = {}
    for label, fixed in (
        ("F1", definitions.F1),
        ("MCC", definitions.MCC),
        ("REC", definitions.RECALL),
        ("PRE", definitions.PRECISION),
    ):
        taus[f"auc_vs_{label}"] = kendall_tau(auc_scores, scores_for(fixed))
        taus[f"ap_vs_{label}"] = kendall_tau(ap_scores, scores_for(fixed))
        tau_rows.append([label, taus[f"auc_vs_{label}"], taus[f"ap_vs_{label}"]])
    tau_table = format_table(
        headers=["fixed metric", "tau vs AUC-ROC", "tau vs avg precision"],
        rows=tau_rows,
        title="Rank agreement: ranking metrics vs fixed-threshold metrics",
    )

    return ExperimentResult(
        experiment_id="R13",
        title="Threshold-free ranking metrics",
        sections={"values": values_table, "roc": chart, "agreement": tau_table},
        data={"auc": auc, "ap": ap, "taus": taus},
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R13",
        title="Threshold-free ranking metrics",
        artifact="extension",
        runner=run,
        depends_on=("R3",),
        cache_defaults={"n_units": 600},
    )
)

"""R20 — cross-ecosystem metric adequacy (extension).

The paper's analysis fixes one workload regime: vulnerable web services.
The ecosystem registry (:mod:`repro.workload.ecosystems`) parameterizes
that choice, so this experiment asks the natural follow-up: **does the
winning metric survive a change of ecosystem?**  For each registered
ecosystem we generate its workload, run its tool-family suite, and measure
every candidate metric's adequacy the way R8 does — Kendall's tau between
the metric's ranking of the suite (computed on the *benchmark* campaign)
and the ranking by expected field cost (computed at the scenario's field
prevalence, with each tool's empirical operating point carried over).

The winner grid (scenario x ecosystem) makes the paper's thesis concrete
at a new axis: a metric adequate for web services can be beaten on an
SCA-shaped dependency corpus or a high-prevalence IaC scan, purely because
prevalence and suite composition moved.  ``flips`` lists every (scenario,
ecosystem) cell whose winner differs from the web-services baseline.
"""

from __future__ import annotations

import math

from repro.bench.campaign import CampaignResult, run_campaign
from repro.bench.engine.context import (
    RunContext,
    campaign_codec,
    ensure_context,
    workload_codec,
)
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.metrics.confusion import ConfusionMatrix
from repro.metrics.registry import default_registry
from repro.reporting.tables import format_grid, format_table
from repro.scenarios.scenarios import canonical_scenarios
from repro.stats.rank import kendall_tau, order_by_score
from repro.tools.families import suite_for_ecosystem
from repro.workload.ecosystems import (
    DEFAULT_ECOSYSTEM,
    EcosystemProfile,
    all_ecosystems,
)
from repro.workload.generator import Workload, generate_workload

__all__ = ["ecosystem_campaign", "run", "SPEC"]


def ecosystem_campaign(
    profile: EcosystemProfile,
    seed: int = DEFAULT_SEED,
    n_units: int = 400,
    context: RunContext | None = None,
) -> tuple[Workload, CampaignResult]:
    """One ecosystem's benchmark: its workload under its family suite.

    Both artifacts are memoized in the run context's store (and persist to
    ``--cache-dir``), keyed by ecosystem name, seed and size.
    """
    ctx = ensure_context(context, seed=seed)
    config = profile.workload_config(
        n_units=n_units, seed=seed, name=f"eco-{profile.name}"
    )

    def compute_workload() -> Workload:
        return generate_workload(config)

    workload = ctx.artifact(
        "workload",
        f"eco-{profile.name}",
        {"seed": seed, "n_units": n_units, "ecosystem": profile.name},
        compute_workload,
        codec=workload_codec(),
    )

    def compute_campaign() -> CampaignResult:
        return run_campaign(suite_for_ecosystem(profile, seed=seed), workload)

    campaign = ctx.artifact(
        "campaign",
        f"eco-{profile.name}",
        {"seed": seed, "n_units": n_units, "ecosystem": profile.name},
        compute_campaign,
        codec=campaign_codec(),
    )
    return workload, campaign


def _field_matrix(
    confusion: ConfusionMatrix, prevalence: float, total: float
) -> ConfusionMatrix:
    """The tool's expected matrix at the scenario's field prevalence.

    The tool's empirical operating point (tpr, fpr) is read off its
    benchmark confusion matrix and replayed against a field workload of
    ``total`` sites at ``prevalence`` — the same construction R8's sampled
    pools use, but anchored in measured tool behaviour.
    """
    positives = confusion.tp + confusion.fn
    negatives = confusion.fp + confusion.tn
    tpr = confusion.tp / positives if positives else 0.0
    fpr = confusion.fp / negatives if negatives else 0.0
    return ConfusionMatrix.from_rates(
        tpr, fpr, prevalence * total, (1.0 - prevalence) * total
    )


def run(
    seed: int = DEFAULT_SEED,
    n_units: int = 400,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Compute per-(scenario, ecosystem) metric winners and their flips."""
    ctx = ensure_context(context, seed=seed)
    registry = default_registry()
    scenarios = canonical_scenarios()
    profiles = all_ecosystems()

    eco_rows = []
    campaigns: dict[str, CampaignResult] = {}
    totals: dict[str, float] = {}
    for profile in profiles:
        workload, campaign = ecosystem_campaign(
            profile, seed=seed, n_units=n_units, context=ctx
        )
        campaigns[profile.name] = campaign
        totals[profile.name] = float(workload.n_sites)
        ctx.metrics.inc("experiment.R20.ecosystems_run")
        eco_rows.append(
            [
                profile.name,
                profile.prevalence,
                workload.prevalence,
                workload.n_sites,
                len(campaign.results),
                ", ".join(profile.tool_families),
            ]
        )

    # Adequacy per (scenario, ecosystem): rank the suite by each metric on
    # the benchmark campaign, against the expected-cost ranking in the field.
    winners: dict[str, dict[str, str]] = {}
    taus: dict[str, dict[str, dict[str, float]]] = {}
    for scenario in scenarios:
        field_low, field_high = scenario.prevalence_range
        field_prevalence = (field_low + field_high) / 2.0
        winners[scenario.key] = {}
        taus[scenario.key] = {}
        for profile in profiles:
            campaign = campaigns[profile.name]
            bench = [result.confusion for result in campaign.results]
            field = [
                _field_matrix(cm, field_prevalence, totals[profile.name])
                for cm in bench
            ]
            true_scores = [-scenario.cost.expected_cost(cm) for cm in field]
            per_metric: dict[str, float] = {}
            for metric in registry:
                scores = [
                    g if math.isfinite(g := metric.goodness(cm)) else -math.inf
                    for cm in bench
                ]
                per_metric[metric.symbol] = kendall_tau(scores, true_scores)
            symbols = list(per_metric)
            ordered = order_by_score(
                symbols,
                [
                    per_metric[s] if math.isfinite(per_metric[s]) else -math.inf
                    for s in symbols
                ],
                higher_is_better=True,
            )
            winners[scenario.key][profile.name] = ordered[0]
            taus[scenario.key][profile.name] = per_metric

    flips = [
        {
            "scenario": scenario.key,
            "ecosystem": profile.name,
            "baseline": winners[scenario.key][DEFAULT_ECOSYSTEM],
            "winner": winners[scenario.key][profile.name],
        }
        for scenario in scenarios
        for profile in profiles
        if profile.name != DEFAULT_ECOSYSTEM
        and winners[scenario.key][profile.name]
        != winners[scenario.key][DEFAULT_ECOSYSTEM]
    ]

    eco_names = [profile.name for profile in profiles]
    ecosystems_table = format_table(
        headers=[
            "ecosystem", "cfg prev", "realized", "sites", "tools", "families",
        ],
        rows=eco_rows,
        title=(
            f"Ecosystem benchmarks — {n_units} units each, seed {seed}; "
            f"suites from the tool-family registry"
        ),
    )
    winner_grid = format_grid(
        row_labels=[scenario.key for scenario in scenarios],
        col_labels=eco_names,
        cells=[
            [winners[scenario.key][name] for name in eco_names]
            for scenario in scenarios
        ],
        corner="scenario",
        title=(
            "Most adequate metric per (scenario, ecosystem) — Kendall tau "
            "against expected field cost"
        ),
    )
    shift_rows = [
        [flip["scenario"], flip["ecosystem"], flip["baseline"], flip["winner"]]
        for flip in flips
    ]
    shifts_table = format_table(
        headers=["scenario", "ecosystem", "web-services pick", "local pick"],
        rows=shift_rows,
        title=(
            f"Winner shifts vs the {DEFAULT_ECOSYSTEM} baseline "
            f"({len(flips)} of "
            f"{len(scenarios) * (len(eco_names) - 1)} cells)"
        ),
    )
    ranking_rows = []
    for scenario in scenarios:
        for name in eco_names:
            per_metric = taus[scenario.key][name]
            ordered = order_by_score(
                list(per_metric),
                [
                    v if math.isfinite(v) else -math.inf
                    for v in per_metric.values()
                ],
                higher_is_better=True,
            )
            top = ordered[:3]
            ranking_rows.append(
                [
                    scenario.key,
                    name,
                    " > ".join(top),
                    per_metric[top[0]],
                ]
            )
    rankings_table = format_table(
        headers=["scenario", "ecosystem", "top-3 metrics", "best tau"],
        rows=ranking_rows,
    )

    return ExperimentResult(
        experiment_id="R20",
        title="Cross-ecosystem metric adequacy",
        sections={
            "ecosystems": ecosystems_table,
            "winner_grid": winner_grid,
            "shifts": shifts_table,
            "rankings": rankings_table,
        },
        data={
            "ecosystems": eco_names,
            "winners": winners,
            "taus": taus,
            "flips": flips,
        },
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R20",
        title="Cross-ecosystem metric adequacy",
        artifact="extension",
        runner=run,
        cache_defaults={"n_units": 400},
    )
)

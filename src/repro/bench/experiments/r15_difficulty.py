"""R15 (extension) — validating the workload's difficulty model.

The generator stamps every site with a difficulty score (propagation depth,
cross-class sanitizer noise) that the detection tools are supposed to feel.
This experiment checks that the model actually bites: per difficulty bin,
the recall of depth-limited and payload-driven tools falls, while the
flow-insensitive scanner stays flat — evidence that "hard" sites are hard
for the right reasons, not by fiat.
"""

from __future__ import annotations

from repro.bench.engine.context import (
    RunContext,
    campaign_codec,
    ensure_context,
    workload_codec,
)
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.reporting.figures import ascii_chart
from repro.reporting.tables import format_table

__all__ = ["run", "SPEC"]

_BINS = ((0.0, 0.25), (0.25, 0.5), (0.5, 0.75), (0.75, 1.01))
_TRACKED = ("SA-Grep", "SA-Deep", "PT-Spider", "VS-Gamma")


def _difficulty_workload(seed: int, n_units: int):
    from repro.workload.generator import WorkloadConfig, generate_workload

    return generate_workload(
        WorkloadConfig(
            n_units=n_units,
            prevalence=0.2,
            chain_length_range=(1, 8),
            seed=seed,
            name="difficulty",
        )
    )


def run(
    seed: int = DEFAULT_SEED,
    n_units: int = 900,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Per-difficulty-bin recall for representative tools."""
    ctx = ensure_context(context, seed=seed)
    workload = ctx.artifact(
        "workload",
        "difficulty",
        {"seed": seed, "n_units": n_units},
        lambda: _difficulty_workload(seed, n_units),
        codec=workload_codec(),
    )

    def _campaign():
        from repro.bench.campaign import run_campaign
        from repro.tools.suite import reference_suite

        return run_campaign(reference_suite(seed=seed), workload)

    campaign = ctx.artifact(
        "campaign",
        "difficulty",
        {"seed": seed, "n_units": n_units},
        _campaign,
        codec=campaign_codec(),
    )

    vulnerable = [
        (site, workload.profiles[site].difficulty)
        for site in workload.truth.vulnerable
    ]
    bins: dict[tuple[float, float], list] = {b: [] for b in _BINS}
    for site, difficulty in vulnerable:
        for low, high in _BINS:
            if low <= difficulty < high:
                bins[(low, high)].append(site)
                break

    recalls: dict[str, list[float]] = {}
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for tool_name in _TRACKED:
        flagged = campaign.result_for(tool_name).report.flagged_sites
        per_bin = []
        points = []
        for (low, high), sites in bins.items():
            if not sites:
                per_bin.append(float("nan"))
                continue
            recall = sum(1 for s in sites if s in flagged) / len(sites)
            per_bin.append(recall)
            points.append(((low + high) / 2, recall))
        recalls[tool_name] = per_bin
        series[tool_name] = points
        rows.append([tool_name, *per_bin])

    table = format_table(
        headers=["tool"] + [f"difficulty {low:.2f}-{high:.2f}" for low, high in _BINS],
        rows=rows,
        title=(
            f"Recall per difficulty bin "
            f"({sum(len(s) for s in bins.values())} vulnerable sites)"
        ),
    )
    chart = ascii_chart(
        series,
        title="Recall vs site difficulty",
        x_label="difficulty (bin midpoint)",
        y_label="recall",
    )
    bin_sizes = {f"{low:.2f}-{high:.2f}": len(sites) for (low, high), sites in bins.items()}
    return ExperimentResult(
        experiment_id="R15",
        title="Difficulty model validation",
        sections={"recall_by_bin": table, "chart": chart},
        data={"recalls": recalls, "bin_sizes": bin_sizes},
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R15",
        title="Difficulty model validation",
        artifact="extension",
        runner=run,
        cache_defaults={"n_units": 900},
    )
)

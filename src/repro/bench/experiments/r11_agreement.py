"""R11 — agreement between the analytical selection and the MCDA validation.

The paper's closing argument: the expert-driven MCDA ranking *validates* the
analytical scenario analysis.  We quantify that per scenario with top-1
match, top-3 overlap, and whether the MCDA winner sits inside the analytical
top-5 — and render the headline conclusion table ("which metric should your
benchmark report, per scenario").
"""

from __future__ import annotations

from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.metrics.registry import MetricRegistry
from repro.reporting.tables import format_table
from repro.scenarios.scenarios import Scenario, canonical_scenarios
from repro.stats.rank import top_k_overlap

__all__ = ["run", "SPEC"]


def run(
    registry: MetricRegistry | None = None,
    scenarios: list[Scenario] | None = None,
    seed: int = DEFAULT_SEED,
    n_pools: int = 40,
    n_resamples: int = 120,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Cross the R8 and R9 rankings and render the agreement table."""
    ctx = ensure_context(context, seed=seed)
    r8 = ctx.experiment(
        "R8", registry=registry, scenarios=scenarios, seed=seed, n_pools=n_pools
    )
    r9 = ctx.experiment(
        "R9", registry=registry, scenarios=scenarios, seed=seed,
        n_resamples=n_resamples,
    )
    scenarios = scenarios if scenarios is not None else canonical_scenarios()
    analytical: dict[str, list[str]] = r8.data["rankings"]
    mcda: dict[str, list[str]] = r9.data["rankings"]

    rows = []
    top1_matches = 0
    winner_in_top5 = 0
    overlaps: dict[str, float] = {}
    for scenario in scenarios:
        key = scenario.key
        a_ranking = analytical[key]
        m_ranking = mcda[key]
        top1 = a_ranking[0] == m_ranking[0]
        overlap = top_k_overlap(a_ranking, m_ranking, 3)
        in_top5 = m_ranking[0] in a_ranking[:5]
        top1_matches += top1
        winner_in_top5 += in_top5
        overlaps[key] = overlap
        rows.append(
            [
                key,
                ", ".join(a_ranking[:3]),
                ", ".join(m_ranking[:3]),
                top1,
                overlap,
                in_top5,
            ]
        )
    agreement_table = format_table(
        headers=[
            "scenario",
            "analytical top 3",
            "MCDA top 3",
            "top-1 match",
            "top-3 overlap",
            "MCDA best in analytical top 5",
        ],
        rows=rows,
        title="Analytical selection vs expert-validated MCDA",
    )

    conclusion_rows = [
        [
            scenario.key,
            scenario.name,
            analytical[scenario.key][0],
            mcda[scenario.key][0],
        ]
        for scenario in scenarios
    ]
    conclusion_table = format_table(
        headers=["scenario", "description", "analytical pick", "MCDA pick"],
        rows=conclusion_rows,
        title="Recommended benchmark metric per scenario (headline conclusion)",
    )
    return ExperimentResult(
        experiment_id="R11",
        title="Analytical vs MCDA agreement",
        sections={"agreement": agreement_table, "conclusion": conclusion_table},
        data={
            "top1_matches": top1_matches,
            "winner_in_top5": winner_in_top5,
            "n_scenarios": len(scenarios),
            "overlaps": overlaps,
            "analytical": analytical,
            "mcda": mcda,
        },
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R11",
        title="Analytical vs MCDA agreement",
        artifact="table, headline",
        runner=run,
        depends_on=("R8", "R9"),
        cache_defaults={"n_pools": 40, "n_resamples": 120},
    )
)

"""R9 — MCDA validation with the expert panel.

The paper's step 4: AHP over experts' pairwise judgments ranks the candidate
metrics per scenario.  The table reports the aggregated panel ranking with
its consistency ratios, each expert's individual winner, and the SAW/TOPSIS
winners computed from the same criteria weights as a method cross-check.
"""

from __future__ import annotations

from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.experts.panel import ExpertPanel, default_panel
from repro.experts.elicitation import validate_scenario
from repro.mcda.saw import simple_additive_weighting
from repro.mcda.topsis import topsis
from repro.metrics.registry import MetricRegistry, core_candidates
from repro.properties.matrix import PropertiesMatrix
from repro.reporting.tables import format_table
from repro.scenarios.scenarios import Scenario, canonical_scenarios

__all__ = ["run", "SPEC"]


def run(
    registry: MetricRegistry | None = None,
    scenarios: list[Scenario] | None = None,
    panel: ExpertPanel | None = None,
    seed: int = DEFAULT_SEED,
    n_resamples: int = 120,
    properties_matrix: PropertiesMatrix | None = None,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Run the expert-validated AHP (plus SAW/TOPSIS cross-checks)."""
    ctx = ensure_context(context, seed=seed)
    registry = registry if registry is not None else core_candidates()
    scenarios = scenarios if scenarios is not None else canonical_scenarios()
    panel = panel if panel is not None else default_panel(seed=seed)
    if properties_matrix is None:
        properties_matrix = ctx.properties_matrix(
            registry, n_resamples=n_resamples, seed=seed
        )

    sections: dict[str, str] = {}
    rankings: dict[str, list[str]] = {}
    consistency: dict[str, float] = {}
    concordance: dict[str, float] = {}
    agreement: dict[str, float] = {}
    method_winners: dict[str, dict[str, str]] = {}

    criteria_scores = {
        name: properties_matrix.column(name) for name in properties_matrix.property_names
    }
    alternatives = list(properties_matrix.metric_symbols)

    for scenario in scenarios:
        with ctx.span("r9.validate_scenario", scenario=scenario.key):
            validation = validate_scenario(scenario, properties_matrix, panel)
        ctx.metrics.inc("experiment.R9.units_processed")
        rankings[scenario.key] = validation.ahp.ranking
        consistency[scenario.key] = validation.ahp.max_consistency_ratio
        concordance[scenario.key] = validation.panel_concordance
        agreement[scenario.key] = validation.expert_agreement

        scenario_criteria = {
            name: scores
            for name, scores in criteria_scores.items()
            if name in scenario.property_weights
        }
        saw = simple_additive_weighting(
            alternatives, scenario_criteria, scenario.property_weights
        )
        top = topsis(alternatives, scenario_criteria, scenario.property_weights)
        method_winners[scenario.key] = {
            "ahp": validation.ahp.best,
            "saw": saw.best,
            "topsis": top.best,
            "saw_top3": saw.ranking[:3],
            "topsis_top3": top.ranking[:3],
        }

        priority = validation.ahp.alternative_priorities
        sections[f"ahp_{scenario.key}"] = format_table(
            headers=["rank", "metric", "AHP priority"],
            rows=[
                [index + 1, symbol, priority[symbol]]
                for index, symbol in enumerate(validation.ahp.ranking[:8])
            ],
            title=(
                f"AHP metric ranking — scenario {scenario.key!r} "
                f"(max CR {validation.ahp.max_consistency_ratio:.3f}, "
                f"expert agreement {validation.expert_agreement:.0%})"
            ),
        )

    summary = format_table(
        headers=[
            "scenario", "AHP best", "SAW best", "TOPSIS best", "max CR",
            "experts agree", "panel concordance (W)",
        ],
        rows=[
            [
                key,
                method_winners[key]["ahp"],
                method_winners[key]["saw"],
                method_winners[key]["topsis"],
                consistency[key],
                agreement[key],
                concordance[key],
            ]
            for key in rankings
        ],
        title="MCDA validation summary",
    )
    sections["summary"] = summary
    return ExperimentResult(
        experiment_id="R9",
        title="MCDA (AHP) validation with expert judgment",
        sections=sections,
        data={
            "rankings": rankings,
            "consistency": consistency,
            "agreement": agreement,
            "concordance": concordance,
            "method_winners": method_winners,
            "properties_matrix": properties_matrix,
        },
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R9",
        title="MCDA (AHP) validation with expert judgment",
        artifact="table",
        runner=run,
        cache_defaults={"n_resamples": 120},
    )
)

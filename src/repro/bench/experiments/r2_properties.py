"""R2 — the metric x good-metric-property assessment matrix.

The paper's step-2 artifact: every candidate metric scored against every
characteristic of a good metric.  Programmatic checks run on the shared
evidence grid; qualitative characteristics come from the curated tables.
The rendered matrix also marks the screening outcome: metrics that fail the
hard requirements (boundedness, definedness) are flagged as screened out of
the scenario/MCDA studies.
"""

from __future__ import annotations

from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.metrics.registry import MetricRegistry, default_registry
from repro.properties.matrix import PropertiesMatrix
from repro.reporting.tables import format_table

__all__ = ["run", "screened_out", "SPEC"]

#: Hard screening thresholds: a benchmark-grade metric must be bounded and
#: defined on (nearly) all outcomes.
_SCREEN_THRESHOLDS = {"bounded": 0.5, "defined": 0.75}


def screened_out(matrix: PropertiesMatrix, symbol: str) -> bool:
    """Whether the metric fails a hard screening requirement."""
    return any(
        matrix.score(symbol, prop) < threshold
        for prop, threshold in _SCREEN_THRESHOLDS.items()
    )


def run(
    registry: MetricRegistry | None = None,
    seed: int = DEFAULT_SEED,
    n_resamples: int = 120,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Assess every candidate and render the properties matrix."""
    ctx = ensure_context(context, seed=seed)
    registry = registry if registry is not None else default_registry()
    matrix = ctx.properties_matrix(registry, n_resamples=n_resamples, seed=seed)
    ctx.metrics.inc("experiment.R2.units_processed", len(matrix.metric_symbols))

    rows = []
    for symbol in matrix.metric_symbols:
        scores = matrix.row(symbol)
        rows.append(
            [symbol]
            + [scores[name] for name in matrix.property_names]
            + ["screened out" if screened_out(matrix, symbol) else "kept"]
        )
    table = format_table(
        headers=["metric", *matrix.property_names, "screening"],
        rows=rows,
        title="Good-metric property assessment (scores in [0, 1])",
        float_format=".2f",
    )
    kept = [s for s in matrix.metric_symbols if not screened_out(matrix, s)]
    return ExperimentResult(
        experiment_id="R2",
        title="Properties matrix",
        sections={"matrix": table},
        data={
            "matrix": matrix,
            "kept": kept,
            "screened_out": [s for s in matrix.metric_symbols if s not in kept],
        },
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R2",
        title="Good-metric properties matrix",
        artifact="table",
        runner=run,
        cache_defaults={"n_resamples": 120},
    )
)

"""R2 — the metric x good-metric-property assessment matrix.

The paper's step-2 artifact: every candidate metric scored against every
characteristic of a good metric.  Programmatic checks run on the shared
evidence grid; qualitative characteristics come from the curated tables.
The rendered matrix also marks the screening outcome: metrics that fail the
hard requirements (boundedness, definedness) are flagged as screened out of
the scenario/MCDA studies.
"""

from __future__ import annotations

from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.metrics.registry import MetricRegistry, default_registry
from repro.properties.base import AssessmentContext
from repro.properties.matrix import PropertiesMatrix, build_properties_matrix
from repro.reporting.tables import format_table

__all__ = ["run", "screened_out"]

#: Hard screening thresholds: a benchmark-grade metric must be bounded and
#: defined on (nearly) all outcomes.
_SCREEN_THRESHOLDS = {"bounded": 0.5, "defined": 0.75}


def screened_out(matrix: PropertiesMatrix, symbol: str) -> bool:
    """Whether the metric fails a hard screening requirement."""
    return any(
        matrix.score(symbol, prop) < threshold
        for prop, threshold in _SCREEN_THRESHOLDS.items()
    )


def run(
    registry: MetricRegistry | None = None,
    seed: int = DEFAULT_SEED,
    n_resamples: int = 120,
) -> ExperimentResult:
    """Assess every candidate and render the properties matrix."""
    registry = registry if registry is not None else default_registry()
    context = AssessmentContext.default(seed=seed, n_resamples=n_resamples)
    matrix = build_properties_matrix(registry, context=context)

    rows = []
    for symbol in matrix.metric_symbols:
        scores = matrix.row(symbol)
        rows.append(
            [symbol]
            + [scores[name] for name in matrix.property_names]
            + ["screened out" if screened_out(matrix, symbol) else "kept"]
        )
    table = format_table(
        headers=["metric", *matrix.property_names, "screening"],
        rows=rows,
        title="Good-metric property assessment (scores in [0, 1])",
        float_format=".2f",
    )
    kept = [s for s in matrix.metric_symbols if not screened_out(matrix, s)]
    return ExperimentResult(
        experiment_id="R2",
        title="Properties matrix",
        sections={"matrix": table},
        data={
            "matrix": matrix,
            "kept": kept,
            "screened_out": [s for s in matrix.metric_symbols if s not in kept],
        },
    )

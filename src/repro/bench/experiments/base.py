"""Common experiment infrastructure.

Every reproduction experiment (R1..R11, see DESIGN.md) is a module exposing
``run(...) -> ExperimentResult``.  The result carries both machine-readable
data (for tests and the agreement experiment) and rendered text sections
(the paper-table/figure analogues) so benches and examples just print it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["ExperimentResult", "DEFAULT_SEED"]

#: One seed to rule the reproduction: every experiment derives its streams
#: from this unless the caller overrides it.
DEFAULT_SEED = 2015


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment run."""

    experiment_id: str
    title: str
    sections: dict[str, str] = field(default_factory=dict)
    """Rendered text blocks (tables/figures), keyed by section name."""
    data: dict[str, object] = field(default_factory=dict)
    """Machine-readable payload for tests and downstream experiments."""

    def render(self) -> str:
        """The full printable report of the experiment."""
        blocks = [f"=== {self.experiment_id}: {self.title} ==="]
        blocks.extend(self.sections.values())
        return "\n\n".join(blocks)

    def section(self, name: str) -> str:
        """One rendered section by name."""
        try:
            return self.sections[name]
        except KeyError:
            raise ConfigurationError(
                f"experiment {self.experiment_id} has no section {name!r}; "
                f"available: {list(self.sections)}"
            ) from None

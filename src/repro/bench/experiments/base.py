"""Common experiment infrastructure.

Every reproduction experiment (R1..R19, see DESIGN.md) is a module exposing
``run(...) -> ExperimentResult``.  The result carries both machine-readable
data (for tests and the agreement experiment) and rendered text sections
(the paper-table/figure analogues) so benches and examples just print it.

The definitions live in :mod:`repro.bench.result` (a leaf module the
engine can import without triggering this package's ``__init__``); this
module re-exports them for the experiment drivers and existing callers.
"""

from __future__ import annotations

from repro.bench.result import DEFAULT_SEED, ExperimentResult

__all__ = ["ExperimentResult", "DEFAULT_SEED"]

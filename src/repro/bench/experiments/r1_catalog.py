"""R1 — the metric catalog table.

The paper's first artifact: the large set of candidate metrics gathered from
the literature, with definition, range, orientation and family.  Here the
table is generated from the metric registry itself, so catalog and
implementation cannot drift apart.
"""

from __future__ import annotations

import math

from repro.bench.engine.context import RunContext
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import ExperimentResult
from repro.metrics.registry import MetricRegistry, default_registry
from repro.reporting.tables import format_table

__all__ = ["run", "SPEC"]


def _bound(value: float) -> str:
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return format(value, "g")


def run(
    registry: MetricRegistry | None = None, context: RunContext | None = None
) -> ExperimentResult:
    """Generate the catalog table for ``registry`` (default: all candidates)."""
    registry = registry if registry is not None else default_registry()
    rows = []
    for metric in registry:
        info = metric.info
        rows.append(
            [
                info.symbol,
                info.name,
                info.formula,
                info.family.value,
                f"[{_bound(info.lower_bound)}, {_bound(info.upper_bound)}]",
                info.orientation.value,
                info.chance_corrected,
                info.uses_tn,
                info.popularity,
            ]
        )
    table = format_table(
        headers=[
            "symbol",
            "name",
            "formula",
            "family",
            "range",
            "better",
            "chance-corr",
            "uses TN",
            "popularity",
        ],
        rows=rows,
        title="Candidate metrics for benchmarking vulnerability detection tools",
        float_format=".2f",
    )
    return ExperimentResult(
        experiment_id="R1",
        title="Metric catalog",
        sections={"catalog": table},
        data={"n_metrics": len(registry), "symbols": registry.symbols},
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R1",
        title="Metric catalog",
        artifact="table",
        runner=run,
        seedless=True,
    )
)

"""R17 (extension) — is the benchmark's verdict a property of the workload?

A benchmark's tool ranking should survive a change of workload mix.  This
experiment runs the reference suite over workload families that vary
prevalence (fixed difficulty) and difficulty (fixed prevalence), and
measures each metric's cross-workload ranking stability (mean pairwise
Kendall tau of the tool orderings).

The instructive finding: stability tracks the metric's *discriminative
power* (experiment R7), not its prevalence invariance.  A metric that
separates tools cleanly (specificity, precision on this suite) keeps its
verdict when the workload moves; composites that bunch the suite together
(F1, Jaccard, MCC) reshuffle tools on every draw even though their values
barely move.  "Stable value" and "stable ranking" are different virtues —
and a benchmark report lives on rankings.
"""

from __future__ import annotations

from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.bench.suite import ranking_stability, run_suite
from repro.metrics.registry import MetricRegistry, core_candidates
from repro.reporting.tables import format_table
from repro.stats.rank import kendall_tau
from repro.tools.suite import reference_suite
from repro.workload.generator import WorkloadConfig, generate_workload

__all__ = ["run", "SPEC"]


def _family(
    seed: int,
    n_units: int,
    prevalences: tuple[float, ...],
    chain_ranges: tuple[tuple[int, int], ...],
    tag: str,
):
    workloads = []
    for prevalence in prevalences:
        for chains in chain_ranges:
            workloads.append(
                generate_workload(
                    WorkloadConfig(
                        n_units=n_units,
                        prevalence=prevalence,
                        chain_length_range=chains,
                        seed=seed,
                        name=f"{tag}-p{prevalence:g}-c{chains[0]}{chains[1]}",
                    )
                )
            )
    return workloads


def run(
    registry: MetricRegistry | None = None,
    seed: int = DEFAULT_SEED,
    n_units: int = 300,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Cross-workload ranking stability per metric, per variation axis."""
    ctx = ensure_context(context, seed=seed)
    registry_param = registry
    registry = registry if registry is not None else core_candidates()
    tools = reference_suite(seed=seed)

    prevalence_suite = run_suite(
        tools,
        _family(seed, n_units, (0.03, 0.1, 0.2, 0.35), ((2, 5),), "prev"),
    )
    difficulty_suite = run_suite(
        tools,
        _family(seed, n_units, (0.15,), ((1, 2), (3, 4), (5, 6), (7, 8)), "diff"),
    )

    stability_prevalence = {
        m.symbol: ranking_stability(prevalence_suite, m) for m in registry
    }
    stability_difficulty = {
        m.symbol: ranking_stability(difficulty_suite, m) for m in registry
    }
    combined = {
        symbol: (stability_prevalence[symbol] + stability_difficulty[symbol]) / 2
        for symbol in stability_prevalence
    }

    rows = [
        [
            symbol,
            stability_prevalence[symbol],
            stability_difficulty[symbol],
            combined[symbol],
        ]
        for symbol in sorted(combined, key=combined.get, reverse=True)
    ]
    table = format_table(
        headers=[
            "metric",
            "stability (prevalence axis)",
            "stability (difficulty axis)",
            "combined",
        ],
        rows=rows,
        title="Cross-workload tool-ranking stability (mean pairwise Kendall tau)",
    )

    # Cross-experiment link: stability vs R7 discriminative power.
    r7 = ctx.experiment(
        "R7", registry=registry_param, seed=seed, n_units=max(n_units, 300)
    )
    separation = r7.data["separation"]
    symbols = list(combined)
    link_tau = kendall_tau(
        [combined[s] for s in symbols], [separation[s] for s in symbols]
    )
    link_table = format_table(
        headers=["metric", "ranking stability", "R7 separation fraction"],
        rows=[[s, combined[s], separation[s]] for s in symbols],
        title=(
            "Ranking stability tracks discriminative power "
            f"(Kendall tau = {link_tau:.2f})"
        ),
    )

    return ExperimentResult(
        experiment_id="R17",
        title="Cross-workload ranking stability",
        sections={"stability": table, "link_to_discrimination": link_table},
        data={
            "stability_prevalence": stability_prevalence,
            "stability_difficulty": stability_difficulty,
            "combined": combined,
            "tau_vs_separation": link_tau,
        },
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R17",
        title="Cross-workload ranking stability",
        artifact="extension",
        runner=run,
        cache_defaults={"n_units": 300},
    )
)

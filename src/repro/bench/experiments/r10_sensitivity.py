"""R10 — sensitivity of the MCDA conclusion to the criteria weights.

Experts' weights are noisy; a conclusion that survives only their exact
values is no conclusion.  For each scenario we take the *elicited* AHP
hierarchy (panel-aggregated), perturb each criterion's weight over a band of
factors while keeping the per-criterion alternative priorities fixed, and
re-compose.  Because AHP synthesis is a weighted sum of local priorities,
the unperturbed baseline reproduces the R9 winner exactly, so the analysis
speaks about the actual conclusion.

Reported per scenario: per-criterion winner stability, the factor at which
the winner first flips (if any), and how ranking agreement with the baseline
decays as the heaviest criteria are perturbed.
"""

from __future__ import annotations

from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.experts.elicitation import elicit_hierarchy
from repro.experts.panel import ExpertPanel, default_panel
from repro.mcda.sensitivity import weight_sensitivity
from repro.metrics.registry import MetricRegistry, core_candidates
from repro.properties.matrix import PropertiesMatrix
from repro.reporting.figures import ascii_chart
from repro.reporting.tables import format_table
from repro.scenarios.scenarios import Scenario, canonical_scenarios

__all__ = ["run", "SPEC"]


def run(
    registry: MetricRegistry | None = None,
    scenarios: list[Scenario] | None = None,
    panel: ExpertPanel | None = None,
    seed: int = DEFAULT_SEED,
    n_resamples: int = 120,
    properties_matrix: PropertiesMatrix | None = None,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Perturb elicited criteria weights per scenario; measure stability."""
    ctx = ensure_context(context, seed=seed)
    registry = registry if registry is not None else core_candidates()
    scenarios = scenarios if scenarios is not None else canonical_scenarios()
    panel = panel if panel is not None else default_panel(seed=seed)
    if properties_matrix is None:
        properties_matrix = ctx.properties_matrix(
            registry, n_resamples=n_resamples, seed=seed
        )

    sections: dict[str, str] = {}
    overall: dict[str, float] = {}
    reversal: dict[str, dict[str, float | None]] = {}
    baseline_winners: dict[str, str] = {}

    for scenario in scenarios:
        with ctx.span("r10.elicit_hierarchy", scenario=scenario.key):
            hierarchy = elicit_hierarchy(scenario, properties_matrix, panel)
        ctx.metrics.inc("experiment.R10.units_processed")
        criteria_weights = hierarchy.criteria.priorities()
        local_priorities = {
            criterion: matrix.priorities()
            for criterion, matrix in hierarchy.alternatives.items()
        }
        alternatives = list(hierarchy.alternative_labels)

        report = weight_sensitivity(
            alternatives, local_priorities, criteria_weights, normalize="none"
        )
        assert report.baseline_best == hierarchy.compose().best  # AHP-exact
        baseline_winners[scenario.key] = report.baseline_best
        overall[scenario.key] = report.overall_stability
        reversal[scenario.key] = {
            criterion: report.reversal_factor(criterion)
            for criterion in criteria_weights
        }

        rows = []
        for criterion, weight in sorted(
            criteria_weights.items(), key=lambda kv: -kv[1]
        ):
            factor = report.reversal_factor(criterion)
            rows.append(
                [
                    criterion,
                    weight,
                    report.stability(criterion),
                    "stable" if factor is None else f"flips at x{factor:g}",
                ]
            )
        sections[f"stability_{scenario.key}"] = format_table(
            headers=["criterion", "elicited weight", "winner stability", "reversal"],
            rows=rows,
            title=(
                f"Weight sensitivity — scenario {scenario.key!r} "
                f"(baseline winner {report.baseline_best}, overall stability "
                f"{report.overall_stability:.0%})"
            ),
        )

        heaviest = sorted(criteria_weights, key=criteria_weights.get, reverse=True)[:3]
        series = {
            criterion: [
                (outcome.factor, outcome.tau_vs_baseline)
                for outcome in report.outcomes_for(criterion)
            ]
            for criterion in heaviest
        }
        sections[f"decay_{scenario.key}"] = ascii_chart(
            series,
            width=60,
            height=12,
            title=(
                f"Ranking agreement vs weight perturbation — {scenario.key!r} "
                "(heaviest criteria)"
            ),
            x_label="weight factor",
            y_label="Kendall tau vs baseline ranking",
        )

    summary = format_table(
        headers=["scenario", "baseline winner", "overall winner stability"],
        rows=[[key, baseline_winners[key], value] for key, value in overall.items()],
        title="Sensitivity summary",
    )
    sections["summary"] = summary
    return ExperimentResult(
        experiment_id="R10",
        title="MCDA weight sensitivity",
        sections=sections,
        data={
            "overall_stability": overall,
            "reversal_factors": reversal,
            "baseline_winners": baseline_winners,
        },
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R10",
        title="MCDA weight sensitivity",
        artifact="figure",
        runner=run,
        cache_defaults={"n_resamples": 120},
    )
)

"""R12 (extension) — per-vulnerability-type results and the aggregation trap.

Campaign reports in the field break results down by vulnerability class.
This experiment regenerates that breakdown for the reference campaign and
then demonstrates the aggregation problem the metrics-selection literature
warns about: macro-averaging (classes weighted equally) and micro-averaging
(sites weighted equally) can *order tools differently*, so even after the
metric is chosen, the aggregation is one more choice a benchmark must make
deliberately.
"""

from __future__ import annotations

import math

from repro.bench.engine.context import RunContext, ensure_context
from repro.bench.engine.spec import ExperimentSpec, register_spec
from repro.bench.experiments.base import DEFAULT_SEED, ExperimentResult
from repro.bench.pertype import campaign_breakdowns, macro_average, micro_average
from repro.metrics import definitions
from repro.metrics.base import Metric
from repro.reporting.tables import format_table
from repro.stats.rank import kendall_tau

__all__ = ["run", "SPEC"]


def run(
    seed: int = DEFAULT_SEED,
    n_units: int = 600,
    metric: Metric = definitions.F1,
    context: RunContext | None = None,
) -> ExperimentResult:
    """Break the reference campaign down by class and compare aggregations."""
    ctx = ensure_context(context, seed=seed)
    campaign = ctx.campaign(n_units=n_units, seed=seed)
    workload = ctx.workload(n_units=n_units, seed=seed)
    with ctx.span("r12.breakdowns", tools=len(campaign.results)):
        breakdowns = campaign_breakdowns(campaign, workload.truth)
    ctx.metrics.inc("experiment.R12.units_processed", len(breakdowns))

    # Table 1: per-class metric values per tool.
    types = next(iter(breakdowns.values())).types
    rows = []
    for tool_name in campaign.tool_names:
        breakdown = breakdowns[tool_name]
        per_type = breakdown.metric_by_type(metric)
        rows.append([tool_name] + [per_type.get(t, float("nan")) for t in types])
    per_type_table = format_table(
        headers=["tool", *[t.value for t in types]],
        rows=rows,
        title=f"{metric.name} per vulnerability class",
    )

    # Table 2: macro vs micro aggregation.
    macro: dict[str, float] = {}
    micro: dict[str, float] = {}
    agg_rows = []
    for tool_name in campaign.tool_names:
        breakdown = breakdowns[tool_name]
        macro[tool_name] = macro_average(breakdown, metric)
        micro[tool_name] = micro_average(breakdown, metric)
        agg_rows.append([tool_name, macro[tool_name], micro[tool_name]])
    aggregation_table = format_table(
        headers=["tool", "macro average", "micro average"],
        rows=agg_rows,
        title=f"Macro vs micro {metric.name}",
    )

    names = campaign.tool_names
    macro_scores = [macro[n] if math.isfinite(macro[n]) else -math.inf for n in names]
    micro_scores = [micro[n] if math.isfinite(micro[n]) else -math.inf for n in names]
    tau = kendall_tau(macro_scores, micro_scores)
    macro_winner = names[macro_scores.index(max(macro_scores))]
    micro_winner = names[micro_scores.index(max(micro_scores))]
    summary = format_table(
        headers=["aggregation", "winner", "Kendall tau macro-vs-micro"],
        rows=[["macro", macro_winner, tau], ["micro", micro_winner, tau]],
        title="The aggregation choice is a metric choice too",
    )

    return ExperimentResult(
        experiment_id="R12",
        title="Per-type breakdown and aggregation",
        sections={
            "per_type": per_type_table,
            "aggregation": aggregation_table,
            "summary": summary,
        },
        data={
            "breakdowns": breakdowns,
            "macro": macro,
            "micro": micro,
            "tau_macro_micro": tau,
            "macro_winner": macro_winner,
            "micro_winner": micro_winner,
        },
    )


SPEC = register_spec(
    ExperimentSpec(
        experiment_id="R12",
        title="Per-type breakdown and aggregation",
        artifact="extension",
        runner=run,
        depends_on=("R3",),
        cache_defaults={"n_units": 600},
    )
)

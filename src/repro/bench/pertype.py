"""Per-vulnerability-type campaign analysis.

Real benchmarking campaigns never report one number per tool: they break
results down by vulnerability class (SQL injection vs. XPath injection
detection are different skills) and then face the *aggregation problem* —
macro-averaging (every class counts equally) and micro-averaging (every
site counts equally) can order tools differently, which is itself a metric
selection question.  This module provides the breakdown and both
aggregations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bench.campaign import CampaignResult, ToolResult
from repro.errors import ConfigurationError
from repro.metrics.base import Metric
from repro.metrics.confusion import ConfusionMatrix
from repro.workload.ground_truth import GroundTruth
from repro.workload.taxonomy import VulnerabilityType

__all__ = [
    "PerTypeBreakdown",
    "breakdown_report",
    "campaign_breakdowns",
    "macro_average",
    "micro_average",
]


@dataclass(frozen=True)
class PerTypeBreakdown:
    """One tool's confusion matrices, split by vulnerability class.

    Classes with no analysis sites in the workload are absent from the
    mapping (there is nothing to score).
    """

    tool_name: str
    by_type: dict[VulnerabilityType, ConfusionMatrix]

    def __post_init__(self) -> None:
        if not self.by_type:
            raise ConfigurationError("breakdown must cover at least one class")

    @property
    def types(self) -> list[VulnerabilityType]:
        """Covered vulnerability classes, in taxonomy order."""
        return [t for t in VulnerabilityType if t in self.by_type]

    def matrix_for(self, vuln_type: VulnerabilityType) -> ConfusionMatrix:
        """The confusion matrix of one class."""
        try:
            return self.by_type[vuln_type]
        except KeyError:
            raise ConfigurationError(
                f"no sites of class {vuln_type} in this breakdown"
            ) from None

    def metric_by_type(self, metric: Metric) -> dict[VulnerabilityType, float]:
        """``metric`` per class (``nan`` where undefined)."""
        return {t: metric.value_or_nan(cm) for t, cm in self.by_type.items()}


def breakdown_report(result: ToolResult, truth: GroundTruth) -> PerTypeBreakdown:
    """Split one tool's outcome by vulnerability class."""
    flagged = result.report.flagged_sites
    cells: dict[VulnerabilityType, list[int]] = {}
    for site in truth.sites:
        tally = cells.setdefault(site.vuln_type, [0, 0, 0, 0])  # tp, fp, fn, tn
        vulnerable = site in truth.vulnerable
        reported = site in flagged
        if vulnerable and reported:
            tally[0] += 1
        elif not vulnerable and reported:
            tally[1] += 1
        elif vulnerable:
            tally[2] += 1
        else:
            tally[3] += 1
    by_type = {
        vuln_type: ConfusionMatrix(tp=tp, fp=fp, fn=fn, tn=tn)
        for vuln_type, (tp, fp, fn, tn) in cells.items()
    }
    return PerTypeBreakdown(tool_name=result.tool_name, by_type=by_type)


def macro_average(breakdown: PerTypeBreakdown, metric: Metric) -> float:
    """Unweighted mean of the per-class metric values.

    Every vulnerability class counts equally, however rare — the choice a
    benchmark makes when the *coverage of classes* is the product promise.
    Classes where the metric is undefined are skipped; if it is undefined
    everywhere the result is ``nan``.
    """
    values = [
        value
        for value in breakdown.metric_by_type(metric).values()
        if math.isfinite(value)
    ]
    if not values:
        return float("nan")
    return sum(values) / len(values)


def micro_average(breakdown: PerTypeBreakdown, metric: Metric) -> float:
    """Metric of the pooled confusion matrix.

    Every analysis *site* counts equally, so dominant classes dominate — the
    choice when total triage economics is the promise.  For any metric this
    equals the campaign-level value, by construction.
    """
    pooled: ConfusionMatrix | None = None
    for cm in breakdown.by_type.values():
        pooled = cm if pooled is None else pooled + cm
    assert pooled is not None  # __post_init__ guarantees a non-empty mapping
    return metric.value_or_nan(pooled)


def campaign_breakdowns(
    campaign: CampaignResult, truth: GroundTruth
) -> dict[str, PerTypeBreakdown]:
    """Per-type breakdowns for every tool in a campaign."""
    return {
        result.tool_name: breakdown_report(result, truth)
        for result in campaign.results
    }

"""Declarative experiment engine: specs, shared artifacts, scheduling.

The engine replaces the old call-each-other experiment chain with three
pieces:

- :class:`ExperimentSpec` — per-experiment metadata (id, title, seedless
  flag, declared dependencies) registered by each driver module;
- :class:`ArtifactStore` / :class:`RunContext` — keyed memoization of the
  shared artifacts (reference workload, campaign, properties matrices,
  upstream experiment results), with an optional on-disk JSON tier built on
  :mod:`repro.persist`;
- :func:`run_experiments` — a scheduler that topologically orders the
  dependency graph, optionally runs independent experiments in parallel,
  and emits a :class:`RunManifest` recording wall times and cache traffic.

Serial and parallel runs at the same seed produce byte-identical rendered
reports; the manifest is how you check that the expensive artifacts were
computed exactly once.
"""

from repro.bench.engine.artifacts import (
    ArtifactCodec,
    ArtifactEvent,
    ArtifactKey,
    ArtifactStore,
)
from repro.bench.engine.context import RunContext, UncacheableParameter, ensure_context
from repro.bench.engine.manifest import (
    MANIFEST_SCHEMA,
    ExperimentRunRecord,
    RunManifest,
)
from repro.bench.engine.process import ProcessOutcome, execute_in_process
from repro.bench.engine.scheduler import (
    EXECUTORS,
    EngineRun,
    run_experiments,
    topological_order,
)
from repro.bench.engine.spec import (
    ExperimentSpec,
    all_specs,
    experiment_ids,
    get_spec,
    register_spec,
)

__all__ = [
    "ArtifactCodec",
    "ArtifactEvent",
    "ArtifactKey",
    "ArtifactStore",
    "RunContext",
    "UncacheableParameter",
    "ensure_context",
    "MANIFEST_SCHEMA",
    "ExperimentRunRecord",
    "RunManifest",
    "EngineRun",
    "EXECUTORS",
    "ProcessOutcome",
    "execute_in_process",
    "run_experiments",
    "topological_order",
    "ExperimentSpec",
    "all_specs",
    "experiment_ids",
    "get_spec",
    "register_spec",
]

"""Declarative experiment engine: specs, shared artifacts, scheduling.

The engine replaces the old call-each-other experiment chain with three
pieces:

- :class:`ExperimentSpec` — per-experiment metadata (id, title, seedless
  flag, declared dependencies) registered by each driver module;
- :class:`ArtifactStore` / :class:`RunContext` — keyed memoization of the
  shared artifacts (reference workload, campaign, properties matrices,
  upstream experiment results), with an optional on-disk JSON tier built on
  :mod:`repro.persist`;
- :func:`run_experiments` — a fault-tolerant scheduler that topologically
  orders the dependency graph, optionally runs independent experiments in
  parallel, survives failures (``keep_going`` / ``retries`` / ``timeout``,
  cascade-skipping dependents), resumes interrupted runs from a prior
  manifest, and emits a :class:`RunManifest` recording wall times, cache
  traffic and per-experiment statuses;
- :mod:`~repro.bench.engine.faults` — a deterministic fault-injection
  harness (fail-on-attempt-K, hang-for-N-seconds, corrupt-artifact-bytes)
  the test suite uses to exercise every failure path on both executors.

Serial and parallel runs at the same seed produce byte-identical rendered
reports; the manifest is how you check that the expensive artifacts were
computed exactly once.
"""

from repro.bench.engine.artifacts import (
    ArtifactCodec,
    ArtifactEvent,
    ArtifactKey,
    ArtifactStore,
)
from repro.bench.engine.context import RunContext, UncacheableParameter, ensure_context
from repro.bench.engine.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_file,
    parse_fault,
)
from repro.bench.engine.manifest import (
    MANIFEST_SCHEMA,
    STATUSES,
    ExperimentRunRecord,
    FailureRecord,
    RunManifest,
)
from repro.bench.engine.process import ProcessOutcome, execute_in_process
from repro.bench.engine.shards import (
    SHARD_MANIFEST_SCHEMA,
    SHARD_STATUSES,
    ShardedCampaignRun,
    ShardRunManifest,
    ShardRunRecord,
    run_sharded_campaign,
    shard_fault_id,
)
from repro.bench.engine.scheduler import (
    EXECUTORS,
    EngineRun,
    ErrorPolicy,
    run_experiments,
    topological_order,
)
from repro.bench.engine.spec import (
    ExperimentSpec,
    all_specs,
    experiment_ids,
    get_spec,
    register_spec,
)

__all__ = [
    "ArtifactCodec",
    "ArtifactEvent",
    "ArtifactKey",
    "ArtifactStore",
    "RunContext",
    "UncacheableParameter",
    "ensure_context",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "corrupt_file",
    "parse_fault",
    "MANIFEST_SCHEMA",
    "STATUSES",
    "ExperimentRunRecord",
    "FailureRecord",
    "RunManifest",
    "EngineRun",
    "ErrorPolicy",
    "EXECUTORS",
    "ProcessOutcome",
    "execute_in_process",
    "SHARD_MANIFEST_SCHEMA",
    "SHARD_STATUSES",
    "ShardedCampaignRun",
    "ShardRunManifest",
    "ShardRunRecord",
    "run_sharded_campaign",
    "shard_fault_id",
    "run_experiments",
    "topological_order",
    "ExperimentSpec",
    "all_specs",
    "experiment_ids",
    "get_spec",
    "register_spec",
]

"""The run context experiments execute in.

A :class:`RunContext` is what an experiment driver receives instead of
calling sibling ``run()`` functions directly: it carries the master seed and
the shared :class:`~repro.bench.engine.artifacts.ArtifactStore`, and exposes
the reproduction's shared artifacts — the reference workload, the scored
campaign, properties matrices, and whole upstream experiment results — as
memoized lookups.  Running an experiment standalone still works: every
``run()`` creates a private context (and store) when none is passed, which
reproduces the historical call-each-other behaviour exactly, just without
the duplicated computation inside one run.

Cache keys are *canonical*: registries key by their symbol list, scenarios
by their keys, metrics by symbol, and omitted/``None`` parameters by the
spec's declared defaults, so a caller spelling a default out loud and a
caller relying on it land on the same artifact.  Parameters the engine
cannot canonicalize (a custom expert panel, a pre-built matrix) bypass the
cache and are recorded as ``uncached`` in the manifest rather than risking
a wrong hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro._rng import derive_seed
from repro.bench.engine.artifacts import ArtifactCodec, ArtifactKey, ArtifactStore
from repro.bench.engine.spec import get_spec
from repro.bench.result import DEFAULT_SEED, ExperimentResult

if TYPE_CHECKING:
    from repro.bench.campaign import CampaignResult
    from repro.metrics.registry import MetricRegistry
    from repro.obs import MetricsRegistry, Observability
    from repro.properties.matrix import PropertiesMatrix
    from repro.workload.generator import Workload

__all__ = [
    "RunContext",
    "ensure_context",
    "UncacheableParameter",
    "workload_codec",
    "campaign_codec",
]


class UncacheableParameter(Exception):
    """A parameter value has no canonical cache-key form."""


def _canonical(value: Any) -> Any:
    """Reduce a parameter to a stable, hashable cache-key component."""
    from repro.experts.panel import ExpertPanel
    from repro.metrics.base import Metric
    from repro.metrics.registry import MetricRegistry
    from repro.scenarios.scenarios import Scenario

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Metric):
        return ("metric", value.symbol)
    if isinstance(value, MetricRegistry):
        return ("registry", tuple(value.symbols))
    if isinstance(value, Scenario):
        return ("scenario", value.key)
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, ExpertPanel):
        # Panels carry elicited judgments with no content-derived identity.
        raise UncacheableParameter("expert panels have no canonical key")
    raise UncacheableParameter(
        f"cannot build a cache key from {type(value).__name__}"
    )


def workload_codec() -> ArtifactCodec:
    """Disk codec for Workload artifacts (repro/workload@1)."""
    from repro.persist import workload_from_dict, workload_to_dict

    return ArtifactCodec(to_dict=workload_to_dict, from_dict=workload_from_dict)


def campaign_codec() -> ArtifactCodec:
    """Disk codec for CampaignResult artifacts (repro/campaign@1)."""
    from repro.persist import campaign_from_dict, campaign_to_dict

    return ArtifactCodec(to_dict=campaign_to_dict, from_dict=campaign_from_dict)


@dataclass(frozen=True)
class RunContext:
    """Seed + shared artifact store + requester attribution for one run."""

    seed: int = DEFAULT_SEED
    store: ArtifactStore = field(default_factory=ArtifactStore)
    experiment_id: str | None = None
    """The experiment this context is attributed to (for manifest events)."""

    def for_experiment(self, experiment_id: str) -> "RunContext":
        """A context sharing this store, attributed to ``experiment_id``."""
        return RunContext(
            seed=self.seed, store=self.store, experiment_id=experiment_id
        )

    def stream_seed(self, key: str) -> int:
        """A deterministic child seed for a named substream of this run."""
        return derive_seed(self.seed, key)

    # -- observability ------------------------------------------------------
    @property
    def obs(self) -> "Observability":
        """The run's observability bundle (lives on the shared store)."""
        return self.store.obs

    @property
    def metrics(self) -> "MetricsRegistry":
        """Counter/gauge/histogram registry for this run."""
        return self.store.obs.metrics

    def span(self, name: str, **args: Any):
        """Open a tracer span attributed to this run (no-op when disabled).

        Experiment drivers instrument themselves with
        ``with ctx.span("r4.metric_values", metrics=len(registry)): ...``;
        the spans land in the same timeline the engine writes for
        ``--trace``.
        """
        return self.store.obs.tracer.span(name, **args)

    # -- generic keyed artifacts -------------------------------------------
    def artifact(
        self,
        kind: str,
        name: str,
        params: dict[str, Any],
        compute,
        codec: ArtifactCodec | None = None,
    ) -> Any:
        """Memoize ``compute()`` under ``(kind, name, params)``."""
        key = ArtifactKey(
            kind=kind,
            name=name,
            params=tuple(sorted((k, _canonical(v)) for k, v in params.items())),
        )
        return self.store.get_or_compute(
            key, compute, codec=codec, requester=self.experiment_id
        )

    # -- the shared reproduction artifacts ---------------------------------
    def workload(self, n_units: int = 600, seed: int | None = None) -> "Workload":
        """The reference workload for ``(seed, n_units)``, computed once."""
        seed = self.seed if seed is None else seed

        def compute() -> "Workload":
            from repro.bench.experiments.r3_campaign import reference_workload

            workload = reference_workload(seed=seed, n_units=n_units)
            self.metrics.inc(
                "engine.workload.units_generated", len(workload.units)
            )
            return workload

        return self.artifact(
            "workload",
            "reference",
            {"seed": seed, "n_units": n_units},
            compute,
            codec=workload_codec(),
        )

    def campaign(self, n_units: int = 600, seed: int | None = None) -> "CampaignResult":
        """The reference campaign for ``(seed, n_units)``, computed once."""
        seed = self.seed if seed is None else seed

        def compute() -> "CampaignResult":
            from repro.bench.campaign import run_campaign
            from repro.tools.suite import reference_suite

            workload = self.workload(n_units=n_units, seed=seed)
            campaign = run_campaign(reference_suite(seed=seed), workload)
            self.metrics.inc("engine.campaign.tools_run", len(campaign.results))
            self.metrics.inc("engine.campaign.sites_scored", workload.n_sites)
            return campaign

        return self.artifact(
            "campaign",
            "reference",
            {"seed": seed, "n_units": n_units},
            compute,
            codec=campaign_codec(),
        )

    def properties_matrix(
        self,
        registry: "MetricRegistry",
        n_resamples: int,
        seed: int | None = None,
    ) -> "PropertiesMatrix":
        """The good-metric properties matrix for ``registry``, computed once
        per ``(symbols, seed, n_resamples)``."""
        seed = self.seed if seed is None else seed

        def compute() -> "PropertiesMatrix":
            from repro.properties.base import AssessmentContext
            from repro.properties.matrix import build_properties_matrix

            context = AssessmentContext.default(seed=seed, n_resamples=n_resamples)
            return build_properties_matrix(registry, context=context)

        return self.artifact(
            "properties_matrix",
            "assessment",
            {"registry": registry, "seed": seed, "n_resamples": n_resamples},
            compute,
        )

    # -- upstream experiment results ---------------------------------------
    def _experiment_key(
        self, spec: Any, passed: dict[str, Any]
    ) -> ArtifactKey | None:
        """The cache key for one experiment invocation; ``None`` if unkeyable."""
        merged: dict[str, Any] = {**spec.cache_defaults, **passed}
        if not spec.seedless:
            merged.setdefault("seed", self.seed)
        try:
            key_params = tuple(
                sorted((k, _canonical(v)) for k, v in merged.items())
            )
        except UncacheableParameter:
            return None
        return ArtifactKey("experiment", spec.experiment_id, key_params)

    def experiment(self, experiment_id: str, **params: Any) -> ExperimentResult:
        """Run (or reuse) experiment ``experiment_id`` with ``params``.

        ``None``-valued parameters are dropped — the driver applies its own
        default, and the cache key is normalized through the spec's
        ``cache_defaults`` so implicit and explicit defaults coincide.
        """
        spec = get_spec(experiment_id)
        passed = {k: v for k, v in params.items() if v is not None}

        def compute() -> ExperimentResult:
            # The runner inherits *this* context, so the work a nested run
            # performs stays attributed to the experiment that asked for it
            # — manifest records are then identical in serial and parallel.
            return spec.runner(context=self, **passed)

        key = self._experiment_key(spec, passed)
        if key is None:
            self.store.record_uncached(
                ArtifactKey("experiment", spec.experiment_id),
                requester=self.experiment_id,
            )
            return compute()
        return self.store.get_or_compute(
            key, compute, requester=self.experiment_id
        )

    def experiment_result(
        self, experiment_id: str, **params: Any
    ) -> ExperimentResult:
        """Like :meth:`experiment`, but an already-computed result comes back
        without recording a cache event.

        The scheduler collects results through this after the run, so the
        manifest and the metrics counters reflect experiment work only —
        not the engine's own bookkeeping lookups.
        """
        spec = get_spec(experiment_id)
        passed = {k: v for k, v in params.items() if v is not None}
        key = self._experiment_key(spec, passed)
        if key is not None:
            try:
                return self.store.peek(key)
            except KeyError:
                pass
        return self.experiment(experiment_id, **params)


def ensure_context(
    context: RunContext | None, seed: int = DEFAULT_SEED
) -> RunContext:
    """``context`` if given, else a fresh standalone context for ``seed``."""
    if context is not None:
        return context
    return RunContext(seed=seed)

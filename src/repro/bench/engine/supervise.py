"""Crash-supervision primitives: graceful shutdown and worker heartbeats.

Two small pieces the sharded runner composes into crash safety:

- :class:`ShutdownSignal` / :func:`graceful_shutdown` — a cooperative
  stop request.  The CLI installs SIGTERM/SIGINT handlers that *request*
  shutdown; the runner checks the flag between scheduling decisions,
  stops submitting, drains in-flight shards, flushes the journal, and
  writes a partial manifest.  A second signal abandons cooperation and
  raises :class:`KeyboardInterrupt` (the journal is already durable, so
  even the hard path loses nothing that was folded).
- :class:`HeartbeatBoard` — a per-slot array of worker heartbeats
  (``time.monotonic_ns()``, comparable across processes on the same
  host), shared-memory-backed for the process executor and plain-numpy
  for threads.  Workers beat at shard phase boundaries; the parent's
  watchdog times a shard out only when its *heartbeat* goes silent past
  ``--timeout``, which distinguishes a hung worker (no beats) from a
  slow-but-alive one (beats keep arriving) — the distinction the
  Android-tools study showed real campaigns need.

Slot lifecycle mirrors :class:`~repro.bench.engine.transport.CellRing`:
the parent owns allocation (acquire on submit, release on completion),
workers only ever write their assigned slot, and an abandoned (hung)
worker's slot is deliberately *leaked* for the campaign's lifetime so a
late write cannot corrupt a reused slot.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ShutdownSignal",
    "graceful_shutdown",
    "HeartbeatBoard",
]


class ShutdownSignal:
    """A cooperative stop request threaded through campaign loops.

    Thread-safe and monotonic: once requested it stays requested, and the
    first request's reason wins (it names the signal that started the
    drain, not any follow-ups).
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self.reason: str | None = None

    @property
    def requested(self) -> bool:
        """Whether a drain has been requested."""
        return self._event.is_set()

    def request(self, reason: str = "shutdown") -> None:
        """Request a graceful drain (idempotent; first reason wins)."""
        with self._lock:
            if self.reason is None:
                self.reason = reason
        self._event.set()


@contextmanager
def graceful_shutdown(
    signums: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[ShutdownSignal]:
    """Install drain-on-signal handlers for the duration of a campaign.

    The first signal requests a graceful drain through the yielded
    :class:`ShutdownSignal`; a repeat signal raises
    :class:`KeyboardInterrupt` to force the issue.  Handlers are only
    installable from the main thread — elsewhere the yielded signal is
    simply never armed (still usable programmatically).  Previous
    handlers are restored on exit.
    """
    shutdown = ShutdownSignal()
    if threading.current_thread() is not threading.main_thread():
        yield shutdown
        return

    def handler(signum: int, frame: object) -> None:
        if shutdown.requested:
            raise KeyboardInterrupt(
                f"second {signal.Signals(signum).name} — abandoning drain"
            )
        shutdown.request(signal.Signals(signum).name)

    previous = {signum: signal.signal(signum, handler) for signum in signums}
    try:
        yield shutdown
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)


class HeartbeatBoard:
    """A board of per-slot worker heartbeats (int64 monotonic-ns stamps).

    ``create``/``attach`` build the shared-memory variant for process
    executors (workers attach by segment name, exactly like the cell
    ring); ``local`` builds a plain in-process array for the thread
    executor.  ``0`` means "never beaten" — the parent then anchors the
    hung check on submission time instead.
    """

    def __init__(self, array: np.ndarray, shm=None, owner: bool = False):
        self._array = array
        self._shm = shm
        self._owner = owner
        self.n_slots = int(array.shape[0])
        self._free: list[int] = list(range(self.n_slots)) if owner or shm is None else []

    @property
    def name(self) -> str | None:
        """The segment name workers attach by (``None`` for local boards)."""
        return self._shm.name if self._shm is not None else None

    @classmethod
    def create(cls, n_slots: int) -> "HeartbeatBoard":
        """Create (parent side) a shared-memory board of ``n_slots``."""
        from repro.bench.engine.transport import create_segment

        if n_slots < 1:
            raise ConfigurationError(
                f"heartbeat board needs >= 1 slot, got {n_slots}"
            )
        shm = create_segment(n_slots * 8)
        array = np.ndarray((n_slots,), dtype=np.int64, buffer=shm.buf)
        array[:] = 0
        return cls(array, shm=shm, owner=True)

    @classmethod
    def local(cls, n_slots: int) -> "HeartbeatBoard":
        """An in-process board for the thread executor (no shm)."""
        if n_slots < 1:
            raise ConfigurationError(
                f"heartbeat board needs >= 1 slot, got {n_slots}"
            )
        return cls(np.zeros(n_slots, dtype=np.int64))

    @classmethod
    def attach(cls, name: str, n_slots: int) -> "HeartbeatBoard":
        """Attach (worker side) to a board the parent created."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        array = np.ndarray((n_slots,), dtype=np.int64, buffer=shm.buf)
        return cls(array, shm=shm, owner=False)

    # -- parent-side slot lifecycle -----------------------------------------
    def acquire(self) -> int | None:
        """Claim (and zero) a free slot, or ``None`` when all are leaked."""
        if not self._free:
            return None
        slot = self._free.pop()
        self._array[slot] = 0
        return slot

    def release(self, slot: int) -> None:
        """Return a slot once its task resolved (never for abandoned ones)."""
        self._free.append(slot)

    # -- the beats -----------------------------------------------------------
    def beat(self, slot: int) -> None:
        """Stamp ``slot`` with now (worker side, at phase boundaries)."""
        self._array[slot] = time.monotonic_ns()

    def beater(self, slot: int) -> Callable[[], None]:
        """A zero-argument beat bound to ``slot`` (for task plumbing)."""
        return lambda: self.beat(slot)

    def last_beat(self, slot: int) -> int:
        """The slot's latest stamp in monotonic ns (0 = never beaten)."""
        return int(self._array[slot])

    def close(self) -> None:
        """Detach; the creating side also unlinks the segment."""
        self._array = None
        if self._shm is not None:
            self._shm.close()
            if self._owner:
                self._shm.unlink()
                self._owner = False

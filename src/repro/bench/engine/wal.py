"""Write-ahead checkpoint journal for sharded campaigns.

A million-unit campaign folds shards for minutes; before this module, a
parent crash (OOM kill, ``kill -9``, power loss) lost every folded shard
because ``--resume`` needs a fully written JSON manifest, which only
exists once the run *ends*.  The journal closes that window: the runner
appends one fsync'd record per folded shard as it folds, so the crash
loses at most the shard that was mid-append — and the shard seeds are
pure functions of their indices, so replay + re-run is bit-identical to
an uninterrupted run (architecture invariant 8).

Format (``repro/shard-wal@1``) — append-only binary, designed so a torn
tail (the one failure mode an fsync'd appender has) is detected and
discarded rather than misparsed:

- 6-byte magic ``RWAL1\\n`` (also how the CLI's ``--resume`` sniffing
  distinguishes a journal from a JSON manifest);
- records of ``<u32 payload length> <u32 crc32> <u8 type> <payload>``
  (little-endian), where the crc covers the type byte plus the payload;
- record type 1 — a JSON **header** carrying the campaign identity
  (seed, scale, shard size, ecosystem, tool families, tool names),
  written once at create time;
- record type 2 — one folded shard's **cells** as the little-endian
  int64 flat vector of :meth:`ShardCells.to_array
  <repro.bench.streaming.ShardCells.to_array>`.

Replay (:func:`replay_journal`) walks records until the first short,
crc-mismatched, or unknown record and treats everything from there as the
torn tail; duplicate shard indices keep the first record (a crash between
fold and append can make the *re-run* shard's record a duplicate, and
first-wins keeps replay idempotent).  :meth:`ShardJournal.resume`
truncates the file back to the valid prefix before appending, so one
journal survives any number of crash/resume cycles.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any

import numpy as np

from repro.errors import ConfigurationError, PersistError
from repro.persist import WAL_MAGIC, WAL_SCHEMA

__all__ = [
    "WAL_MAGIC",
    "WAL_SCHEMA",
    "JournalHeader",
    "JournalReplay",
    "ShardJournal",
    "is_journal",
    "replay_journal",
]

#: One record's frame: payload length, crc32(type byte + payload), type.
_RECORD = struct.Struct("<IIB")

_HEADER_RECORD = 1
_CELLS_RECORD = 2


@dataclass(frozen=True)
class JournalHeader:
    """The campaign identity a journal's first record pins down.

    Enough to rebuild the shard plan and tool suite without the original
    command line, and to decode every cells record (``tool_names`` fixes
    the flat-vector framing).
    """

    seed: int
    scale: int
    shard_size: int
    ecosystem: str
    tool_names: tuple[str, ...]
    tool_families: tuple[str, ...] | None = None

    def to_dict(self) -> dict[str, Any]:
        """Serialize for the journal's header record."""
        payload: dict[str, Any] = {
            "schema": WAL_SCHEMA,
            "seed": self.seed,
            "scale": self.scale,
            "shard_size": self.shard_size,
            "ecosystem": self.ecosystem,
            "tool_names": list(self.tool_names),
        }
        if self.tool_families is not None:
            payload["tool_families"] = list(self.tool_families)
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JournalHeader":
        """Rebuild a header, failing loudly on schema drift."""
        found = payload.get("schema")
        if found != WAL_SCHEMA:
            raise ConfigurationError(
                f"expected journal schema {WAL_SCHEMA!r}, found {found!r}"
            )
        return cls(
            seed=payload["seed"],
            scale=payload["scale"],
            shard_size=payload["shard_size"],
            ecosystem=payload["ecosystem"],
            tool_names=tuple(payload["tool_names"]),
            tool_families=(
                tuple(payload["tool_families"])
                if payload.get("tool_families") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class JournalReplay:
    """What a journal held: header, deduped cells vectors, tail health."""

    header: JournalHeader | None
    """``None`` when the tail tore before the header finished."""
    arrays: tuple[np.ndarray, ...]
    """One int64 flat vector per folded shard, first record winning on
    duplicate shard indices (replay is idempotent across crash cycles)."""
    valid_bytes: int
    """File offset of the last whole record; resume truncates to here."""
    torn: bool
    """Whether bytes past ``valid_bytes`` were discarded as a torn tail."""
    duplicates: int
    """Duplicate shard records dropped (kept-first)."""

    @property
    def shard_indices(self) -> list[int]:
        """The folded shard indices, in journal order."""
        return [int(array[0]) for array in self.arrays]


def is_journal(path: str | Path) -> bool:
    """Whether ``path`` starts with the shard-journal magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(WAL_MAGIC)) == WAL_MAGIC
    except OSError:
        return False


def _frame(rtype: int, payload: bytes) -> bytes:
    crc = zlib.crc32(bytes([rtype]) + payload)
    return _RECORD.pack(len(payload), crc, rtype) + payload


def replay_journal(path: str | Path) -> JournalReplay:
    """Read every intact record of a journal, tolerating a torn tail.

    Raises :class:`~repro.errors.PersistError` only when the file is not a
    journal at all (missing/bad magic); damage *past* the magic is the
    torn-tail case the format exists to survive, reported via
    :attr:`JournalReplay.torn` instead of an exception.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as error:
        raise PersistError(
            f"cannot read journal {path}: {error}", path=str(path)
        ) from error
    if not data.startswith(WAL_MAGIC):
        raise PersistError(
            f"{path} is not a shard journal (bad magic)", path=str(path)
        )
    offset = len(WAL_MAGIC)
    header: JournalHeader | None = None
    arrays: list[np.ndarray] = []
    seen: set[int] = set()
    duplicates = 0
    torn = False
    while offset < len(data):
        if len(data) - offset < _RECORD.size:
            torn = True
            break
        length, crc, rtype = _RECORD.unpack_from(data, offset)
        start = offset + _RECORD.size
        end = start + length
        if end > len(data):
            torn = True
            break
        payload = data[start:end]
        if zlib.crc32(bytes([rtype]) + payload) != crc:
            torn = True
            break
        if rtype == _HEADER_RECORD:
            try:
                decoded = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                torn = True
                break
            if header is None:  # first header wins, like cells records
                header = JournalHeader.from_dict(decoded)
        elif rtype == _CELLS_RECORD:
            if length == 0 or length % 8:
                torn = True
                break
            array = np.frombuffer(payload, dtype="<i8").astype(np.int64)
            index = int(array[0])
            if index in seen:
                duplicates += 1
            else:
                seen.add(index)
                arrays.append(array)
        else:
            # An unknown record type cannot be skipped safely (we cannot
            # trust its framing came from us) — treat it as tail damage.
            torn = True
            break
        offset = end
    return JournalReplay(
        header=header,
        arrays=tuple(arrays),
        valid_bytes=offset,
        torn=torn,
        duplicates=duplicates,
    )


class ShardJournal:
    """The append side of the write-ahead journal.

    Every :meth:`append_cells` is flushed and ``fsync``'d before it
    returns: once the runner moves on from a fold, that shard survives any
    parent crash.  The journal never rewrites existing bytes — resume
    truncates a torn tail once, then appends.
    """

    def __init__(self, path: Path, handle: IO[bytes], header: JournalHeader):
        self.path = path
        self._handle = handle
        self.header = header

    @classmethod
    def create(cls, path: str | Path, header: JournalHeader) -> "ShardJournal":
        """Start a fresh journal at ``path`` (truncating any old file)."""
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(path, "wb")
        handle.write(WAL_MAGIC)
        payload = json.dumps(header.to_dict(), sort_keys=True).encode("utf-8")
        handle.write(_frame(_HEADER_RECORD, payload))
        handle.flush()
        os.fsync(handle.fileno())
        return cls(path, handle, header)

    @classmethod
    def resume(cls, path: str | Path) -> tuple["ShardJournal", JournalReplay]:
        """Reopen a journal for appending, discarding any torn tail.

        Returns the journal plus the replay of its valid prefix; the
        caller folds the replayed cells and re-runs only missing shards.
        """
        path = Path(path)
        replay = replay_journal(path)
        if replay.header is None:
            raise PersistError(
                f"journal {path} has no intact header record — it cannot "
                "identify its campaign; start over without --resume",
                path=str(path),
            )
        handle = open(path, "r+b")
        handle.truncate(replay.valid_bytes)
        handle.seek(replay.valid_bytes)
        return cls(path, handle, replay.header), replay

    def append_cells(self, flat: np.ndarray) -> None:
        """Durably append one folded shard's flat int64 cells vector."""
        payload = np.ascontiguousarray(flat, dtype="<i8").tobytes()
        self._handle.write(_frame(_CELLS_RECORD, payload))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the file handle (appends are already durable)."""
        if not self._handle.closed:
            self._handle.close()

"""Run manifests: the observability record of one engine run.

Every engine run emits a manifest — per-experiment wall time, the artifact
requests each experiment made (with hit/miss status), effective seeds, and
store-wide totals — as schema-tagged JSON.  Operators diff manifests across
commits to track the performance trajectory, and tests assert cache
semantics ("the campaign was computed exactly once") on them instead of
instrumenting internals.

Since the fault-tolerance layer, the manifest is also the run's *failure
ledger*: every record carries a ``status`` (``completed`` | ``failed`` |
``skipped`` | ``timeout``), the attempt count, a structured
:class:`FailureRecord` for failures/timeouts, and a ``skip_reason`` for
cascade-skipped dependents.  ``repro run --resume <manifest.json>`` feeds a
manifest back into the scheduler to re-execute only the non-completed
experiments.
"""

from __future__ import annotations

import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Any

from repro.bench.engine.artifacts import ArtifactEvent
from repro.errors import ConfigurationError

__all__ = [
    "ExperimentRunRecord",
    "FailureRecord",
    "RunManifest",
    "MANIFEST_SCHEMA",
    "STATUSES",
]

MANIFEST_SCHEMA = "repro/run-manifest@2"
#: Schemas from before the fault-tolerance layer that still load (their
#: records default to ``status="completed"``, ``attempts=1``).
_LEGACY_SCHEMAS = ("repro/run-manifest@1",)

#: Valid values of :attr:`ExperimentRunRecord.status`.
STATUSES = ("completed", "failed", "skipped", "timeout")

#: How many trailing traceback lines a :class:`FailureRecord` keeps.
_TRACEBACK_TAIL = 12


@dataclass(frozen=True)
class FailureRecord:
    """Structured capture of one experiment's terminal failure."""

    error_type: str
    """Exception class name (e.g. ``InjectedFault``, ``ToolError``)."""
    message: str
    traceback: str
    """Trailing lines of the formatted traceback (empty for timeouts)."""
    attempts: int
    """How many attempts were made before giving up."""

    @classmethod
    def from_exception(
        cls, error: BaseException, attempts: int
    ) -> "FailureRecord":
        """Summarize ``error`` (keeps the last few traceback lines)."""
        lines = traceback_module.format_exception(
            type(error), error, error.__traceback__
        )
        tail = "".join(lines[-_TRACEBACK_TAIL:]).rstrip()
        return cls(
            error_type=type(error).__name__,
            message=str(error),
            traceback=tail,
            attempts=attempts,
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialize for the manifest."""
        return {
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FailureRecord":
        """Rebuild a failure record from its manifest entry."""
        return cls(
            error_type=payload["error_type"],
            message=payload["message"],
            traceback=payload.get("traceback", ""),
            attempts=payload.get("attempts", 1),
        )


@dataclass(frozen=True)
class ExperimentRunRecord:
    """One experiment's entry in the run manifest."""

    experiment_id: str
    title: str
    seed: int | None
    """Effective seed (``None`` for seedless experiments)."""
    wall_seconds: float
    artifacts: tuple[ArtifactEvent, ...] = ()
    """Artifact requests attributed to this experiment, in order."""
    status: str = "completed"
    """``completed`` | ``failed`` | ``skipped`` | ``timeout``."""
    attempts: int = 1
    """Execution attempts made (0 for cascade-skipped experiments)."""
    failure: FailureRecord | None = None
    """The terminal failure, for ``failed``/``timeout`` records."""
    skip_reason: str | None = None
    """Why a ``skipped`` record never ran (e.g. ``dependency R3 failed``)."""

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ConfigurationError(
                f"invalid record status {self.status!r}; expected one of "
                f"{STATUSES}"
            )

    @property
    def completed(self) -> bool:
        """Whether this experiment finished and delivered its report."""
        return self.status == "completed"

    @property
    def cache_counts(self) -> dict[str, int]:
        """Hit/miss totals over this experiment's artifact requests."""
        totals = {"hit": 0, "disk-hit": 0, "miss": 0, "uncached": 0, "corrupt": 0}
        for event in self.artifacts:
            totals[event.status] = totals.get(event.status, 0) + 1
        return totals

    def to_dict(self) -> dict[str, Any]:
        """Serialize for the manifest (failure record inline, if any)."""
        payload: dict[str, Any] = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "seed": self.seed,
            "wall_seconds": self.wall_seconds,
            "status": self.status,
            "attempts": self.attempts,
            "artifacts": [
                {
                    "key": event.key,
                    "status": event.status,
                    "seconds": event.seconds,
                }
                for event in self.artifacts
            ],
            "cache": self.cache_counts,
        }
        if self.failure is not None:
            payload["failure"] = self.failure.to_dict()
        if self.skip_reason is not None:
            payload["skip_reason"] = self.skip_reason
        return payload


@dataclass(frozen=True)
class RunManifest:
    """The full record of one engine run."""

    seed: int
    jobs: int
    wall_seconds: float
    records: tuple[ExperimentRunRecord, ...]
    cache_dir: str | None = None
    extra: dict[str, Any] = field(default_factory=dict)
    """Free-form additions; the scheduler stores the tracer's span summary
    under ``extra["observability"]`` when tracing is enabled, and resume
    bookkeeping under ``extra["resume"]``."""

    @property
    def observability(self) -> dict[str, Any] | None:
        """The span summary recorded for this run, if it was traced."""
        return self.extra.get("observability")

    @property
    def experiment_ids(self) -> list[str]:
        """The run's experiment ids, in record order."""
        return [record.experiment_id for record in self.records]

    @property
    def ok(self) -> bool:
        """Whether every experiment in this run completed."""
        return all(record.completed for record in self.records)

    @property
    def statuses(self) -> dict[str, str]:
        """Per-experiment status, keyed by id."""
        return {record.experiment_id: record.status for record in self.records}

    @property
    def incomplete_ids(self) -> list[str]:
        """Experiments a ``--resume`` run must re-execute."""
        return [r.experiment_id for r in self.records if not r.completed]

    def status_counts(self) -> dict[str, int]:
        """How many records ended in each status."""
        totals = {status: 0 for status in STATUSES}
        for record in self.records:
            totals[record.status] += 1
        return totals

    def record_for(self, experiment_id: str) -> ExperimentRunRecord:
        """One experiment's record, by id."""
        for record in self.records:
            if record.experiment_id == experiment_id:
                return record
        raise ConfigurationError(
            f"manifest has no record for {experiment_id!r}; "
            f"present: {self.experiment_ids}"
        )

    def cache_counts(self, key_prefix: str = "") -> dict[str, int]:
        """Hit/miss totals across every experiment, optionally filtered to
        artifact keys starting with ``key_prefix`` (e.g. ``"campaign:"``)."""
        totals = {"hit": 0, "disk-hit": 0, "miss": 0, "uncached": 0, "corrupt": 0}
        for record in self.records:
            for event in record.artifacts:
                if event.key.startswith(key_prefix):
                    totals[event.status] = totals.get(event.status, 0) + 1
        return totals

    def summary_line(self) -> str:
        """A one-line human summary for logs and perf tracking."""
        totals = self.cache_counts()
        line = (
            f"{len(self.records)} experiments in {self.wall_seconds:.1f}s "
            f"(jobs={self.jobs}, seed={self.seed}; artifact cache: "
            f"{totals['hit']} hits, {totals['disk-hit']} disk hits, "
            f"{totals['miss']} misses)"
        )
        status_totals = self.status_counts()
        problems = [
            f"{count} {status}"
            for status, count in status_totals.items()
            if status != "completed" and count
        ]
        if problems:
            line += f" [{', '.join(problems)}]"
        return line

    def to_dict(self) -> dict[str, Any]:
        """Serialize with the manifest schema tag."""
        return {
            "schema": MANIFEST_SCHEMA,
            "seed": self.seed,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cache_dir": self.cache_dir,
            "experiments": [record.to_dict() for record in self.records],
            "totals": self.cache_counts(),
            "statuses": self.status_counts(),
            **({"extra": self.extra} if self.extra else {}),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest, failing loudly on schema drift.

        Manifests written before the fault-tolerance layer
        (``repro/run-manifest@1``) still load; their records default to
        ``status="completed"``.
        """
        found = payload.get("schema")
        if found != MANIFEST_SCHEMA and found not in _LEGACY_SCHEMAS:
            raise ConfigurationError(
                f"expected schema {MANIFEST_SCHEMA!r} "
                f"(or legacy {', '.join(map(repr, _LEGACY_SCHEMAS))}), "
                f"found {found!r}"
            )
        records = tuple(
            ExperimentRunRecord(
                experiment_id=entry["experiment_id"],
                title=entry["title"],
                seed=entry["seed"],
                wall_seconds=entry["wall_seconds"],
                artifacts=tuple(
                    ArtifactEvent(
                        key=event["key"],
                        status=event["status"],
                        requester=entry["experiment_id"],
                        seconds=event["seconds"],
                    )
                    for event in entry["artifacts"]
                ),
                status=entry.get("status", "completed"),
                attempts=entry.get("attempts", 1),
                failure=(
                    FailureRecord.from_dict(entry["failure"])
                    if entry.get("failure") is not None
                    else None
                ),
                skip_reason=entry.get("skip_reason"),
            )
            for entry in payload["experiments"]
        )
        return cls(
            seed=payload["seed"],
            jobs=payload["jobs"],
            wall_seconds=payload["wall_seconds"],
            records=records,
            cache_dir=payload.get("cache_dir"),
            extra=payload.get("extra", {}),
        )

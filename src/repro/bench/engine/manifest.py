"""Run manifests: the observability record of one engine run.

Every engine run emits a manifest — per-experiment wall time, the artifact
requests each experiment made (with hit/miss status), effective seeds, and
store-wide totals — as schema-tagged JSON.  Operators diff manifests across
commits to track the performance trajectory, and tests assert cache
semantics ("the campaign was computed exactly once") on them instead of
instrumenting internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bench.engine.artifacts import ArtifactEvent
from repro.errors import ConfigurationError

__all__ = ["ExperimentRunRecord", "RunManifest", "MANIFEST_SCHEMA"]

MANIFEST_SCHEMA = "repro/run-manifest@1"


@dataclass(frozen=True)
class ExperimentRunRecord:
    """One experiment's entry in the run manifest."""

    experiment_id: str
    title: str
    seed: int | None
    """Effective seed (``None`` for seedless experiments)."""
    wall_seconds: float
    artifacts: tuple[ArtifactEvent, ...] = ()
    """Artifact requests attributed to this experiment, in order."""

    @property
    def cache_counts(self) -> dict[str, int]:
        """Hit/miss totals over this experiment's artifact requests."""
        totals = {"hit": 0, "disk-hit": 0, "miss": 0, "uncached": 0}
        for event in self.artifacts:
            totals[event.status] = totals.get(event.status, 0) + 1
        return totals

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "seed": self.seed,
            "wall_seconds": self.wall_seconds,
            "artifacts": [
                {
                    "key": event.key,
                    "status": event.status,
                    "seconds": event.seconds,
                }
                for event in self.artifacts
            ],
            "cache": self.cache_counts,
        }


@dataclass(frozen=True)
class RunManifest:
    """The full record of one engine run."""

    seed: int
    jobs: int
    wall_seconds: float
    records: tuple[ExperimentRunRecord, ...]
    cache_dir: str | None = None
    extra: dict[str, Any] = field(default_factory=dict)
    """Free-form additions; the scheduler stores the tracer's span summary
    under ``extra["observability"]`` when tracing is enabled."""

    @property
    def observability(self) -> dict[str, Any] | None:
        """The span summary recorded for this run, if it was traced."""
        return self.extra.get("observability")

    @property
    def experiment_ids(self) -> list[str]:
        return [record.experiment_id for record in self.records]

    def record_for(self, experiment_id: str) -> ExperimentRunRecord:
        """One experiment's record, by id."""
        for record in self.records:
            if record.experiment_id == experiment_id:
                return record
        raise ConfigurationError(
            f"manifest has no record for {experiment_id!r}; "
            f"present: {self.experiment_ids}"
        )

    def cache_counts(self, key_prefix: str = "") -> dict[str, int]:
        """Hit/miss totals across every experiment, optionally filtered to
        artifact keys starting with ``key_prefix`` (e.g. ``"campaign:"``)."""
        totals = {"hit": 0, "disk-hit": 0, "miss": 0, "uncached": 0}
        for record in self.records:
            for event in record.artifacts:
                if event.key.startswith(key_prefix):
                    totals[event.status] = totals.get(event.status, 0) + 1
        return totals

    def summary_line(self) -> str:
        """A one-line human summary for logs and perf tracking."""
        totals = self.cache_counts()
        return (
            f"{len(self.records)} experiments in {self.wall_seconds:.1f}s "
            f"(jobs={self.jobs}, seed={self.seed}; artifact cache: "
            f"{totals['hit']} hits, {totals['disk-hit']} disk hits, "
            f"{totals['miss']} misses)"
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialize with the manifest schema tag."""
        return {
            "schema": MANIFEST_SCHEMA,
            "seed": self.seed,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cache_dir": self.cache_dir,
            "experiments": [record.to_dict() for record in self.records],
            "totals": self.cache_counts(),
            **({"extra": self.extra} if self.extra else {}),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest, failing loudly on schema drift."""
        found = payload.get("schema")
        if found != MANIFEST_SCHEMA:
            raise ConfigurationError(
                f"expected schema {MANIFEST_SCHEMA!r}, found {found!r}"
            )
        records = tuple(
            ExperimentRunRecord(
                experiment_id=entry["experiment_id"],
                title=entry["title"],
                seed=entry["seed"],
                wall_seconds=entry["wall_seconds"],
                artifacts=tuple(
                    ArtifactEvent(
                        key=event["key"],
                        status=event["status"],
                        requester=entry["experiment_id"],
                        seconds=event["seconds"],
                    )
                    for event in entry["artifacts"]
                ),
            )
            for entry in payload["experiments"]
        )
        return cls(
            seed=payload["seed"],
            jobs=payload["jobs"],
            wall_seconds=payload["wall_seconds"],
            records=records,
            cache_dir=payload.get("cache_dir"),
            extra=payload.get("extra", {}),
        )

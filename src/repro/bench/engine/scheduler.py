"""Dependency-aware, fault-tolerant experiment scheduler.

Orders the requested experiments topologically over their declared
``depends_on`` edges and runs them — serially in canonical order, or in
parallel with :mod:`concurrent.futures` when ``jobs > 1``.  Two parallel
executors are available: ``thread`` (the default) shares one in-memory
artifact store across a :class:`~concurrent.futures.ThreadPoolExecutor`,
while ``process`` dispatches to worker processes (see
:mod:`repro.bench.engine.process`) for CPU-bound speedups past the GIL.
Every stochastic component downstream derives its streams from explicit
seeds (see :mod:`repro._rng`), and shared artifacts are deduplicated under
per-key locks, so a parallel run produces byte-identical rendered reports
to a serial run at the same seed; only the wall clock changes.

Fault tolerance (the :class:`ErrorPolicy`): real campaigns are long and
failure-prone, so a failing experiment no longer aborts the suite by
default semantics alone —

- ``retries=N`` re-runs a failed experiment up to N extra times *with the
  same explicit seed*, so a transient-failure rerun is bit-identical to a
  clean run;
- ``keep_going=True`` captures a terminal failure as a structured
  :class:`~repro.bench.engine.manifest.FailureRecord` in the manifest,
  cascade-**skips** its in-set dependents (with a recorded reason), and
  lets every independent experiment run to completion;
- ``timeout=SECONDS`` bounds each attempt's wall time; an over-budget
  experiment is recorded with status ``timeout`` and its future abandoned
  (threads cannot be killed — the stale result, when it eventually
  arrives, is discarded rather than recorded);
- without ``keep_going``, the first terminal failure aborts the run: not-
  yet-started futures are cancelled, in-flight ones drained, and a
  :class:`~repro.errors.ExperimentFailedError` (or
  :class:`~repro.errors.ExperimentTimeoutError`) is raised with the
  original exception as ``__cause__``.

``resume_from=`` re-executes only a prior manifest's non-completed
experiments (against the warm artifact store / disk cache) and carries the
completed records over, so a crash-interrupted campaign finishes without
redoing finished work.

Observability: the whole run executes under an ``engine.run`` span, each
experiment under an ``experiment.<id>`` span (retry attempts additionally
under ``experiment.retry``), and the scheduler feeds the
``engine.experiments.*`` counters — ``scheduled`` / ``completed`` /
``failed`` / ``retried`` / ``skipped`` / ``timeout`` — plus the
``engine.experiment.seconds`` histogram; when tracing is on, the span
summary lands in the manifest's ``extra["observability"]``.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ThreadPoolExecutor,
    wait,
)
from contextlib import nullcontext
from dataclasses import dataclass

from repro.bench.engine.artifacts import ArtifactStore
from repro.bench.engine.context import RunContext
from repro.bench.engine.faults import FaultPlan
from repro.bench.engine.transport import cached_process_pool, evict_process_pool
from repro.bench.engine.manifest import (
    ExperimentRunRecord,
    FailureRecord,
    RunManifest,
)
from repro.bench.engine.process import ProcessOutcome, execute_in_process
from repro.bench.engine.spec import ExperimentSpec, get_spec
from repro.bench.result import DEFAULT_SEED, ExperimentResult
from repro.errors import (
    ConfigurationError,
    EngineError,
    ExperimentFailedError,
    ExperimentTimeoutError,
)
from repro.obs import Observability

__all__ = [
    "EngineRun",
    "ErrorPolicy",
    "EXECUTORS",
    "run_experiments",
    "topological_order",
]

#: Valid values for ``run_experiments(..., executor=...)`` / ``--executor``.
EXECUTORS = ("thread", "process")


@dataclass(frozen=True)
class ErrorPolicy:
    """What the scheduler does when an experiment fails or hangs."""

    keep_going: bool = False
    """Record terminal failures and continue instead of aborting."""
    retries: int = 0
    """Extra attempts per experiment after the first failure."""
    timeout: float | None = None
    """Per-attempt wall-clock budget in seconds (``None`` = unbounded)."""

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive, got {self.timeout}"
            )


@dataclass(frozen=True)
class EngineRun:
    """Results + manifest of one engine invocation."""

    results: dict[str, ExperimentResult]
    """Results of experiments that *completed*, keyed by id, in requested
    order (failed/skipped/timed-out experiments have no result)."""
    manifest: RunManifest
    store: ArtifactStore
    """The artifact store used (reusable for warm follow-up runs)."""

    @property
    def ok(self) -> bool:
        """Whether every experiment completed."""
        return self.manifest.ok


def topological_order(ids: Sequence[str]) -> list[ExperimentSpec]:
    """The requested experiments, dependencies-first.

    Edges to experiments outside the requested set are ignored — the
    artifact store satisfies those on demand.  Ties break on canonical
    experiment order, so for the full suite this degenerates to R1..R19.
    """
    specs = {spec.experiment_id: spec for spec in (get_spec(i) for i in ids)}
    remaining_deps = {
        key: {dep for dep in spec.depends_on if dep in specs}
        for key, spec in specs.items()
    }
    ordered: list[ExperimentSpec] = []
    while remaining_deps:
        ready = [key for key, deps in remaining_deps.items() if not deps]
        if not ready:
            raise ConfigurationError(
                f"dependency cycle among experiments: {sorted(remaining_deps)}"
            )
        # Pop one node at a time, lowest index first, so the serial order for
        # the full suite is exactly R1..R19 (not dependency-layer order).
        key = min(ready, key=lambda key: specs[key].index)
        ordered.append(specs[key])
        del remaining_deps[key]
        for deps in remaining_deps.values():
            deps.discard(key)
    return ordered


def _execute(
    spec: ExperimentSpec,
    context: RunContext,
    attempt: int = 1,
    faults: FaultPlan | None = None,
) -> ExperimentRunRecord:
    """Run one attempt of one experiment; return its manifest record.

    Lifecycle counters are the *scheduler's* job — a record returned here
    only counts once the scheduler accepts it, so an abandoned (timed-out)
    attempt that eventually finishes cannot skew the totals.
    """
    obs = context.obs
    child = context.for_experiment(spec.experiment_id)
    already = len(context.store.events_for(spec.experiment_id))
    params = {} if spec.seedless else {"seed": context.seed}
    retry_span = (
        obs.tracer.span(
            "experiment.retry", experiment=spec.experiment_id, attempt=attempt
        )
        if attempt > 1
        else nullcontext()
    )
    started = time.perf_counter()
    with retry_span:
        with obs.tracer.span(
            f"experiment.{spec.experiment_id}",
            title=spec.title,
            seed=None if spec.seedless else context.seed,
        ):
            if faults is not None:
                faults.apply(spec.experiment_id, attempt)
            if obs.profiler is not None:
                with obs.profiler.profile(spec.experiment_id):
                    child.experiment(spec.experiment_id, **params)
            else:
                child.experiment(spec.experiment_id, **params)
    elapsed = time.perf_counter() - started
    events = context.store.events_for(spec.experiment_id)[already:]
    return ExperimentRunRecord(
        experiment_id=spec.experiment_id,
        title=spec.title,
        seed=None if spec.seedless else context.seed,
        wall_seconds=elapsed,
        artifacts=tuple(events),
        attempts=attempt,
    )


def run_experiments(
    ids: Sequence[str] = (),
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    store: ArtifactStore | None = None,
    cache_dir: str | None = None,
    obs: Observability | None = None,
    executor: str = "thread",
    keep_going: bool = False,
    retries: int = 0,
    timeout: float | None = None,
    faults: FaultPlan | None = None,
    resume_from: RunManifest | None = None,
) -> EngineRun:
    """Run ``ids`` through the engine; returns results plus a manifest.

    ``jobs > 1`` executes independent experiments concurrently — in threads
    by default, or in worker processes with ``executor="process"`` (which
    always uses a :class:`~concurrent.futures.ProcessPoolExecutor`, even at
    ``jobs=1``).  Determinism is unaffected: every experiment receives the
    same explicit seed either way (retries included), and shared artifacts
    are computed exactly once under per-key locks regardless of arrival
    order.

    ``keep_going`` / ``retries`` / ``timeout`` form the error policy (see
    :class:`ErrorPolicy` and the module docstring).  ``faults`` installs a
    deterministic :class:`~repro.bench.engine.faults.FaultPlan`, used by
    the test suite and the CI smoke to exercise the failure paths.

    ``resume_from`` takes a prior run's manifest: only its non-completed
    experiments are (re-)executed — at the *manifest's* seed, so the
    combined results are bit-identical to a single clean run — and its
    completed records are carried into the new manifest unchanged (their
    results are not re-collected).  ``ids`` is ignored when resuming.

    ``obs`` carries the run's tracer/metrics/profiler bundle; when a
    ``store`` is reused across runs, passing ``obs`` rebinds the store's
    bundle so a warm run can still be traced on its own timeline.  The
    process executor merges each worker's metrics and spans back into this
    bundle; profiling is thread-executor-only, because cProfile sessions
    cannot be merged across processes.
    """
    policy = ErrorPolicy(keep_going=keep_going, retries=retries, timeout=timeout)
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if executor not in EXECUTORS:
        raise ConfigurationError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )

    carried: dict[str, ExperimentRunRecord] = {}
    if resume_from is not None:
        seed = resume_from.seed
        requested = list(resume_from.experiment_ids)
        carried = {
            record.experiment_id: record
            for record in resume_from.records
            if record.completed
        }
        run_ids = [key for key in requested if key not in carried]
    else:
        # Duplicate requested ids collapse to one execution and one record.
        requested = list(dict.fromkeys(get_spec(i).experiment_id for i in ids))
        run_ids = list(requested)

    ordered = topological_order(run_ids)
    if store is None:
        store = ArtifactStore(cache_dir=cache_dir, obs=obs)
    elif obs is not None:
        store.obs = obs
    obs = store.obs
    if executor == "process" and obs.profiler is not None:
        raise ConfigurationError(
            "profiling requires the thread executor: cProfile sessions "
            "cannot be merged across worker processes"
        )
    context = RunContext(seed=seed, store=store)

    records: dict[str, ExperimentRunRecord] = {}
    run_started = time.perf_counter()
    with obs.tracer.span(
        "engine.run",
        seed=seed,
        jobs=jobs,
        experiments=len(ordered),
        executor=executor,
    ):
        if not ordered:
            pass
        elif (
            executor == "thread"
            and policy.timeout is None
            and (jobs == 1 or len(ordered) == 1)
        ):
            records.update(_run_serial(ordered, context, policy, faults))
        else:
            records.update(
                _run_pooled(ordered, context, jobs, executor, policy, faults)
            )
    wall = time.perf_counter() - run_started
    obs.metrics.inc("engine.runs")
    obs.metrics.set_gauge("engine.wall_seconds", wall)
    obs.metrics.set_gauge("engine.jobs", jobs)

    # Result collection peeks at the store without recording cache events,
    # so manifest and metrics totals reflect experiment work only.  Only
    # completed experiments of *this* run have results to collect.
    results = {
        key: context.for_experiment(key).experiment_result(
            key, **({} if get_spec(key).seedless else {"seed": seed})
        )
        for key in requested
        if key in records and records[key].completed
    }
    manifest_records = tuple(
        carried[key] if key in carried else records[key] for key in requested
    )
    extra: dict[str, object] = {}
    if obs.tracer.enabled:
        extra["observability"] = {"spans": obs.tracer.summary()}
    if resume_from is not None:
        extra["resume"] = {"carried": sorted(carried)}
    manifest = RunManifest(
        seed=seed,
        jobs=jobs,
        wall_seconds=wall,
        records=manifest_records,
        cache_dir=str(store.cache_dir) if store.cache_dir is not None else None,
        extra=extra,
    )
    return EngineRun(results=results, manifest=manifest, store=store)


# ---------------------------------------------------------------------------
# Shared failure bookkeeping
# ---------------------------------------------------------------------------
def _note_completed(obs: Observability, record: ExperimentRunRecord) -> None:
    obs.metrics.inc("engine.experiments.completed")
    obs.metrics.observe("engine.experiment.seconds", record.wall_seconds)


def _failed_record(
    spec: ExperimentSpec, seed: int, failure: FailureRecord, status: str
) -> ExperimentRunRecord:
    return ExperimentRunRecord(
        experiment_id=spec.experiment_id,
        title=spec.title,
        seed=None if spec.seedless else seed,
        wall_seconds=0.0,
        artifacts=(),
        status=status,
        attempts=failure.attempts,
        failure=failure,
    )


def _skip_record(
    spec: ExperimentSpec, seed: int, dep: str, dep_status: str
) -> ExperimentRunRecord:
    return ExperimentRunRecord(
        experiment_id=spec.experiment_id,
        title=spec.title,
        seed=None if spec.seedless else seed,
        wall_seconds=0.0,
        artifacts=(),
        status="skipped",
        attempts=0,
        skip_reason=f"dependency {dep} {dep_status}",
    )


def _fatal_error(key: str, error: BaseException, attempts: int) -> EngineError:
    fatal = ExperimentFailedError(
        f"experiment {key} failed after {attempts} attempt(s): "
        f"{type(error).__name__}: {error}",
        experiment_id=key,
        attempts=attempts,
    )
    fatal.__cause__ = error
    return fatal


# ---------------------------------------------------------------------------
# Serial fast path (thread semantics, no pool, no timeout)
# ---------------------------------------------------------------------------
def _run_serial(
    ordered: Sequence[ExperimentSpec],
    context: RunContext,
    policy: ErrorPolicy,
    faults: FaultPlan | None,
) -> dict[str, ExperimentRunRecord]:
    obs = context.obs
    in_set = {spec.experiment_id for spec in ordered}
    failed_like: dict[str, str] = {}  # id -> terminal non-completed status
    records: dict[str, ExperimentRunRecord] = {}
    for spec in ordered:
        key = spec.experiment_id
        bad = [
            dep
            for dep in spec.depends_on
            if dep in in_set and dep in failed_like
        ]
        if bad:
            records[key] = _skip_record(
                spec, context.seed, bad[0], failed_like[bad[0]]
            )
            failed_like[key] = "skipped"
            obs.metrics.inc("engine.experiments.skipped")
            continue
        obs.metrics.inc("engine.experiments.scheduled")
        attempt = 1
        while True:
            try:
                record = _execute(spec, context, attempt=attempt, faults=faults)
            except Exception as error:
                if attempt <= policy.retries:
                    obs.metrics.inc("engine.experiments.retried")
                    attempt += 1
                    continue
                obs.metrics.inc("engine.experiments.failed")
                if not policy.keep_going:
                    raise _fatal_error(key, error, attempt) from error
                failure = FailureRecord.from_exception(error, attempts=attempt)
                records[key] = _failed_record(
                    spec, context.seed, failure, "failed"
                )
                failed_like[key] = "failed"
                break
            _note_completed(obs, record)
            records[key] = record
            break
    return records


# ---------------------------------------------------------------------------
# Pooled path (thread or process executor)
# ---------------------------------------------------------------------------
def _run_pooled(
    ordered: Sequence[ExperimentSpec],
    context: RunContext,
    jobs: int,
    executor: str,
    policy: ErrorPolicy,
    faults: FaultPlan | None,
) -> dict[str, ExperimentRunRecord]:
    """Submit experiments as their in-set dependencies complete.

    Workers compute; the parent merges and judges.  Submission is
    throttled to the number of free worker slots so a per-attempt
    ``timeout`` measures execution time, not queue time.  A future that
    outlives its deadline is *abandoned*: its slot stays occupied until it
    actually finishes (threads cannot be killed), but its eventual result
    is discarded and its dependents are cascade-skipped immediately.

    On a fatal error (first terminal failure without ``keep_going``),
    not-yet-started futures are cancelled and in-flight ones drained
    before the exception is re-raised — a fast-fail run neither leaks
    workers nor interleaves half-finished store writes with the caller's
    error handling.
    """
    store = context.store
    obs = store.obs
    cache_dir = str(store.cache_dir) if store.cache_dir is not None else None
    trace = obs.tracer.enabled
    in_set = {spec.experiment_id for spec in ordered}
    pending = {
        spec.experiment_id: {dep for dep in spec.depends_on if dep in in_set}
        for spec in ordered
    }
    specs = {spec.experiment_id: spec for spec in ordered}
    records: dict[str, ExperimentRunRecord] = {}
    failed_like: dict[str, str] = {}
    # Process pools are cached across run_experiments calls (workers keep
    # their per-process stores warm); thread pools are cheap and per-call.
    pool_key = ("experiments", context.seed, cache_dir)
    if executor == "process":
        pool = cached_process_pool(pool_key, max_workers=jobs)
    else:
        pool = ThreadPoolExecutor(max_workers=jobs)
    broken = False
    # future -> (experiment id, attempt, monotonic deadline or None)
    active: dict[Future, tuple[str, int, float | None]] = {}
    abandoned: set[Future] = set()
    try:

        def submit(key: str, attempt: int) -> None:
            deadline = (
                None
                if policy.timeout is None
                else time.monotonic() + policy.timeout
            )
            if executor == "process":
                fault = (
                    faults.for_experiment(key) if faults is not None else None
                )
                future = pool.submit(
                    execute_in_process,
                    key,
                    context.seed,
                    cache_dir,
                    trace,
                    attempt,
                    fault,
                )
            else:
                future = pool.submit(
                    _execute, specs[key], context, attempt, faults
                )
            active[future] = (key, attempt, deadline)

        def cascade_skip() -> None:
            changed = True
            while changed:
                changed = False
                for key in list(pending):
                    bad = [dep for dep in pending[key] if dep in failed_like]
                    if bad:
                        del pending[key]
                        records[key] = _skip_record(
                            specs[key], context.seed, bad[0], failed_like[bad[0]]
                        )
                        failed_like[key] = "skipped"
                        obs.metrics.inc("engine.experiments.skipped")
                        changed = True

        def submit_ready() -> None:
            while len(active) + len(abandoned) < jobs:
                ready = sorted(
                    (key for key, deps in pending.items() if not deps),
                    key=lambda key: specs[key].index,
                )
                if not ready:
                    return
                key = ready[0]
                del pending[key]
                obs.metrics.inc("engine.experiments.scheduled")
                submit(key, 1)

        def drain_and_raise(fatal: EngineError) -> None:
            # Cancel whatever never started; drain whatever is running so
            # no worker outlives the run or races a store write against
            # the caller's error handling.
            still_running = [
                future
                for future in (*active, *abandoned)
                if not future.cancel()
            ]
            if still_running:
                wait(still_running)
            raise fatal

        submit_ready()
        while active or (pending and abandoned):
            now = time.monotonic()
            deadlines = [
                deadline
                for (_, _, deadline) in active.values()
                if deadline is not None
            ]
            wait_timeout = (
                max(0.0, min(deadlines) - now) if deadlines else None
            )
            done, _ = wait(
                set(active) | abandoned,
                timeout=wait_timeout,
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                if future in abandoned:
                    # A timed-out straggler finally finished; its result
                    # was already recorded as a timeout — discard.
                    abandoned.discard(future)
                    continue
                key, attempt, _ = active.pop(future)
                error = future.exception()
                if error is None:
                    if executor == "process":
                        records[key] = _merge_outcome(
                            specs[key], context, future.result(), attempt
                        )
                    else:
                        record = future.result()
                        _note_completed(obs, record)
                        records[key] = record
                    for deps in pending.values():
                        deps.discard(key)
                elif isinstance(error, BrokenExecutor):
                    # A dead worker fails every sibling future the same
                    # way; retrying against the broken pool (or caching it
                    # for the next run) only spreads the poison.
                    broken = True
                    evict_process_pool(pool_key)
                    obs.metrics.inc("engine.workers.crashed")
                    obs.metrics.inc("engine.experiments.failed")
                    drain_and_raise(_fatal_error(key, error, attempt))
                elif isinstance(error, Exception) and attempt <= policy.retries:
                    obs.metrics.inc("engine.experiments.retried")
                    submit(key, attempt + 1)
                else:
                    obs.metrics.inc("engine.experiments.failed")
                    if not policy.keep_going or not isinstance(
                        error, Exception
                    ):
                        drain_and_raise(_fatal_error(key, error, attempt))
                    failure = FailureRecord.from_exception(
                        error, attempts=attempt
                    )
                    records[key] = _failed_record(
                        specs[key], context.seed, failure, "failed"
                    )
                    failed_like[key] = "failed"
            now = time.monotonic()
            for future, (key, attempt, deadline) in list(active.items()):
                if deadline is None or future.done() or now < deadline:
                    continue
                del active[future]
                if not future.cancel():
                    abandoned.add(future)
                obs.metrics.inc("engine.experiments.timeout")
                failure = FailureRecord(
                    error_type="ExperimentTimeoutError",
                    message=(
                        f"attempt {attempt} exceeded the "
                        f"{policy.timeout}s timeout"
                    ),
                    traceback="",
                    attempts=attempt,
                )
                if not policy.keep_going:
                    drain_and_raise(
                        ExperimentTimeoutError(
                            f"experiment {key} exceeded the "
                            f"{policy.timeout}s timeout "
                            f"(attempt {attempt})",
                            experiment_id=key,
                            timeout=policy.timeout,
                        )
                    )
                records[key] = _failed_record(
                    specs[key], context.seed, failure, "timeout"
                )
                failed_like[key] = "timeout"
            cascade_skip()
            submit_ready()
    finally:
        # A timed-out worker cannot be killed, and the caller must not
        # wait out the hang a timeout was meant to bound: when futures
        # were abandoned, shut down without waiting (stragglers are
        # joined at interpreter exit).  A clean or drained run has no
        # live futures, so waiting there is instant.
        if executor != "process":
            pool.shutdown(wait=not abandoned, cancel_futures=True)
        elif not broken and (abandoned or active):
            # The cached pool must not hand the next run a worker that is
            # wedged in (or mid-way through) this run's tasks.
            evict_process_pool(pool_key)
    return records


def _merge_outcome(
    spec: ExperimentSpec,
    context: RunContext,
    outcome: ProcessOutcome,
    attempt: int = 1,
) -> ExperimentRunRecord:
    """Fold one worker outcome into the parent run's store and bundle."""
    obs = context.obs
    params = {} if spec.seedless else {"seed": context.seed}
    key = context._experiment_key(spec, params)
    if key is not None:
        context.store.put(key, outcome.result)
    obs.metrics.merge_dict(outcome.metrics_dump)
    obs.metrics.inc("engine.experiments.completed")
    obs.metrics.observe("engine.experiment.seconds", outcome.wall_seconds)
    if obs.tracer.enabled and outcome.spans:
        obs.tracer.ingest(
            outcome.spans,
            offset_seconds=outcome.trace_epoch_unix - obs.tracer.epoch_unix,
        )
    return ExperimentRunRecord(
        experiment_id=spec.experiment_id,
        title=spec.title,
        seed=outcome.seed,
        wall_seconds=outcome.wall_seconds,
        artifacts=outcome.events,
        attempts=attempt,
    )

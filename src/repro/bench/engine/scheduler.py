"""Dependency-aware experiment scheduler.

Orders the requested experiments topologically over their declared
``depends_on`` edges and runs them — serially in canonical order, or in
parallel with :mod:`concurrent.futures` when ``jobs > 1``.  Two parallel
executors are available: ``thread`` (the default) shares one in-memory
artifact store across a :class:`~concurrent.futures.ThreadPoolExecutor`,
while ``process`` dispatches to worker processes (see
:mod:`repro.bench.engine.process`) for CPU-bound speedups past the GIL.
Every stochastic component downstream derives its streams from explicit
seeds (see :mod:`repro._rng`), and shared artifacts are deduplicated under
per-key locks, so a parallel run produces byte-identical rendered reports
to a serial run at the same seed; only the wall clock changes.

Observability: the whole run executes under an ``engine.run`` span, each
experiment under an ``experiment.<id>`` span (optionally wrapped in
cProfile via ``--profile``), and the scheduler feeds the
``engine.experiments.*`` counters and ``engine.experiment.seconds``
histogram; when tracing is on, the span summary lands in the manifest's
``extra["observability"]``.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass

from repro.bench.engine.artifacts import ArtifactStore
from repro.bench.engine.context import RunContext
from repro.bench.engine.manifest import ExperimentRunRecord, RunManifest
from repro.bench.engine.process import ProcessOutcome, execute_in_process
from repro.bench.engine.spec import ExperimentSpec, get_spec
from repro.bench.result import DEFAULT_SEED, ExperimentResult
from repro.errors import ConfigurationError
from repro.obs import Observability

__all__ = ["EngineRun", "EXECUTORS", "run_experiments", "topological_order"]

#: Valid values for ``run_experiments(..., executor=...)`` / ``--executor``.
EXECUTORS = ("thread", "process")


@dataclass(frozen=True)
class EngineRun:
    """Results + manifest of one engine invocation."""

    results: dict[str, ExperimentResult]
    """Experiment results keyed by id, in requested order."""
    manifest: RunManifest
    store: ArtifactStore
    """The artifact store used (reusable for warm follow-up runs)."""


def topological_order(ids: Sequence[str]) -> list[ExperimentSpec]:
    """The requested experiments, dependencies-first.

    Edges to experiments outside the requested set are ignored — the
    artifact store satisfies those on demand.  Ties break on canonical
    experiment order, so for the full suite this degenerates to R1..R19.
    """
    specs = {spec.experiment_id: spec for spec in (get_spec(i) for i in ids)}
    remaining_deps = {
        key: {dep for dep in spec.depends_on if dep in specs}
        for key, spec in specs.items()
    }
    ordered: list[ExperimentSpec] = []
    while remaining_deps:
        ready = [key for key, deps in remaining_deps.items() if not deps]
        if not ready:
            raise ConfigurationError(
                f"dependency cycle among experiments: {sorted(remaining_deps)}"
            )
        # Pop one node at a time, lowest index first, so the serial order for
        # the full suite is exactly R1..R19 (not dependency-layer order).
        key = min(ready, key=lambda key: specs[key].index)
        ordered.append(specs[key])
        del remaining_deps[key]
        for deps in remaining_deps.values():
            deps.discard(key)
    return ordered


def _execute(spec: ExperimentSpec, context: RunContext) -> ExperimentRunRecord:
    """Run one experiment via the context; return its manifest record."""
    obs = context.obs
    child = context.for_experiment(spec.experiment_id)
    already = len(context.store.events_for(spec.experiment_id))
    params = {} if spec.seedless else {"seed": context.seed}
    obs.metrics.inc("engine.experiments.scheduled")
    started = time.perf_counter()
    try:
        with obs.tracer.span(
            f"experiment.{spec.experiment_id}",
            title=spec.title,
            seed=None if spec.seedless else context.seed,
        ):
            if obs.profiler is not None:
                with obs.profiler.profile(spec.experiment_id):
                    child.experiment(spec.experiment_id, **params)
            else:
                child.experiment(spec.experiment_id, **params)
    except BaseException:
        obs.metrics.inc("engine.experiments.failed")
        raise
    elapsed = time.perf_counter() - started
    obs.metrics.inc("engine.experiments.completed")
    obs.metrics.observe("engine.experiment.seconds", elapsed)
    events = context.store.events_for(spec.experiment_id)[already:]
    return ExperimentRunRecord(
        experiment_id=spec.experiment_id,
        title=spec.title,
        seed=None if spec.seedless else context.seed,
        wall_seconds=elapsed,
        artifacts=tuple(events),
    )


def run_experiments(
    ids: Sequence[str],
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    store: ArtifactStore | None = None,
    cache_dir: str | None = None,
    obs: Observability | None = None,
    executor: str = "thread",
) -> EngineRun:
    """Run ``ids`` through the engine; returns results plus a manifest.

    ``jobs > 1`` executes independent experiments concurrently — in threads
    by default, or in worker processes with ``executor="process"`` (which
    always uses a :class:`~concurrent.futures.ProcessPoolExecutor`, even at
    ``jobs=1``).  Determinism is unaffected: every experiment receives the
    same explicit seed either way, and shared artifacts are computed
    exactly once under per-key locks regardless of arrival order.

    ``obs`` carries the run's tracer/metrics/profiler bundle; when a
    ``store`` is reused across runs, passing ``obs`` rebinds the store's
    bundle so a warm run can still be traced on its own timeline.  The
    process executor merges each worker's metrics and spans back into this
    bundle; profiling is thread-executor-only, because cProfile sessions
    cannot be merged across processes.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if executor not in EXECUTORS:
        raise ConfigurationError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    ordered = topological_order(ids)
    if store is None:
        store = ArtifactStore(cache_dir=cache_dir, obs=obs)
    elif obs is not None:
        store.obs = obs
    obs = store.obs
    if executor == "process" and obs.profiler is not None:
        raise ConfigurationError(
            "profiling requires the thread executor: cProfile sessions "
            "cannot be merged across worker processes"
        )
    context = RunContext(seed=seed, store=store)

    records: dict[str, ExperimentRunRecord] = {}
    run_started = time.perf_counter()
    with obs.tracer.span(
        "engine.run",
        seed=seed,
        jobs=jobs,
        experiments=len(ordered),
        executor=executor,
    ):
        if executor == "process":
            records.update(_run_process(ordered, context, jobs))
        elif jobs == 1 or len(ordered) == 1:
            for spec in ordered:
                records[spec.experiment_id] = _execute(spec, context)
        else:
            records.update(_run_parallel(ordered, context, jobs))
    wall = time.perf_counter() - run_started
    obs.metrics.inc("engine.runs")
    obs.metrics.set_gauge("engine.wall_seconds", wall)
    obs.metrics.set_gauge("engine.jobs", jobs)

    # Duplicate requested ids collapse to one execution and one record.
    # Result collection peeks at the store without recording cache events,
    # so manifest and metrics totals reflect experiment work only.
    requested = list(dict.fromkeys(get_spec(i).experiment_id for i in ids))
    results = {
        key: context.for_experiment(key).experiment_result(
            key, **({} if get_spec(key).seedless else {"seed": seed})
        )
        for key in requested
    }
    manifest_records = tuple(records[key] for key in requested)
    extra = {}
    if obs.tracer.enabled:
        extra["observability"] = {"spans": obs.tracer.summary()}
    manifest = RunManifest(
        seed=seed,
        jobs=jobs,
        wall_seconds=wall,
        records=manifest_records,
        cache_dir=str(store.cache_dir) if store.cache_dir is not None else None,
        extra=extra,
    )
    return EngineRun(results=results, manifest=manifest, store=store)


def _run_parallel(
    ordered: Sequence[ExperimentSpec], context: RunContext, jobs: int
) -> dict[str, ExperimentRunRecord]:
    """Submit experiments as their in-set dependencies complete."""
    in_set = {spec.experiment_id for spec in ordered}
    pending = {
        spec.experiment_id: {dep for dep in spec.depends_on if dep in in_set}
        for spec in ordered
    }
    specs = {spec.experiment_id: spec for spec in ordered}
    records: dict[str, ExperimentRunRecord] = {}
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        futures: dict[Future, str] = {}

        def submit_ready() -> None:
            ready = sorted(
                (key for key, deps in pending.items() if not deps),
                key=lambda key: specs[key].index,
            )
            for key in ready:
                del pending[key]
                futures[pool.submit(_execute, specs[key], context)] = key

        submit_ready()
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                key = futures.pop(future)
                records[key] = future.result()  # re-raises experiment errors
                for deps in pending.values():
                    deps.discard(key)
            submit_ready()
    return records


def _run_process(
    ordered: Sequence[ExperimentSpec], context: RunContext, jobs: int
) -> dict[str, ExperimentRunRecord]:
    """Submit experiments to worker processes as dependencies complete.

    Workers compute; the parent merges.  Each completed
    :class:`~repro.bench.engine.process.ProcessOutcome` seeds the parent
    store with the experiment result (so result collection peeks find it),
    folds the worker's metrics dump into the parent registry, and stitches
    the worker's spans onto the parent timeline.
    """
    store = context.store
    obs = store.obs
    cache_dir = str(store.cache_dir) if store.cache_dir is not None else None
    trace = obs.tracer.enabled
    in_set = {spec.experiment_id for spec in ordered}
    pending = {
        spec.experiment_id: {dep for dep in spec.depends_on if dep in in_set}
        for spec in ordered
    }
    specs = {spec.experiment_id: spec for spec in ordered}
    records: dict[str, ExperimentRunRecord] = {}
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures: dict[Future, str] = {}

        def submit_ready() -> None:
            ready = sorted(
                (key for key, deps in pending.items() if not deps),
                key=lambda key: specs[key].index,
            )
            for key in ready:
                del pending[key]
                obs.metrics.inc("engine.experiments.scheduled")
                future = pool.submit(
                    execute_in_process, key, context.seed, cache_dir, trace
                )
                futures[future] = key

        submit_ready()
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                key = futures.pop(future)
                try:
                    outcome = future.result()  # re-raises experiment errors
                except BaseException:
                    obs.metrics.inc("engine.experiments.failed")
                    raise
                records[key] = _merge_outcome(specs[key], context, outcome)
                for deps in pending.values():
                    deps.discard(key)
            submit_ready()
    return records


def _merge_outcome(
    spec: ExperimentSpec, context: RunContext, outcome: ProcessOutcome
) -> ExperimentRunRecord:
    """Fold one worker outcome into the parent run's store and bundle."""
    obs = context.obs
    params = {} if spec.seedless else {"seed": context.seed}
    key = context._experiment_key(spec, params)
    if key is not None:
        context.store.put(key, outcome.result)
    obs.metrics.merge_dict(outcome.metrics_dump)
    obs.metrics.inc("engine.experiments.completed")
    obs.metrics.observe("engine.experiment.seconds", outcome.wall_seconds)
    if obs.tracer.enabled and outcome.spans:
        obs.tracer.ingest(
            outcome.spans,
            offset_seconds=outcome.trace_epoch_unix - obs.tracer.epoch_unix,
        )
    return ExperimentRunRecord(
        experiment_id=spec.experiment_id,
        title=spec.title,
        seed=outcome.seed,
        wall_seconds=outcome.wall_seconds,
        artifacts=outcome.events,
    )

"""Deterministic fault injection for the experiment engine.

Real benchmarking campaigns over vulnerability detection tools fail in
three characteristic ways: a tool crashes, a tool hangs, and an archived
artifact rots on disk.  This module simulates all three *deterministically*
so the test suite (and the ``check_bench`` CI smoke) can exercise every
fault-tolerance path — retries, keep-going isolation, cascade skips,
timeouts, and cache quarantine — on both the thread and the process
executor without any real flakiness:

- **fail-on-attempt-K** — :class:`FaultSpec.fail_attempts` makes an
  experiment raise :class:`InjectedFault` on attempts ``1..K``, so
  ``retries >= K`` recovers and ``retries < K`` terminally fails, by
  construction rather than by chance;
- **hang-for-N-seconds** — :class:`FaultSpec.hang_seconds` sleeps before
  the experiment body runs, long enough to trip a scheduler ``timeout``;
- **corrupt-artifact-bytes** — :func:`corrupt_file` truncates or
  overwrites an on-disk cache file, exercising the store's
  quarantine-and-recompute path;
- **kill-the-worker** — :class:`FaultSpec.kill_attempts` makes the task
  ``os._exit`` mid-attempt, simulating a segfaulting tool process; the
  sharded runner's supervision must rebuild the pool and re-dispatch
  (and quarantine the shard when the kills never stop);
- **parent-side chaos** — a fault addressed to :data:`PARENT_FAULT_ID`
  is applied by the *campaign parent*, not a worker: ``kill=K`` SIGKILLs
  the parent after K folded shards (exercising ``--resume`` journal
  replay) and ``stop=N`` requests a graceful drain after N folds
  (exercising the SIGTERM path without process plumbing);
- **torn-journal-tail** — :func:`tear_file` truncates trailing bytes,
  simulating a crash mid-append to the write-ahead journal.

The injection point is the scheduler's per-attempt execution hook (thread
executor) and :func:`~repro.bench.engine.process.execute_in_process`
(process executor); a :class:`FaultSpec` is a frozen dataclass of
primitives, so it pickles across the process boundary unchanged.  Because
the attempt number is passed in by the scheduler, fault decisions are pure
functions — no hidden counters that could drift between executors.

:class:`InjectedFault` deliberately derives from ``RuntimeError``, not
:class:`~repro.errors.ReproError`: it stands in for an *arbitrary*
third-party tool crash, which is exactly what the engine's failure
isolation must survive.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "parse_fault",
    "corrupt_file",
    "tear_file",
    "ALWAYS",
    "KILL_EXIT_CODE",
    "PARENT_FAULT_ID",
]

#: ``fail_attempts`` value meaning "fail every attempt" (no retry recovers).
ALWAYS = 10**9

#: Exit status a kill fault dies with (visibly distinct from exit 1).
KILL_EXIT_CODE = 70

#: Fault id whose clauses the campaign *parent* applies (``--inject-fault
#: parent:kill=2`` SIGKILLs the parent after two folds; ``parent:stop=2``
#: requests a graceful drain instead).
PARENT_FAULT_ID = "PARENT"


class InjectedFault(RuntimeError):
    """The simulated crash raised by a fail fault (not a ``ReproError``)."""


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic faults for one experiment (picklable primitives only)."""

    experiment_id: str
    fail_attempts: int = 0
    """Raise :class:`InjectedFault` on attempts ``1..fail_attempts``."""
    hang_seconds: float = 0.0
    """Sleep this long before the experiment body (0 disables hanging)."""
    hang_attempts: int | None = None
    """Hang on attempts ``1..hang_attempts``; ``None`` = every attempt."""
    kill_attempts: int = 0
    """``os._exit`` the executing process on attempts ``1..kill_attempts``
    (a simulated segfault; requires the process executor).  On the
    :data:`PARENT_FAULT_ID` spec this instead SIGKILLs the campaign
    parent after ``kill_attempts`` folded shards."""
    stop_after: int = 0
    """Parent-side only: request a graceful drain after this many folded
    shards (0 disables; ignored on worker-targeted specs)."""

    def __post_init__(self) -> None:
        if self.fail_attempts < 0:
            raise ConfigurationError(
                f"fail_attempts must be >= 0, got {self.fail_attempts}"
            )
        if self.hang_seconds < 0:
            raise ConfigurationError(
                f"hang_seconds must be >= 0, got {self.hang_seconds}"
            )
        if self.kill_attempts < 0:
            raise ConfigurationError(
                f"kill_attempts must be >= 0, got {self.kill_attempts}"
            )
        if self.stop_after < 0:
            raise ConfigurationError(
                f"stop_after must be >= 0, got {self.stop_after}"
            )

    def apply(self, attempt: int) -> None:
        """Execute this fault for ``attempt`` (sleep, die, or raise)."""
        if self.hang_seconds > 0 and (
            self.hang_attempts is None or attempt <= self.hang_attempts
        ):
            time.sleep(self.hang_seconds)
        if attempt <= self.kill_attempts:
            # A real segfault gives no one a chance to clean up; neither
            # does this.  The runner's supervision layer must cope.
            os._exit(KILL_EXIT_CODE)
        if attempt <= self.fail_attempts:
            raise InjectedFault(
                f"injected fault: {self.experiment_id} attempt {attempt} "
                f"(fails through attempt {self.fail_attempts})"
            )


@dataclass(frozen=True)
class FaultPlan:
    """The run-wide fault schedule the scheduler consults per attempt."""

    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for fault in self.faults:
            if fault.experiment_id in seen:
                raise ConfigurationError(
                    f"duplicate fault for experiment {fault.experiment_id!r}"
                )
            seen.add(fault.experiment_id)

    def for_experiment(self, experiment_id: str) -> FaultSpec | None:
        """The fault targeting ``experiment_id``, if any."""
        for fault in self.faults:
            if fault.experiment_id == experiment_id:
                return fault
        return None

    def apply(self, experiment_id: str, attempt: int) -> None:
        """Apply the fault targeting ``experiment_id`` for ``attempt``."""
        fault = self.for_experiment(experiment_id)
        if fault is not None:
            fault.apply(attempt)


def parse_fault(text: str) -> FaultSpec:
    """Parse one ``--inject-fault`` argument into a :class:`FaultSpec`.

    Accepted forms (clauses combine)::

        R4                  fail every attempt
        R4:fail=2           fail attempts 1 and 2, then succeed
        R4:hang=1.5         sleep 1.5s before every attempt
        R4:fail=1:hang=0.2  both
        S2:kill=1           os._exit the worker on attempt 1 (shard 2)
        PARENT:kill=2       SIGKILL the campaign parent after 2 folds
        PARENT:stop=2       graceful drain request after 2 folds

    """
    parts = text.split(":")
    experiment_id = parts[0].strip().upper()
    if not experiment_id:
        raise ConfigurationError(f"empty experiment id in fault {text!r}")
    fail_attempts = ALWAYS if len(parts) == 1 else 0
    hang_seconds = 0.0
    kill_attempts = 0
    stop_after = 0
    for clause in parts[1:]:
        name, _, value = clause.partition("=")
        try:
            if name == "fail":
                fail_attempts = ALWAYS if value == "" else int(value)
            elif name == "hang":
                hang_seconds = float(value)
            elif name == "kill":
                kill_attempts = ALWAYS if value == "" else int(value)
            elif name == "stop":
                stop_after = int(value)
            else:
                raise ConfigurationError(
                    f"unknown fault clause {name!r} in {text!r} (expected "
                    f"fail=K, hang=SECONDS, kill=K or stop=N)"
                )
        except ValueError:
            raise ConfigurationError(
                f"bad value {value!r} for fault clause {name!r} in {text!r}"
            ) from None
    return FaultSpec(
        experiment_id=experiment_id,
        fail_attempts=fail_attempts,
        hang_seconds=hang_seconds,
        kill_attempts=kill_attempts,
        stop_after=stop_after,
    )


def corrupt_file(path: str | Path, mode: str = "truncate") -> None:
    """Deterministically corrupt an on-disk artifact for quarantine tests.

    ``truncate`` keeps the first half of the bytes (simulating a crash
    mid-write under a non-atomic writer); ``garbage`` replaces the content
    with bytes that are not JSON at all; ``flip`` rewrites the last 16
    bytes (parseable-but-digest-mismatched corruption when it lands inside
    a JSON string, otherwise unparseable — both paths quarantine).
    """
    path = Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: len(data) // 2])
    elif mode == "garbage":
        path.write_bytes(b"not json {{{ \x00\xff")
    elif mode == "flip":
        keep = data[:-16] if len(data) > 16 else b""
        path.write_bytes(keep + b"X" * min(16, len(data)))
    else:
        raise ConfigurationError(
            f"unknown corruption mode {mode!r} "
            f"(expected truncate, garbage or flip)"
        )


def tear_file(path: str | Path, n_bytes: int = 16) -> None:
    """Truncate the last ``n_bytes`` of a file (a torn journal tail).

    Simulates the parent dying mid-append: the write-ahead journal's
    replay must discard the damaged final record and recover everything
    before it.
    """
    if n_bytes < 1:
        raise ConfigurationError(f"n_bytes must be >= 1, got {n_bytes}")
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: max(0, len(data) - n_bytes)])

"""Keyed artifact store: compute shared benchmark artifacts exactly once.

The reproduction's expensive artifacts — the reference workload, the scored
campaign, the properties matrix, whole experiment results — are pure
functions of a small parameter tuple (seed, sizes, registry).  The store
memoizes them under explicit keys so every downstream experiment reuses one
computation, records every request as a hit/miss event for the run
manifest, and optionally persists workloads and campaigns to disk through
:mod:`repro.persist`'s schema-tagged JSON so a warm re-run skips tool
execution entirely.

Thread safety: a per-key lock serializes computation of the same artifact,
so two experiments racing for the campaign under ``--jobs N`` still produce
exactly one computation; distinct keys compute concurrently.

Integrity: disk-tier entries are written atomically (temp file +
``os.replace``) inside a sha256-digest envelope
(:func:`repro.persist.save_cache_entry`).  A cache file that is truncated,
garbage, digest-mismatched, or schema-drifted is *quarantined* — renamed
to ``<name>.corrupt`` — and the artifact is transparently recomputed; the
event is recorded with status ``corrupt`` (feeding the
``engine.cache.corrupt`` counter) so operators can see rot without the run
ever crashing on it.

Observability: the store carries the run's :class:`~repro.obs.Observability`
bundle — every request bumps an ``engine.cache.*`` counter, computes and
disk loads open ``artifact.*`` spans, and compute time feeds the
``engine.artifact.compute_seconds`` histogram.  The manifest's per-run event
log and the metrics registry therefore agree by construction.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs import Observability

__all__ = [
    "CORRUPT_RETENTION_CAP",
    "ArtifactKey",
    "ArtifactCodec",
    "ArtifactEvent",
    "ArtifactStore",
]

#: How many quarantined ``*.corrupt`` files a cache dir retains.  Each
#: quarantine keeps the evidence for a post-mortem, but a store hammered by
#: e.g. a flaky disk would otherwise accumulate them without bound — beyond
#: the cap the oldest (by mtime) are deleted, the prune is counted on
#: ``engine.cache.corrupt_pruned``, and the survivor count is published as
#: the ``engine.cache.corrupt_files`` gauge (also shown by
#: ``repro stats --cache-dir``).
CORRUPT_RETENTION_CAP = 16


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one artifact: kind, name, and normalized parameters."""

    kind: str
    """Artifact family (``workload``, ``campaign``, ``experiment``...)."""
    name: str
    """Instance within the family (``reference``, ``R3``...)."""
    params: tuple[tuple[str, Any], ...] = ()
    """Sorted ``(param, canonical value)`` pairs."""

    @property
    def token(self) -> str:
        """Stable human-readable form, used in manifests and filenames."""
        rendered = ",".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind}:{self.name}[{rendered}]"

    @property
    def filename(self) -> str:
        """Collision-safe on-disk name for the disk cache tier."""
        digest = hashlib.sha256(self.token.encode("utf-8")).hexdigest()[:16]
        return f"{self.kind}-{self.name}-{digest}.json"


@dataclass(frozen=True)
class ArtifactCodec:
    """JSON round-trip for one artifact kind (enables the disk tier)."""

    to_dict: Callable[[Any], dict[str, Any]]
    from_dict: Callable[[dict[str, Any]], Any]


@dataclass(frozen=True)
class ArtifactEvent:
    """One store request, for manifest accounting."""

    key: str
    """The artifact's :attr:`ArtifactKey.token`."""
    status: str
    """``hit`` | ``disk-hit`` | ``miss`` | ``uncached`` | ``corrupt``."""
    requester: str
    """Experiment id (or ``engine``) that asked for the artifact."""
    seconds: float = 0.0
    """Compute time for misses; ~0 for hits."""


class ArtifactStore:
    """In-memory artifact cache with an optional on-disk JSON tier."""

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.obs = obs if obs is not None else Observability()
        self._values: dict[ArtifactKey, Any] = {}
        self._events: list[ArtifactEvent] = []
        self._key_locks: dict[ArtifactKey, threading.Lock] = {}
        self._master = threading.Lock()

    # -- bookkeeping --------------------------------------------------------
    def _lock_for(self, key: ArtifactKey) -> threading.Lock:
        with self._master:
            return self._key_locks.setdefault(key, threading.Lock())

    def _record(
        self, key: ArtifactKey, status: str, requester: str | None, seconds: float = 0.0
    ) -> None:
        event = ArtifactEvent(
            key=key.token,
            status=status,
            requester=requester or "engine",
            seconds=seconds,
        )
        with self._master:
            self._events.append(event)
        self.obs.metrics.inc(f"engine.cache.{status.replace('-', '_')}")

    @property
    def events(self) -> list[ArtifactEvent]:
        """Every request recorded so far (insertion order)."""
        with self._master:
            return list(self._events)

    def events_for(self, requester: str) -> list[ArtifactEvent]:
        """Requests attributed to one experiment."""
        return [e for e in self.events if e.requester == requester]

    def counts(self, key_prefix: str = "") -> dict[str, int]:
        """Event totals by status, optionally filtered by key prefix."""
        totals = {"hit": 0, "disk-hit": 0, "miss": 0, "uncached": 0, "corrupt": 0}
        for event in self.events:
            if event.key.startswith(key_prefix):
                totals[event.status] = totals.get(event.status, 0) + 1
        return totals

    def __len__(self) -> int:
        with self._master:
            return len(self._values)

    def __contains__(self, key: ArtifactKey) -> bool:
        with self._master:
            return key in self._values

    # -- the cache ----------------------------------------------------------
    def record_uncached(self, key: ArtifactKey, requester: str | None) -> None:
        """Note a request that bypassed the cache (unkeyable parameters)."""
        self._record(key, "uncached", requester)

    def peek(self, key: ArtifactKey) -> Any:
        """The cached value for ``key`` without recording a cache event.

        For engine bookkeeping (collecting already-computed results), so
        manifest and metrics totals reflect experiment work only.  Raises
        ``KeyError`` when the artifact has not been computed.
        """
        with self._master:
            return self._values[key]

    def put(self, key: ArtifactKey, value: Any) -> None:
        """Seed the in-memory tier with an externally computed value.

        No cache event is recorded: the computation happened elsewhere
        (a worker process, a prior run) and is already attributed there.
        A later :meth:`peek` or :meth:`get_or_compute` for ``key`` finds
        the value without recomputing.
        """
        with self._master:
            self._values[key] = value

    def get_or_compute(
        self,
        key: ArtifactKey,
        compute: Callable[[], Any],
        codec: ArtifactCodec | None = None,
        requester: str | None = None,
    ) -> Any:
        """The artifact for ``key``, computing (and caching) it on first use.

        Lookup order: memory, then disk (when a ``codec`` and ``cache_dir``
        are available), then ``compute()``.  Disk payloads go through the
        codec's ``from_dict``, which validates the persisted schema tag and
        fails loudly on drift rather than misparsing.
        """
        lock = self._lock_for(key)
        with lock:
            with self._master:
                if key in self._values:
                    value = self._values[key]
                    hit = True
                else:
                    hit = False
            if hit:
                self._record(key, "hit", requester)
                return value

            path = None
            if codec is not None and self.cache_dir is not None:
                path = self.cache_dir / key.filename
                if path.exists():
                    from repro.errors import (
                        ArtifactCorruptError,
                        ConfigurationError,
                        PersistError,
                    )
                    from repro.persist import load_cache_entry

                    started = time.perf_counter()
                    try:
                        with self.obs.tracer.span(
                            "artifact.disk_load", key=key.token
                        ):
                            value = codec.from_dict(load_cache_entry(path))
                    except (
                        PersistError,
                        ArtifactCorruptError,
                        ConfigurationError,
                    ) as error:
                        # Truncated, garbage, digest-mismatched or
                        # schema-drifted entries must not kill a warm run:
                        # quarantine the file and fall through to compute.
                        quarantine = path.with_name(path.name + ".corrupt")
                        os.replace(path, quarantine)
                        self._record(key, "corrupt", requester)
                        with self.obs.tracer.span(
                            "artifact.quarantine",
                            key=key.token,
                            reason=type(error).__name__,
                        ):
                            pass
                        self._prune_corrupt()
                    else:
                        elapsed = time.perf_counter() - started
                        with self._master:
                            self._values[key] = value
                        self._record(key, "disk-hit", requester, elapsed)
                        self.obs.metrics.inc("engine.artifacts.loaded")
                        return value

            started = time.perf_counter()
            with self.obs.tracer.span(
                "artifact.compute", key=key.token, kind=key.kind
            ):
                value = compute()
            elapsed = time.perf_counter() - started
            with self._master:
                self._values[key] = value
            self._record(key, "miss", requester, elapsed)
            self.obs.metrics.observe("engine.artifact.compute_seconds", elapsed)
            if path is not None:
                from repro.persist import save_cache_entry

                with self.obs.tracer.span("artifact.persist", key=key.token):
                    save_cache_entry(codec.to_dict(value), path)
                self.obs.metrics.inc("engine.artifacts.persisted")
            return value

    def _prune_corrupt(self) -> None:
        """Age out quarantined files beyond :data:`CORRUPT_RETENTION_CAP`.

        Runs after every quarantine, so the cache dir holds at most the cap
        of ``*.corrupt`` post-mortem files — newest kept, oldest (by mtime)
        deleted.  The surviving count lands on the
        ``engine.cache.corrupt_files`` gauge either way.
        """
        if self.cache_dir is None:
            return
        corrupt = []
        for entry in Path(self.cache_dir).glob("*.corrupt"):
            try:
                corrupt.append((entry.stat().st_mtime, entry))
            except OSError:
                continue  # raced with another pruner; already gone
        corrupt.sort(key=lambda pair: pair[0])
        excess = max(0, len(corrupt) - CORRUPT_RETENTION_CAP)
        pruned = 0
        for _, entry in corrupt[:excess]:
            try:
                entry.unlink()
            except OSError:
                continue
            pruned += 1
        if pruned:
            self.obs.metrics.inc("engine.cache.corrupt_pruned", pruned)
        self.obs.metrics.set_gauge(
            "engine.cache.corrupt_files", float(len(corrupt) - pruned)
        )

"""Zero-copy result transport and pool reuse for parallel campaigns.

Two costs dominated the process executor before this module existed: every
``run_sharded_campaign`` call paid full worker warm-up (interpreter fork,
artifact-store construction, tool-suite build) for a pool it then threw
away, and every result crossed the boundary as a pickled object graph.
This module removes both:

- :class:`CellRing` — a ``multiprocessing.shared_memory`` ring of
  fixed-size int64 slots.  Workers write each shard's flattened confusion
  cells (:meth:`ShardCells.to_array
  <repro.bench.streaming.ShardCells.to_array>` layout) straight into a
  slot; the future returns only the slot number, and the parent rebuilds
  the cells from the buffer — no pickling of the columnar payload.  The
  parent owns slot allocation, so a ring sized to the submission window
  (``jobs × chunk``) can never overflow.
- a **process-pool cache** — pools persist across
  ``run_sharded_campaign`` calls keyed by campaign identity, so worker
  processes (and the per-worker stores, plans, and tool suites they pin)
  amortize over a whole session instead of one call.  Pools are evicted
  (and shut down) on LRU overflow, on a :class:`BrokenExecutor`, or at
  interpreter exit.

The pickle transport stays available behind ``transport="pickle"`` for
spawn-unsafe platforms and as the parity reference: both transports must
yield byte-identical cells (``tests/bench/test_streaming_campaign.py`` and
``tools/check_bench.py`` assert it).
"""

from __future__ import annotations

import atexit
import itertools
import os
import sys
import threading
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "TRANSPORTS",
    "DEFAULT_CHUNK",
    "SHM_PREFIX",
    "resolve_transport",
    "create_segment",
    "reclaim_leaked_segments",
    "CellRing",
    "cached_process_pool",
    "evict_process_pool",
    "shutdown_cached_pools",
]

#: Accepted ``transport=`` values: ``auto`` resolves per platform, ``shm``
#: forces the shared-memory ring, ``pickle`` forces the legacy path.
TRANSPORTS = ("auto", "shm", "pickle")

#: Default submission-window multiplier: at most ``jobs × chunk`` shard
#: futures are in flight, so workers never stall on parent-side folding
#: while the parent's memory stays bounded by the window, not the corpus.
DEFAULT_CHUNK = 4


def resolve_transport(transport: str, executor: str) -> str:
    """Resolve a ``transport=`` request to the concrete wire format.

    ``auto`` picks the shared-memory ring for process pools on platforms
    that fork (POSIX), and pickle elsewhere: under ``spawn`` the ring
    still works but buys nothing over pickle for payloads this small,
    and Windows keeps extra per-segment bookkeeping we do not test
    against.  The thread executor never serializes results, so its
    resolved transport is always ``pickle`` (the in-memory hand-off).
    """
    if transport not in TRANSPORTS:
        raise ConfigurationError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    if executor != "process":
        return "pickle"
    if transport == "auto":
        return "shm" if sys.platform != "win32" else "pickle"
    return transport


# ---------------------------------------------------------------------------
# Named segments and crash-leak reclamation
# ---------------------------------------------------------------------------
#: Every shared-memory segment this package creates is named
#: ``<SHM_PREFIX>-<creator pid>-<sequence>``, so a later campaign can tell
#: *its own* package's leaked segments (creator pid no longer alive) apart
#: from every other process's shm — the sweep never touches foreign names.
SHM_PREFIX = "repro-shm"

_segment_seq = itertools.count()


def create_segment(size: int) -> shared_memory.SharedMemory:
    """Create a shared-memory segment under this package's pid-tagged name.

    The embedded creator pid is what makes leaked segments *identifiable*
    after a SIGKILL: the default anonymous ``psm_…`` names carry no
    ownership, so nothing could ever safely clean them up.
    """
    while True:
        name = f"{SHM_PREFIX}-{os.getpid()}-{next(_segment_seq)}"
        try:
            return shared_memory.SharedMemory(create=True, name=name, size=size)
        except FileExistsError:
            continue  # stale leak at this exact name; advance the sequence


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, just not ours
    return True


def reclaim_leaked_segments() -> int:
    """Unlink shm segments leaked by dead campaign processes; return count.

    A SIGKILL'd parent never runs :meth:`CellRing.close`, so its segments
    outlive it in ``/dev/shm`` until reboot.  Campaign start calls this:
    any ``repro-shm-<pid>-*`` entry whose creator pid is gone is ours to
    reclaim (unlinked directly — the dead owner's resource tracker is gone
    with it).  No-op on platforms without a ``/dev/shm``.
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return 0
    reclaimed = 0
    for entry in shm_dir.glob(f"{SHM_PREFIX}-*-*"):
        parts = entry.name.rsplit("-", 2)
        if len(parts) != 3 or parts[0] != SHM_PREFIX:
            continue
        try:
            pid = int(parts[1])
        except ValueError:
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            entry.unlink()
        except OSError:
            continue
        reclaimed += 1
    return reclaimed


class CellRing:
    """A shared-memory ring of fixed-size int64 result slots.

    The parent :meth:`create`\\ s the ring and hands out slot numbers with
    work items; a worker :meth:`attach`\\ es once, writes its flattened
    cells into the assigned slot, and ships only the slot number back.
    Slot lifecycle is entirely parent-side (allocate on submit, release
    after fold — or on failure, since a failed task never wrote its slot),
    and a completed future is the happens-before edge that makes the
    worker's slot write visible, so no locking is needed on the buffer.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, n_slots: int, slot_ints: int
    ) -> None:
        self._shm = shm
        self.n_slots = n_slots
        self.slot_ints = slot_ints
        self._array = np.ndarray(
            (n_slots, slot_ints), dtype=np.int64, buffer=shm.buf
        )
        self._owner = False
        self._free: list[int] = []

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    @classmethod
    def create(cls, n_slots: int, slot_ints: int) -> "CellRing":
        """Create (parent side) a ring of ``n_slots`` × ``slot_ints`` int64."""
        if n_slots < 1 or slot_ints < 1:
            raise ConfigurationError(
                f"ring needs positive geometry, got {n_slots}x{slot_ints}"
            )
        shm = create_segment(n_slots * slot_ints * 8)
        ring = cls(shm, n_slots, slot_ints)
        ring._owner = True
        ring._free = list(range(n_slots))
        return ring

    @classmethod
    def attach(cls, name: str, n_slots: int, slot_ints: int) -> "CellRing":
        """Attach (worker side) to a ring the parent created.

        Python 3.11's ``resource_tracker`` registers shared-memory
        segments on *attach* as well as create.  Pool workers share the
        parent's tracker process (the fd is inherited), which keeps one
        name *set* per resource type — so the attach-side registration is
        an idempotent no-op there, and the parent's :meth:`close` remains
        the single unlink/unregister.  (Unregistering here instead would
        delete the parent's entry from that shared set and turn the
        eventual unlink into a tracker error.)
        """
        return cls(shared_memory.SharedMemory(name=name), n_slots, slot_ints)

    # -- parent-side slot lifecycle -----------------------------------------
    @property
    def free_slots(self) -> int:
        """Slots currently available (abandoned tasks leak theirs)."""
        return len(self._free)

    def acquire(self) -> int:
        """Claim a free slot for an in-flight task (parent side)."""
        if not self._free:
            raise ConfigurationError(
                "cell ring exhausted — submission window exceeded ring size"
            )
        return self._free.pop()

    def release(self, slot: int) -> None:
        """Return a slot to the free list once its result is folded."""
        self._free.append(slot)

    # -- the buffer ----------------------------------------------------------
    def write(self, slot: int, flat: np.ndarray) -> None:
        """Write one flattened cells vector into ``slot`` (worker side)."""
        values = np.asarray(flat, dtype=np.int64).reshape(-1)
        if values.shape[0] > self.slot_ints:
            raise ConfigurationError(
                f"cells vector ({values.shape[0]} ints) exceeds ring slot "
                f"({self.slot_ints} ints)"
            )
        self._array[slot, : values.shape[0]] = values

    def read(self, slot: int, n_ints: int) -> np.ndarray:
        """Copy ``n_ints`` of one slot out of the buffer (parent side)."""
        return np.array(self._array[slot, :n_ints])

    def close(self) -> None:
        """Detach; the creating side also unlinks the segment."""
        self._array = None
        self._shm.close()
        if self._owner:
            self._shm.unlink()
            self._owner = False


# ---------------------------------------------------------------------------
# Cached process pools
# ---------------------------------------------------------------------------
#: How many distinct cached pools stay warm at once.  Each pool holds
#: ``max_workers`` live interpreters, so the cap is deliberately tiny —
#: enough for a campaign plus a follow-up at different parameters.
_POOL_CACHE_SIZE = 2

_pool_lock = threading.Lock()
_pools: dict[tuple[Any, ...], ProcessPoolExecutor] = {}


def cached_process_pool(
    key: tuple[Any, ...], max_workers: int
) -> ProcessPoolExecutor:
    """A process pool cached under ``key``, surviving across calls.

    The same key returns the same warm pool (its workers keep their
    per-process stores, plans, and tool suites), provided the worker count
    still fits; a pool cached with fewer workers than requested is
    replaced.  Insertion order doubles as LRU order — re-fetching a key
    moves it to the back, and overflowing :data:`_POOL_CACHE_SIZE` shuts
    down the front.
    """
    if max_workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
    if sys.platform != "win32":
        # Start the resource tracker *before* the pool forks: workers then
        # inherit it, so their shared-memory attach registrations land in
        # the parent tracker's (idempotent) name set instead of spawning
        # per-worker trackers that would try to clean up the parent's
        # segments at worker exit.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    with _pool_lock:
        pool = _pools.pop(key, None)
        if pool is not None and pool._max_workers < max_workers:
            pool.shutdown(wait=False, cancel_futures=True)
            pool = None
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=max_workers)
        _pools[key] = pool  # (re)insert at LRU back
        while len(_pools) > _POOL_CACHE_SIZE:
            oldest = next(iter(_pools))
            _pools.pop(oldest).shutdown(wait=False, cancel_futures=True)
        return pool


def evict_process_pool(key: tuple[Any, ...], wait: bool = False) -> None:
    """Drop (and shut down) the pool cached under ``key``, if any.

    Callers evict on :class:`concurrent.futures.BrokenExecutor` — a broken
    pool poisons every later submission — and on abandoned futures, where
    a worker may still be wedged in a task.
    """
    with _pool_lock:
        pool = _pools.pop(key, None)
    if pool is not None:
        pool.shutdown(wait=wait, cancel_futures=True)


def shutdown_cached_pools() -> None:
    """Shut down every cached pool (tests and interpreter exit)."""
    with _pool_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_cached_pools)

"""Shard campaign runner: million-unit campaigns as engine sub-tasks.

:func:`run_sharded_campaign` drives a :class:`~repro.workload.sharded.
ShardPlan` through the engine's machinery the way the scheduler drives
experiments: each shard is an independent sub-task that generates its
workload, evaluates the tool suite, and returns a
:class:`~repro.bench.streaming.ShardCells`; the parent folds cells into a
:class:`~repro.bench.streaming.CampaignAccumulator` as they arrive and
discards the shard, so peak memory is bounded by ``jobs`` shards, never by
the corpus.

Engine semantics carry over wholesale:

- **executors** — shards run serially, in a thread pool, or in worker
  processes (``executor="process"``), with per-worker persistent artifact
  stores exactly like :mod:`repro.bench.engine.process`; process pools
  are cached across campaigns (:mod:`repro.bench.engine.transport`), so
  follow-up runs find warm workers;
- **transport** — process workers ship their cells home either as a
  pickled outcome (``transport="pickle"``) or as a flat int64 vector
  written into a shared-memory :class:`~repro.bench.engine.transport.
  CellRing` slot (``"shm"``, the ``"auto"`` choice on POSIX); cells are
  byte-identical either way, and submission is chunked so at most
  ``jobs × chunk`` futures are in flight;
- **caching** — each shard's cells are memoized in the artifact store
  under ``kind="shard-cells"`` and persisted to ``cache_dir`` as
  ``repro/shard-cells@1`` entries, so a warm re-run folds cached cells
  without generating or analyzing anything;
- **fault tolerance** — ``retries`` re-attempts a failed shard (the shard
  seed is a pure function of its index, so a recovered run is
  bit-identical to a clean one), ``keep_going`` records the failure and
  finishes every other shard, and ``resume_from`` re-executes only the
  non-completed shards of a prior :class:`ShardRunManifest`, folding the
  carried cells verbatim;
- **fault injection** — a :class:`~repro.bench.engine.faults.FaultPlan`
  targets shards by :func:`shard_fault_id` (``S000003`` for shard 3), so
  ``--inject-fault s3:fail=1`` exercises the retry path deterministically;
- **observability** — every shard runs under ``shard.generate`` /
  ``shard.evaluate`` spans and feeds the ``engine.shards.*`` counters, so
  a million-unit run is traceable in Perfetto like any experiment run.

Totals are exact for any executor, fold order, retry count, or resume
history — see :mod:`repro.bench.streaming` for the contract.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any

from repro.bench.engine.artifacts import ArtifactCodec, ArtifactKey, ArtifactStore
from repro.bench.engine.faults import FaultPlan, FaultSpec
from repro.bench.engine.manifest import FailureRecord
from repro.bench.engine.transport import (
    DEFAULT_CHUNK,
    CellRing,
    cached_process_pool,
    evict_process_pool,
    resolve_transport,
)
from repro.bench.result import DEFAULT_SEED
from repro.bench.streaming import (
    CampaignAccumulator,
    ShardCells,
    StreamingCampaignResult,
    evaluate_shard,
)
from repro.errors import ConfigurationError, ExperimentFailedError
from repro.obs import Observability, SpanRecord, Tracer
from repro.tools.families import get_family, suite_for_ecosystem
from repro.workload.ecosystems import DEFAULT_ECOSYSTEM, get_ecosystem
from repro.workload.sharded import DEFAULT_SHARD_SIZE, ShardPlan, plan_shards

__all__ = [
    "SHARD_MANIFEST_SCHEMA",
    "SHARD_STATUSES",
    "ShardRunRecord",
    "ShardRunManifest",
    "ShardedCampaignRun",
    "shard_fault_id",
    "run_sharded_campaign",
]

SHARD_MANIFEST_SCHEMA = "repro/shard-run@1"

#: Valid values of :attr:`ShardRunRecord.status` (shards have no
#: dependencies, so there is no ``skipped``; timeouts are unsupported).
SHARD_STATUSES = ("completed", "failed")


def shard_fault_id(index: int) -> str:
    """The fault-plan id targeting shard ``index`` (``S000003`` for 3).

    Matches what ``parse_fault`` produces for ``--inject-fault s3`` /
    ``--inject-fault S000003`` after its uppercasing, so the CLI's fault
    syntax addresses shards without new parsing rules.
    """
    return f"S{index:06d}"


def _fault_for_shard(faults: FaultPlan | None, index: int) -> FaultSpec | None:
    """The fault targeting shard ``index``, accepting padded or bare ids."""
    if faults is None:
        return None
    for candidate in (shard_fault_id(index), f"S{index}"):
        fault = faults.for_experiment(candidate)
        if fault is not None:
            return fault
    return None


def _shard_cells_codec() -> ArtifactCodec:
    from repro.persist import shard_cells_from_dict, shard_cells_to_dict

    return ArtifactCodec(
        to_dict=shard_cells_to_dict, from_dict=shard_cells_from_dict
    )


def _shard_key(
    plan: ShardPlan, index: int, families: tuple[str, ...]
) -> ArtifactKey:
    """The artifact-store key of shard ``index``'s cells.

    Keyed by ecosystem and tool families as well as the plan geometry, so
    same-seed campaigns over different ecosystems (or suite subsets) never
    collide in a shared cache.
    """
    return ArtifactKey(
        kind="shard-cells",
        name=f"s{index:06d}",
        params=(
            ("scale", plan.scale),
            ("seed", plan.seed),
            ("shard_size", plan.shard_size),
            ("ecosystem", plan.ecosystem),
            ("families", ",".join(families)),
        ),
    )


@dataclass(frozen=True)
class ShardRunRecord:
    """One shard's entry in the shard-run manifest."""

    index: int
    seed: int
    """The shard's own generation seed (derived, recorded for audit)."""
    n_units: int
    status: str = "completed"
    """``completed`` | ``failed``."""
    attempts: int = 1
    wall_seconds: float = 0.0
    cells: ShardCells | None = None
    """The shard's confusion cells (``None`` for failed shards); stored in
    the manifest so ``--resume`` folds them without re-evaluating."""
    failure: FailureRecord | None = None

    def __post_init__(self) -> None:
        if self.status not in SHARD_STATUSES:
            raise ConfigurationError(
                f"invalid shard status {self.status!r}; expected one of "
                f"{SHARD_STATUSES}"
            )
        if self.status == "completed" and self.cells is None:
            raise ConfigurationError(
                f"completed shard {self.index} record carries no cells"
            )

    @property
    def completed(self) -> bool:
        """Whether this shard delivered its cells."""
        return self.status == "completed"

    def to_dict(self) -> dict[str, Any]:
        """Serialize for the manifest (cells inline as shard-cells@1)."""
        from repro.persist import shard_cells_to_dict

        payload: dict[str, Any] = {
            "index": self.index,
            "seed": self.seed,
            "n_units": self.n_units,
            "status": self.status,
            "attempts": self.attempts,
            "wall_seconds": self.wall_seconds,
        }
        if self.cells is not None:
            payload["cells"] = shard_cells_to_dict(self.cells)
        if self.failure is not None:
            payload["failure"] = self.failure.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ShardRunRecord":
        """Rebuild one record (cells validation re-runs on construction)."""
        from repro.persist import shard_cells_from_dict

        return cls(
            index=payload["index"],
            seed=payload["seed"],
            n_units=payload["n_units"],
            status=payload.get("status", "completed"),
            attempts=payload.get("attempts", 1),
            wall_seconds=payload.get("wall_seconds", 0.0),
            cells=(
                shard_cells_from_dict(payload["cells"])
                if payload.get("cells") is not None
                else None
            ),
            failure=(
                FailureRecord.from_dict(payload["failure"])
                if payload.get("failure") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class ShardRunManifest:
    """The full record of one sharded campaign run.

    Doubles as the resume token: completed records carry their cells, so
    ``run_sharded_campaign(resume_from=manifest)`` folds them verbatim and
    re-executes only the failed shards — at the same derived shard seeds,
    so the finished totals are bit-identical to an uninterrupted run.
    """

    seed: int
    scale: int
    shard_size: int
    jobs: int
    executor: str
    wall_seconds: float
    records: tuple[ShardRunRecord, ...]
    cache_dir: str | None = None
    ecosystem: str = DEFAULT_ECOSYSTEM
    """Ecosystem the corpus was generated under (resume restores it)."""
    tool_families: tuple[str, ...] | None = None
    """Resolved tool-family keys the suite was built from (``None`` in
    manifests predating tool families: the historical reference suite)."""
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every shard completed."""
        return all(record.completed for record in self.records)

    @property
    def n_shards(self) -> int:
        """Shards in the plan this run covered."""
        return len(self.records)

    @property
    def incomplete_indices(self) -> list[int]:
        """Shards a ``--resume`` run must re-execute."""
        return [r.index for r in self.records if not r.completed]

    def record_for(self, index: int) -> ShardRunRecord:
        """One shard's record, by index."""
        for record in self.records:
            if record.index == index:
                return record
        raise ConfigurationError(
            f"manifest has no record for shard {index}; "
            f"covers {len(self.records)} shards"
        )

    def status_counts(self) -> dict[str, int]:
        """How many shards ended in each status."""
        totals = {status: 0 for status in SHARD_STATUSES}
        for record in self.records:
            totals[record.status] += 1
        return totals

    def summary_line(self) -> str:
        """A one-line human summary for logs and perf tracking."""
        units = sum(r.n_units for r in self.records if r.completed)
        line = (
            f"{units} units in {len(self.records)} shards "
            f"(shard_size={self.shard_size}) in {self.wall_seconds:.1f}s "
            f"(jobs={self.jobs}, executor={self.executor}, seed={self.seed}, "
            f"ecosystem={self.ecosystem})"
        )
        failed = self.status_counts()["failed"]
        if failed:
            line += f" [{failed} failed]"
        return line

    def to_dict(self) -> dict[str, Any]:
        """Serialize with the shard-run schema tag."""
        return {
            "schema": SHARD_MANIFEST_SCHEMA,
            "seed": self.seed,
            "scale": self.scale,
            "shard_size": self.shard_size,
            "jobs": self.jobs,
            "executor": self.executor,
            "wall_seconds": self.wall_seconds,
            "cache_dir": self.cache_dir,
            "ecosystem": self.ecosystem,
            **(
                {"tool_families": list(self.tool_families)}
                if self.tool_families is not None
                else {}
            ),
            "shards": [record.to_dict() for record in self.records],
            "statuses": self.status_counts(),
            **({"extra": self.extra} if self.extra else {}),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ShardRunManifest":
        """Rebuild a shard-run manifest, failing loudly on schema drift."""
        found = payload.get("schema")
        if found != SHARD_MANIFEST_SCHEMA:
            raise ConfigurationError(
                f"expected schema {SHARD_MANIFEST_SCHEMA!r}, found {found!r}"
            )
        return cls(
            seed=payload["seed"],
            scale=payload["scale"],
            shard_size=payload["shard_size"],
            jobs=payload["jobs"],
            executor=payload["executor"],
            wall_seconds=payload["wall_seconds"],
            records=tuple(
                ShardRunRecord.from_dict(entry) for entry in payload["shards"]
            ),
            cache_dir=payload.get("cache_dir"),
            ecosystem=payload.get("ecosystem", DEFAULT_ECOSYSTEM),
            tool_families=(
                tuple(payload["tool_families"])
                if payload.get("tool_families") is not None
                else None
            ),
            extra=payload.get("extra", {}),
        )


@dataclass(frozen=True)
class ShardedCampaignRun:
    """Totals + manifest of one sharded campaign invocation."""

    totals: StreamingCampaignResult | None
    """Corpus-wide campaign totals (``None`` when no shard completed)."""
    manifest: ShardRunManifest
    store: ArtifactStore
    """The artifact store used (reusable for warm follow-up runs)."""

    @property
    def ok(self) -> bool:
        """Whether every shard completed."""
        return self.manifest.ok


# ---------------------------------------------------------------------------
# Shard execution (shared by the serial, thread and process paths)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardOutcome:
    """Everything one worker-side shard sends back to the parent.

    Under the shared-memory transport ``cells`` is ``None`` and ``slot``
    names the :class:`~repro.bench.engine.transport.CellRing` slot the
    worker wrote the flattened cells into; the parent rebuilds them with
    :meth:`ShardCells.from_array`.
    """

    index: int
    n_units: int
    wall_seconds: float
    cells: ShardCells | None
    metrics_dump: dict[str, Any] | None = None
    spans: tuple[SpanRecord, ...] = ()
    trace_epoch_unix: float = 0.0
    slot: int | None = None


def _evaluate_one(
    plan: ShardPlan,
    index: int,
    attempt: int,
    store: ArtifactStore,
    tools: list,
    families: tuple[str, ...],
    fault: FaultSpec | None,
) -> _ShardOutcome:
    """Run one attempt of one shard against ``store``; return its outcome.

    The cells are memoized under the shard's artifact key, so a warm store
    (or a populated ``cache_dir``) satisfies the shard without generating
    its workload; the fault hook fires *before* the cache lookup, so
    injected failures exercise the retry path even on warm runs.
    """
    obs = store.obs
    spec = plan.spec(index)
    started = time.perf_counter()
    if fault is not None:
        fault.apply(attempt)

    def compute() -> ShardCells:
        with obs.tracer.span(
            "shard.generate", shard=index, units=spec.n_units, seed=spec.seed
        ):
            workload = plan.generate(index)
        obs.metrics.inc("engine.shards.units", len(workload.units))
        obs.metrics.inc("engine.shards.sites", workload.n_sites)
        with obs.tracer.span(
            "shard.evaluate", shard=index, tools=len(tools)
        ):
            return evaluate_shard(tools, workload, index)

    cells = store.get_or_compute(
        _shard_key(plan, index, families),
        compute,
        codec=_shard_cells_codec(),
        requester=f"shard:{index}",
    )
    return _ShardOutcome(
        index=index,
        n_units=spec.n_units,
        wall_seconds=time.perf_counter() - started,
        cells=cells,
    )


@dataclass(frozen=True)
class _WorkerContext:
    """The ~100-byte per-task context a shard submission ships.

    Replaces the old pool-initializer pinning: the plan is a pure function
    of ``(scale, shard_size, seed, ecosystem)``, so workers rebuild (and
    cache) it from these fields instead of unpickling the full plan — which
    is what lets one cached pool serve *different* campaigns across
    :func:`run_sharded_campaign` calls.  ``ring_name`` (plus the ring
    geometry) is set under the shared-memory transport.
    """

    scale: int
    shard_size: int
    seed: int
    ecosystem: str
    cache_dir: str | None
    trace: bool
    families: tuple[str, ...]
    ring_name: str | None = None
    ring_slots: int = 0
    ring_slot_ints: int = 0


#: Worker-process caches, all keyed by fields of the task's
#: :class:`_WorkerContext` so one long-lived worker serves many campaigns:
#: persistent artifact stores (the shard counterpart of
#: ``process._WORKER_STORES``), reconstructed shard plans, built tool
#: suites, and the attached cell ring.
_WORKER_STORES: dict[tuple[int, str | None], ArtifactStore] = {}
_WORKER_PLANS: dict[tuple[int, int, int, str], ShardPlan] = {}
_WORKER_SUITES: dict[tuple[str, int, tuple[str, ...]], list] = {}
_WORKER_RING: Any | None = None

#: Bound on each per-worker cache; campaigns cycle through few distinct
#: keys, so a tiny FIFO keeps reuse while bounding a long session.
_WORKER_CACHE_SIZE = 4


def _cache_bounded(cache: dict, key: Any, value: Any) -> Any:
    cache[key] = value
    while len(cache) > _WORKER_CACHE_SIZE:
        cache.pop(next(iter(cache)))
    return value


def _worker_ring(ctx: _WorkerContext):
    """The attached cell ring for ``ctx``, (re)attaching on name change."""
    global _WORKER_RING
    from repro.bench.engine.transport import CellRing

    if _WORKER_RING is not None and _WORKER_RING.name != ctx.ring_name:
        _WORKER_RING.close()
        _WORKER_RING = None
    if _WORKER_RING is None:
        _WORKER_RING = CellRing.attach(
            ctx.ring_name, ctx.ring_slots, ctx.ring_slot_ints
        )
    return _WORKER_RING


def _evaluate_in_worker(
    ctx: _WorkerContext,
    index: int,
    attempt: int,
    fault: FaultSpec | None,
    slot: int | None,
) -> _ShardOutcome:
    """Worker-process task body: evaluate one shard, return a picklable
    outcome carrying this task's metrics dump and spans for parent-side
    merging (mirrors :func:`repro.bench.engine.process.execute_in_process`).
    Under the shared-memory transport (``slot`` given) the cells leave
    through the ring and the returned outcome carries only the slot.
    """
    plan_key = (ctx.scale, ctx.shard_size, ctx.seed, ctx.ecosystem)
    plan = _WORKER_PLANS.get(plan_key)
    if plan is None:
        plan = _cache_bounded(
            _WORKER_PLANS,
            plan_key,
            plan_shards(
                scale=ctx.scale,
                shard_size=ctx.shard_size,
                seed=ctx.seed,
                ecosystem=ctx.ecosystem,
            ),
        )
    store_key = (ctx.seed, ctx.cache_dir)
    store = _WORKER_STORES.get(store_key)
    if store is None:
        store = _cache_bounded(
            _WORKER_STORES, store_key, ArtifactStore(cache_dir=ctx.cache_dir)
        )
    suite_key = (ctx.ecosystem, ctx.seed, ctx.families)
    tools = _WORKER_SUITES.get(suite_key)
    if tools is None:
        tools = _cache_bounded(
            _WORKER_SUITES,
            suite_key,
            suite_for_ecosystem(
                ctx.ecosystem, seed=ctx.seed, families=ctx.families
            ),
        )
    # A fresh bundle per task, so the parent merges without double counting.
    obs = Observability(tracer=Tracer(enabled=ctx.trace))
    store.obs = obs
    outcome = _evaluate_one(
        plan, index, attempt, store, tools, ctx.families, fault
    )
    cells: ShardCells | None = outcome.cells
    if slot is not None:
        _worker_ring(ctx).write(slot, cells.to_array())
        cells = None
    return _ShardOutcome(
        index=outcome.index,
        n_units=outcome.n_units,
        wall_seconds=outcome.wall_seconds,
        cells=cells,
        metrics_dump=obs.metrics.to_dict(),
        spans=tuple(obs.tracer.spans),
        trace_epoch_unix=obs.tracer.epoch_unix,
        slot=slot,
    )


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------
def run_sharded_campaign(
    scale: int | None = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    executor: str = "thread",
    keep_going: bool = False,
    retries: int = 0,
    store: ArtifactStore | None = None,
    cache_dir: str | None = None,
    obs: Observability | None = None,
    faults: FaultPlan | None = None,
    resume_from: ShardRunManifest | None = None,
    ecosystem: str = DEFAULT_ECOSYSTEM,
    tool_families: tuple[str, ...] | None = None,
    transport: str = "auto",
    chunk: int = DEFAULT_CHUNK,
) -> ShardedCampaignRun:
    """Run an ecosystem's tool suite over a sharded ``scale``-unit corpus.

    ``ecosystem`` selects the registered
    :class:`~repro.workload.ecosystems.EcosystemProfile` that shapes every
    shard's workload and (by default) the tool suite; ``tool_families``
    restricts the suite to a subset of registered families.  The default
    ecosystem runs the historical reference suite over the historical
    corpus, bit-identically to runs predating these parameters.

    Shards execute under the requested executor with the engine's error
    policy (``retries`` re-attempts at the same derived shard seed;
    ``keep_going`` records terminal failures and continues; without it the
    first terminal failure aborts with
    :class:`~repro.errors.ExperimentFailedError` after draining in-flight
    shards).  Completed cells fold into a
    :class:`~repro.bench.streaming.CampaignAccumulator` as they arrive —
    the corpus never exists in memory, and the totals are bit-identical to
    the in-memory path regardless of ``jobs``/``executor``/fold order.

    ``resume_from`` takes a prior run's :class:`ShardRunManifest`:
    completed shards' cells are folded verbatim from the manifest and only
    the failed shards re-execute, at the plan parameters recorded in the
    manifest (``scale``/``shard_size``/``seed`` arguments are ignored).

    ``transport`` selects how process-executor results cross the process
    boundary — ``"shm"`` (flattened cells through a shared-memory ring),
    ``"pickle"`` (the legacy object path), or ``"auto"`` (shm where
    supported); both yield byte-identical cells.  ``chunk`` scales the
    submission window: up to ``jobs × chunk`` shard futures stay in
    flight, keeping workers fed while the parent folds.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if executor not in ("thread", "process"):
        raise ConfigurationError(
            f"executor must be one of ('thread', 'process'), got {executor!r}"
        )
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if chunk < 1:
        raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
    transport = resolve_transport(transport, executor)

    carried: dict[int, ShardRunRecord] = {}
    if resume_from is None and scale is None:
        raise ConfigurationError("scale is required unless resuming from a manifest")
    if resume_from is not None:
        scale = resume_from.scale
        shard_size = resume_from.shard_size
        seed = resume_from.seed
        ecosystem = resume_from.ecosystem
        tool_families = resume_from.tool_families
        carried = {
            record.index: record
            for record in resume_from.records
            if record.completed
        }
    profile = get_ecosystem(ecosystem)
    families = (
        tuple(tool_families)
        if tool_families is not None
        else profile.tool_families
    )
    for family_key in families:
        get_family(family_key)  # fail fast, listing registered names
    plan = plan_shards(
        scale=scale, shard_size=shard_size, seed=seed, ecosystem=ecosystem
    )

    if store is None:
        store = ArtifactStore(cache_dir=cache_dir, obs=obs)
    elif obs is not None:
        store.obs = obs
    obs = store.obs
    if executor == "process" and obs.profiler is not None:
        raise ConfigurationError(
            "profiling requires the thread executor: cProfile sessions "
            "cannot be merged across worker processes"
        )

    accumulator = CampaignAccumulator(
        [
            tool.name
            for tool in suite_for_ecosystem(
                profile, seed=seed, families=families
            )
        ],
        ecosystem=ecosystem,
    )
    records: dict[int, ShardRunRecord] = {}
    for record in carried.values():
        accumulator.fold(record.cells)
    pending = [
        index for index in range(plan.n_shards) if index not in carried
    ]

    run_started = time.perf_counter()
    with obs.tracer.span(
        "engine.shard_run",
        seed=seed,
        scale=scale,
        shard_size=shard_size,
        shards=len(pending),
        jobs=jobs,
        executor=executor,
        ecosystem=ecosystem,
    ):
        if executor == "thread" and jobs == 1:
            records.update(
                _run_shards_serial(
                    plan, pending, store, accumulator, families, keep_going,
                    retries, faults,
                )
            )
        elif pending:
            records.update(
                _run_shards_pooled(
                    plan, pending, store, accumulator, families, jobs,
                    executor, keep_going, retries, faults, transport, chunk,
                )
            )
    wall = time.perf_counter() - run_started
    obs.metrics.inc("engine.shard_runs")

    manifest_records = tuple(
        carried[index] if index in carried else records[index]
        for index in sorted({*carried, *records})
    )
    extra: dict[str, Any] = {"transport": transport}
    if obs.tracer.enabled:
        extra["observability"] = {"spans": obs.tracer.summary()}
    if resume_from is not None:
        extra["resume"] = {"carried": sorted(carried)}
    manifest = ShardRunManifest(
        seed=seed,
        scale=scale,
        shard_size=shard_size,
        jobs=jobs,
        executor=executor,
        wall_seconds=wall,
        records=manifest_records,
        cache_dir=str(store.cache_dir) if store.cache_dir is not None else None,
        ecosystem=ecosystem,
        tool_families=families,
        extra=extra,
    )
    totals = accumulator.result() if accumulator.folded else None
    return ShardedCampaignRun(totals=totals, manifest=manifest, store=store)


def _completed_record(
    plan: ShardPlan,
    outcome: _ShardOutcome,
    attempt: int,
    cells: ShardCells | None = None,
) -> ShardRunRecord:
    return ShardRunRecord(
        index=outcome.index,
        seed=plan.spec(outcome.index).seed,
        n_units=outcome.n_units,
        status="completed",
        attempts=attempt,
        wall_seconds=outcome.wall_seconds,
        cells=cells if cells is not None else outcome.cells,
    )


def _failed_shard_record(
    plan: ShardPlan, index: int, failure: FailureRecord
) -> ShardRunRecord:
    spec = plan.spec(index)
    return ShardRunRecord(
        index=index,
        seed=spec.seed,
        n_units=spec.n_units,
        status="failed",
        attempts=failure.attempts,
        wall_seconds=0.0,
        cells=None,
        failure=failure,
    )


def _shard_fatal(index: int, error: BaseException, attempts: int):
    fatal = ExperimentFailedError(
        f"shard {index} failed after {attempts} attempt(s): "
        f"{type(error).__name__}: {error}",
        experiment_id=shard_fault_id(index),
        attempts=attempts,
    )
    fatal.__cause__ = error
    return fatal


def _run_shards_serial(
    plan: ShardPlan,
    pending: list[int],
    store: ArtifactStore,
    accumulator: CampaignAccumulator,
    families: tuple[str, ...],
    keep_going: bool,
    retries: int,
    faults: FaultPlan | None,
) -> dict[int, ShardRunRecord]:
    obs = store.obs
    tools = suite_for_ecosystem(plan.ecosystem, seed=plan.seed, families=families)
    records: dict[int, ShardRunRecord] = {}
    for index in pending:
        obs.metrics.inc("engine.shards.scheduled")
        fault = _fault_for_shard(faults, index)
        attempt = 1
        while True:
            try:
                outcome = _evaluate_one(
                    plan, index, attempt, store, tools, families, fault
                )
            except Exception as error:
                if attempt <= retries:
                    obs.metrics.inc("engine.shards.retried")
                    attempt += 1
                    continue
                obs.metrics.inc("engine.shards.failed")
                if not keep_going:
                    raise _shard_fatal(index, error, attempt) from error
                failure = FailureRecord.from_exception(error, attempts=attempt)
                records[index] = _failed_shard_record(plan, index, failure)
                break
            obs.metrics.inc("engine.shards.completed")
            obs.metrics.observe("engine.shard.seconds", outcome.wall_seconds)
            accumulator.fold(outcome.cells)
            records[index] = _completed_record(plan, outcome, attempt)
            break
    return records


def _run_shards_pooled(
    plan: ShardPlan,
    pending: list[int],
    store: ArtifactStore,
    accumulator: CampaignAccumulator,
    families: tuple[str, ...],
    jobs: int,
    executor: str,
    keep_going: bool,
    retries: int,
    faults: FaultPlan | None,
    transport: str,
    chunk: int,
) -> dict[int, ShardRunRecord]:
    """Pooled shard execution: keep up to ``jobs × chunk`` shards in
    flight, fold as they finish.  Only ``jobs`` shard *workloads* are ever
    alive (one per worker) — the window just queues compact work items so
    workers never idle while the parent folds — preserving the memory
    bound the streaming path exists to provide.

    Process pools come from the transport module's cache keyed by campaign
    identity, so their workers (and the stores/plans/suites those pin)
    survive across calls; thread pools are cheap and stay per-call.  Under
    ``transport="shm"`` a :class:`~repro.bench.engine.transport.CellRing`
    sized to the window carries every result's cells.
    """
    obs = store.obs
    cache_dir = str(store.cache_dir) if store.cache_dir is not None else None
    trace = obs.tracer.enabled
    tools = (
        suite_for_ecosystem(plan.ecosystem, seed=plan.seed, families=families)
        if executor == "thread"
        else None
    )
    records: dict[int, ShardRunRecord] = {}
    queue = list(pending)
    window = jobs * chunk
    ring: CellRing | None = None
    pool_key = ("shards", plan.seed, cache_dir, plan.ecosystem)
    if executor == "process":
        pool = cached_process_pool(pool_key, max_workers=jobs)
        if transport == "shm":
            ring = CellRing.create(
                n_slots=min(window, len(pending)) or 1,
                slot_ints=5 + 4 * len(accumulator.tool_names),
            )
        ctx = _WorkerContext(
            scale=plan.scale,
            shard_size=plan.shard_size,
            seed=plan.seed,
            ecosystem=plan.ecosystem,
            cache_dir=cache_dir,
            trace=trace,
            families=families,
            ring_name=ring.name if ring is not None else None,
            ring_slots=ring.n_slots if ring is not None else 0,
            ring_slot_ints=ring.slot_ints if ring is not None else 0,
        )
    else:
        pool = ThreadPoolExecutor(max_workers=jobs)
    # future -> (index, attempt, slot)
    active: dict[Future, tuple[int, int, int | None]] = {}
    broken = False
    try:

        def submit(index: int, attempt: int) -> None:
            fault = _fault_for_shard(faults, index)
            if executor == "process":
                slot = ring.acquire() if ring is not None else None
                future = pool.submit(
                    _evaluate_in_worker, ctx, index, attempt, fault, slot
                )
            else:
                slot = None
                future = pool.submit(
                    _evaluate_one,
                    plan, index, attempt, store, tools, families, fault,
                )
            active[future] = (index, attempt, slot)

        def submit_ready() -> None:
            while queue and len(active) < window:
                index = queue.pop(0)
                obs.metrics.inc("engine.shards.scheduled")
                submit(index, 1)

        def drain_and_raise(fatal: Exception) -> None:
            still_running = [
                future for future in active if not future.cancel()
            ]
            if still_running and not broken:
                wait(still_running)
            raise fatal

        submit_ready()
        while active:
            done, _ = wait(set(active), return_when=FIRST_COMPLETED)
            for future in done:
                index, attempt, slot = active.pop(future)
                error = future.exception()
                if error is None:
                    outcome = future.result()
                    if executor == "process":
                        cells = outcome.cells
                        if ring is not None and outcome.slot is not None:
                            cells = ShardCells.from_array(
                                ring.read(
                                    outcome.slot, 5 + 4 * len(
                                        accumulator.tool_names
                                    )
                                ),
                                accumulator.tool_names,
                                ecosystem=plan.ecosystem,
                            )
                            ring.release(outcome.slot)
                        if outcome.metrics_dump is not None:
                            obs.metrics.merge_dict(outcome.metrics_dump)
                        if trace and outcome.spans:
                            obs.tracer.ingest(
                                outcome.spans,
                                offset_seconds=(
                                    outcome.trace_epoch_unix
                                    - obs.tracer.epoch_unix
                                ),
                            )
                        store.put(_shard_key(plan, index, families), cells)
                    else:
                        cells = outcome.cells
                    obs.metrics.inc("engine.shards.completed")
                    obs.metrics.observe(
                        "engine.shard.seconds", outcome.wall_seconds
                    )
                    accumulator.fold(cells)
                    records[index] = _completed_record(
                        plan, outcome, attempt, cells
                    )
                    continue
                # The failed task never folded, so its slot is dead weight.
                if ring is not None and slot is not None:
                    ring.release(slot)
                if isinstance(error, BrokenExecutor):
                    # A dead worker poisons the whole pool: every sibling
                    # future fails the same way, and a cached pool would
                    # poison later campaigns too.  Evict and abort.
                    broken = True
                    evict_process_pool(pool_key)
                    obs.metrics.inc("engine.shards.failed")
                    drain_and_raise(_shard_fatal(index, error, attempt))
                if isinstance(error, Exception) and attempt <= retries:
                    obs.metrics.inc("engine.shards.retried")
                    submit(index, attempt + 1)
                else:
                    obs.metrics.inc("engine.shards.failed")
                    if not keep_going or not isinstance(error, Exception):
                        drain_and_raise(_shard_fatal(index, error, attempt))
                    failure = FailureRecord.from_exception(
                        error, attempts=attempt
                    )
                    records[index] = _failed_shard_record(plan, index, failure)
            submit_ready()
    finally:
        if executor == "thread":
            pool.shutdown(wait=True, cancel_futures=True)
        elif broken:
            pass  # already evicted and shut down
        elif active:
            # Aborting with tasks still in flight: a cached pool would hand
            # the next campaign a worker mid-task, so retire this one.
            evict_process_pool(pool_key)
        if ring is not None:
            ring.close()
    return records

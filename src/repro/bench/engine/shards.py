"""Shard campaign runner: million-unit campaigns as engine sub-tasks.

:func:`run_sharded_campaign` drives a :class:`~repro.workload.sharded.
ShardPlan` through the engine's machinery the way the scheduler drives
experiments: each shard is an independent sub-task that generates its
workload, evaluates the tool suite, and returns a
:class:`~repro.bench.streaming.ShardCells`; the parent folds cells into a
:class:`~repro.bench.streaming.CampaignAccumulator` as they arrive and
discards the shard, so peak memory is bounded by ``jobs`` shards, never by
the corpus.

Engine semantics carry over wholesale:

- **executors** — shards run serially, in a thread pool, or in worker
  processes (``executor="process"``), with per-worker persistent artifact
  stores exactly like :mod:`repro.bench.engine.process`; process pools
  are cached across campaigns (:mod:`repro.bench.engine.transport`), so
  follow-up runs find warm workers;
- **transport** — process workers ship their cells home either as a
  pickled outcome (``transport="pickle"``) or as a flat int64 vector
  written into a shared-memory :class:`~repro.bench.engine.transport.
  CellRing` slot (``"shm"``, the ``"auto"`` choice on POSIX); cells are
  byte-identical either way, and submission is chunked so at most
  ``jobs × chunk`` futures are in flight;
- **caching** — each shard's cells are memoized in the artifact store
  under ``kind="shard-cells"`` and persisted to ``cache_dir`` as
  ``repro/shard-cells@1`` entries, so a warm re-run folds cached cells
  without generating or analyzing anything;
- **fault tolerance** — ``retries`` re-attempts a failed shard (the shard
  seed is a pure function of its index, so a recovered run is
  bit-identical to a clean one), ``keep_going`` records the failure and
  finishes every other shard, and ``resume_from`` re-executes only the
  non-completed shards of a prior :class:`ShardRunManifest`, folding the
  carried cells verbatim;
- **fault injection** — a :class:`~repro.bench.engine.faults.FaultPlan`
  targets shards by :func:`shard_fault_id` (``S000003`` for shard 3), so
  ``--inject-fault s3:fail=1`` exercises the retry path deterministically;
- **observability** — every shard runs under ``shard.generate`` /
  ``shard.evaluate`` spans and feeds the ``engine.shards.*`` counters, so
  a million-unit run is traceable in Perfetto like any experiment run;
- **crash safety** — a dead worker (``BrokenExecutor``) no longer aborts
  the campaign: the runner rebuilds the process pool (bounded rebuilds
  with exponential backoff) and re-dispatches the in-flight shards,
  probing them one at a time so the shard that actually killed the
  worker is attributable; a shard that kills ``quarantine_after``
  workers is recorded with status ``quarantined`` and the campaign
  continues under ``keep_going``.  ``wal_path`` appends every folded
  shard to an fsync'd write-ahead journal
  (:mod:`repro.bench.engine.wal`), so a SIGKILL'd *parent* recovers via
  ``resume_journal`` — replay the journal, re-run only missing shards,
  bit-identical totals.  A :class:`~repro.bench.engine.supervise.
  ShutdownSignal` drains in-flight shards on SIGTERM/SIGINT and still
  writes the partial manifest, and ``timeout`` arms a heartbeat watchdog
  (:class:`~repro.bench.engine.supervise.HeartbeatBoard`) that times out
  *hung* workers (silent heartbeat) rather than slow ones.

Totals are exact for any executor, fold order, retry count, crash
history, or resume history — see :mod:`repro.bench.streaming` for the
contract and ``docs/benchmarking.md`` ("Crash recovery") for the
operational story.
"""

from __future__ import annotations

import os
import signal as signal_module
import time
from collections.abc import Callable
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any

from repro.bench.engine.artifacts import ArtifactCodec, ArtifactKey, ArtifactStore
from repro.bench.engine.faults import PARENT_FAULT_ID, FaultPlan, FaultSpec
from repro.bench.engine.manifest import FailureRecord
from repro.bench.engine.supervise import HeartbeatBoard, ShutdownSignal
from repro.bench.engine.transport import (
    DEFAULT_CHUNK,
    CellRing,
    cached_process_pool,
    evict_process_pool,
    reclaim_leaked_segments,
    resolve_transport,
)
from repro.bench.engine.wal import JournalHeader, ShardJournal
from repro.bench.result import DEFAULT_SEED
from repro.bench.streaming import (
    CampaignAccumulator,
    ShardCells,
    StreamingCampaignResult,
    evaluate_shard,
)
from repro.errors import (
    ConfigurationError,
    EngineError,
    ExperimentFailedError,
    ExperimentTimeoutError,
    WorkerCrashError,
)
from repro.obs import Observability, SpanRecord, Tracer
from repro.tools.families import get_family, suite_for_ecosystem
from repro.workload.ecosystems import DEFAULT_ECOSYSTEM, get_ecosystem
from repro.workload.sharded import DEFAULT_SHARD_SIZE, ShardPlan, plan_shards

__all__ = [
    "SHARD_MANIFEST_SCHEMA",
    "SHARD_STATUSES",
    "DEFAULT_QUARANTINE_AFTER",
    "DEFAULT_MAX_POOL_REBUILDS",
    "ShardRunRecord",
    "ShardRunManifest",
    "ShardedCampaignRun",
    "shard_fault_id",
    "run_sharded_campaign",
]

SHARD_MANIFEST_SCHEMA = "repro/shard-run@2"

#: Schemas :meth:`ShardRunManifest.from_dict` accepts: @2 added the
#: ``quarantined`` / ``timeout`` statuses; @1 manifests are a strict
#: subset, so resuming them keeps working.
_ACCEPTED_SCHEMAS = ("repro/shard-run@1", SHARD_MANIFEST_SCHEMA)

#: Valid values of :attr:`ShardRunRecord.status` (shards have no
#: dependencies, so there is no ``skipped``).  ``quarantined`` marks a
#: shard that kept killing its workers; ``timeout`` a shard whose worker
#: went silent past the heartbeat budget.
SHARD_STATUSES = ("completed", "failed", "quarantined", "timeout")

#: A shard that kills this many workers is quarantined as poisonous.
DEFAULT_QUARANTINE_AFTER = 3

#: The campaign aborts after this many process-pool rebuilds.
DEFAULT_MAX_POOL_REBUILDS = 5


def shard_fault_id(index: int) -> str:
    """The fault-plan id targeting shard ``index`` (``S000003`` for 3).

    Matches what ``parse_fault`` produces for ``--inject-fault s3`` /
    ``--inject-fault S000003`` after its uppercasing, so the CLI's fault
    syntax addresses shards without new parsing rules.
    """
    return f"S{index:06d}"


def _fault_for_shard(faults: FaultPlan | None, index: int) -> FaultSpec | None:
    """The fault targeting shard ``index``, accepting padded or bare ids."""
    if faults is None:
        return None
    for candidate in (shard_fault_id(index), f"S{index}"):
        fault = faults.for_experiment(candidate)
        if fault is not None:
            return fault
    return None


def _shard_cells_codec() -> ArtifactCodec:
    from repro.persist import shard_cells_from_dict, shard_cells_to_dict

    return ArtifactCodec(
        to_dict=shard_cells_to_dict, from_dict=shard_cells_from_dict
    )


def _shard_key(
    plan: ShardPlan, index: int, families: tuple[str, ...]
) -> ArtifactKey:
    """The artifact-store key of shard ``index``'s cells.

    Keyed by ecosystem and tool families as well as the plan geometry, so
    same-seed campaigns over different ecosystems (or suite subsets) never
    collide in a shared cache.
    """
    return ArtifactKey(
        kind="shard-cells",
        name=f"s{index:06d}",
        params=(
            ("scale", plan.scale),
            ("seed", plan.seed),
            ("shard_size", plan.shard_size),
            ("ecosystem", plan.ecosystem),
            ("families", ",".join(families)),
        ),
    )


@dataclass(frozen=True)
class ShardRunRecord:
    """One shard's entry in the shard-run manifest."""

    index: int
    seed: int
    """The shard's own generation seed (derived, recorded for audit)."""
    n_units: int
    status: str = "completed"
    """``completed`` | ``failed`` | ``quarantined`` | ``timeout``."""
    attempts: int = 1
    wall_seconds: float = 0.0
    cells: ShardCells | None = None
    """The shard's confusion cells (``None`` for failed shards); stored in
    the manifest so ``--resume`` folds them without re-evaluating."""
    failure: FailureRecord | None = None

    def __post_init__(self) -> None:
        if self.status not in SHARD_STATUSES:
            raise ConfigurationError(
                f"invalid shard status {self.status!r}; expected one of "
                f"{SHARD_STATUSES}"
            )
        if self.status == "completed" and self.cells is None:
            raise ConfigurationError(
                f"completed shard {self.index} record carries no cells"
            )

    @property
    def completed(self) -> bool:
        """Whether this shard delivered its cells."""
        return self.status == "completed"

    def to_dict(self) -> dict[str, Any]:
        """Serialize for the manifest (cells inline as shard-cells@1)."""
        from repro.persist import shard_cells_to_dict

        payload: dict[str, Any] = {
            "index": self.index,
            "seed": self.seed,
            "n_units": self.n_units,
            "status": self.status,
            "attempts": self.attempts,
            "wall_seconds": self.wall_seconds,
        }
        if self.cells is not None:
            payload["cells"] = shard_cells_to_dict(self.cells)
        if self.failure is not None:
            payload["failure"] = self.failure.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ShardRunRecord":
        """Rebuild one record (cells validation re-runs on construction)."""
        from repro.persist import shard_cells_from_dict

        return cls(
            index=payload["index"],
            seed=payload["seed"],
            n_units=payload["n_units"],
            status=payload.get("status", "completed"),
            attempts=payload.get("attempts", 1),
            wall_seconds=payload.get("wall_seconds", 0.0),
            cells=(
                shard_cells_from_dict(payload["cells"])
                if payload.get("cells") is not None
                else None
            ),
            failure=(
                FailureRecord.from_dict(payload["failure"])
                if payload.get("failure") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class ShardRunManifest:
    """The full record of one sharded campaign run.

    Doubles as the resume token: completed records carry their cells, so
    ``run_sharded_campaign(resume_from=manifest)`` folds them verbatim and
    re-executes only the failed shards — at the same derived shard seeds,
    so the finished totals are bit-identical to an uninterrupted run.
    """

    seed: int
    scale: int
    shard_size: int
    jobs: int
    executor: str
    wall_seconds: float
    records: tuple[ShardRunRecord, ...]
    cache_dir: str | None = None
    ecosystem: str = DEFAULT_ECOSYSTEM
    """Ecosystem the corpus was generated under (resume restores it)."""
    tool_families: tuple[str, ...] | None = None
    """Resolved tool-family keys the suite was built from (``None`` in
    manifests predating tool families: the historical reference suite)."""
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def planned_shards(self) -> int:
        """Shards the recorded plan geometry implies (``ceil(scale /
        shard_size)``) — the denominator ``ok`` is judged against."""
        return (self.scale + self.shard_size - 1) // self.shard_size

    @property
    def ok(self) -> bool:
        """Whether every *planned* shard is present and completed.

        A manifest written by an interrupted (drained) run carries fewer
        records than the plan; it must not read as ok just because every
        shard it did run completed."""
        return len(self.records) == self.planned_shards and all(
            record.completed for record in self.records
        )

    @property
    def n_shards(self) -> int:
        """Shards this run actually recorded (``<= planned_shards``)."""
        return len(self.records)

    @property
    def incomplete_indices(self) -> list[int]:
        """Shards a ``--resume`` run must re-execute."""
        return [r.index for r in self.records if not r.completed]

    def record_for(self, index: int) -> ShardRunRecord:
        """One shard's record, by index."""
        for record in self.records:
            if record.index == index:
                return record
        raise ConfigurationError(
            f"manifest has no record for shard {index}; "
            f"covers {len(self.records)} shards"
        )

    def status_counts(self) -> dict[str, int]:
        """How many shards ended in each status."""
        totals = {status: 0 for status in SHARD_STATUSES}
        for record in self.records:
            totals[record.status] += 1
        return totals

    def summary_line(self) -> str:
        """A one-line human summary for logs and perf tracking."""
        units = sum(r.n_units for r in self.records if r.completed)
        line = (
            f"{units} units in {len(self.records)} shards "
            f"(shard_size={self.shard_size}) in {self.wall_seconds:.1f}s "
            f"(jobs={self.jobs}, executor={self.executor}, seed={self.seed}, "
            f"ecosystem={self.ecosystem})"
        )
        counts = self.status_counts()
        for status in ("failed", "quarantined", "timeout"):
            if counts[status]:
                line += f" [{counts[status]} {status}]"
        return line

    def to_dict(self) -> dict[str, Any]:
        """Serialize with the shard-run schema tag."""
        return {
            "schema": SHARD_MANIFEST_SCHEMA,
            "seed": self.seed,
            "scale": self.scale,
            "shard_size": self.shard_size,
            "jobs": self.jobs,
            "executor": self.executor,
            "wall_seconds": self.wall_seconds,
            "cache_dir": self.cache_dir,
            "ecosystem": self.ecosystem,
            **(
                {"tool_families": list(self.tool_families)}
                if self.tool_families is not None
                else {}
            ),
            "shards": [record.to_dict() for record in self.records],
            "statuses": self.status_counts(),
            **({"extra": self.extra} if self.extra else {}),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ShardRunManifest":
        """Rebuild a shard-run manifest, failing loudly on schema drift."""
        found = payload.get("schema")
        if found not in _ACCEPTED_SCHEMAS:
            raise ConfigurationError(
                f"expected a schema in {_ACCEPTED_SCHEMAS}, found {found!r}"
            )
        return cls(
            seed=payload["seed"],
            scale=payload["scale"],
            shard_size=payload["shard_size"],
            jobs=payload["jobs"],
            executor=payload["executor"],
            wall_seconds=payload["wall_seconds"],
            records=tuple(
                ShardRunRecord.from_dict(entry) for entry in payload["shards"]
            ),
            cache_dir=payload.get("cache_dir"),
            ecosystem=payload.get("ecosystem", DEFAULT_ECOSYSTEM),
            tool_families=(
                tuple(payload["tool_families"])
                if payload.get("tool_families") is not None
                else None
            ),
            extra=payload.get("extra", {}),
        )


@dataclass(frozen=True)
class ShardedCampaignRun:
    """Totals + manifest of one sharded campaign invocation."""

    totals: StreamingCampaignResult | None
    """Corpus-wide campaign totals (``None`` when no shard completed)."""
    manifest: ShardRunManifest
    store: ArtifactStore
    """The artifact store used (reusable for warm follow-up runs)."""

    @property
    def ok(self) -> bool:
        """Whether every shard completed."""
        return self.manifest.ok

    @property
    def interrupted(self) -> bool:
        """Whether a shutdown request drained this run before it finished
        (the manifest is partial; ``--resume`` picks up the rest)."""
        return "interrupted" in self.manifest.extra


# ---------------------------------------------------------------------------
# Shard execution (shared by the serial, thread and process paths)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardOutcome:
    """Everything one worker-side shard sends back to the parent.

    Under the shared-memory transport ``cells`` is ``None`` and ``slot``
    names the :class:`~repro.bench.engine.transport.CellRing` slot the
    worker wrote the flattened cells into; the parent rebuilds them with
    :meth:`ShardCells.from_array`.
    """

    index: int
    n_units: int
    wall_seconds: float
    cells: ShardCells | None
    metrics_dump: dict[str, Any] | None = None
    spans: tuple[SpanRecord, ...] = ()
    trace_epoch_unix: float = 0.0
    slot: int | None = None


def _evaluate_one(
    plan: ShardPlan,
    index: int,
    attempt: int,
    store: ArtifactStore,
    tools: list,
    families: tuple[str, ...],
    fault: FaultSpec | None,
    beat: Callable[[], None] | None = None,
) -> _ShardOutcome:
    """Run one attempt of one shard against ``store``; return its outcome.

    The cells are memoized under the shard's artifact key, so a warm store
    (or a populated ``cache_dir``) satisfies the shard without generating
    its workload; the fault hook fires *before* the cache lookup, so
    injected failures exercise the retry path even on warm runs.  ``beat``
    (when a heartbeat watchdog is armed) is called at phase boundaries —
    task start, generate→evaluate, completion — so a hung shard goes
    silent while a slow one keeps beating.
    """
    obs = store.obs
    spec = plan.spec(index)
    started = time.perf_counter()
    if beat is not None:
        beat()
    if fault is not None:
        fault.apply(attempt)

    def compute() -> ShardCells:
        with obs.tracer.span(
            "shard.generate", shard=index, units=spec.n_units, seed=spec.seed
        ):
            workload = plan.generate(index)
        obs.metrics.inc("engine.shards.units", len(workload.units))
        obs.metrics.inc("engine.shards.sites", workload.n_sites)
        if beat is not None:
            beat()
        with obs.tracer.span(
            "shard.evaluate", shard=index, tools=len(tools)
        ):
            return evaluate_shard(tools, workload, index)

    cells = store.get_or_compute(
        _shard_key(plan, index, families),
        compute,
        codec=_shard_cells_codec(),
        requester=f"shard:{index}",
    )
    if beat is not None:
        beat()
    return _ShardOutcome(
        index=index,
        n_units=spec.n_units,
        wall_seconds=time.perf_counter() - started,
        cells=cells,
    )


@dataclass(frozen=True)
class _WorkerContext:
    """The ~100-byte per-task context a shard submission ships.

    Replaces the old pool-initializer pinning: the plan is a pure function
    of ``(scale, shard_size, seed, ecosystem)``, so workers rebuild (and
    cache) it from these fields instead of unpickling the full plan — which
    is what lets one cached pool serve *different* campaigns across
    :func:`run_sharded_campaign` calls.  ``ring_name`` (plus the ring
    geometry) is set under the shared-memory transport.
    """

    scale: int
    shard_size: int
    seed: int
    ecosystem: str
    cache_dir: str | None
    trace: bool
    families: tuple[str, ...]
    ring_name: str | None = None
    ring_slots: int = 0
    ring_slot_ints: int = 0
    board_name: str | None = None
    """Heartbeat-board segment name (set when ``--timeout`` arms the
    watchdog on the process executor)."""
    board_slots: int = 0


#: Worker-process caches, all keyed by fields of the task's
#: :class:`_WorkerContext` so one long-lived worker serves many campaigns:
#: persistent artifact stores (the shard counterpart of
#: ``process._WORKER_STORES``), reconstructed shard plans, built tool
#: suites, and the attached cell ring.
_WORKER_STORES: dict[tuple[int, str | None], ArtifactStore] = {}
_WORKER_PLANS: dict[tuple[int, int, int, str], ShardPlan] = {}
_WORKER_SUITES: dict[tuple[str, int, tuple[str, ...]], list] = {}
_WORKER_RING: Any | None = None
_WORKER_BOARD: Any | None = None

#: Bound on each per-worker cache; campaigns cycle through few distinct
#: keys, so a tiny FIFO keeps reuse while bounding a long session.
_WORKER_CACHE_SIZE = 4


def _cache_bounded(cache: dict, key: Any, value: Any) -> Any:
    cache[key] = value
    while len(cache) > _WORKER_CACHE_SIZE:
        cache.pop(next(iter(cache)))
    return value


def _worker_ring(ctx: _WorkerContext):
    """The attached cell ring for ``ctx``, (re)attaching on name change."""
    global _WORKER_RING
    from repro.bench.engine.transport import CellRing

    if _WORKER_RING is not None and _WORKER_RING.name != ctx.ring_name:
        _WORKER_RING.close()
        _WORKER_RING = None
    if _WORKER_RING is None:
        _WORKER_RING = CellRing.attach(
            ctx.ring_name, ctx.ring_slots, ctx.ring_slot_ints
        )
    return _WORKER_RING


def _worker_board(ctx: _WorkerContext):
    """The attached heartbeat board for ``ctx``, re-attaching on change."""
    global _WORKER_BOARD
    if _WORKER_BOARD is not None and _WORKER_BOARD.name != ctx.board_name:
        _WORKER_BOARD.close()
        _WORKER_BOARD = None
    if _WORKER_BOARD is None:
        _WORKER_BOARD = HeartbeatBoard.attach(ctx.board_name, ctx.board_slots)
    return _WORKER_BOARD


def _evaluate_in_worker(
    ctx: _WorkerContext,
    index: int,
    attempt: int,
    fault: FaultSpec | None,
    slot: int | None,
    hb_slot: int | None = None,
) -> _ShardOutcome:
    """Worker-process task body: evaluate one shard, return a picklable
    outcome carrying this task's metrics dump and spans for parent-side
    merging (mirrors :func:`repro.bench.engine.process.execute_in_process`).
    Under the shared-memory transport (``slot`` given) the cells leave
    through the ring and the returned outcome carries only the slot;
    ``hb_slot`` names this task's heartbeat-board slot when the parent's
    watchdog is armed.
    """
    plan_key = (ctx.scale, ctx.shard_size, ctx.seed, ctx.ecosystem)
    plan = _WORKER_PLANS.get(plan_key)
    if plan is None:
        plan = _cache_bounded(
            _WORKER_PLANS,
            plan_key,
            plan_shards(
                scale=ctx.scale,
                shard_size=ctx.shard_size,
                seed=ctx.seed,
                ecosystem=ctx.ecosystem,
            ),
        )
    store_key = (ctx.seed, ctx.cache_dir)
    store = _WORKER_STORES.get(store_key)
    if store is None:
        store = _cache_bounded(
            _WORKER_STORES, store_key, ArtifactStore(cache_dir=ctx.cache_dir)
        )
    suite_key = (ctx.ecosystem, ctx.seed, ctx.families)
    tools = _WORKER_SUITES.get(suite_key)
    if tools is None:
        tools = _cache_bounded(
            _WORKER_SUITES,
            suite_key,
            suite_for_ecosystem(
                ctx.ecosystem, seed=ctx.seed, families=ctx.families
            ),
        )
    # A fresh bundle per task, so the parent merges without double counting.
    obs = Observability(tracer=Tracer(enabled=ctx.trace))
    store.obs = obs
    beat = None
    if hb_slot is not None and ctx.board_name is not None:
        beat = _worker_board(ctx).beater(hb_slot)
    outcome = _evaluate_one(
        plan, index, attempt, store, tools, ctx.families, fault, beat
    )
    cells: ShardCells | None = outcome.cells
    if slot is not None:
        _worker_ring(ctx).write(slot, cells.to_array())
        cells = None
    return _ShardOutcome(
        index=outcome.index,
        n_units=outcome.n_units,
        wall_seconds=outcome.wall_seconds,
        cells=cells,
        metrics_dump=obs.metrics.to_dict(),
        spans=tuple(obs.tracer.spans),
        trace_epoch_unix=obs.tracer.epoch_unix,
        slot=slot,
    )


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------
class _FoldSink:
    """Where completed cells go: accumulator, optional journal, chaos.

    Folding and journalling are one step so the write-ahead journal can
    never drift from the totals; the parent-side chaos faults
    (``PARENT:kill=K`` / ``PARENT:stop=N``) hook here because "after N
    folded shards" is the only deterministic parent-side clock.
    """

    def __init__(
        self,
        accumulator: CampaignAccumulator,
        journal: ShardJournal | None,
        obs: Observability,
        shutdown: ShutdownSignal,
        parent_fault: FaultSpec | None = None,
    ) -> None:
        self.accumulator = accumulator
        self.journal = journal
        self.obs = obs
        self.shutdown = shutdown
        self.parent_fault = parent_fault
        self.folds = 0

    @property
    def tool_names(self) -> tuple[str, ...]:
        """The accumulator's tool ordering (fixes the cells framing)."""
        return self.accumulator.tool_names

    def fold(self, cells: ShardCells) -> None:
        """Fold one freshly computed shard (journalled, chaos-eligible)."""
        self.accumulator.fold(cells)
        self._append(cells)
        self.folds += 1
        self._apply_parent_fault()

    def fold_carried(self, cells: ShardCells, append: bool = False) -> None:
        """Fold a shard carried from a manifest or a journal replay.

        Manifest resume passes ``append=True`` so a fresh ``--wal``
        journal starts complete; journal resume passes ``False`` — the
        record is already on disk.
        """
        self.accumulator.fold(cells)
        if append:
            self._append(cells)

    def _append(self, cells: ShardCells) -> None:
        if self.journal is not None:
            self.journal.append_cells(cells.to_array())
            self.obs.metrics.inc("engine.wal.records")

    def _apply_parent_fault(self) -> None:
        fault = self.parent_fault
        if fault is None:
            return
        if fault.kill_attempts and self.folds >= fault.kill_attempts:
            # A simulated parent crash: SIGKILL flushes nothing — which is
            # the point; the journal already holds every folded shard.
            os.kill(os.getpid(), signal_module.SIGKILL)
        if fault.stop_after and self.folds >= fault.stop_after:
            self.shutdown.request("injected parent stop")


def run_sharded_campaign(
    scale: int | None = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    executor: str = "thread",
    keep_going: bool = False,
    retries: int = 0,
    store: ArtifactStore | None = None,
    cache_dir: str | None = None,
    obs: Observability | None = None,
    faults: FaultPlan | None = None,
    resume_from: ShardRunManifest | None = None,
    ecosystem: str = DEFAULT_ECOSYSTEM,
    tool_families: tuple[str, ...] | None = None,
    transport: str = "auto",
    chunk: int = DEFAULT_CHUNK,
    timeout: float | None = None,
    wal_path: str | None = None,
    resume_journal: str | None = None,
    shutdown: ShutdownSignal | None = None,
    quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
    max_pool_rebuilds: int = DEFAULT_MAX_POOL_REBUILDS,
) -> ShardedCampaignRun:
    """Run an ecosystem's tool suite over a sharded ``scale``-unit corpus.

    ``ecosystem`` selects the registered
    :class:`~repro.workload.ecosystems.EcosystemProfile` that shapes every
    shard's workload and (by default) the tool suite; ``tool_families``
    restricts the suite to a subset of registered families.  The default
    ecosystem runs the historical reference suite over the historical
    corpus, bit-identically to runs predating these parameters.

    Shards execute under the requested executor with the engine's error
    policy (``retries`` re-attempts at the same derived shard seed;
    ``keep_going`` records terminal failures and continues; without it the
    first terminal failure aborts with
    :class:`~repro.errors.ExperimentFailedError` after draining in-flight
    shards).  Completed cells fold into a
    :class:`~repro.bench.streaming.CampaignAccumulator` as they arrive —
    the corpus never exists in memory, and the totals are bit-identical to
    the in-memory path regardless of ``jobs``/``executor``/fold order.

    ``resume_from`` takes a prior run's :class:`ShardRunManifest`:
    completed shards' cells are folded verbatim from the manifest and only
    the failed shards re-execute, at the plan parameters recorded in the
    manifest (``scale``/``shard_size``/``seed`` arguments are ignored).

    ``transport`` selects how process-executor results cross the process
    boundary — ``"shm"`` (flattened cells through a shared-memory ring),
    ``"pickle"`` (the legacy object path), or ``"auto"`` (shm where
    supported); both yield byte-identical cells.  ``chunk`` scales the
    submission window: up to ``jobs × chunk`` shard futures stay in
    flight, keeping workers fed while the parent folds.

    Crash safety (see ``docs/benchmarking.md``, "Crash recovery"): a dead
    worker triggers supervision — the pool is rebuilt (bounded by
    ``max_pool_rebuilds``) and crashed shards are re-probed one at a
    time, quarantining any shard attributed ``quarantine_after`` worker
    kills.  ``wal_path`` appends every folded shard to an fsync'd
    journal; ``resume_journal`` replays one and re-runs only the missing
    shards (mutually exclusive with ``resume_from``).  ``shutdown`` is a
    cooperative drain request (the CLI arms it on SIGTERM/SIGINT): when
    requested, nothing new is submitted, in-flight shards finish, and the
    partial manifest is still returned (``extra["interrupted"]`` lists
    the unfinished shards).  ``timeout`` arms a heartbeat watchdog that
    times out shards whose worker goes *silent* for that many seconds —
    hung, not merely slow.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if executor not in ("thread", "process"):
        raise ConfigurationError(
            f"executor must be one of ('thread', 'process'), got {executor!r}"
        )
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if chunk < 1:
        raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be > 0, got {timeout}")
    if quarantine_after < 1:
        raise ConfigurationError(
            f"quarantine_after must be >= 1, got {quarantine_after}"
        )
    if max_pool_rebuilds < 0:
        raise ConfigurationError(
            f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}"
        )
    if resume_from is not None and resume_journal is not None:
        raise ConfigurationError(
            "resume_from and resume_journal are mutually exclusive — "
            "pick the manifest or the journal, not both"
        )
    if resume_journal is not None and wal_path is not None:
        raise ConfigurationError(
            "resume_journal keeps appending to its own journal; "
            "wal_path cannot redirect it"
        )
    if faults is not None and executor != "process":
        for spec in faults.faults:
            if spec.kill_attempts and spec.experiment_id != PARENT_FAULT_ID:
                raise ConfigurationError(
                    "kill faults require executor='process': a killed "
                    "thread worker would take the campaign parent with it"
                )
    transport = resolve_transport(transport, executor)
    if shutdown is None:
        shutdown = ShutdownSignal()

    carried: dict[int, ShardRunRecord] = {}
    journal: ShardJournal | None = None
    replay = None
    if resume_from is None and resume_journal is None and scale is None:
        raise ConfigurationError(
            "scale is required unless resuming from a manifest or journal"
        )
    if resume_from is not None:
        scale = resume_from.scale
        shard_size = resume_from.shard_size
        seed = resume_from.seed
        ecosystem = resume_from.ecosystem
        tool_families = resume_from.tool_families
        carried = {
            record.index: record
            for record in resume_from.records
            if record.completed
        }
    if resume_journal is not None:
        journal, replay = ShardJournal.resume(resume_journal)
        header = replay.header
        scale = header.scale
        shard_size = header.shard_size
        seed = header.seed
        ecosystem = header.ecosystem
        tool_families = header.tool_families
    profile = get_ecosystem(ecosystem)
    families = (
        tuple(tool_families)
        if tool_families is not None
        else profile.tool_families
    )
    for family_key in families:
        get_family(family_key)  # fail fast, listing registered names
    plan = plan_shards(
        scale=scale, shard_size=shard_size, seed=seed, ecosystem=ecosystem
    )

    if store is None:
        store = ArtifactStore(cache_dir=cache_dir, obs=obs)
    elif obs is not None:
        store.obs = obs
    obs = store.obs
    if executor == "process" and obs.profiler is not None:
        raise ConfigurationError(
            "profiling requires the thread executor: cProfile sessions "
            "cannot be merged across worker processes"
        )

    parent_fault = (
        faults.for_experiment(PARENT_FAULT_ID) if faults is not None else None
    )
    reclaimed = reclaim_leaked_segments()
    if reclaimed:
        obs.metrics.inc("engine.shm.reclaimed", reclaimed)

    accumulator = CampaignAccumulator(
        [
            tool.name
            for tool in suite_for_ecosystem(
                profile, seed=seed, families=families
            )
        ],
        ecosystem=ecosystem,
    )
    if replay is not None and (
        tuple(replay.header.tool_names) != accumulator.tool_names
    ):
        journal.close()
        raise ConfigurationError(
            f"journal {resume_journal} was written for tools "
            f"{list(replay.header.tool_names)}; this campaign scores "
            f"{list(accumulator.tool_names)}"
        )
    if journal is None and wal_path is not None:
        journal = ShardJournal.create(
            wal_path,
            JournalHeader(
                seed=seed,
                scale=scale,
                shard_size=shard_size,
                ecosystem=ecosystem,
                tool_names=accumulator.tool_names,
                tool_families=families,
            ),
        )
    sink = _FoldSink(accumulator, journal, obs, shutdown, parent_fault)
    records: dict[int, ShardRunRecord] = {}
    if resume_from is not None:
        for record in carried.values():
            sink.fold_carried(record.cells, append=True)
    elif replay is not None:
        for array in replay.arrays:
            cells = ShardCells.from_array(
                array, replay.header.tool_names, ecosystem=ecosystem
            )
            if cells.shard_index in accumulator:
                continue  # replay dedupes, but stay idempotent regardless
            sink.fold_carried(cells)
            carried[cells.shard_index] = ShardRunRecord(
                index=cells.shard_index,
                seed=plan.spec(cells.shard_index).seed,
                n_units=cells.n_units,
                status="completed",
                cells=cells,
            )
    pending = [
        index for index in range(plan.n_shards) if index not in carried
    ]

    run_started = time.perf_counter()
    try:
        with obs.tracer.span(
            "engine.shard_run",
            seed=seed,
            scale=scale,
            shard_size=shard_size,
            shards=len(pending),
            jobs=jobs,
            executor=executor,
            ecosystem=ecosystem,
        ):
            if executor == "thread" and jobs == 1 and timeout is None:
                records.update(
                    _run_shards_serial(
                        plan, pending, store, sink, families, keep_going,
                        retries, faults, shutdown,
                    )
                )
            elif pending:
                records.update(
                    _PooledShardRun(
                        plan=plan,
                        pending=pending,
                        store=store,
                        sink=sink,
                        families=families,
                        jobs=jobs,
                        executor=executor,
                        keep_going=keep_going,
                        retries=retries,
                        faults=faults,
                        transport=transport,
                        chunk=chunk,
                        timeout=timeout,
                        shutdown=shutdown,
                        quarantine_after=quarantine_after,
                        max_pool_rebuilds=max_pool_rebuilds,
                    ).execute()
                )
    finally:
        if journal is not None:
            journal.close()
    wall = time.perf_counter() - run_started
    obs.metrics.inc("engine.shard_runs")

    manifest_records = tuple(
        carried[index] if index in carried else records[index]
        for index in sorted({*carried, *records})
    )
    extra: dict[str, Any] = {"transport": transport}
    if journal is not None:
        extra["wal"] = str(journal.path)
    if obs.tracer.enabled:
        extra["observability"] = {"spans": obs.tracer.summary()}
    if resume_from is not None:
        extra["resume"] = {"carried": sorted(carried)}
    elif replay is not None:
        extra["resume"] = {"carried": sorted(carried), "source": "wal"}
    if shutdown.requested:
        extra["interrupted"] = {
            "reason": shutdown.reason,
            "unfinished": [
                index
                for index in range(plan.n_shards)
                if index not in carried and index not in records
            ],
        }
    manifest = ShardRunManifest(
        seed=seed,
        scale=scale,
        shard_size=shard_size,
        jobs=jobs,
        executor=executor,
        wall_seconds=wall,
        records=manifest_records,
        cache_dir=str(store.cache_dir) if store.cache_dir is not None else None,
        ecosystem=ecosystem,
        tool_families=families,
        extra=extra,
    )
    totals = accumulator.result() if accumulator.folded else None
    return ShardedCampaignRun(totals=totals, manifest=manifest, store=store)


def _completed_record(
    plan: ShardPlan,
    outcome: _ShardOutcome,
    attempt: int,
    cells: ShardCells | None = None,
) -> ShardRunRecord:
    return ShardRunRecord(
        index=outcome.index,
        seed=plan.spec(outcome.index).seed,
        n_units=outcome.n_units,
        status="completed",
        attempts=attempt,
        wall_seconds=outcome.wall_seconds,
        cells=cells if cells is not None else outcome.cells,
    )


def _failed_shard_record(
    plan: ShardPlan,
    index: int,
    failure: FailureRecord,
    status: str = "failed",
) -> ShardRunRecord:
    spec = plan.spec(index)
    return ShardRunRecord(
        index=index,
        seed=spec.seed,
        n_units=spec.n_units,
        status=status,
        attempts=failure.attempts,
        wall_seconds=0.0,
        cells=None,
        failure=failure,
    )


def _shard_fatal(index: int, error: BaseException, attempts: int):
    fatal = ExperimentFailedError(
        f"shard {index} failed after {attempts} attempt(s): "
        f"{type(error).__name__}: {error}",
        experiment_id=shard_fault_id(index),
        attempts=attempts,
    )
    fatal.__cause__ = error
    return fatal


def _run_shards_serial(
    plan: ShardPlan,
    pending: list[int],
    store: ArtifactStore,
    sink: _FoldSink,
    families: tuple[str, ...],
    keep_going: bool,
    retries: int,
    faults: FaultPlan | None,
    shutdown: ShutdownSignal,
) -> dict[int, ShardRunRecord]:
    obs = store.obs
    tools = suite_for_ecosystem(plan.ecosystem, seed=plan.seed, families=families)
    records: dict[int, ShardRunRecord] = {}
    for index in pending:
        if shutdown.requested:
            break
        obs.metrics.inc("engine.shards.scheduled")
        fault = _fault_for_shard(faults, index)
        attempt = 1
        while True:
            try:
                outcome = _evaluate_one(
                    plan, index, attempt, store, tools, families, fault
                )
            except Exception as error:
                if attempt <= retries and not shutdown.requested:
                    obs.metrics.inc("engine.shards.retried")
                    attempt += 1
                    continue
                obs.metrics.inc("engine.shards.failed")
                if not keep_going and not shutdown.requested:
                    raise _shard_fatal(index, error, attempt) from error
                failure = FailureRecord.from_exception(error, attempts=attempt)
                records[index] = _failed_shard_record(plan, index, failure)
                break
            obs.metrics.inc("engine.shards.completed")
            obs.metrics.observe("engine.shard.seconds", outcome.wall_seconds)
            sink.fold(outcome.cells)
            records[index] = _completed_record(plan, outcome, attempt)
            break
    return records


@dataclass
class _InFlight:
    """Parent-side bookkeeping for one submitted shard attempt."""

    index: int
    attempt: int
    slot: int | None
    """Cell-ring slot, when the shm transport assigned one."""
    hb_slot: int | None
    """Heartbeat-board slot, when the watchdog is armed."""
    submitted_ns: int
    """Submission stamp — the hung-check anchor until the first beat."""


class _PooledShardRun:
    """One pooled (thread or process) shard campaign execution.

    The closure-based pooled runner grew supervision state — probe
    queues, crash counts, rebuild budgets, heartbeat slots — past what
    closures carry legibly; this class is that state plus the loop over
    it.  Keeps up to :attr:`window` shards in flight, folds as they
    finish, and survives three failure families the old runner aborted
    on:

    - **worker death** — a :class:`BrokenExecutor` means the executor
      killed every worker and failed the whole in-flight window.
      Completed siblings fold normally; the crashed remainder cannot be
      attributed (any of them may have killed the worker), so they are
      re-dispatched *one at a time* — a pool break with exactly one shard
      in flight is attributable — and a shard attributed
      ``quarantine_after`` kills is recorded ``quarantined`` instead of
      killing its next worker.  Each break evicts the cached pool and
      rebuilds it, bounded by ``max_pool_rebuilds`` with exponential
      backoff.
    - **hung workers** — with ``timeout`` armed, a shard whose heartbeat
      goes silent past the budget is timed out.  A running future cannot
      be cancelled; it is *abandoned*: its ring/board slots leak for the
      campaign's lifetime (a zombie may still write them) and teardown
      retires the pool instead of returning it to the cache.
    - **drain requests** — once ``shutdown`` is requested nothing new is
      submitted; in-flight shards finish and are recorded, and failures
      during the drain are recorded rather than raised.
    """

    def __init__(
        self,
        plan: ShardPlan,
        pending: list[int],
        store: ArtifactStore,
        sink: _FoldSink,
        families: tuple[str, ...],
        jobs: int,
        executor: str,
        keep_going: bool,
        retries: int,
        faults: FaultPlan | None,
        transport: str,
        chunk: int,
        timeout: float | None,
        shutdown: ShutdownSignal,
        quarantine_after: int,
        max_pool_rebuilds: int,
    ) -> None:
        self.plan = plan
        self.store = store
        self.obs = store.obs
        self.sink = sink
        self.families = families
        self.jobs = jobs
        self.executor = executor
        self.keep_going = keep_going
        self.retries = retries
        self.faults = faults
        self.transport = transport
        self.chunk = chunk
        self.timeout = timeout
        self.shutdown = shutdown
        self.quarantine_after = quarantine_after
        self.max_pool_rebuilds = max_pool_rebuilds
        self.n_pending = len(pending)
        self.queue: list[int] = list(pending)
        self.probe_queue: list[tuple[int, int]] = []
        self.crash_counts: dict[int, int] = {}
        self.records: dict[int, ShardRunRecord] = {}
        self.active: dict[Future, _InFlight] = {}
        self.rebuilds = 0
        self.abandoned = 0
        cache_dir = store.cache_dir
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.trace = self.obs.tracer.enabled
        self.tools = (
            suite_for_ecosystem(
                plan.ecosystem, seed=plan.seed, families=families
            )
            if executor == "thread"
            else None
        )
        self.pool: Any = None
        self.ring: CellRing | None = None
        self.board: HeartbeatBoard | None = None
        self.ctx: _WorkerContext | None = None
        self.pool_key = ("shards", plan.seed, self.cache_dir, plan.ecosystem)

    @property
    def window(self) -> int:
        """How many shard futures may be in flight right now.

        With the watchdog armed the window is the worker count (shrunk by
        wedged workers), so a queued task's wait never reads as heartbeat
        silence; without it, ``jobs × chunk`` keeps workers fed while the
        parent folds.
        """
        if self.timeout is None:
            return self.jobs * self.chunk
        return max(1, self.jobs - self.abandoned)

    # -- lifecycle -----------------------------------------------------------
    def execute(self) -> dict[int, ShardRunRecord]:
        """Run every pending shard; return their manifest records."""
        self._setup()
        try:
            self._submit_ready()
            while self.active:
                self._tick()
                self._submit_ready()
        finally:
            self._teardown()
        return self.records

    def _setup(self) -> None:
        if self.executor == "process":
            self.pool = cached_process_pool(
                self.pool_key, max_workers=self.jobs
            )
            if self.transport == "shm":
                self.ring = CellRing.create(
                    n_slots=min(self.window, self.n_pending) or 1,
                    slot_ints=5 + 4 * len(self.sink.tool_names),
                )
            if self.timeout is not None:
                self.board = HeartbeatBoard.create(self.window)
            ring, board = self.ring, self.board
            self.ctx = _WorkerContext(
                scale=self.plan.scale,
                shard_size=self.plan.shard_size,
                seed=self.plan.seed,
                ecosystem=self.plan.ecosystem,
                cache_dir=self.cache_dir,
                trace=self.trace,
                families=self.families,
                ring_name=ring.name if ring is not None else None,
                ring_slots=ring.n_slots if ring is not None else 0,
                ring_slot_ints=ring.slot_ints if ring is not None else 0,
                board_name=board.name if board is not None else None,
                board_slots=board.n_slots if board is not None else 0,
            )
        else:
            self.pool = ThreadPoolExecutor(max_workers=self.jobs)
            if self.timeout is not None:
                self.board = HeartbeatBoard.local(self.window)

    def _teardown(self) -> None:
        if self.executor == "thread":
            # A wedged (abandoned) thread cannot be joined without
            # blocking the drain; skip the wait and let it finish on its
            # own or die with the interpreter.
            self.pool.shutdown(wait=not self.abandoned, cancel_futures=True)
        elif self.active or self.abandoned:
            # Aborting with tasks still in flight (or wedged workers): a
            # cached pool would hand the next campaign a worker mid-task,
            # so retire this one.
            evict_process_pool(self.pool_key)
        if self.ring is not None:
            self.ring.close()
        if self.board is not None:
            self.board.close()

    # -- submission ----------------------------------------------------------
    def _submit_ready(self) -> None:
        if self.shutdown.requested:
            return  # draining: nothing new goes out
        if self.probe_queue:
            # Probes fly solo: a pool break with exactly one shard in
            # flight is attributable to it — which is what keeps an
            # innocent shard that merely shared a window with a poison
            # one out of quarantine.
            if not self.active:
                index, attempt = self.probe_queue.pop(0)
                self.obs.metrics.inc("engine.shards.redispatched")
                self._submit(index, attempt)
            return
        while self.queue and len(self.active) < self.window:
            index = self.queue.pop(0)
            self.obs.metrics.inc("engine.shards.scheduled")
            self._submit(index, 1)

    def _submit(self, index: int, attempt: int) -> None:
        fault = _fault_for_shard(self.faults, index)
        slot: int | None = None
        hb_slot = self.board.acquire() if self.board is not None else None
        if self.executor == "process":
            # Fall back to pickle transport when crash-leaked slots have
            # exhausted the ring rather than failing the submission.
            if self.ring is not None and self.ring.free_slots:
                slot = self.ring.acquire()
            try:
                future = self.pool.submit(
                    _evaluate_in_worker,
                    self.ctx, index, attempt, fault, slot, hb_slot,
                )
            except (BrokenExecutor, RuntimeError) as error:
                # submit itself found a dead (or already shut down) pool:
                # surface it through the supervision path via a
                # pre-failed future instead of crashing the parent.
                future = Future()
                future.set_exception(
                    error
                    if isinstance(error, BrokenExecutor)
                    else BrokenExecutor(str(error))
                )
        else:
            beat = (
                self.board.beater(hb_slot)
                if self.board is not None and hb_slot is not None
                else None
            )
            future = self.pool.submit(
                _evaluate_one,
                self.plan, index, attempt, self.store, self.tools,
                self.families, fault, beat,
            )
        self.active[future] = _InFlight(
            index=index,
            attempt=attempt,
            slot=slot,
            hb_slot=hb_slot,
            submitted_ns=time.monotonic_ns(),
        )

    # -- the main loop -------------------------------------------------------
    def _tick(self) -> None:
        """Wait for progress, then fold, supervise, or reap as needed."""
        tick = 0.25 if self.timeout is not None else None
        done, _ = wait(
            set(self.active), timeout=tick, return_when=FIRST_COMPLETED
        )
        if self.executor == "process" and any(
            isinstance(future.exception(), BrokenExecutor) for future in done
        ):
            self._supervise_pool_break()
            return
        for future in done:
            self._handle_done(future)
        if self.timeout is not None:
            self._reap_hung()

    def _handle_done(self, future: Future) -> None:
        flight = self.active.pop(future)
        if self.board is not None and flight.hb_slot is not None:
            self.board.release(flight.hb_slot)
        error = future.exception()
        if error is None:
            self._fold_success(flight, future.result())
            return
        if self.ring is not None and flight.slot is not None:
            # The failed task never folded, so its slot is dead weight —
            # and its worker is done with it, so reuse is safe.
            self.ring.release(flight.slot)
        self._handle_failure(flight, error)

    def _fold_success(self, flight: _InFlight, outcome: _ShardOutcome) -> None:
        index, attempt = flight.index, flight.attempt
        if self.executor == "process":
            try:
                cells = self._extract_cells(outcome)
            except ConfigurationError as error:
                # A corrupted shm slot misframes or unbalances the flat
                # vector; that is a (retryable) task failure, not a
                # parent bug.
                self.obs.metrics.inc("engine.transport.corrupt")
                if self.ring is not None and flight.slot is not None:
                    self.ring.release(flight.slot)
                self._handle_failure(flight, error)
                return
            if outcome.metrics_dump is not None:
                self.obs.metrics.merge_dict(outcome.metrics_dump)
            if self.trace and outcome.spans:
                self.obs.tracer.ingest(
                    outcome.spans,
                    offset_seconds=(
                        outcome.trace_epoch_unix - self.obs.tracer.epoch_unix
                    ),
                )
            self.store.put(_shard_key(self.plan, index, self.families), cells)
        else:
            cells = outcome.cells
        self.obs.metrics.inc("engine.shards.completed")
        self.obs.metrics.observe("engine.shard.seconds", outcome.wall_seconds)
        self.sink.fold(cells)
        self.records[index] = _completed_record(
            self.plan, outcome, attempt, cells
        )

    def _extract_cells(self, outcome: _ShardOutcome) -> ShardCells:
        cells = outcome.cells
        if self.ring is not None and outcome.slot is not None:
            n_ints = 5 + 4 * len(self.sink.tool_names)
            cells = ShardCells.from_array(
                self.ring.read(outcome.slot, n_ints),
                self.sink.tool_names,
                ecosystem=self.plan.ecosystem,
            )
            self.ring.release(outcome.slot)
        return cells

    def _handle_failure(self, flight: _InFlight, error: BaseException) -> None:
        index, attempt = flight.index, flight.attempt
        retryable = isinstance(error, Exception)
        if (
            retryable
            and attempt <= self.retries
            and not self.shutdown.requested
        ):
            self.obs.metrics.inc("engine.shards.retried")
            self._submit(index, attempt + 1)
            return
        self.obs.metrics.inc("engine.shards.failed")
        if (
            not retryable or not self.keep_going
        ) and not self.shutdown.requested:
            self._drain_and_raise(_shard_fatal(index, error, attempt))
        failure = FailureRecord.from_exception(error, attempts=attempt)
        self.records[index] = _failed_shard_record(self.plan, index, failure)

    def _drain_and_raise(self, fatal: Exception) -> None:
        still_running = [
            future for future in self.active if not future.cancel()
        ]
        if still_running:
            _, not_done = wait(still_running, timeout=self.timeout)
            self.abandoned += len(not_done)
        raise fatal

    # -- supervision ---------------------------------------------------------
    def _supervise_pool_break(self) -> None:
        """A worker died and broke the pool: fold the survivors, attribute
        the crash, quarantine repeat offenders, rebuild, re-dispatch."""
        self.obs.metrics.inc("engine.workers.crashed")
        # A broken executor terminates every worker and fails the rest of
        # the window fast; retiring the cached pool also settles anything
        # still queued inside it.
        evict_process_pool(self.pool_key)
        wait(list(self.active), timeout=5.0)
        crashed: list[_InFlight] = []
        ordinary: list[Future] = []
        for future in list(self.active):
            if not future.done():
                # Should not happen after the pool shut down; abandon the
                # flight (leaking its slots) rather than block on it.
                flight = self.active.pop(future)
                self.abandoned += 1
                crashed.append(flight)
                continue
            error = future.exception()
            if isinstance(error, BrokenExecutor):
                flight = self.active.pop(future)
                if self.board is not None and flight.hb_slot is not None:
                    self.board.release(flight.hb_slot)
                if self.ring is not None and flight.slot is not None:
                    self.ring.release(flight.slot)  # its writer is dead
                crashed.append(flight)
            else:
                ordinary.append(future)
        # Fold completed siblings first: their cells (and journal
        # records) survive even if quarantine aborts the campaign below.
        completed = [f for f in ordinary if f.exception() is None]
        failed = [f for f in ordinary if f.exception() is not None]
        for future in completed:
            self._handle_done(future)
        self._attribute_crashes(crashed)
        if not self.shutdown.requested and (
            self.queue or self.probe_queue or failed
        ):
            self._rebuild_pool()
        for future in failed:
            self._handle_done(future)

    def _attribute_crashes(self, crashed: list[_InFlight]) -> None:
        """Decide each crashed flight's fate: probe, quarantine, or (under
        a drain) record as failed.

        Attribution is deliberately conservative: the kill count only
        advances when the break had exactly one shard in flight, so a
        full-window break blames nobody and every crashed shard earns a
        solo probe instead.
        """
        attributable = len(crashed) == 1
        for flight in crashed:
            index = flight.index
            if attributable:
                self.crash_counts[index] = self.crash_counts.get(index, 0) + 1
            if self.crash_counts.get(index, 0) >= self.quarantine_after:
                self._quarantine(flight)
                continue
            if self.shutdown.requested:
                error = WorkerCrashError(
                    f"shard {index} was in flight when its worker pool "
                    f"broke during a drain"
                )
                failure = FailureRecord.from_exception(
                    error, attempts=flight.attempt
                )
                self.records[index] = _failed_shard_record(
                    self.plan, index, failure
                )
                continue
            # Re-probe at the next attempt number so transient kill
            # faults (kill=K) stop firing once K attempts have died.
            self.probe_queue.append((index, flight.attempt + 1))

    def _quarantine(self, flight: _InFlight) -> None:
        index = flight.index
        self.obs.metrics.inc("engine.shards.quarantined")
        error = WorkerCrashError(
            f"shard {index} killed {self.crash_counts.get(index, 0)} "
            f"worker(s); quarantined"
        )
        if not self.keep_going and not self.shutdown.requested:
            self._drain_and_raise(_shard_fatal(index, error, flight.attempt))
        failure = FailureRecord.from_exception(error, attempts=flight.attempt)
        self.records[index] = _failed_shard_record(
            self.plan, index, failure, status="quarantined"
        )

    def _rebuild_pool(self) -> None:
        if self.rebuilds >= self.max_pool_rebuilds:
            raise EngineError(
                f"worker pool broke {self.rebuilds + 1} times; giving up "
                f"(max_pool_rebuilds={self.max_pool_rebuilds})"
            )
        self.rebuilds += 1
        backoff = min(2.0, 0.05 * 2 ** (self.rebuilds - 1))
        with self.obs.tracer.span(
            "engine.pool_rebuild", rebuild=self.rebuilds, backoff=backoff
        ):
            time.sleep(backoff)
            self.pool = cached_process_pool(
                self.pool_key, max_workers=self.jobs
            )
        self.obs.metrics.inc("engine.pool.rebuilds")

    # -- the watchdog --------------------------------------------------------
    def _reap_hung(self) -> None:
        """Time out shards whose heartbeat went silent past the budget."""
        budget_ns = int(self.timeout * 1e9)
        now = time.monotonic_ns()
        for future, flight in list(self.active.items()):
            anchor = flight.submitted_ns
            if self.board is not None and flight.hb_slot is not None:
                anchor = max(anchor, self.board.last_beat(flight.hb_slot))
            if now - anchor <= budget_ns:
                continue
            del self.active[future]
            if future.cancel():
                # Never started: its slots are untouched and reusable.
                if self.board is not None and flight.hb_slot is not None:
                    self.board.release(flight.hb_slot)
                if self.ring is not None and flight.slot is not None:
                    self.ring.release(flight.slot)
            else:
                # Running and silent: abandon it.  Its slots leak for the
                # campaign's lifetime — the hung worker may still write
                # them — and teardown retires the pool.
                self.abandoned += 1
            self.obs.metrics.inc("engine.shards.timeout")
            error = ExperimentTimeoutError(
                f"shard {flight.index} went {self.timeout}s without a "
                f"heartbeat (hung, not slow: live workers beat at phase "
                f"boundaries)",
                experiment_id=shard_fault_id(flight.index),
                timeout=self.timeout,
            )
            if not self.keep_going and not self.shutdown.requested:
                self._drain_and_raise(error)
            failure = FailureRecord.from_exception(
                error, attempts=flight.attempt
            )
            self.records[flight.index] = _failed_shard_record(
                self.plan, flight.index, failure, status="timeout"
            )

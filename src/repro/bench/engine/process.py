"""Worker-process side of the ``--executor process`` path.

``ProcessPoolExecutor`` sidesteps the GIL for CPU-bound experiments, but it
imposes two disciplines the thread executor never needed: everything that
crosses the process boundary must pickle, and observability recorded in a
worker must travel back explicitly or be lost.  This module implements
both halves of that contract:

- The worker is addressed by *experiment id*, not by spec — specs carry the
  driver callable, which may close over module state, so the worker
  re-resolves the id through the registry (``get_spec`` imports the
  experiments package on demand, so this works under any start method).
- Each worker process keeps one persistent
  :class:`~repro.bench.engine.artifacts.ArtifactStore` per
  ``(seed, cache_dir)``, so later tasks landing on the same worker reuse
  in-memory artifacts the way threads share the parent store (plus the
  shared disk tier when ``cache_dir`` is set).
- Every *task* gets a fresh observability bundle, so its metrics dump and
  span list describe exactly that task's work; the parent merges outcomes
  without double counting (see ``scheduler._merge_outcome``).

Determinism is unchanged: experiments receive the same explicit seeds under
either executor, and every stochastic substream downstream is derived from
them (:mod:`repro._rng`), so thread and process runs render byte-identical
reports.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.bench.engine.artifacts import ArtifactEvent, ArtifactStore
from repro.bench.engine.context import RunContext
from repro.bench.engine.spec import get_spec
from repro.bench.result import ExperimentResult
from repro.obs import Observability, SpanRecord, Tracer

if TYPE_CHECKING:
    from repro.bench.engine.faults import FaultSpec

__all__ = ["ProcessOutcome", "execute_in_process"]

#: One persistent store per worker process, keyed by ``(seed, cache_dir)``.
#: Worker processes are reused across tasks — and, now that pools are
#: cached, across whole ``run_experiments`` calls — so the second
#: experiment a worker runs finds the reference workload/campaign already
#: in memory.  Bounded FIFO: a long session cycling seeds must not pin
#: every store it ever warmed.
_WORKER_STORES: dict[tuple[int, str | None], ArtifactStore] = {}

_WORKER_STORE_CACHE_SIZE = 4


def _worker_store(seed: int, cache_dir: str | None) -> ArtifactStore:
    store_key = (seed, cache_dir)
    store = _WORKER_STORES.get(store_key)
    if store is None:
        store = _WORKER_STORES[store_key] = ArtifactStore(cache_dir=cache_dir)
        while len(_WORKER_STORES) > _WORKER_STORE_CACHE_SIZE:
            _WORKER_STORES.pop(next(iter(_WORKER_STORES)))
    return store


@dataclass(frozen=True)
class ProcessOutcome:
    """Everything one worker-side experiment sends back to the parent."""

    experiment_id: str
    title: str
    seed: int | None
    """Effective seed (``None`` for seedless experiments)."""
    wall_seconds: float
    events: tuple[ArtifactEvent, ...]
    """Artifact requests attributed to this experiment in the worker."""
    result: ExperimentResult
    metrics_dump: dict[str, Any]
    """This task's :meth:`~repro.obs.MetricsRegistry.to_dict` dump."""
    spans: tuple[SpanRecord, ...]
    """This task's closed spans (empty unless tracing was requested)."""
    trace_epoch_unix: float
    """Wall-clock anchor of the worker tracer's epoch, for stitching."""


def execute_in_process(
    experiment_id: str,
    seed: int,
    cache_dir: str | None,
    trace: bool,
    attempt: int = 1,
    fault: "FaultSpec | None" = None,
) -> ProcessOutcome:
    """Run one experiment in this worker process; return a picklable outcome.

    ``attempt`` is assigned by the parent scheduler (retries resubmit with
    the same seed but a higher attempt number); ``fault`` is the
    deterministic :class:`~repro.bench.engine.faults.FaultSpec` targeting
    this experiment, if the run installed one — applied worker-side so the
    process executor exercises exactly the same failure paths as the
    thread executor.  A raised fault (or any experiment exception) pickles
    back to the parent, which owns retry/keep-going/skip decisions.
    """
    spec = get_spec(experiment_id)
    store = _worker_store(seed, cache_dir)
    # A fresh bundle per task: its dump holds only this task's traffic, so
    # the parent can merge every outcome without double counting.
    obs = Observability(tracer=Tracer(enabled=trace))
    store.obs = obs
    context = RunContext(seed=seed, store=store)
    child = context.for_experiment(experiment_id)
    already = len(store.events_for(experiment_id))
    params = {} if spec.seedless else {"seed": seed}
    retry_span = (
        obs.tracer.span(
            "experiment.retry", experiment=experiment_id, attempt=attempt
        )
        if attempt > 1
        else nullcontext()
    )
    started = time.perf_counter()
    with retry_span:
        with obs.tracer.span(
            f"experiment.{experiment_id}",
            title=spec.title,
            seed=None if spec.seedless else seed,
        ):
            if fault is not None:
                fault.apply(attempt)
            result = child.experiment(experiment_id, **params)
    elapsed = time.perf_counter() - started
    return ProcessOutcome(
        experiment_id=spec.experiment_id,
        title=spec.title,
        seed=None if spec.seedless else seed,
        wall_seconds=elapsed,
        events=tuple(store.events_for(experiment_id)[already:]),
        result=result,
        metrics_dump=obs.metrics.to_dict(),
        spans=tuple(obs.tracer.spans),
        trace_epoch_unix=obs.tracer.epoch_unix,
    )

"""Experiment specifications and their registry.

An :class:`ExperimentSpec` is the declarative face of one experiment: its
id, the exact title/artifact strings ``repro list`` prints, whether it takes
a seed, which upstream experiments it consumes, and the driver callable.
Experiment modules register their spec at import time, so the CLI, the
scheduler and the docs all read from one source and cannot drift apart the
way the old hand-maintained ``_SEEDLESS`` set and titles dict in ``cli.py``
could.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.bench.result import ExperimentResult
from repro.errors import ConfigurationError

__all__ = [
    "ExperimentSpec",
    "register_spec",
    "get_spec",
    "all_specs",
    "experiment_ids",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative metadata for one reproduction experiment."""

    experiment_id: str
    """Canonical id (``R1`` .. ``R19``)."""
    title: str
    """Short title as printed by ``repro list``."""
    artifact: str
    """What the experiment reproduces (``table``, ``figure``, ``extension``)."""
    runner: Callable[..., ExperimentResult]
    """The module's ``run`` callable (keyword-only invocation)."""
    seedless: bool = False
    """Whether the driver takes no ``seed`` keyword (R1 static, R6 analytic)."""
    depends_on: tuple[str, ...] = ()
    """Upstream experiment ids whose results/artifacts this one consumes."""
    cache_defaults: Mapping[str, Any] = field(default_factory=dict)
    """Default values of the keyword arguments that parameterize the result.

    Used to normalize cache keys: a caller passing ``n_pools=40`` explicitly
    and a caller relying on the default must land on the same artifact.
    """

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ConfigurationError("experiment id must be non-empty")
        if self.experiment_id in self.depends_on:
            raise ConfigurationError(
                f"experiment {self.experiment_id} cannot depend on itself"
            )

    @property
    def list_line(self) -> str:
        """The ``repro list`` line body, e.g. ``Metric catalog (table)``."""
        return f"{self.title} ({self.artifact})"

    @property
    def index(self) -> int:
        """Numeric order (R7 -> 7); used for deterministic scheduling."""
        digits = "".join(ch for ch in self.experiment_id if ch.isdigit())
        return int(digits) if digits else 0


_REGISTRY: dict[str, ExperimentSpec] = {}


def register_spec(spec: ExperimentSpec) -> ExperimentSpec:
    """Register ``spec``; re-registration must be identical (module reload)."""
    existing = _REGISTRY.get(spec.experiment_id)
    if existing is not None and existing.runner is not spec.runner:
        raise ConfigurationError(
            f"experiment {spec.experiment_id!r} registered twice with "
            f"different runners"
        )
    _REGISTRY[spec.experiment_id] = spec
    return spec


def _ensure_loaded() -> None:
    # Importing the experiments package registers every spec as a side
    # effect of each module's ``SPEC = register_spec(...)`` line.
    import repro.bench.experiments  # noqa: F401


def get_spec(experiment_id: str) -> ExperimentSpec:
    """The spec for ``experiment_id`` (case-insensitive)."""
    _ensure_loaded()
    key = experiment_id.upper()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(experiment_ids())}"
        ) from None


def all_specs() -> list[ExperimentSpec]:
    """Every registered spec in R1..R19 order."""
    _ensure_loaded()
    return sorted(_REGISTRY.values(), key=lambda spec: spec.index)


def experiment_ids() -> list[str]:
    """Registered experiment ids in canonical order."""
    return [spec.experiment_id for spec in all_specs()]

"""The experiment result type and the canonical reproduction seed.

This lives outside the :mod:`repro.bench.experiments` package on purpose:
the engine (specs, contexts, scheduler) and every experiment driver both
need these names, and importing anything from inside the experiments
package triggers its ``__init__`` — which imports all nineteen drivers,
which import the engine.  A leaf module breaks that cycle.
:mod:`repro.bench.experiments.base` re-exports both names, so existing
imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["ExperimentResult", "DEFAULT_SEED"]

#: One seed to rule the reproduction: every experiment derives its streams
#: from this unless the caller overrides it.
DEFAULT_SEED = 2015


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment run."""

    experiment_id: str
    title: str
    sections: dict[str, str] = field(default_factory=dict)
    """Rendered text blocks (tables/figures), keyed by section name."""
    data: dict[str, object] = field(default_factory=dict)
    """Machine-readable payload for tests and downstream experiments."""

    def render(self) -> str:
        """The full printable report of the experiment."""
        blocks = [f"=== {self.experiment_id}: {self.title} ==="]
        blocks.extend(self.sections.values())
        return "\n\n".join(blocks)

    def section(self, name: str) -> str:
        """One rendered section by name."""
        try:
            return self.sections[name]
        except KeyError:
            raise ConfigurationError(
                f"experiment {self.experiment_id} has no section {name!r}; "
                f"available: {list(self.sections)}"
            ) from None

"""Tool run-to-run repeatability.

Dynamic and simulated tools are nondeterministic across runs: the same tool
on the same workload produces different reports.  A benchmark score then
carries two noise sources — *which sites the workload happened to contain*
(sampling noise, estimated by bootstrap) and *what the tool happened to do
this run* (run noise, estimated here by re-running with fresh tool seeds).
Reporting a single run's number as "the" score conflates them; this module
measures both so a benchmark can say which one its error bars must cover.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro._rng import derive_seed
from repro.bench.campaign import score_report
from repro.errors import ConfigurationError
from repro.metrics.base import Metric
from repro.stats.bootstrap import bootstrap_metric
from repro.tools.base import VulnerabilityDetectionTool
from repro.workload.generator import Workload

__all__ = ["RunNoiseSummary", "tool_run_noise"]


@dataclass(frozen=True, slots=True)
class RunNoiseSummary:
    """Dispersion of one metric over repeated runs of one tool."""

    tool_name: str
    metric_symbol: str
    n_runs: int
    mean: float
    std: float
    min_value: float
    max_value: float
    sampling_std: float
    """Bootstrap std of the same metric on the first run's confusion matrix
    (the workload-sampling noise at this workload size)."""

    @property
    def run_to_sampling_ratio(self) -> float:
        """Run noise relative to sampling noise.

        Below ~1, a single run is as trustworthy as the workload allows;
        well above 1, the benchmark must average runs before its error bars
        mean anything.
        """
        if self.sampling_std == 0:
            return math.inf if self.std > 0 else 0.0
        return self.std / self.sampling_std


def tool_run_noise(
    tool_factory: Callable[[int], VulnerabilityDetectionTool],
    workload: Workload,
    metric: Metric,
    n_runs: int = 15,
    seed: int = 0,
    n_resamples: int = 200,
) -> RunNoiseSummary:
    """Re-run a tool with fresh seeds and summarize the metric's dispersion.

    ``tool_factory(run_seed)`` must build the tool configured with that
    seed; deterministic tools simply ignore it (and score zero run noise).
    """
    if n_runs < 2:
        raise ConfigurationError(f"n_runs={n_runs} must be >= 2")
    values: list[float] = []
    first_confusion = None
    tool_name = ""
    for run in range(n_runs):
        tool = tool_factory(derive_seed(seed, f"run:{run}"))
        tool_name = tool.name
        confusion = score_report(tool.analyze(workload), workload.truth)
        if first_confusion is None:
            first_confusion = confusion
        value = metric.value_or_nan(confusion)
        if math.isfinite(value):
            values.append(value)
    if len(values) < 2:
        raise ConfigurationError(
            f"metric {metric.symbol} was defined on fewer than two runs"
        )
    mean = sum(values) / len(values)
    if min(values) == max(values):
        # Identical runs: report exactly zero rather than float dust.
        variance = 0.0
    else:
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    sampling = bootstrap_metric(
        metric,
        first_confusion,
        n_resamples=n_resamples,
        seed=derive_seed(seed, "sampling"),
    )
    return RunNoiseSummary(
        tool_name=tool_name,
        metric_symbol=metric.symbol,
        n_runs=n_runs,
        mean=mean,
        std=math.sqrt(variance),
        min_value=min(values),
        max_value=max(values),
        sampling_std=sampling.std if math.isfinite(sampling.std) else 0.0,
    )

"""Benchmark campaign: run tools over a workload and score them.

This is the procedure the paper's metrics consume: every (tool, workload)
pair yields a confusion matrix over analysis sites, from which every
candidate metric is computed.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.metrics.base import Metric
from repro.metrics.confusion import ConfusionMatrix
from repro.tools.base import DetectionReport, VulnerabilityDetectionTool
from repro.workload.generator import Workload
from repro.workload.ground_truth import GroundTruth

__all__ = ["score_report", "ToolResult", "CampaignResult", "run_campaign"]


def score_report(report: DetectionReport, truth: GroundTruth) -> ConfusionMatrix:
    """Score a tool report against ground truth, site by site.

    Reported sites that do not exist in the workload are a tool bug and raise
    rather than silently inflating FP counts.
    """
    site_set = set(truth.sites)
    unknown = report.flagged_sites - site_set
    if unknown:
        raise ConfigurationError(
            f"tool {report.tool_name!r} reported sites absent from the workload: "
            f"{sorted(unknown)[:3]}"
        )
    flagged = report.flagged_sites
    tp = fp = fn = tn = 0
    for site in truth.sites:
        vulnerable = site in truth.vulnerable
        reported = site in flagged
        if vulnerable and reported:
            tp += 1
        elif vulnerable:
            fn += 1
        elif reported:
            fp += 1
        else:
            tn += 1
    return ConfusionMatrix(tp=tp, fp=fp, fn=fn, tn=tn)


@dataclass(frozen=True)
class ToolResult:
    """One tool's outcome on one workload."""

    tool_name: str
    report: DetectionReport
    confusion: ConfusionMatrix

    def metric_value(self, metric: Metric) -> float:
        """Value of ``metric`` for this tool (``nan`` if undefined)."""
        return metric.value_or_nan(self.confusion)


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of benchmarking a tool suite on one workload."""

    workload_name: str
    results: tuple[ToolResult, ...]
    ecosystem: str = "web-services"
    """Ecosystem of the workload the campaign ran on (identity only; the
    default keeps campaigns predating ecosystems loadable unchanged)."""

    def __post_init__(self) -> None:
        names = [r.tool_name for r in self.results]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate tool names in campaign")

    @property
    def tool_names(self) -> list[str]:
        """Tool names in campaign order."""
        return [r.tool_name for r in self.results]

    def result_for(self, tool_name: str) -> ToolResult:
        """Look up one tool's result."""
        for result in self.results:
            if result.tool_name == tool_name:
                return result
        raise ConfigurationError(
            f"no result for tool {tool_name!r}; have {self.tool_names}"
        )

    def confusion_for(self, tool_name: str) -> ConfusionMatrix:
        """Confusion matrix of one tool."""
        return self.result_for(tool_name).confusion

    def metric_values(self, metric: Metric) -> dict[str, float]:
        """``metric`` evaluated for every tool (``nan`` where undefined)."""
        return {r.tool_name: r.metric_value(metric) for r in self.results}


def run_campaign(
    tools: Sequence[VulnerabilityDetectionTool], workload: Workload
) -> CampaignResult:
    """Run every tool over ``workload`` and score the reports."""
    if not tools:
        raise ConfigurationError("campaign needs at least one tool")
    results = []
    for tool in tools:
        report = tool.analyze(workload)
        confusion = score_report(report, workload.truth)
        results.append(ToolResult(tool_name=tool.name, report=report, confusion=confusion))
    return CampaignResult(
        workload_name=workload.name,
        results=tuple(results),
        ecosystem=workload.config.ecosystem,
    )

"""Benchmark harness: campaign runner, experiment engine and drivers."""

from repro.bench.engine import (
    ArtifactStore,
    EngineRun,
    ExperimentSpec,
    RunContext,
    RunManifest,
    run_experiments,
)
from repro.bench.result import DEFAULT_SEED, ExperimentResult

from repro.bench.repeatability import RunNoiseSummary, tool_run_noise
from repro.bench.suite import SuiteResult, ranking_stability, run_suite
from repro.bench.weighted import DEFAULT_SEVERITIES, score_report_weighted
from repro.bench.report import (
    ScenarioReport,
    ToolVerdict,
    build_scenario_report,
)
from repro.bench.pertype import (
    PerTypeBreakdown,
    breakdown_report,
    campaign_breakdowns,
    macro_average,
    micro_average,
)
from repro.bench.campaign import (
    CampaignResult,
    ToolResult,
    run_campaign,
    score_report,
)
from repro.bench.streaming import (
    CampaignAccumulator,
    ShardCells,
    StreamingCampaignResult,
    evaluate_shard,
    materialized_totals,
)

__all__ = [
    "RunNoiseSummary",
    "tool_run_noise",
    "DEFAULT_SEVERITIES",
    "score_report_weighted",
    "SuiteResult",
    "ranking_stability",
    "run_suite",
    "ScenarioReport",
    "ToolVerdict",
    "build_scenario_report",
    "PerTypeBreakdown",
    "breakdown_report",
    "campaign_breakdowns",
    "macro_average",
    "micro_average",
    "CampaignResult",
    "ToolResult",
    "run_campaign",
    "score_report",
    "CampaignAccumulator",
    "ShardCells",
    "StreamingCampaignResult",
    "evaluate_shard",
    "materialized_totals",
    "ArtifactStore",
    "EngineRun",
    "ExperimentSpec",
    "RunContext",
    "RunManifest",
    "run_experiments",
    "DEFAULT_SEED",
    "ExperimentResult",
]

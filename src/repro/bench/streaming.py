"""Streaming campaign aggregation: exact totals without the corpus in memory.

The scalar campaign path (:func:`repro.bench.campaign.run_campaign`) holds a
whole workload and every tool report in memory at once — fine at the
paper's scale, impossible at 10⁶ units.  This module provides the streaming
counterpart for sharded corpora (:mod:`repro.workload.sharded`):

- :func:`evaluate_shard` runs the ordinary scalar campaign over *one*
  shard's workload and condenses it to a :class:`ShardCells` — four
  confusion cells per tool plus shard totals, a few hundred bytes;
- :class:`CampaignAccumulator` folds shard cells into running per-tool
  totals and finalizes them as a :class:`StreamingCampaignResult`.

Exactness contract: confusion cells are non-negative integers, and float64
addition of integers below 2⁵³ is exact and order-independent — so the
accumulator's totals are **bit-identical** to materializing every shard
campaign in memory and summing scalar
:class:`~repro.metrics.confusion.ConfusionMatrix` cells
(:func:`materialized_totals`), for any fold order, executor, or retry
history.  Each shard's cells in turn come from the unmodified
:func:`~repro.bench.campaign.run_campaign`/``score_report`` path, so
nothing about scoring semantics changes at scale; memory is bounded by one
shard, not by the corpus.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.bench.campaign import CampaignResult, run_campaign
from repro.errors import ConfigurationError
from repro.metrics.base import Metric
from repro.metrics.batch import ConfusionBatch
from repro.metrics.confusion import ConfusionMatrix
from repro.tools.base import VulnerabilityDetectionTool
from repro.workload.ecosystems import DEFAULT_ECOSYSTEM
from repro.workload.generator import Workload
from repro.workload.sharded import ShardPlan

__all__ = [
    "ShardCells",
    "StreamingCampaignResult",
    "CampaignAccumulator",
    "evaluate_shard",
    "materialized_totals",
]


@dataclass(frozen=True)
class ShardCells:
    """One shard's campaign outcome, condensed to per-tool confusion cells.

    This is what crosses process boundaries and what the artifact store
    caches (``repro/shard-cells@1``): everything needed to fold the shard
    into corpus totals, and nothing sized by the shard's content.
    """

    shard_index: int
    """Which shard of the plan these cells summarize."""
    tool_names: tuple[str, ...]
    """Tools in campaign order; cell tuples are parallel to this."""
    tp: tuple[int, ...]
    fp: tuple[int, ...]
    fn: tuple[int, ...]
    tn: tuple[int, ...]
    n_units: int
    """Units in the shard's workload."""
    n_sites: int
    """Analysis sites scored per tool."""
    n_vulnerable: int
    """Truly vulnerable sites in the shard (tp + fn of every tool)."""
    ecosystem: str = DEFAULT_ECOSYSTEM
    """Ecosystem of the shard's workload.  Cells of different ecosystems
    never fold into one total; the default keeps cached cells predating
    ecosystems loadable unchanged."""

    def __post_init__(self) -> None:
        lengths = {
            len(self.tool_names), len(self.tp), len(self.fp),
            len(self.fn), len(self.tn),
        }
        if lengths != {len(self.tool_names)} or not self.tool_names:
            raise ConfigurationError(
                "shard cells need one (tp, fp, fn, tn) row per tool"
            )
        for row in range(len(self.tool_names)):
            tp, fp, fn, tn = (
                self.tp[row], self.fp[row], self.fn[row], self.tn[row],
            )
            if min(tp, fp, fn, tn) < 0:
                raise ConfigurationError("confusion cells must be >= 0")
            if tp + fp + fn + tn != self.n_sites:
                raise ConfigurationError(
                    f"tool {self.tool_names[row]!r}: cells sum to "
                    f"{tp + fp + fn + tn}, expected n_sites={self.n_sites}"
                )
            if tp + fn != self.n_vulnerable:
                raise ConfigurationError(
                    f"tool {self.tool_names[row]!r}: tp+fn={tp + fn} "
                    f"disagrees with n_vulnerable={self.n_vulnerable}"
                )

    def to_array(self) -> np.ndarray:
        """Flatten to the columnar wire layout (int64, length ``5 + 4n``).

        Layout: ``[shard_index, n_units, n_sites, n_vulnerable, n_tools]``
        header followed by the four cell rows, each ``n_tools`` wide, in
        ``tp, fp, fn, tn`` order.  Tool names and ecosystem are *not*
        encoded — they are properties of the campaign, shared out of band
        (the shared-memory transport pins them in the worker context) and
        restored by :meth:`from_array`.
        """
        n = len(self.tool_names)
        out = np.empty(5 + 4 * n, dtype=np.int64)
        out[0] = self.shard_index
        out[1] = self.n_units
        out[2] = self.n_sites
        out[3] = self.n_vulnerable
        out[4] = n
        out[5 : 5 + n] = self.tp
        out[5 + n : 5 + 2 * n] = self.fp
        out[5 + 2 * n : 5 + 3 * n] = self.fn
        out[5 + 3 * n :] = self.tn
        return out

    @classmethod
    def from_array(
        cls,
        array: np.ndarray,
        tool_names: Sequence[str],
        ecosystem: str = DEFAULT_ECOSYSTEM,
    ) -> "ShardCells":
        """Rebuild cells from :meth:`to_array` output plus the shared context.

        Validates the embedded tool count against ``tool_names`` before the
        dataclass re-runs its own cell invariants, so a torn or misframed
        buffer fails loudly instead of folding garbage.
        """
        flat = np.asarray(array, dtype=np.int64).reshape(-1)
        names = tuple(tool_names)
        if flat.shape[0] < 5 or int(flat[4]) != len(names):
            raise ConfigurationError(
                f"cells buffer encodes {int(flat[4]) if flat.shape[0] >= 5 else '?'} "
                f"tools, expected {len(names)}"
            )
        n = len(names)
        if flat.shape[0] != 5 + 4 * n:
            raise ConfigurationError(
                f"cells buffer has {flat.shape[0]} slots, expected {5 + 4 * n}"
            )
        return cls(
            shard_index=int(flat[0]),
            tool_names=names,
            tp=tuple(int(v) for v in flat[5 : 5 + n]),
            fp=tuple(int(v) for v in flat[5 + n : 5 + 2 * n]),
            fn=tuple(int(v) for v in flat[5 + 2 * n : 5 + 3 * n]),
            tn=tuple(int(v) for v in flat[5 + 3 * n :]),
            n_units=int(flat[1]),
            n_sites=int(flat[2]),
            n_vulnerable=int(flat[3]),
            ecosystem=ecosystem,
        )

    @classmethod
    def from_campaign(
        cls, campaign: CampaignResult, shard_index: int, n_units: int
    ) -> "ShardCells":
        """Condense one shard's scored campaign to its cells."""
        confusions = [result.confusion for result in campaign.results]
        first = confusions[0]
        return cls(
            shard_index=shard_index,
            tool_names=tuple(campaign.tool_names),
            tp=tuple(int(cm.tp) for cm in confusions),
            fp=tuple(int(cm.fp) for cm in confusions),
            fn=tuple(int(cm.fn) for cm in confusions),
            tn=tuple(int(cm.tn) for cm in confusions),
            n_units=n_units,
            n_sites=int(first.tp + first.fp + first.fn + first.tn),
            n_vulnerable=int(first.tp + first.fn),
            ecosystem=campaign.ecosystem,
        )


def evaluate_shard(
    tools: Sequence[VulnerabilityDetectionTool],
    workload: Workload,
    shard_index: int,
) -> ShardCells:
    """Run the ordinary scalar campaign over one shard; return its cells.

    This *is* :func:`~repro.bench.campaign.run_campaign` — same tool order,
    same site-exact :func:`~repro.bench.campaign.score_report` loop — so
    streaming totals inherit the scalar path's semantics by construction.
    """
    campaign = run_campaign(tools, workload)
    return ShardCells.from_campaign(
        campaign, shard_index=shard_index, n_units=len(workload.units)
    )


@dataclass(frozen=True)
class StreamingCampaignResult:
    """Exact corpus-wide campaign totals, finalized from an accumulator.

    The streaming counterpart of
    :class:`~repro.bench.campaign.CampaignResult`: per-tool confusion
    matrices over the whole corpus, without the per-site reports a scalar
    campaign carries.
    """

    tool_names: tuple[str, ...]
    confusions: tuple[ConfusionMatrix, ...]
    """Corpus-total confusion matrix per tool, parallel to ``tool_names``."""
    n_units: int
    n_sites: int
    n_vulnerable: int
    shard_indices: tuple[int, ...]
    """Shards folded into these totals, in fold order."""
    ecosystem: str = DEFAULT_ECOSYSTEM
    """Ecosystem every folded shard belonged to."""

    @property
    def n_shards(self) -> int:
        """How many shards the totals cover."""
        return len(self.shard_indices)

    @property
    def prevalence(self) -> float:
        """Realized corpus prevalence (vulnerable sites / all sites)."""
        return self.n_vulnerable / self.n_sites

    def confusion_for(self, tool_name: str) -> ConfusionMatrix:
        """Corpus-total confusion matrix of one tool."""
        for name, confusion in zip(self.tool_names, self.confusions):
            if name == tool_name:
                return confusion
        raise ConfigurationError(
            f"no totals for tool {tool_name!r}; have {list(self.tool_names)}"
        )

    def metric_values(self, metric: Metric) -> dict[str, float]:
        """``metric`` on every tool's corpus totals (``nan`` if undefined)."""
        return {
            name: metric.value_or_nan(confusion)
            for name, confusion in zip(self.tool_names, self.confusions)
        }

    def batch(self) -> ConfusionBatch:
        """The totals as a :class:`ConfusionBatch` (one row per tool)."""
        return ConfusionBatch.from_matrices(self.confusions)


class CampaignAccumulator:
    """Folds per-shard confusion cells into exact corpus totals.

    Running totals are float64 vectors over the tool axis; because every
    fold adds non-negative integers (exact in float64 far beyond any
    realistic corpus), the result is independent of fold order and
    bit-identical to the in-memory sum.  Each shard folds at most once —
    a retried or resumed shard that re-delivers its cells is rejected
    rather than silently double counted.
    """

    def __init__(
        self, tool_names: Sequence[str], ecosystem: str = DEFAULT_ECOSYSTEM
    ) -> None:
        if not tool_names:
            raise ConfigurationError("accumulator needs at least one tool")
        self.tool_names = tuple(tool_names)
        self.ecosystem = ecosystem
        n = len(self.tool_names)
        self._tp = np.zeros(n, dtype=np.float64)
        self._fp = np.zeros(n, dtype=np.float64)
        self._fn = np.zeros(n, dtype=np.float64)
        self._tn = np.zeros(n, dtype=np.float64)
        self._n_units = 0
        self._n_sites = 0
        self._n_vulnerable = 0
        self._order: list[int] = []
        self._folded: set[int] = set()

    @property
    def folded(self) -> frozenset[int]:
        """Indices of the shards folded so far."""
        return frozenset(self._folded)

    def __contains__(self, shard_index: int) -> bool:
        """Whether a shard's cells were already folded (crash-recovery
        paths use this to skip journal/manifest duplicates cheaply)."""
        return shard_index in self._folded

    @property
    def n_units(self) -> int:
        """Units covered by the folds so far."""
        return self._n_units

    def fold(self, cells: ShardCells) -> None:
        """Add one shard's cells to the running totals (exactly once)."""
        if cells.tool_names != self.tool_names:
            raise ConfigurationError(
                f"shard {cells.shard_index} scored tools "
                f"{list(cells.tool_names)}, accumulator expects "
                f"{list(self.tool_names)}"
            )
        if cells.ecosystem != self.ecosystem:
            raise ConfigurationError(
                f"shard {cells.shard_index} is ecosystem "
                f"{cells.ecosystem!r}, accumulator totals "
                f"{self.ecosystem!r} — cross-ecosystem folds would mix "
                f"incomparable corpora"
            )
        if cells.shard_index in self._folded:
            raise ConfigurationError(
                f"shard {cells.shard_index} already folded — folding it "
                f"again would double count its cells"
            )
        self._tp += np.asarray(cells.tp, dtype=np.float64)
        self._fp += np.asarray(cells.fp, dtype=np.float64)
        self._fn += np.asarray(cells.fn, dtype=np.float64)
        self._tn += np.asarray(cells.tn, dtype=np.float64)
        self._n_units += cells.n_units
        self._n_sites += cells.n_sites
        self._n_vulnerable += cells.n_vulnerable
        self._folded.add(cells.shard_index)
        self._order.append(cells.shard_index)

    def merge(self, other: "CampaignAccumulator") -> None:
        """Fold another accumulator's totals in (shard sets must not overlap).

        Lets per-worker accumulators combine at the end of a parallel run;
        exactness and order-independence carry over from :meth:`fold`.
        """
        if other.tool_names != self.tool_names:
            raise ConfigurationError(
                "cannot merge accumulators over different tool suites"
            )
        if other.ecosystem != self.ecosystem:
            raise ConfigurationError(
                f"cannot merge accumulators of ecosystems "
                f"{self.ecosystem!r} and {other.ecosystem!r}"
            )
        overlap = self._folded & other._folded
        if overlap:
            raise ConfigurationError(
                f"cannot merge: shards {sorted(overlap)} are in both "
                f"accumulators"
            )
        self._tp += other._tp
        self._fp += other._fp
        self._fn += other._fn
        self._tn += other._tn
        self._n_units += other._n_units
        self._n_sites += other._n_sites
        self._n_vulnerable += other._n_vulnerable
        self._folded |= other._folded
        self._order.extend(other._order)

    def result(self) -> StreamingCampaignResult:
        """Finalize the totals folded so far."""
        if not self._folded:
            raise ConfigurationError(
                "no shards folded — nothing to finalize"
            )
        confusions = tuple(
            ConfusionMatrix(
                tp=float(self._tp[row]),
                fp=float(self._fp[row]),
                fn=float(self._fn[row]),
                tn=float(self._tn[row]),
            )
            for row in range(len(self.tool_names))
        )
        return StreamingCampaignResult(
            tool_names=self.tool_names,
            confusions=confusions,
            n_units=self._n_units,
            n_sites=self._n_sites,
            n_vulnerable=self._n_vulnerable,
            shard_indices=tuple(self._order),
            ecosystem=self.ecosystem,
        )


def materialized_totals(
    tools: Sequence[VulnerabilityDetectionTool], plan: ShardPlan
) -> StreamingCampaignResult:
    """The in-memory reference path: every shard campaign alive at once.

    Materializes every shard workload *and* every scalar
    :class:`~repro.bench.campaign.CampaignResult`, then sums their
    confusion cells tool by tool in plain Python — no accumulator, no
    float64 vectors.  The streaming path must match this bit for bit; the
    parity tests and ``check_bench`` assert exactly that.  Only sensible
    at small scale (memory grows with the corpus).
    """
    workloads = [plan.generate(spec.index) for spec in plan]
    campaigns = [run_campaign(tools, workload) for workload in workloads]
    tool_names = tuple(campaigns[0].tool_names)
    confusions = []
    for name in tool_names:
        tp = fp = fn = tn = 0.0
        for campaign in campaigns:
            cm = campaign.confusion_for(name)
            tp += cm.tp
            fp += cm.fp
            fn += cm.fn
            tn += cm.tn
        confusions.append(ConfusionMatrix(tp=tp, fp=fp, fn=fn, tn=tn))
    n_sites = sum(workload.n_sites for workload in workloads)
    n_vulnerable = sum(
        len(workload.truth.vulnerable) for workload in workloads
    )
    return StreamingCampaignResult(
        tool_names=tool_names,
        confusions=tuple(confusions),
        n_units=sum(len(workload.units) for workload in workloads),
        n_sites=n_sites,
        n_vulnerable=n_vulnerable,
        shard_indices=tuple(spec.index for spec in plan),
        ecosystem=plan.ecosystem,
    )

"""Multi-workload benchmark suites.

A single workload is a single draw; a benchmark worth trusting ranks tools
consistently across the workload mixes its audience will face.  This module
runs a tool suite over several workloads and quantifies, per metric, how
stable the induced tool ranking is across them — the executable form of the
"representativeness" concern in the benchmarking literature.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.bench.campaign import CampaignResult, run_campaign
from repro.errors import ConfigurationError
from repro.metrics.base import Metric
from repro.obs import Observability
from repro.stats.rank import kendall_tau
from repro.tools.base import VulnerabilityDetectionTool
from repro.workload.generator import Workload

__all__ = ["SuiteResult", "run_suite", "ranking_stability"]


@dataclass(frozen=True)
class SuiteResult:
    """Tool suite scored on several workloads."""

    campaigns: dict[str, CampaignResult]
    """Keyed by workload name."""

    def __post_init__(self) -> None:
        if not self.campaigns:
            raise ConfigurationError("suite needs at least one campaign")
        tool_sets = {tuple(c.tool_names) for c in self.campaigns.values()}
        if len(tool_sets) != 1:
            raise ConfigurationError(
                "every campaign must benchmark the same tools in the same order"
            )

    @property
    def workload_names(self) -> list[str]:
        """Workloads in insertion order."""
        return list(self.campaigns)

    @property
    def tool_names(self) -> list[str]:
        """The common tool list."""
        return next(iter(self.campaigns.values())).tool_names

    def metric_matrix(self, metric: Metric) -> dict[str, dict[str, float]]:
        """``metric`` per tool per workload: ``matrix[tool][workload]``."""
        matrix: dict[str, dict[str, float]] = {t: {} for t in self.tool_names}
        for workload_name, campaign in self.campaigns.items():
            for tool_name, value in campaign.metric_values(metric).items():
                matrix[tool_name][workload_name] = value
        return matrix


def run_suite(
    tools: Sequence[VulnerabilityDetectionTool],
    workloads: Sequence[Workload],
    jobs: int = 1,
    obs: Observability | None = None,
) -> SuiteResult:
    """Run every tool over every workload.

    ``jobs > 1`` scores workloads concurrently in threads.  Campaigns on
    distinct workloads share no mutable state (every tool draws from seeds
    fixed at construction), so the result is identical to a serial run and
    campaigns stay keyed in workload order either way.

    ``obs`` traces one ``suite.campaign`` span per workload and counts the
    units and sites scored (``suite.*`` counters).
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if not workloads:
        raise ConfigurationError("suite needs at least one workload")
    names = [w.name for w in workloads]
    if len(set(names)) != len(names):
        raise ConfigurationError("workload names must be unique within a suite")
    obs = obs if obs is not None else Observability()

    def score(workload: Workload) -> CampaignResult:
        with obs.tracer.span(
            "suite.campaign", workload=workload.name, tools=len(tools)
        ):
            campaign = run_campaign(tools, workload)
        obs.metrics.inc("suite.campaigns_scored")
        obs.metrics.inc("suite.units_processed", len(workload.units))
        obs.metrics.inc("suite.sites_processed", workload.n_sites)
        return campaign

    if jobs == 1 or len(workloads) == 1:
        return SuiteResult(
            campaigns={w.name: score(w) for w in workloads}
        )
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=jobs) as pool:
        scored = list(pool.map(score, workloads))
    return SuiteResult(
        campaigns={w.name: c for w, c in zip(workloads, scored)}
    )


def ranking_stability(suite: SuiteResult, metric: Metric) -> float:
    """Mean pairwise Kendall tau of the metric's tool rankings across
    workloads.

    1.0 means the metric crowns the same ordering on every workload; values
    near 0 mean the benchmark's verdict is a property of the workload draw,
    not of the tools.  Undefined metric values rank last (consistently), so
    a metric that frequently degenerates pays for it here.
    """
    names = suite.workload_names
    if len(names) < 2:
        raise ConfigurationError("stability needs at least two workloads")
    per_workload_scores: list[list[float]] = []
    for workload_name in names:
        campaign = suite.campaigns[workload_name]
        scores = [
            g
            if math.isfinite(g := metric.goodness(campaign.confusion_for(tool)))
            else -math.inf
            for tool in suite.tool_names
        ]
        per_workload_scores.append(scores)
    taus = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            tau = kendall_tau(per_workload_scores[i], per_workload_scores[j])
            if math.isfinite(tau):
                taus.append(tau)
    if not taus:
        return float("nan")
    return sum(taus) / len(taus)

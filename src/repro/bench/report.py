"""Scenario-driven benchmark reports — the paper's guidance, operationalized.

The study's deliverable is advice: *report the metric adequate for your
scenario*.  This module turns that advice into an artifact: given a scenario
and a campaign, it selects the lead metric analytically, ranks the tools by
it with bootstrap confidence intervals, marks which gaps to the leader are
statistically real (McNemar), projects each tool's expected cost at the
scenario's field prevalence, and renders the whole thing as the report a
benchmark would actually publish.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._rng import derive_seed
from repro.bench.campaign import CampaignResult
from repro.errors import ConfigurationError
from repro.metrics.base import Metric
from repro.metrics.registry import MetricRegistry, core_candidates
from repro.reporting.tables import format_table
from repro.scenarios.adequacy import AdequacyConfig, rank_metrics_for_scenario
from repro.scenarios.scenarios import Scenario
from repro.stats.bootstrap import bootstrap_metric
from repro.stats.significance import mcnemar_exact, paired_outcomes
from repro.workload.ground_truth import GroundTruth

__all__ = ["ToolVerdict", "ScenarioReport", "build_scenario_report"]


@dataclass(frozen=True, slots=True)
class ToolVerdict:
    """One tool's line in the scenario report."""

    tool_name: str
    lead_value: float
    ci_low: float
    ci_high: float
    expected_field_cost: float
    p_value_vs_leader: float

    @property
    def distinguishable_from_leader(self) -> bool:
        """Whether the gap to the leader survives McNemar at 5%."""
        return self.p_value_vs_leader < 0.05


@dataclass(frozen=True)
class ScenarioReport:
    """The publishable outcome of benchmarking a suite for one scenario."""

    scenario: Scenario
    workload_name: str
    lead_metric: Metric
    adequacy_of_lead: float
    verdicts: tuple[ToolVerdict, ...]
    """Best-first by the lead metric."""

    @property
    def recommended_tool(self) -> str:
        """The tool the scenario's economics recommend."""
        return self.verdicts[0].tool_name

    @property
    def contenders(self) -> list[str]:
        """The leader plus every tool not statistically distinguishable
        from it — the honest shortlist."""
        leader = self.verdicts[0]
        return [leader.tool_name] + [
            v.tool_name
            for v in self.verdicts[1:]
            if not v.distinguishable_from_leader
        ]

    def render(self) -> str:
        """The report as publishable text."""
        header = (
            f"Benchmark report — scenario {self.scenario.key!r} "
            f"({self.scenario.name})\n"
            f"Lead metric: {self.lead_metric.name} "
            f"[analytical adequacy {self.adequacy_of_lead:.2f}]; "
            f"miss:alarm cost "
            f"{self.scenario.cost.cost_fn:g}:{self.scenario.cost.cost_fp:g}"
        )
        rows = []
        for verdict in self.verdicts:
            rows.append(
                [
                    verdict.tool_name,
                    verdict.lead_value,
                    f"[{verdict.ci_low:.3f}, {verdict.ci_high:.3f}]",
                    verdict.expected_field_cost,
                    "-"
                    if verdict is self.verdicts[0]
                    else ("yes" if verdict.distinguishable_from_leader else "no"),
                ]
            )
        table = format_table(
            headers=[
                "tool",
                self.lead_metric.symbol,
                "95% CI",
                "expected field cost/site",
                "gap to leader is real",
            ],
            rows=rows,
        )
        shortlist = ", ".join(self.contenders)
        footer = (
            f"Recommendation: {self.recommended_tool} "
            f"(statistically tied contenders: {shortlist})"
        )
        return "\n".join([header, "", table, "", footer])


def build_scenario_report(
    scenario: Scenario,
    campaign: CampaignResult,
    truth: GroundTruth,
    registry: MetricRegistry | None = None,
    lead_metric: Metric | None = None,
    n_resamples: int = 300,
    seed: int = 0,
    adequacy_config: AdequacyConfig | None = None,
) -> ScenarioReport:
    """Assemble the scenario report for a finished campaign.

    The lead metric is selected analytically for ``scenario`` unless the
    caller pins one.  Expected field cost rebalances each tool's confusion
    matrix to the midpoint of the scenario's field prevalence range —
    *the* projection a benchmark consumer cares about when the benchmark's
    mix differs from their code base's.
    """
    registry = registry if registry is not None else core_candidates()
    if lead_metric is None:
        adequacy_config = adequacy_config or AdequacyConfig(
            n_pools=30, seed=derive_seed(seed, "report:adequacy")
        )
        ranked = rank_metrics_for_scenario(registry, scenario, adequacy_config)
        lead_metric = registry.get(ranked[0].metric_symbol)
        adequacy_of_lead = ranked[0].mean_tau
    else:
        adequacy_config = adequacy_config or AdequacyConfig(
            n_pools=30, seed=derive_seed(seed, "report:adequacy")
        )
        from repro.scenarios.adequacy import scenario_adequacy

        adequacy_of_lead = scenario_adequacy(
            lead_metric, scenario, adequacy_config
        ).mean_tau

    field_prevalence = sum(scenario.prevalence_range) / 2.0

    scored = []
    for result in campaign.results:
        goodness = lead_metric.goodness(result.confusion)
        scored.append((goodness if math.isfinite(goodness) else -math.inf, result))
    scored.sort(key=lambda pair: (-pair[0], pair[1].tool_name))
    leader_report = scored[0][1].report

    verdicts = []
    for _, result in scored:
        summary = bootstrap_metric(
            lead_metric,
            result.confusion,
            n_resamples=n_resamples,
            seed=derive_seed(seed, f"report:{result.tool_name}"),
        )
        try:
            field_matrix = result.confusion.with_prevalence(field_prevalence)
            field_cost = scenario.cost.expected_cost(field_matrix)
        except ConfigurationError:  # degenerate: no positives or negatives
            field_cost = float("nan")
        p_value = (
            1.0
            if result.report is leader_report
            else mcnemar_exact(paired_outcomes(leader_report, result.report, truth))
        )
        verdicts.append(
            ToolVerdict(
                tool_name=result.tool_name,
                lead_value=lead_metric.value_or_nan(result.confusion),
                ci_low=summary.ci_low,
                ci_high=summary.ci_high,
                expected_field_cost=field_cost,
                p_value_vs_leader=p_value,
            )
        )
    return ScenarioReport(
        scenario=scenario,
        workload_name=campaign.workload_name,
        lead_metric=lead_metric,
        adequacy_of_lead=adequacy_of_lead,
        verdicts=tuple(verdicts),
    )

"""Severity-weighted scoring.

Not every vulnerability class is equally dangerous: a missed SQL injection
in a payment path outweighs a missed LDAP filter quirk.  Weighted scoring
gives each analysis site a weight (by default, a CVSS-flavoured severity
per vulnerability class) and counts *weight* instead of sites in the
confusion matrix.  Every metric in the catalog then works unchanged — the
:class:`~repro.metrics.confusion.ConfusionMatrix` accepts fractional counts
by design — and "recall" reads as "fraction of *risk* found" rather than
"fraction of findings found".
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import ConfigurationError
from repro.metrics.confusion import ConfusionMatrix
from repro.tools.base import DetectionReport
from repro.workload.ground_truth import GroundTruth
from repro.workload.taxonomy import VulnerabilityType

__all__ = ["DEFAULT_SEVERITIES", "score_report_weighted"]

#: CVSS-flavoured base severities per vulnerability class (0-10 scale).
#: Curated from the typical scoring of each CWE's canonical entries; users
#: with their own risk model pass their own mapping.
DEFAULT_SEVERITIES: dict[VulnerabilityType, float] = {
    VulnerabilityType.SQL_INJECTION: 9.8,
    VulnerabilityType.COMMAND_INJECTION: 9.8,
    VulnerabilityType.PATH_TRAVERSAL: 7.5,
    VulnerabilityType.XSS: 6.1,
    VulnerabilityType.LDAP_INJECTION: 7.3,
    VulnerabilityType.XPATH_INJECTION: 6.5,
}


def score_report_weighted(
    report: DetectionReport,
    truth: GroundTruth,
    severities: Mapping[VulnerabilityType, float] | None = None,
) -> ConfusionMatrix:
    """Score a report with per-class severity weights.

    Each site contributes its class's severity to whichever confusion cell
    it lands in.  With all weights equal this reduces (up to scale) to the
    unweighted :func:`~repro.bench.campaign.score_report`, which the test
    suite asserts.
    """
    severities = severities if severities is not None else DEFAULT_SEVERITIES
    missing = {site.vuln_type for site in truth.sites} - set(severities)
    if missing:
        raise ConfigurationError(
            f"no severity for classes: {sorted(t.value for t in missing)}"
        )
    if any(weight <= 0 for weight in severities.values()):
        raise ConfigurationError("severities must be positive")

    site_set = set(truth.sites)
    unknown = report.flagged_sites - site_set
    if unknown:
        raise ConfigurationError(
            f"tool {report.tool_name!r} reported sites absent from the workload: "
            f"{sorted(unknown)[:3]}"
        )
    flagged = report.flagged_sites
    tp = fp = fn = tn = 0.0
    for site in truth.sites:
        weight = severities[site.vuln_type]
        vulnerable = site in truth.vulnerable
        reported = site in flagged
        if vulnerable and reported:
            tp += weight
        elif vulnerable:
            fn += weight
        elif reported:
            fp += weight
        else:
            tn += weight
    return ConfusionMatrix(tp=tp, fp=fp, fn=fn, tn=tn)

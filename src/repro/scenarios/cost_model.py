"""Misclassification-cost model.

A vulnerability-detection *scenario* is, at bottom, a statement about how
expensive each kind of error is: what a missed vulnerability costs (breach
risk, recertification, recall of a shipped product) versus what a false
alarm costs (an analyst-hour of triage).  The expected per-site cost induced
by those prices is the scenario's *ground-truth preference* over tools — the
yardstick the analytical adequacy study (R8) measures candidate metrics
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.metrics.confusion import ConfusionMatrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.metrics.batch import ConfusionBatch

__all__ = ["CostStructure"]


@dataclass(frozen=True, slots=True)
class CostStructure:
    """Per-site prices of the two error types.

    Units are arbitrary (only the ratio matters for rankings); by convention
    we price a false alarm near 1.0 "analyst-hour" and scale the miss cost
    relative to it.
    """

    cost_fn: float
    cost_fp: float

    def __post_init__(self) -> None:
        if self.cost_fn < 0 or self.cost_fp < 0:
            raise ConfigurationError("costs must be non-negative")
        if self.cost_fn == 0 and self.cost_fp == 0:
            raise ConfigurationError("at least one cost must be positive")

    @property
    def miss_to_alarm_ratio(self) -> float:
        """How many false alarms one miss is worth."""
        if self.cost_fp == 0:
            return float("inf")
        return self.cost_fn / self.cost_fp

    def expected_cost(self, cm: ConfusionMatrix) -> float:
        """Average misclassification cost per analysis site."""
        return (self.cost_fn * cm.fn + self.cost_fp * cm.fp) / cm.total

    def expected_cost_batch(self, batch: "ConfusionBatch") -> "np.ndarray":
        """Vectorized :meth:`expected_cost` over a batch (elementwise equal)."""
        return (self.cost_fn * batch.fn + self.cost_fp * batch.fp) / batch.total

    def total_cost(self, cm: ConfusionMatrix) -> float:
        """Total misclassification cost of the whole campaign outcome."""
        return self.cost_fn * cm.fn + self.cost_fp * cm.fp

"""Use scenarios and analytical metric adequacy."""

from repro.scenarios.adequacy import (
    AdequacyConfig,
    AdequacyResult,
    rank_metrics_for_scenario,
    scenario_adequacy,
)
from repro.scenarios.cost_model import CostStructure
from repro.scenarios.guidance import GuidanceAnswers, Recommendation, recommend
from repro.scenarios.scenarios import Scenario, canonical_scenarios, scenario_by_key

__all__ = [
    "AdequacyConfig",
    "AdequacyResult",
    "rank_metrics_for_scenario",
    "scenario_adequacy",
    "CostStructure",
    "GuidanceAnswers",
    "Recommendation",
    "recommend",
    "Scenario",
    "canonical_scenarios",
    "scenario_by_key",
]

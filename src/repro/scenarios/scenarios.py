"""Vulnerability-detection scenarios.

The paper's central observation is that the adequate metric depends on the
*use scenario*.  A :class:`Scenario` bundles everything a scenario implies:

- a :class:`~repro.scenarios.cost_model.CostStructure` (the ground-truth
  preference over tools),
- the prevalence regime of its typical workloads, and
- the weights its stakeholders put on the good-metric properties — the
  criteria weights of the MCDA validation.

Four canonical scenarios span the 2x2 of "how bad is a residual
vulnerability" x "how scarce is triage capacity", mirroring the scenario
axes discussed in the benchmarking literature the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.scenarios.cost_model import CostStructure

__all__ = ["Scenario", "canonical_scenarios", "scenario_by_key"]


@dataclass(frozen=True)
class Scenario:
    """One benchmarking use scenario."""

    key: str
    name: str
    description: str
    cost: CostStructure
    prevalence_range: tuple[float, float]
    """Vulnerability rate of the code the tool will face in the field."""
    property_weights: dict[str, float]
    """Relative importance of each good-metric property in this scenario;
    the MCDA criteria prior around which simulated experts scatter."""
    benchmark_prevalence_range: tuple[float, float] | None = None
    """Vulnerability rate of the *benchmark workloads* available to rank
    tools with.  Benchmarks enrich vulnerabilities to keep counts
    statistically useful, so in low-prevalence scenarios this differs from
    ``prevalence_range`` — which is exactly when prevalence-dependent
    metrics rank tools against the field's interest.  ``None`` means the
    benchmark matches the field."""

    def __post_init__(self) -> None:
        for label, bounds in (
            ("prevalence_range", self.prevalence_range),
            ("benchmark_prevalence_range", self.benchmark_prevalence_range),
        ):
            if bounds is None:
                continue
            low, high = bounds
            if not (0.0 < low <= high < 1.0):
                raise ConfigurationError(
                    f"{label}={bounds} must satisfy 0 < lo <= hi < 1"
                )
        if not self.property_weights:
            raise ConfigurationError("property_weights must not be empty")
        if any(weight < 0 for weight in self.property_weights.values()):
            raise ConfigurationError("property weights must be non-negative")
        if sum(self.property_weights.values()) <= 0:
            raise ConfigurationError("property weights must sum to a positive number")


def canonical_scenarios() -> list[Scenario]:
    """The four scenarios of the reproduction study.

    Property-weight profiles are the *latent consensus* the simulated expert
    panel perturbs; they encode, per scenario, which characteristics of a
    good metric stakeholders actually argue for.
    """
    return [
        Scenario(
            key="critical",
            name="Security-critical system",
            description=(
                "Tool selects code that ships into a safety/security-critical "
                "product; a residual vulnerability is two orders of magnitude "
                "costlier than an analyst-hour of triage."
            ),
            cost=CostStructure(cost_fn=100.0, cost_fp=1.0),
            prevalence_range=(0.05, 0.25),
            property_weights={
                "rewards detection": 0.32,
                "defined": 0.12,
                "bounded": 0.08,
                "repeatable": 0.10,
                "discriminating": 0.10,
                "prevalence-invariant": 0.08,
                "chance-corrected": 0.05,
                "rewards silence": 0.03,
                "understandable": 0.07,
                "accepted": 0.05,
            },
        ),
        Scenario(
            key="triage",
            name="Scarce triage resources",
            description=(
                "A small team must manually confirm every report; wasted "
                "triage dominates the economics, misses are recoverable in "
                "later cycles."
            ),
            cost=CostStructure(cost_fn=2.0, cost_fp=1.0),
            prevalence_range=(0.05, 0.25),
            property_weights={
                "rewards silence": 0.20,
                "rewards detection": 0.12,
                "defined": 0.08,
                "bounded": 0.04,
                "repeatable": 0.06,
                "discriminating": 0.08,
                "prevalence-invariant": 0.02,
                "chance-corrected": 0.06,
                "understandable": 0.18,
                "accepted": 0.16,
            },
        ),
        Scenario(
            key="balanced",
            name="General tool comparison",
            description=(
                "A research benchmark ranking tools for a broad audience; "
                "both error types matter and the ranking must be defensible "
                "across workloads."
            ),
            cost=CostStructure(cost_fn=5.0, cost_fp=1.0),
            prevalence_range=(0.10, 0.40),
            property_weights={
                "chance-corrected": 0.18,
                "discriminating": 0.15,
                "prevalence-invariant": 0.15,
                "rewards detection": 0.11,
                "rewards silence": 0.11,
                "repeatable": 0.10,
                "defined": 0.08,
                "bounded": 0.06,
                "understandable": 0.03,
                "accepted": 0.03,
            },
        ),
        Scenario(
            key="audit",
            name="Low-prevalence audit",
            description=(
                "Periodic audit of a hardened codebase: vulnerabilities are "
                "rare, so prevalence-sensitive metrics saturate and mislead; "
                "misses are expensive but not catastrophic."
            ),
            cost=CostStructure(cost_fn=20.0, cost_fp=1.0),
            prevalence_range=(0.01, 0.05),
            benchmark_prevalence_range=(0.10, 0.30),
            property_weights={
                "prevalence-invariant": 0.25,
                "chance-corrected": 0.18,
                "rewards detection": 0.14,
                "discriminating": 0.10,
                "repeatable": 0.09,
                "defined": 0.08,
                "bounded": 0.06,
                "rewards silence": 0.04,
                "understandable": 0.03,
                "accepted": 0.03,
            },
        ),
    ]


def scenario_by_key(key: str) -> Scenario:
    """Look up a canonical scenario by its short key."""
    for scenario in canonical_scenarios():
        if scenario.key == key:
            return scenario
    known = [s.key for s in canonical_scenarios()]
    raise ConfigurationError(f"unknown scenario {key!r}; known: {known}")

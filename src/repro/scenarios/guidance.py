"""Guidance: from a questionnaire to a scenario and a metric.

The paper's end product is advice that depends on the reader's situation.
This module packages that advice as an API: answer five questions about
your context and get back a fully-formed :class:`Scenario` (cost structure,
prevalence regimes, property weights) plus the analytically recommended
metric, with a written rationale for every weight the answers moved.

The synthesis rules are deliberately transparent — each is one sentence in
the rationale — so a user can disagree with a rule and edit the returned
scenario instead of trusting a black box.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._rng import derive_seed
from repro.errors import ConfigurationError
from repro.metrics.registry import MetricRegistry, core_candidates
from repro.properties.base import AssessmentContext
from repro.properties.matrix import PropertiesMatrix, build_properties_matrix
from repro.scenarios.adequacy import AdequacyConfig, rank_metrics_for_scenario
from repro.scenarios.cost_model import CostStructure
from repro.scenarios.scenarios import Scenario

__all__ = ["GuidanceAnswers", "Recommendation", "recommend"]

_AUDIENCES = ("practitioners", "researchers", "mixed")
_CAPACITIES = ("scarce", "adequate", "ample")

#: Neutral starting weights before any answer-driven adjustment.
_BASE_WEIGHTS = {
    "rewards detection": 0.12,
    "rewards silence": 0.12,
    "defined": 0.10,
    "bounded": 0.08,
    "repeatable": 0.10,
    "discriminating": 0.12,
    "prevalence-invariant": 0.10,
    "chance-corrected": 0.10,
    "understandable": 0.08,
    "accepted": 0.08,
}


@dataclass(frozen=True, slots=True)
class GuidanceAnswers:
    """The questionnaire.

    ``miss_to_alarm_ratio``: how many false-alarm triages one residual
    vulnerability is worth to you (1 = equally painful, 100 = a miss is
    catastrophic).  ``field_prevalence``: the vulnerability rate you expect
    in the code the tool will actually face.  ``benchmark_enriched``:
    whether the workloads you can benchmark on have a (much) higher rate
    than the field.  ``audience``: who reads the benchmark report.
    ``triage_capacity``: how much human time exists to confirm reports.
    """

    miss_to_alarm_ratio: float
    field_prevalence: tuple[float, float]
    benchmark_enriched: bool
    audience: str = "mixed"
    triage_capacity: str = "adequate"

    def __post_init__(self) -> None:
        if self.miss_to_alarm_ratio <= 0 or not math.isfinite(self.miss_to_alarm_ratio):
            raise ConfigurationError(
                f"miss_to_alarm_ratio={self.miss_to_alarm_ratio} must be finite and > 0"
            )
        low, high = self.field_prevalence
        if not (0.0 < low <= high < 1.0):
            raise ConfigurationError(
                f"field_prevalence={self.field_prevalence} must satisfy 0 < lo <= hi < 1"
            )
        if self.audience not in _AUDIENCES:
            raise ConfigurationError(
                f"audience={self.audience!r} must be one of {_AUDIENCES}"
            )
        if self.triage_capacity not in _CAPACITIES:
            raise ConfigurationError(
                f"triage_capacity={self.triage_capacity!r} must be one of {_CAPACITIES}"
            )


@dataclass(frozen=True)
class Recommendation:
    """The wizard's output."""

    scenario: Scenario
    lead_metric_symbol: str
    adequacy: float
    runners_up: tuple[str, ...]
    rationale: tuple[str, ...]

    def render(self) -> str:
        """Human-readable recommendation."""
        lines = [
            f"Recommended benchmark metric: {self.lead_metric_symbol} "
            f"(analytical adequacy {self.adequacy:.2f}; "
            f"runners-up: {', '.join(self.runners_up)})",
            "",
            "How your answers shaped the scenario:",
        ]
        lines.extend(f"  - {reason}" for reason in self.rationale)
        return "\n".join(lines)


def _synthesize_scenario(answers: GuidanceAnswers) -> tuple[Scenario, list[str]]:
    weights = dict(_BASE_WEIGHTS)
    rationale: list[str] = []

    # Miss cost moves the orientation axis (log-scaled: 1:1 is neutral,
    # 100:1 is a strong detection tilt).
    tilt = math.log10(answers.miss_to_alarm_ratio)  # -2 .. +2 in practice
    weights["rewards detection"] *= 2.0 ** tilt
    weights["rewards silence"] *= 2.0 ** (-tilt)
    if tilt > 0:
        rationale.append(
            f"misses are {answers.miss_to_alarm_ratio:g}x costlier than alarms: "
            "weight shifted toward detection-rewarding metrics"
        )
    elif tilt < 0:
        rationale.append(
            "alarms dominate your costs: weight shifted toward "
            "silence-rewarding metrics"
        )

    if answers.triage_capacity == "scarce":
        weights["rewards silence"] *= 1.6
        weights["understandable"] *= 1.3
        rationale.append(
            "triage capacity is scarce: false-alarm control and report "
            "readability weigh more"
        )
    elif answers.triage_capacity == "ample":
        weights["rewards detection"] *= 1.2
        rationale.append(
            "triage capacity is ample: finding more matters more than noise"
        )

    low, high = answers.field_prevalence
    low_prevalence_field = high <= 0.05
    if answers.benchmark_enriched or low_prevalence_field:
        weights["prevalence-invariant"] *= 2.0
        weights["chance-corrected"] *= 1.6
        rationale.append(
            "your benchmark's mix differs from the field (enriched workloads "
            "or a low-prevalence field): prevalence-invariant, "
            "chance-corrected metrics weigh more"
        )

    if answers.audience == "practitioners":
        weights["understandable"] *= 1.6
        weights["accepted"] *= 1.5
        rationale.append(
            "a practitioner audience: familiarity and interpretability weigh more"
        )
    elif answers.audience == "researchers":
        weights["chance-corrected"] *= 1.3
        weights["discriminating"] *= 1.3
        weights["accepted"] *= 0.6
        rationale.append(
            "a research audience: statistical virtue outweighs familiarity"
        )

    total = sum(weights.values())
    weights = {name: value / total for name, value in weights.items()}

    benchmark_range = None
    if answers.benchmark_enriched:
        benchmark_range = (max(0.10, high), max(0.30, min(0.5, high * 3)))
    scenario = Scenario(
        key="custom",
        name="Questionnaire-derived scenario",
        description="Synthesized by repro.scenarios.guidance.recommend",
        cost=CostStructure(cost_fn=answers.miss_to_alarm_ratio, cost_fp=1.0),
        prevalence_range=answers.field_prevalence,
        benchmark_prevalence_range=benchmark_range,
        property_weights=weights,
    )
    return scenario, rationale


#: How many property-screened candidates advance to the adequacy ranking.
_SHORTLIST_SIZE = 6


def recommend(
    answers: GuidanceAnswers,
    registry: MetricRegistry | None = None,
    config: AdequacyConfig | None = None,
    properties_matrix: PropertiesMatrix | None = None,
) -> Recommendation:
    """Synthesize the scenario and select the metric in two stages.

    Stage 1 screens the candidates by the answers' *property* weights (a
    weighted-sum over the executable properties matrix) — this is where
    "prevalence-invariant metrics weigh more" actually bites.  Stage 2
    ranks the shortlist by analytical adequacy against the scenario's cost
    structure.  Both stages are visible in the result: the shortlist
    survives as the runners-up pool.
    """
    registry = registry if registry is not None else core_candidates()
    config = config or AdequacyConfig(n_pools=40, seed=0)
    scenario, rationale = _synthesize_scenario(answers)

    if properties_matrix is None:
        context = AssessmentContext.default(
            seed=derive_seed(config.seed, "guidance"), n_resamples=50
        )
        properties_matrix = build_properties_matrix(registry, context=context)
    property_scores = properties_matrix.weighted_scores(scenario.property_weights)
    shortlist = sorted(property_scores, key=property_scores.get, reverse=True)[
        :_SHORTLIST_SIZE
    ]
    rationale.append(
        "property screening kept: " + ", ".join(shortlist)
    )

    ranked = rank_metrics_for_scenario(registry.subset(shortlist), scenario, config)
    return Recommendation(
        scenario=scenario,
        lead_metric_symbol=ranked[0].metric_symbol,
        adequacy=ranked[0].mean_tau,
        runners_up=tuple(r.metric_symbol for r in ranked[1:4]),
        rationale=tuple(rationale),
    )

"""Analytical metric adequacy per scenario (experiment R8).

A metric is *adequate* for a scenario when ranking tools by the metric
reproduces the ranking by the scenario's expected cost — the preference the
scenario's stakeholders actually hold.  We measure that with Kendall's tau
between the two rankings, averaged over many sampled tool pools and workload
mixes from the scenario's prevalence regime.

This is the step-3 analysis of the paper made quantitative: instead of
arguing qualitatively that "precision suits triage-bound teams", we compute
how faithfully each candidate orders tools under each scenario's economics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._rng import spawn
from repro.errors import ConfigurationError
from repro.metrics.base import Metric
from repro.metrics.confusion import ConfusionMatrix
from repro.metrics.registry import MetricRegistry
from repro.scenarios.scenarios import Scenario
from repro.stats.rank import kendall_tau, order_by_score

__all__ = ["AdequacyConfig", "AdequacyResult", "scenario_adequacy", "rank_metrics_for_scenario"]


@dataclass(frozen=True, slots=True)
class AdequacyConfig:
    """Sampling parameters of the adequacy study."""

    n_pools: int = 40
    tools_per_pool: int = 8
    workload_sites: float = 1000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_pools < 1:
            raise ConfigurationError(f"n_pools={self.n_pools} must be >= 1")
        if self.tools_per_pool < 3:
            raise ConfigurationError(
                f"tools_per_pool={self.tools_per_pool} must be >= 3 for a meaningful ranking"
            )
        if self.workload_sites <= 0:
            raise ConfigurationError("workload_sites must be positive")


@dataclass(frozen=True, slots=True)
class AdequacyResult:
    """Adequacy of one metric for one scenario."""

    metric_symbol: str
    scenario_key: str
    mean_tau: float
    std_tau: float
    n_pools: int


def _sample_pool(
    rng: np.random.Generator, scenario: Scenario, config: AdequacyConfig
) -> list[tuple[ConfusionMatrix, ConfusionMatrix]]:
    """One pool of plausible tools as (benchmark, field) matrix pairs.

    Operating points span the space real campaigns report (recall 0.2-0.95,
    FPR 0.005-0.4); every tool in a pool sees the same workloads, as in a
    real campaign.  The *benchmark* matrix is what the candidate metric gets
    to see; the *field* matrix — same tool, the scenario's deployment
    prevalence — is what the scenario's cost is paid on.  When the scenario
    declares no separate benchmark regime, the two coincide.
    """
    field_low, field_high = scenario.prevalence_range
    field_prevalence = float(rng.uniform(field_low, field_high))
    bench_range = scenario.benchmark_prevalence_range or scenario.prevalence_range
    bench_prevalence = (
        field_prevalence
        if scenario.benchmark_prevalence_range is None
        else float(rng.uniform(*bench_range))
    )
    total = config.workload_sites
    pool = []
    for _ in range(config.tools_per_pool):
        tpr = float(rng.uniform(0.2, 0.95))
        fpr = float(rng.uniform(0.005, 0.4))
        bench = ConfusionMatrix.from_rates(
            tpr, fpr, bench_prevalence * total, (1.0 - bench_prevalence) * total
        )
        field = ConfusionMatrix.from_rates(
            tpr, fpr, field_prevalence * total, (1.0 - field_prevalence) * total
        )
        pool.append((bench, field))
    return pool


def scenario_adequacy(
    metric: Metric, scenario: Scenario, config: AdequacyConfig | None = None
) -> AdequacyResult:
    """Mean rank correlation between ``metric`` and the scenario's cost."""
    config = config or AdequacyConfig()
    rng = spawn(config.seed, f"adequacy:{scenario.key}:{metric.symbol}")
    taus = []
    for _ in range(config.n_pools):
        pool = _sample_pool(rng, scenario, config)
        true_scores = [-scenario.cost.expected_cost(field) for _, field in pool]
        metric_scores = [
            g if math.isfinite(g := metric.goodness(bench)) else -math.inf
            for bench, _ in pool
        ]
        tau = kendall_tau(metric_scores, true_scores)
        if math.isfinite(tau):
            taus.append(tau)
    if not taus:
        return AdequacyResult(
            metric_symbol=metric.symbol,
            scenario_key=scenario.key,
            mean_tau=float("nan"),
            std_tau=float("nan"),
            n_pools=0,
        )
    return AdequacyResult(
        metric_symbol=metric.symbol,
        scenario_key=scenario.key,
        mean_tau=float(np.mean(taus)),
        std_tau=float(np.std(taus, ddof=1)) if len(taus) > 1 else 0.0,
        n_pools=len(taus),
    )


def rank_metrics_for_scenario(
    registry: MetricRegistry, scenario: Scenario, config: AdequacyConfig | None = None
) -> list[AdequacyResult]:
    """Adequacy of every registry metric for ``scenario``, best first."""
    results = [scenario_adequacy(metric, scenario, config) for metric in registry]
    symbols = [r.metric_symbol for r in results]
    taus = [r.mean_tau for r in results]
    ordered_symbols = order_by_score(symbols, taus, higher_is_better=True)
    by_symbol = {r.metric_symbol: r for r in results}
    return [by_symbol[symbol] for symbol in ordered_symbols]

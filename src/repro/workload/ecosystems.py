"""Ecosystem profiles: per-ecosystem workload regimes, as a registry.

The original study benchmarked tools over one ecosystem (vulnerable web
services).  Follow-up work — ground-truth campaigns across multiple
ecosystems, the Android-tool effectiveness studies — shows that the workload
characteristics the paper's analysis depends on (prevalence regime,
vulnerability-type mix, difficulty curve, sanitizer density) shift radically
between ecosystems, and with them the operating points of the tools.  An
:class:`EcosystemProfile` captures one such regime as data; the registry
makes every layer above (sharded generation, tool suites, campaigns, the
CLI, the R20 cross-ecosystem experiment) parameterizable by ecosystem name.

Parity contract: the ``web-services`` profile *is* the historical default —
its parameters equal :class:`~repro.workload.generator.WorkloadConfig`'s
defaults field for field, and nothing in the generation seed path depends
on the ecosystem name for the default ecosystem — so every pre-registry
artifact regenerates bit-identically (guarded by
``tests/workload/test_ecosystems.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.workload.generator import WorkloadConfig
from repro.workload.taxonomy import VulnerabilityType

__all__ = [
    "DEFAULT_ECOSYSTEM",
    "EcosystemProfile",
    "register_ecosystem",
    "get_ecosystem",
    "ecosystem_names",
    "all_ecosystems",
]

#: The ecosystem every historical artifact was generated under.  Workloads,
#: campaigns and shard plans that never name an ecosystem use this one and
#: are bit-identical to their pre-registry counterparts.
DEFAULT_ECOSYSTEM = "web-services"


def _uniform_mix() -> dict[VulnerabilityType, float]:
    return {v: 1.0 / len(VulnerabilityType) for v in VulnerabilityType}


@dataclass(frozen=True)
class EcosystemProfile:
    """One ecosystem's workload regime, as generator-ready parameters.

    The workload fields mirror :class:`~repro.workload.generator.
    WorkloadConfig` (and are validated to the same bounds);
    ``dependency_fraction`` and ``tool_families`` parameterize the tool
    side: which fraction of units are dependency-shaped (the only units an
    SCA-style detector can see, see :mod:`repro.tools.sca_matcher`) and
    which registered tool families make up the ecosystem's suite
    (:func:`repro.tools.families.suite_for_ecosystem`).
    """

    name: str
    title: str
    description: str
    prevalence: float
    decoy_fraction: float
    sites_per_unit: tuple[int, int]
    chain_length_range: tuple[int, int]
    cross_class_sanitizer_rate: float
    type_mix: dict[VulnerabilityType, float] = field(default_factory=_uniform_mix)
    dependency_fraction: float = 0.1
    tool_families: tuple[str, ...] = ("sa", "pt", "vs")

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("ecosystem name must be non-empty")
        if not 0.0 < self.prevalence < 1.0:
            raise ConfigurationError(
                f"ecosystem {self.name!r}: prevalence={self.prevalence} "
                f"must be in (0, 1)"
            )
        if not 0.0 <= self.decoy_fraction <= 1.0:
            raise ConfigurationError(
                f"ecosystem {self.name!r}: decoy_fraction="
                f"{self.decoy_fraction} must be in [0, 1]"
            )
        for label, bounds in (
            ("sites_per_unit", self.sites_per_unit),
            ("chain_length_range", self.chain_length_range),
        ):
            low, high = bounds
            if not 1 <= low <= high:
                raise ConfigurationError(
                    f"ecosystem {self.name!r}: {label}={bounds} must be "
                    f"1 <= lo <= hi"
                )
        if not 0.0 <= self.cross_class_sanitizer_rate <= 1.0:
            raise ConfigurationError(
                f"ecosystem {self.name!r}: cross_class_sanitizer_rate must "
                f"be in [0, 1]"
            )
        if not self.type_mix:
            raise ConfigurationError(
                f"ecosystem {self.name!r}: type_mix must not be empty"
            )
        if any(weight < 0 for weight in self.type_mix.values()):
            raise ConfigurationError(
                f"ecosystem {self.name!r}: type_mix weights must be "
                f"non-negative"
            )
        if sum(self.type_mix.values()) <= 0:
            raise ConfigurationError(
                f"ecosystem {self.name!r}: type_mix weights must sum to a "
                f"positive number"
            )
        if not 0.0 <= self.dependency_fraction <= 1.0:
            raise ConfigurationError(
                f"ecosystem {self.name!r}: dependency_fraction="
                f"{self.dependency_fraction} must be in [0, 1]"
            )
        if not self.tool_families:
            raise ConfigurationError(
                f"ecosystem {self.name!r}: tool_families must not be empty"
            )

    def workload_config(
        self, n_units: int, seed: int, name: str | None = None
    ) -> WorkloadConfig:
        """A :class:`WorkloadConfig` generating this ecosystem's workloads.

        ``name`` defaults to the ecosystem name; callers that need several
        workloads per ecosystem (shards, replicates) pass distinct names so
        tool substreams stay independent.
        """
        return WorkloadConfig(
            n_units=n_units,
            sites_per_unit=self.sites_per_unit,
            prevalence=self.prevalence,
            decoy_fraction=self.decoy_fraction,
            chain_length_range=self.chain_length_range,
            cross_class_sanitizer_rate=self.cross_class_sanitizer_rate,
            type_mix=dict(self.type_mix),
            seed=seed,
            name=name if name is not None else self.name,
            ecosystem=self.name,
        )


_REGISTRY: dict[str, EcosystemProfile] = {}


def register_ecosystem(profile: EcosystemProfile) -> EcosystemProfile:
    """Register ``profile``; re-registration must be an identical profile."""
    existing = _REGISTRY.get(profile.name)
    if existing is not None and existing != profile:
        raise ConfigurationError(
            f"ecosystem {profile.name!r} registered twice with different "
            f"profiles"
        )
    _REGISTRY[profile.name] = profile
    return profile


def get_ecosystem(name: str) -> EcosystemProfile:
    """The registered profile for ``name``; unknown names list the registry."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown ecosystem {name!r}; known: {', '.join(ecosystem_names())}"
        ) from None


def ecosystem_names() -> list[str]:
    """Registered ecosystem names, default first, then registration order."""
    names = list(_REGISTRY)
    if DEFAULT_ECOSYSTEM in names:
        names.remove(DEFAULT_ECOSYSTEM)
        names.insert(0, DEFAULT_ECOSYSTEM)
    return names


def all_ecosystems() -> list[EcosystemProfile]:
    """Every registered profile, in :func:`ecosystem_names` order."""
    return [_REGISTRY[name] for name in ecosystem_names()]


_T = VulnerabilityType

register_ecosystem(
    EcosystemProfile(
        name=DEFAULT_ECOSYSTEM,
        title="Vulnerable web services",
        description=(
            "The study's original regime: injection-heavy web services with "
            "moderate prevalence, a rich sanitizer culture (half of the safe "
            "sites are sanitized decoys) and a uniform class mix."
        ),
        prevalence=0.15,
        decoy_fraction=0.5,
        sites_per_unit=(1, 3),
        chain_length_range=(1, 6),
        cross_class_sanitizer_rate=0.25,
        type_mix=_uniform_mix(),
        dependency_fraction=0.1,
        tool_families=("sa", "pt", "vs"),
    )
)

register_ecosystem(
    EcosystemProfile(
        name="android",
        title="Android applications",
        description=(
            "Mobile apps: fewer vulnerable sites than web services, long "
            "propagation chains through framework callbacks (hard for every "
            "analysis), a class mix dominated by SQL/path/command injection, "
            "and a noticeable native-dependency surface."
        ),
        prevalence=0.08,
        decoy_fraction=0.35,
        sites_per_unit=(1, 4),
        chain_length_range=(2, 8),
        cross_class_sanitizer_rate=0.15,
        type_mix={
            _T.SQL_INJECTION: 0.25,
            _T.XSS: 0.20,
            _T.PATH_TRAVERSAL: 0.25,
            _T.COMMAND_INJECTION: 0.20,
            _T.LDAP_INJECTION: 0.05,
            _T.XPATH_INJECTION: 0.05,
        },
        dependency_fraction=0.25,
        tool_families=("sa", "vs", "dast", "ensemble"),
    )
)

register_ecosystem(
    EcosystemProfile(
        name="npm-deps",
        title="npm dependency trees",
        description=(
            "Package-ecosystem auditing: the overwhelming majority of units "
            "are dependency-shaped (visible to SCA version matching), true "
            "vulnerabilities are rare, chains are shallow, and sanitizer "
            "decoys are uncommon."
        ),
        prevalence=0.035,
        decoy_fraction=0.2,
        sites_per_unit=(1, 2),
        chain_length_range=(1, 3),
        cross_class_sanitizer_rate=0.10,
        type_mix={
            _T.SQL_INJECTION: 0.05,
            _T.XSS: 0.25,
            _T.PATH_TRAVERSAL: 0.30,
            _T.COMMAND_INJECTION: 0.30,
            _T.LDAP_INJECTION: 0.05,
            _T.XPATH_INJECTION: 0.05,
        },
        dependency_fraction=0.85,
        tool_families=("sca", "vs", "dast", "ensemble"),
    )
)

register_ecosystem(
    EcosystemProfile(
        name="iac",
        title="Infrastructure-as-code",
        description=(
            "Configuration scanning: misconfigurations are common (high "
            "prevalence), propagation is shallow and nearly sanitizer-free, "
            "and the class mix concentrates on command/path/LDAP-style "
            "injection into provisioning templates."
        ),
        prevalence=0.30,
        decoy_fraction=0.15,
        sites_per_unit=(2, 5),
        chain_length_range=(1, 2),
        cross_class_sanitizer_rate=0.05,
        type_mix={
            _T.SQL_INJECTION: 0.05,
            _T.XSS: 0.05,
            _T.PATH_TRAVERSAL: 0.30,
            _T.COMMAND_INJECTION: 0.40,
            _T.LDAP_INJECTION: 0.15,
            _T.XPATH_INJECTION: 0.05,
        },
        dependency_fraction=0.45,
        tool_families=("sa", "sca", "ensemble"),
    )
)
